//! Source vectors (§4.2, Fig 11).
//!
//! For each node `N` and token line `ℓ`, `SV_N(ℓ)` is the set of
//! `⟨source node, out-direction⟩` pairs from which `ℓ`'s token can arrive
//! at `N`. The computation is a single forward pass in topological order
//! (ignoring backedges) with the paper's non-local step: at a fork that
//! does **not** need a switch for `ℓ`, the sources propagate directly to
//! the fork's immediate postdominator — the token bypasses the region.
//!
//! Two amendments make Fig 11 fully concrete:
//!
//! * a fork that *reads* `ℓ` in its predicate (but needs no switch)
//!   threads `ℓ` through its read block and then bypasses: the source
//!   becomes `⟨F, true⟩` at `ipostdom(F)`;
//! * joins with a single incoming source pass it through unchanged ("a
//!   join with a single source is equivalent to no operator"), and
//!   loop-entry/exit operators exist only for circulating lines.

use crate::lines::{LineId, Lines};
use crate::switch_place::SwitchPlacement;
use cf2df_cfg::intervals::Irreducible;
use cf2df_cfg::loop_control::{LoopControlMeta, LoopControlled};
use cf2df_cfg::reach::topo_order_ignoring_backedges;
use cf2df_cfg::{Cfg, DomTree, FunctionContext, LoopForest, NodeId, OutDir, Stmt};
use std::collections::HashMap;

/// One source of a token: a node and the out-direction it leaves along.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SvSrc {
    /// The producing node.
    pub node: NodeId,
    /// Out-direction (always [`OutDir::TRUE`] for non-forks).
    pub dir: OutDir,
}

/// The computed source vectors.
#[derive(Clone, Debug, Default)]
pub struct SourceVectors {
    sv: HashMap<(NodeId, LineId), Vec<SvSrc>>,
    /// Backedge sources arriving at loop-entry nodes (wired to the
    /// loop-entry operator's port 1).
    sv_back: HashMap<(NodeId, LineId), Vec<SvSrc>>,
}

impl SourceVectors {
    /// The forward sources of line `l` at node `n`.
    pub fn at(&self, n: NodeId, l: LineId) -> &[SvSrc] {
        self.sv.get(&(n, l)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The backedge sources of line `l` at loop-entry node `n`.
    pub fn back_at(&self, n: NodeId, l: LineId) -> &[SvSrc] {
        self.sv_back.get(&(n, l)).map(Vec::as_slice).unwrap_or(&[])
    }

    fn add(&mut self, n: NodeId, l: LineId, src: SvSrc) {
        let v = self.sv.entry((n, l)).or_default();
        if !v.contains(&src) {
            v.push(src);
        }
    }

    fn add_all(&mut self, n: NodeId, l: LineId, srcs: &[SvSrc]) {
        for &s in srcs {
            self.add(n, l, s);
        }
    }

    fn add_back(&mut self, n: NodeId, l: LineId, src: SvSrc) {
        let v = self.sv_back.entry((n, l)).or_default();
        if !v.contains(&src) {
            v.push(src);
        }
    }

    /// Compute source vectors for a loop-controlled CFG under a switch
    /// placement.
    ///
    /// An irreducible CFG is a diagnosable input error, not a programming
    /// error, so it surfaces as `Err` rather than a panic.
    pub fn compute(
        lc: &LoopControlled,
        lines: &Lines,
        sp: &SwitchPlacement,
    ) -> Result<SourceVectors, Irreducible> {
        let cfg = &lc.cfg;
        let pd = DomTree::postdominators(cfg);
        let forest = LoopForest::compute(cfg)?;
        let backedges = forest.backedge_indices(cfg);
        let order = topo_order_ignoring_backedges(cfg, &backedges);
        Ok(Self::compute_with(cfg, &pd, &backedges, &order, &lc.meta, lines, sp))
    }

    /// [`Self::compute`] drawing postdominators, the loop forest, and the
    /// topological order from a [`FunctionContext`]'s cache.
    pub fn compute_cached(
        fctx: &mut FunctionContext,
        meta: &LoopControlMeta,
        lines: &Lines,
        sp: &SwitchPlacement,
    ) -> Result<SourceVectors, Irreducible> {
        let pd = fctx.postdominators();
        let forest = fctx.loop_forest()?;
        let order = fctx.topo_order()?;
        let backedges = forest.backedge_indices(fctx.cfg());
        Ok(Self::compute_with(fctx.cfg(), &pd, &backedges, &order, meta, lines, sp))
    }

    /// The Fig 11 forward pass, parameterized over precomputed analyses.
    /// `backedges` are the backedge indices of the *current* (loop-
    /// controlled) graph; `meta.forest` is the loop forest of the original
    /// graph, used for containment queries on original node ids.
    fn compute_with(
        cfg: &Cfg,
        pd: &DomTree,
        forest_backedges: &[Vec<usize>],
        order: &[NodeId],
        meta: &LoopControlMeta,
        lines: &Lines,
        sp: &SwitchPlacement,
    ) -> SourceVectors {
        let mut out = SourceVectors::default();

        // Route a source to a successor along a concrete out-edge,
        // honouring backedges (whose targets are loop entries and which are
        // wired to the entry operator's backedge port).
        let is_back =
            |n: NodeId, idx: usize, be: &[Vec<usize>]| be[n.index()].contains(&idx);

        for &n in order {
            match cfg.stmt(n) {
                Stmt::Start => {
                    let s = cfg.succs(n)[0];
                    for l in lines.ids() {
                        out.add(
                            s,
                            l,
                            SvSrc {
                                node: n,
                                dir: OutDir::TRUE,
                            },
                        );
                    }
                }
                Stmt::End => {}
                Stmt::Assign { .. }
                | Stmt::LoopExit { .. }
                | Stmt::LoopEntry { .. }
                | Stmt::Join => {
                    let s = cfg.succs(n)[0];
                    let back = is_back(n, 0, forest_backedges);
                    let refs = sp.refs(n);
                    for l in lines.ids() {
                        let produced: Vec<SvSrc> = if refs.contains(&l) {
                            vec![SvSrc {
                                node: n,
                                dir: OutDir::TRUE,
                            }]
                        } else if matches!(cfg.stmt(n), Stmt::Join) {
                            // A join is a producer only when it merges.
                            let srcs = out.at(n, l).to_vec();
                            match srcs.len() {
                                0 => Vec::new(),
                                1 => srcs,
                                _ => vec![SvSrc {
                                    node: n,
                                    dir: OutDir::TRUE,
                                }],
                            }
                        } else {
                            out.at(n, l).to_vec()
                        };
                        for src in produced {
                            if back {
                                out.add_back(s, l, src);
                            } else {
                                out.add(s, l, src);
                            }
                        }
                    }
                }
                Stmt::Branch { pred } | Stmt::Case { selector: pred } => {
                    let p = pd.idom(n).expect("forks have a postdominator");
                    // A bypass whose target is a loop-entry node needs
                    // care: when the fork lies *inside* that loop (e.g. a
                    // fork whose two arms both lead straight back to the
                    // loop entry, as in a binary-search loop), the
                    // bypassing token arrives carrying the loop's
                    // iteration tag and must enter the backedge port.
                    // (A fork *before* the loop may also have the entry as
                    // its postdominator — e.g. a diamond converging right
                    // at the loop; its tokens arrive from outside and take
                    // the forward port.)
                    let bypass_is_back = match cfg.stmt(p) {
                        Stmt::LoopEntry { loop_id } => meta.forest.info(*loop_id).contains(n),
                        _ => false,
                    };
                    let pred_lines: Vec<LineId> = {
                        let mut v = Vec::new();
                        for var in pred.vars() {
                            for &l in lines.access_lines(var) {
                                if !v.contains(&l) {
                                    v.push(l);
                                }
                            }
                        }
                        v
                    };
                    for l in lines.ids() {
                        let switched = sp.needs_switch(n, l);
                        if switched {
                            for (i, &s) in cfg.succs(n).iter().enumerate() {
                                let dir = OutDir::from_edge_index(i);
                                let src = SvSrc { node: n, dir };
                                if is_back(n, i, forest_backedges) {
                                    out.add_back(s, l, src);
                                } else {
                                    out.add(s, l, src);
                                }
                            }
                        } else if pred_lines.contains(&l) {
                            // Read by the predicate, then bypasses to the
                            // postdominator.
                            let src = SvSrc {
                                node: n,
                                dir: OutDir::TRUE,
                            };
                            if bypass_is_back {
                                out.add_back(p, l, src);
                            } else {
                                out.add(p, l, src);
                            }
                        } else {
                            let srcs = out.at(n, l).to_vec();
                            if bypass_is_back {
                                for src in srcs {
                                    out.add_back(p, l, src);
                                }
                            } else {
                                out.add_all(p, l, &srcs);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::loop_control::insert_loop_control;
    use cf2df_cfg::{Cfg, Cover, CoverStrategy};
    use cf2df_lang::parse_to_cfg;

    fn setup(src: &str) -> (LoopControlled, Lines, SwitchPlacement) {
        let parsed = parse_to_cfg(src).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
        let sp = SwitchPlacement::compute(&lc, &lines);
        (lc, lines, sp)
    }

    fn line_of(cfg: &Cfg, lines: &Lines, name: &str) -> LineId {
        lines.access_lines(cfg.vars.lookup(name).unwrap())[0]
    }

    #[test]
    fn fig9_x_token_bypasses_conditional() {
        let (lc, lines, sp) = setup(cf2df_lang::corpus::FIG9);
        let sv = SourceVectors::compute(&lc, &lines, &sp).unwrap();
        let cfg = &lc.cfg;
        let x = line_of(cfg, &lines, "x");
        // Find the second assignment to x (x := 0) and the first
        // (x := x + 1).
        let assigns: Vec<NodeId> = cfg
            .node_ids()
            .filter(|&n| {
                matches!(cfg.stmt(n), Stmt::Assign { lhs, .. }
                    if lhs.var() == cfg.vars.lookup("x").unwrap())
            })
            .collect();
        assert_eq!(assigns.len(), 2);
        let (first, second) = (assigns[0], assigns[1]);
        // x := 0 receives access_x DIRECTLY from x := x + 1 — not from the
        // conditional's join.
        let srcs = sv.at(second, x);
        assert_eq!(srcs.len(), 1);
        assert_eq!(srcs[0].node, first, "token bypasses the if-then-else");
    }

    #[test]
    fn switched_lines_source_from_the_fork() {
        let (lc, lines, sp) = setup(cf2df_lang::corpus::FIG9);
        let sv = SourceVectors::compute(&lc, &lines, &sp).unwrap();
        let cfg = &lc.cfg;
        let y = line_of(cfg, &lines, "y");
        let fork = cfg
            .node_ids()
            .find(|&n| matches!(cfg.stmt(n), Stmt::Branch { .. }))
            .unwrap();
        let then_node = cfg.succs(fork)[0];
        let srcs = sv.at(then_node, y);
        assert!(srcs
            .iter()
            .any(|s| s.node == fork && s.dir == OutDir::TRUE));
    }

    #[test]
    fn loop_backedges_separated_from_entries() {
        let (lc, lines, sp) = setup(cf2df_lang::corpus::RUNNING_EXAMPLE);
        let sv = SourceVectors::compute(&lc, &lines, &sp).unwrap();
        let cfg = &lc.cfg;
        let le = lc.entry_node[0];
        let x = line_of(cfg, &lines, "x");
        // Forward source: start. Backedge source: the loop branch.
        let fwd = sv.at(le, x);
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].node, cfg.start());
        let back = sv.back_at(le, x);
        assert_eq!(back.len(), 1);
        assert!(matches!(cfg.stmt(back[0].node), Stmt::Branch { .. }));
        assert_eq!(back[0].dir, OutDir::TRUE);
    }

    #[test]
    fn every_line_reaches_end() {
        for (name, src) in cf2df_lang::corpus::all() {
            let (lc, lines, sp) = setup(src);
            let sv = SourceVectors::compute(&lc, &lines, &sp).unwrap();
            for l in lines.ids() {
                assert!(
                    !sv.at(lc.cfg.end(), l).is_empty(),
                    "{name}: line {l:?} never reaches end"
                );
            }
        }
    }

    #[test]
    fn statement_sources_are_singletons() {
        // The paper: "If N is a switch which needs access_x or a statement
        // which refers to x, then each set SV_N(x) will have a single
        // element."
        for (name, src) in cf2df_lang::corpus::all() {
            let (lc, lines, sp) = setup(src);
            let sv = SourceVectors::compute(&lc, &lines, &sp).unwrap();
            let cfg = &lc.cfg;
            for n in cfg.node_ids() {
                match cfg.stmt(n) {
                    Stmt::Assign { .. } => {
                        for &l in sp.refs(n) {
                            assert_eq!(
                                sv.at(n, l).len(),
                                1,
                                "{name}: {n:?} line {l:?} should have one source"
                            );
                        }
                    }
                    Stmt::Branch { .. } => {
                        for l in lines.ids() {
                            if sp.needs_switch(n, l) {
                                assert_eq!(sv.at(n, l).len(), 1, "{name}: switch {n:?} {l:?}");
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn unreferenced_line_goes_straight_to_end() {
        let (lc, lines, sp) = setup("alias q ~ q; x := 1; if x < 2 then { y := 1; } else { y := 2; }");
        let sv = SourceVectors::compute(&lc, &lines, &sp).unwrap();
        let cfg = &lc.cfg;
        let q = line_of(cfg, &lines, "q");
        let srcs = sv.at(cfg.end(), q);
        assert_eq!(srcs.len(), 1);
        assert_eq!(srcs[0].node, cfg.start(), "q's token skips everything");
    }
}
