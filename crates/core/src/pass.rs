//! The pass manager: named pipeline stages over one shared
//! [`FunctionContext`], with always-on per-pass records.
//!
//! Every stage of [`crate::pipeline::translate`] is a [`Pass`] that reads
//! and writes one [`PassCtx`]. The context owns the CFG (inside its
//! `FunctionContext`, which memoizes every structural analysis keyed by a
//! revision stamp) plus the intermediate products — token lines,
//! loop-control metadata, switch placement, source vectors, and the
//! dataflow graph under construction. Passes never clone the CFG; a pass
//! that mutates it goes through `FunctionContext::mutate`/`replace_cfg`,
//! which bumps the revision and invalidates exactly the analyses the
//! mutation can change.
//!
//! The [`PassManager`] wraps each pass with instrumentation: wall time,
//! how many analyses the pass computed vs. served from cache, and CFG/DFG
//! sizes before and after. The records surface through
//! [`crate::pipeline::Translated::passes`] and the `cf2df translate
//! --time-passes` table.

use crate::lines::Lines;
use crate::source_vec::SourceVectors;
use crate::switch_place::SwitchPlacement;
use crate::translator::Built;
use cf2df_cfg::loop_control::LoopControlMeta;
use cf2df_cfg::{CacheStats, FunctionContext};
use std::time::{Duration, Instant};

use crate::pipeline::{TranslateError, TranslateOptions};

/// Shared state threaded through every pass. One per translation; the
/// CFG lives inside `fctx` and is never cloned between stages.
pub struct PassCtx<'a> {
    /// The CFG plus its memoized analysis cache.
    pub fctx: FunctionContext,
    /// The options driving the pipeline.
    pub opts: &'a TranslateOptions,
    /// Token-line structure (set by the `lines` pass).
    pub lines: Option<Lines>,
    /// Loop-control metadata (set by the `loop-control` pass).
    pub loop_control: Option<LoopControlMeta>,
    /// §4 switch placement (set by the `switch-placement` pass).
    pub switch_placement: Option<SwitchPlacement>,
    /// §4 source vectors (set by the `source-vectors` pass).
    pub source_vectors: Option<SourceVectors>,
    /// The dataflow graph under construction (set by a construction pass,
    /// rewritten by the §6 transform passes).
    pub built: Option<Built>,
    /// Switch sites the optimized construction placed, snapshotted before
    /// the §6 transforms can remap or remove operators (set by the
    /// `construct-optimized` pass; `None` for the naive translation).
    pub placed_switches: Option<Vec<(cf2df_cfg::NodeId, crate::lines::LineId)>>,
    /// The clean certification report (set by the `certify` pass).
    pub certify_report: Option<crate::certify::CertifyReport>,
    /// §6.2 load chains parallelized.
    pub read_chains_parallelized: usize,
    /// §6.3 sites rewritten.
    pub array_sites_parallelized: usize,
    /// §6.2 loads eliminated by store-to-load forwarding.
    pub stores_forwarded: usize,
    /// Element operations converted to I-structure operations.
    pub istructure_ops: usize,
    /// Operators removed by the CSE/DCE cleanup passes.
    pub ops_cleaned: usize,
    /// Linear chains collapsed into `Macro` operators by the fusion pass.
    pub chains_fused: usize,
    /// Operators eliminated by fusion (chain interiors).
    pub ops_fused: usize,
}

impl<'a> PassCtx<'a> {
    /// A fresh context over `fctx` with no intermediate products yet.
    pub fn new(fctx: FunctionContext, opts: &'a TranslateOptions) -> Self {
        PassCtx {
            fctx,
            opts,
            lines: None,
            loop_control: None,
            switch_placement: None,
            source_vectors: None,
            built: None,
            placed_switches: None,
            certify_report: None,
            read_chains_parallelized: 0,
            array_sites_parallelized: 0,
            stores_forwarded: 0,
            istructure_ops: 0,
            ops_cleaned: 0,
            chains_fused: 0,
            ops_fused: 0,
        }
    }

    /// The token lines; panics if the `lines` pass has not run.
    pub fn lines(&self) -> &Lines {
        self.lines.as_ref().expect("lines pass must run first")
    }

    /// The graph under construction; panics before a construction pass.
    pub fn built_mut(&mut self) -> &mut Built {
        self.built.as_mut().expect("construction pass must run first")
    }
}

/// One named stage of the translation pipeline.
pub trait Pass {
    /// Stable, human-readable stage name (shown by `--time-passes`).
    fn name(&self) -> &'static str;
    /// Run the stage, reading and writing the shared context.
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError>;
}

/// Instrumentation captured for one executed pass.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// The pass name.
    pub name: &'static str,
    /// Wall-clock time the pass took.
    pub wall: Duration,
    /// Analyses the pass caused to be computed (cache misses).
    pub analyses_computed: u64,
    /// Analyses the pass got from the cache (hits).
    pub cache_hits: u64,
    /// CFG nodes before the pass ran.
    pub nodes_in: usize,
    /// CFG nodes after the pass ran.
    pub nodes_out: usize,
    /// DFG operators before the pass ran (0 until construction).
    pub ops_in: usize,
    /// DFG operators after the pass ran.
    pub ops_out: usize,
}

/// Renders pass records as the aligned table `--time-passes` prints.
pub fn render_pass_table(records: &[PassRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>10} {:>8} {:>6} {:>11} {:>11}\n",
        "pass", "wall", "computed", "hits", "nodes", "ops"
    ));
    let mut total = Duration::ZERO;
    for r in records {
        total += r.wall;
        out.push_str(&format!(
            "{:<20} {:>8.1}us {:>8} {:>6} {:>4} -> {:<4} {:>4} -> {:<4}\n",
            r.name,
            r.wall.as_secs_f64() * 1e6,
            r.analyses_computed,
            r.cache_hits,
            r.nodes_in,
            r.nodes_out,
            r.ops_in,
            r.ops_out,
        ));
    }
    out.push_str(&format!(
        "{:<20} {:>8.1}us\n",
        "total",
        total.as_secs_f64() * 1e6
    ));
    out
}

/// Runs a sequence of passes in order, instrumenting each one.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// An empty manager.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// Append a pass to the schedule.
    pub fn add(&mut self, p: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(p));
        self
    }

    /// Run every scheduled pass against `ctx`, in order. Stops at the
    /// first failing pass; on success returns one record per pass.
    pub fn run(&mut self, ctx: &mut PassCtx) -> Result<Vec<PassRecord>, TranslateError> {
        let mut records = Vec::with_capacity(self.passes.len());
        for p in &mut self.passes {
            let stats_before: CacheStats = ctx.fctx.stats();
            let nodes_in = ctx.fctx.cfg().len();
            let ops_in = ctx.built.as_ref().map_or(0, |b| b.dfg.len());
            let t0 = Instant::now();
            p.run(ctx)?;
            let wall = t0.elapsed();
            let delta = ctx.fctx.stats().since(&stats_before);
            records.push(PassRecord {
                name: p.name(),
                wall,
                analyses_computed: delta.total_computed(),
                cache_hits: delta.total_hits(),
                nodes_in,
                nodes_out: ctx.fctx.cfg().len(),
                ops_in,
                ops_out: ctx.built.as_ref().map_or(0, |b| b.dfg.len()),
            });
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::FunctionContext;

    struct Nop(&'static str);
    impl Pass for Nop {
        fn name(&self) -> &'static str {
            self.0
        }
        fn run(&mut self, _ctx: &mut PassCtx) -> Result<(), TranslateError> {
            Ok(())
        }
    }

    struct Fails;
    impl Pass for Fails {
        fn name(&self) -> &'static str {
            "fails"
        }
        fn run(&mut self, _ctx: &mut PassCtx) -> Result<(), TranslateError> {
            Err(TranslateError::OptimizedNeedsLoopControl)
        }
    }

    fn tiny_ctx(opts: &TranslateOptions) -> PassCtx<'_> {
        let parsed = cf2df_lang::parse_to_cfg("x := 1;").unwrap();
        PassCtx::new(FunctionContext::new(parsed.cfg, parsed.alias), opts)
    }

    #[test]
    fn manager_records_one_entry_per_pass_in_order() {
        let opts = TranslateOptions::schema2();
        let mut ctx = tiny_ctx(&opts);
        let mut pm = PassManager::new();
        pm.add(Nop("first")).add(Nop("second"));
        let records = pm.run(&mut ctx).unwrap();
        let names: Vec<_> = records.iter().map(|r| r.name).collect();
        assert_eq!(names, ["first", "second"]);
    }

    #[test]
    fn manager_stops_at_first_error() {
        let opts = TranslateOptions::schema2();
        let mut ctx = tiny_ctx(&opts);
        let mut pm = PassManager::new();
        pm.add(Nop("ok")).add(Fails).add(Nop("never"));
        assert_eq!(
            pm.run(&mut ctx).unwrap_err(),
            TranslateError::OptimizedNeedsLoopControl
        );
    }

    #[test]
    fn table_renders_every_pass_and_a_total() {
        let records = vec![PassRecord {
            name: "lines",
            wall: Duration::from_micros(12),
            analyses_computed: 1,
            cache_hits: 0,
            nodes_in: 5,
            nodes_out: 5,
            ops_in: 0,
            ops_out: 0,
        }];
        let table = render_pass_table(&records);
        assert!(table.contains("lines"));
        assert!(table.contains("total"));
    }
}
