//! The *full* translation: every token line flows through every node, as
//! in Schemas 1–3 (Figs 3–8, 12–13). Schema 1 is the single-line
//! instance, Schema 2 the per-variable instance, Schema 3 the general
//! cover instance.
//!
//! The input CFG should already contain loop-control statements (§3);
//! passing a cyclic CFG *without* them reproduces the broken graph of
//! Fig 8 — the translator wires backedges straight into the header merges,
//! and the machine then reports the token collisions the paper predicts.

use crate::lines::{LineId, LineMode, Lines};
use crate::stmt_tr::{translate_fork, StmtCtx};
use cf2df_cfg::intervals::Irreducible;
use cf2df_cfg::{
    reach::topo_order_ignoring_backedges, Cfg, FunctionContext, LoopForest, NodeId, Stmt,
};
use cf2df_dfg::build::merge as merge_build;
use cf2df_dfg::{ArcKind, Dfg, OpId, OpKind, Port};
use std::collections::HashMap;

/// Operator bookkeeping produced alongside the graph, used by the §6
/// rewrites and by tests.
#[derive(Clone, Debug, Default)]
pub struct LineOps {
    /// Loop-entry op per (CFG loop-entry node, line).
    pub loop_entries: HashMap<(NodeId, LineId), OpId>,
    /// Loop-exit op per (CFG loop-exit node, line).
    pub loop_exits: HashMap<(NodeId, LineId), OpId>,
    /// Switch op per (fork node, line).
    pub switches: HashMap<(NodeId, LineId), OpId>,
    /// Memory ops created per CFG node, in creation order.
    pub node_ops: HashMap<NodeId, (OpId, OpId)>,
}

impl LineOps {
    /// Remap operator ids after a graph compaction; entries whose
    /// operators were removed are dropped.
    pub fn remap(&mut self, map: &[Option<OpId>]) {
        let remap_map = |m: &mut HashMap<(NodeId, LineId), OpId>| {
            let old = std::mem::take(m);
            for (k, v) in old {
                if let Some(Some(nv)) = map.get(v.index()) {
                    m.insert(k, *nv);
                }
            }
        };
        remap_map(&mut self.loop_entries);
        remap_map(&mut self.loop_exits);
        remap_map(&mut self.switches);
        let old = std::mem::take(&mut self.node_ops);
        for (k, (a, b)) in old {
            if let (Some(Some(na)), Some(Some(nb))) = (map.get(a.index()), map.get(b.index())) {
                self.node_ops.insert(k, (*na, *nb));
            }
        }
    }
}

/// A translated graph plus its bookkeeping.
#[derive(Clone, Debug)]
pub struct Built {
    /// The dataflow graph.
    pub dfg: Dfg,
    /// Operator bookkeeping.
    pub ops: LineOps,
}

fn arc_kind(lines: &Lines, l: LineId) -> ArcKind {
    match lines.mode(l) {
        LineMode::Access => ArcKind::Access,
        LineMode::Value(_) => ArcKind::Value,
    }
}

/// Translate with full token circulation. `first_op_range` of each node is
/// recorded so rewrites can locate the ops of a statement.
///
/// An irreducible CFG is a diagnosable input error, not a programming
/// error, so it surfaces as `Err` rather than a panic.
pub fn translate_full(cfg: &Cfg, lines: &Lines) -> Result<Built, Irreducible> {
    let forest = LoopForest::compute(cfg)?;
    let backedges = forest.backedge_indices(cfg);
    let order = topo_order_ignoring_backedges(cfg, &backedges);
    let preds = cfg.preds();
    Ok(translate_full_with(cfg, &forest, &order, &preds, lines))
}

/// [`translate_full`] drawing every supporting analysis from a
/// [`FunctionContext`]'s cache.
pub fn translate_full_cached(
    fctx: &mut FunctionContext,
    lines: &Lines,
) -> Result<Built, Irreducible> {
    let forest = fctx.loop_forest()?;
    let order = fctx.topo_order()?;
    let preds = fctx.preds();
    Ok(translate_full_with(fctx.cfg(), &forest, &order, &preds, lines))
}

/// The translation core, parameterized over precomputed analyses.
fn translate_full_with(
    cfg: &Cfg,
    forest: &LoopForest,
    order: &[NodeId],
    preds: &[Vec<(NodeId, usize)>],
    lines: &Lines,
) -> Built {
    let n_lines = lines.n();

    let mut g = Dfg::new();
    let start_op = g.add(OpKind::Start);
    // End collects one token per line (plus one control token when there
    // are no lines at all).
    let end_op = g.add(OpKind::End {
        inputs: n_lines.max(1) as u32,
    });

    let mut ops = LineOps::default();
    // Pre-create per-line input operators for nodes that receive backedges
    // or multiple predecessors: loop entries and (multi-pred) joins/end.
    let is_backedge_into: Vec<bool> = {
        let mut v = vec![false; cfg.len()];
        for (lid, info) in forest.iter() {
            let _ = lid;
            for &(src, idx) in &info.backedges {
                let tgt = cfg.succs(src)[idx];
                v[tgt.index()] = true;
            }
        }
        v
    };
    // Per (node, line): the input port predecessors should feed.
    let mut node_in: HashMap<(NodeId, LineId), Port> = HashMap::new();
    for n in cfg.node_ids() {
        match cfg.stmt(n) {
            Stmt::LoopEntry { loop_id } => {
                for l in lines.ids() {
                    let le = g.add_labeled(
                        OpKind::LoopEntry { loop_id: *loop_id },
                        format!("{} @{n:?}", lines.name(l)),
                    );
                    ops.loop_entries.insert((n, l), le);
                    node_in.insert((n, l), Port::new(le, 0));
                }
            }
            Stmt::Join if preds[n.index()].len() > 1 || is_backedge_into[n.index()] => {
                for l in lines.ids() {
                    let m = g.add_labeled(OpKind::Merge, format!("{} @{n:?}", lines.name(l)));
                    node_in.insert((n, l), Port::new(m, 0));
                }
            }
            _ => {}
        }
    }

    // Source port of each (edge, line) as nodes are processed.
    let mut edge_src: HashMap<(NodeId, usize, LineId), Port> = HashMap::new();

    for &n in order {
        // Gather inputs for this node.
        let mut cur: Vec<Option<Port>> = vec![None; n_lines];
        if n != cfg.start() && !matches!(cfg.stmt(n), Stmt::End) {
            for l in lines.ids() {
                if let Some(&inp) = node_in.get(&(n, l)) {
                    // Pre-created merge-like input: connect all forward preds.
                    for &(p, i) in &preds[n.index()] {
                        if let Some(&src) = edge_src.get(&(p, i, l)) {
                            g.connect(src, inp, arc_kind(lines, l));
                        }
                    }
                    cur[l.index()] = Some(Port::new(inp.op, 0));
                } else {
                    // Plain single-predecessor input.
                    let mut srcs = preds[n.index()]
                        .iter()
                        .filter_map(|&(p, i)| edge_src.get(&(p, i, l)).copied());
                    cur[l.index()] = srcs.next();
                    debug_assert!(
                        srcs.next().is_none(),
                        "multi-pred node {n:?} without a pre-created merge"
                    );
                }
            }
        }

        match cfg.stmt(n) {
            Stmt::Start => {
                // All lines originate at the Start operator; the
                // conventional start→end edge carries nothing.
                for l in lines.ids() {
                    edge_src.insert((n, 0, l), Port::new(start_op, 0));
                }
            }
            Stmt::End => {
                for (i, l) in lines.ids().enumerate() {
                    // end may have several CFG predecessors (`goto end`):
                    // merge each line's sources.
                    let srcs: Vec<Port> = preds[n.index()]
                        .iter()
                        .filter_map(|&(p, pi)| edge_src.get(&(p, pi, l)).copied())
                        .collect();
                    let mut src = merge_build(&mut g, &srcs, arc_kind(lines, l))
                        .expect("line reaches end");
                    if let LineMode::Value(v) = lines.mode(l) {
                        // Write the final value back so the memory snapshot
                        // matches the sequential semantics.
                        let st = g.add_labeled(
                            OpKind::Store { var: v },
                            format!("writeback {}", lines.name(l)),
                        );
                        g.connect(src, Port::new(st, 0), ArcKind::Value);
                        g.connect(src, Port::new(st, 1), ArcKind::Value);
                        src = Port::new(st, 0);
                    }
                    g.connect(src, Port::new(end_op, i), ArcKind::Access);
                }
                if n_lines == 0 {
                    // Degenerate program with no variables: a single
                    // control token start→end.
                    g.connect(Port::new(start_op, 0), Port::new(end_op, 0), ArcKind::Access);
                }
            }
            Stmt::Join => {
                for l in lines.ids() {
                    edge_src.insert((n, 0, l), cur[l.index()].expect("join input"));
                }
            }
            Stmt::Assign { lhs, rhs } => {
                {
                    let mut ctx = StmtCtx::new(&mut g, lines, &mut cur);
                    ctx.assign(lhs, rhs);
                }
                for l in lines.ids() {
                    edge_src.insert((n, 0, l), cur[l.index()].expect("assign output"));
                }
            }
            Stmt::Branch { pred: sel } | Stmt::Case { selector: sel } => {
                let all: Vec<LineId> = lines.ids().collect();
                let n_dirs = cfg.succs(n).len();
                let outs = translate_fork(&mut g, lines, &mut cur, sel, n_dirs, &all);
                for (l, ports) in outs {
                    ops.switches.insert((n, l), ports[0].op);
                    for (i, &p) in ports.iter().enumerate() {
                        edge_src.insert((n, i, l), p);
                    }
                }
            }
            Stmt::LoopEntry { .. } => {
                for l in lines.ids() {
                    let le = ops.loop_entries[&(n, l)];
                    edge_src.insert((n, 0, l), Port::new(le, 0));
                }
            }
            Stmt::LoopExit { loop_id } => {
                for l in lines.ids() {
                    let lx = g.add_labeled(
                        OpKind::LoopExit { loop_id: *loop_id },
                        format!("{} @{n:?}", lines.name(l)),
                    );
                    ops.loop_exits.insert((n, l), lx);
                    let src = cur[l.index()].expect("loop exit input");
                    g.connect(src, Port::new(lx, 0), arc_kind(lines, l));
                    edge_src.insert((n, 0, l), Port::new(lx, 0));
                }
            }
        }
    }

    // Wire backedges: their targets are loop entries (port 1), or — when
    // translating a cyclic CFG without loop control, the paper's negative
    // example — plain header merges (port 0).
    for (_, info) in forest.iter() {
        for &(src_node, idx) in &info.backedges {
            let tgt = cfg.succs(src_node)[idx];
            for l in lines.ids() {
                let src = edge_src[&(src_node, idx, l)];
                match cfg.stmt(tgt) {
                    Stmt::LoopEntry { .. } => {
                        let le = ops.loop_entries[&(tgt, l)];
                        g.connect(src, Port::new(le, 1), arc_kind(lines, l));
                    }
                    _ => {
                        let inp = node_in[&(tgt, l)];
                        g.connect(src, inp, arc_kind(lines, l));
                    }
                }
            }
        }
    }

    Built { dfg: g, ops }
}

/// Convenience used by tests: collapse single-input merges away is *not*
/// done in full mode (the paper's Schema 2 keeps its merges); this counts
/// them for the §4 comparison.
pub fn single_source_merges(g: &Dfg) -> usize {
    let ins = g.in_arcs();
    g.op_ids()
        .filter(|&o| matches!(g.kind(o), OpKind::Merge) && ins[o.index()][0].len() == 1)
        .count()
}

/// Build a full-mode merge over explicit ports (re-exported for rewrites).
pub fn merge_ports(g: &mut Dfg, srcs: &[Port], kind: ArcKind) -> Option<Port> {
    merge_build(g, srcs, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{AliasStructure, Cover, CoverStrategy};
    use cf2df_lang::parse_to_cfg;

    fn lines_for(cfg: &Cfg, alias: &AliasStructure, strat: CoverStrategy) -> Lines {
        let cover = Cover::build(&strat, alias);
        Lines::new(&cfg.vars, alias, &cover, false)
    }

    #[test]
    fn straight_line_schema2_validates() {
        let parsed = parse_to_cfg("x := 1; y := x + 2;").unwrap();
        let lines = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::Singletons);
        let built = translate_full(&parsed.cfg, &lines).unwrap();
        cf2df_dfg::validate(&built.dfg)
            .unwrap_or_else(|e| panic!("{e:?}\n{}", built.dfg.pretty()));
    }

    #[test]
    fn running_example_needs_loop_control() {
        // Without loop control: translating the raw cyclic CFG must still
        // produce a structurally valid graph (semantically broken — the
        // machine detects that separately).
        let parsed = parse_to_cfg(cf2df_lang::corpus::RUNNING_EXAMPLE).unwrap();
        let lines = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::Singletons);
        let built = translate_full(&parsed.cfg, &lines).unwrap();
        cf2df_dfg::validate(&built.dfg)
            .unwrap_or_else(|e| panic!("{e:?}\n{}", built.dfg.pretty()));
        // With loop control: loop entry/exit operators appear per line.
        let lc = cf2df_cfg::loop_control::insert_loop_control(&parsed.cfg).unwrap();
        let built2 = translate_full(&lc.cfg, &lines).unwrap();
        cf2df_dfg::validate(&built2.dfg).unwrap();
        let stats = cf2df_dfg::DfgStats::of(&built2.dfg);
        // 2 lines × (1 entry + 1 exit) = 4 loop-control ops.
        assert_eq!(stats.loop_control, 4);
    }

    #[test]
    fn schema2_switches_every_line_at_every_fork() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::FIG9).unwrap();
        let lines = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::Singletons);
        let built = translate_full(&parsed.cfg, &lines).unwrap();
        let stats = cf2df_dfg::DfgStats::of(&built.dfg);
        // Fig 9 has 4 variables (x, w, y, z) and one fork: 4 switches.
        assert_eq!(stats.switches, 4);
        cf2df_dfg::validate(&built.dfg).unwrap();
    }

    #[test]
    fn schema1_uses_single_line() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::FIG9).unwrap();
        let lines = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::SingleToken);
        let built = translate_full(&parsed.cfg, &lines).unwrap();
        let stats = cf2df_dfg::DfgStats::of(&built.dfg);
        assert_eq!(stats.switches, 1, "one token, one switch per fork");
        cf2df_dfg::validate(&built.dfg).unwrap();
    }

    #[test]
    fn graph_size_scales_with_lines() {
        // O(E·V): more variables (lines) → proportionally more arcs.
        let src2 = "a := 1; if a < 2 then { b := a; } else { b := 2; } c := b;";
        let parsed = parse_to_cfg(src2).unwrap();
        let l1 = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::SingleToken);
        let lv = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::Singletons);
        let g1 = translate_full(&parsed.cfg, &l1).unwrap();
        let gv = translate_full(&parsed.cfg, &lv).unwrap();
        assert!(gv.dfg.arc_count() > g1.dfg.arc_count());
    }

    #[test]
    fn schema1_read_block_threads_loads_sequentially() {
        // Fig 4: under Schema 1 the single access token "visits every
        // memory operation within a statement in sequence" — each load's
        // access output feeds the next memory operation's access input.
        let parsed = parse_to_cfg("s := a + b + c;").unwrap();
        let lines = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::SingleToken);
        let built = translate_full(&parsed.cfg, &lines).unwrap();
        let g = &built.dfg;
        // Collect the loads; each non-final load's access-out (port 1) must
        // feed exactly one memory op's access port.
        let loads: Vec<_> = g
            .op_ids()
            .filter(|&o| matches!(g.kind(o), cf2df_dfg::OpKind::Load { .. }))
            .collect();
        assert_eq!(loads.len(), 3);
        let outs = g.out_arcs();
        let mut chained = 0;
        for &ld in &loads {
            let dests = &outs[ld.index()][1];
            assert_eq!(dests.len(), 1, "access token goes one place");
            let to = g.arcs()[dests[0]].to;
            if g.kind(to.op).is_memory() {
                chained += 1;
            }
        }
        // Two of the three loads chain into another memory op (the third
        // chains into the store's access input, which is also memory —
        // so all three, with the store's completion heading to end).
        assert_eq!(chained, 3, "loads and store form one sequential chain");
    }

    #[test]
    fn schema2_loads_of_different_vars_are_parallel() {
        // Contrast with Fig 7: per-variable tokens let the three loads
        // start independently from their own lines.
        let parsed = parse_to_cfg("s := a + b + c;").unwrap();
        let lines = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::Singletons);
        let built = translate_full(&parsed.cfg, &lines).unwrap();
        let g = &built.dfg;
        let ins = g.in_arcs();
        let start = g.start().unwrap();
        let mut fed_by_start = 0;
        for o in g.op_ids() {
            if matches!(g.kind(o), cf2df_dfg::OpKind::Load { .. })
                && ins[o.index()][0]
                    .iter()
                    .any(|&ai| g.arcs()[ai].from.op == start)
            {
                fed_by_start += 1;
            }
        }
        assert_eq!(fed_by_start, 3, "each load starts from its own line");
    }

    #[test]
    fn empty_program_translates() {
        let parsed = parse_to_cfg("").unwrap();
        let lines = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::Singletons);
        let built = translate_full(&parsed.cfg, &lines).unwrap();
        cf2df_dfg::validate(&built.dfg).unwrap();
        assert_eq!(built.dfg.len(), 2); // start + end
    }

    #[test]
    fn fortran_alias_collects_tokens() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::FORTRAN_ALIAS).unwrap();
        let lines = lines_for(&parsed.cfg, &parsed.alias, CoverStrategy::Singletons);
        let built = translate_full(&parsed.cfg, &lines).unwrap();
        cf2df_dfg::validate(&built.dfg).unwrap();
        let stats = cf2df_dfg::DfgStats::of(&built.dfg);
        assert!(stats.synchs > 0, "aliased ops must gather tokens");
    }
}
