//! Switch placement (§4.1, Fig 10).
//!
//! A fork `F` needs a switch for a token line `ℓ` iff some node referencing
//! `ℓ` lies *between* `F` and its immediate postdominator — equivalently
//! (Theorem 1) iff `F ∈ CD⁺(N)` for some `N` referencing `ℓ`. The worklist
//! algorithm of Fig 10 computes this from the control-dependence relation.
//!
//! Loops add a twist the paper leaves to the loop-control black boxes: a
//! line must *circulate* through a loop's entry/exit operators iff it is
//! referenced in the loop body **or** needs a switch at a fork inside the
//! body (its token must carry the loop's iteration tags to rendezvous with
//! the predicate there). Circulating lines make the loop-entry/exit
//! statements count as references, which can create new switch needs — a
//! monotone fixpoint, computed here.

use crate::lines::{LineId, Lines};
use cf2df_cfg::loop_control::{LoopControlMeta, LoopControlled};
use cf2df_cfg::{between, Cfg, ControlDeps, DomTree, FunctionContext, NodeId, Stmt};

/// The per-line switch-placement and circulation solution.
#[derive(Clone, Debug)]
pub struct SwitchPlacement {
    /// `needs[l][f]` — fork `f` needs a switch for line `l`.
    needs: Vec<Vec<bool>>,
    /// `circ[loop][l]` — line `l` circulates through the loop's
    /// entry/exit operators.
    circ: Vec<Vec<bool>>,
    /// `refs[node]` — lines referenced by the node, including the derived
    /// references of loop-entry/exit statements at the fixpoint.
    refs: Vec<Vec<LineId>>,
}

impl SwitchPlacement {
    /// Does fork `f` need a switch for line `l`?
    pub fn needs_switch(&self, f: NodeId, l: LineId) -> bool {
        self.needs[l.index()][f.index()]
    }

    /// Lines needing a switch at fork `f`, in id order.
    pub fn switch_lines(&self, f: NodeId, lines: &Lines) -> Vec<LineId> {
        lines
            .ids()
            .filter(|l| self.needs_switch(f, *l))
            .collect()
    }

    /// Does line `l` circulate through loop `loop_idx`?
    pub fn circulates(&self, loop_idx: usize, l: LineId) -> bool {
        self.circ[loop_idx][l.index()]
    }

    /// Lines circulating through loop `loop_idx`, in id order.
    pub fn circulating_lines(&self, loop_idx: usize, lines: &Lines) -> Vec<LineId> {
        lines
            .ids()
            .filter(|l| self.circulates(loop_idx, *l))
            .collect()
    }

    /// Lines referenced by a node under the fixpoint (loop-control nodes
    /// reference their circulating lines).
    pub fn refs(&self, n: NodeId) -> &[LineId] {
        &self.refs[n.index()]
    }

    /// Total switches the optimized construction will create.
    pub fn total_switches(&self) -> usize {
        self.needs
            .iter()
            .map(|per_line| per_line.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Compute switch placement and circulation for a loop-controlled CFG.
    pub fn compute(lc: &LoopControlled, lines: &Lines) -> SwitchPlacement {
        let pd = DomTree::postdominators(&lc.cfg);
        let cd = ControlDeps::compute(&lc.cfg, &pd);
        Self::compute_with(&lc.cfg, &cd, &lc.meta, lines)
    }

    /// [`Self::compute`] drawing control dependence (and its
    /// postdominator input) from a [`FunctionContext`]'s cache.
    pub fn compute_cached(
        fctx: &mut FunctionContext,
        meta: &LoopControlMeta,
        lines: &Lines,
    ) -> SwitchPlacement {
        let cd = fctx.control_deps();
        Self::compute_with(fctx.cfg(), &cd, meta, lines)
    }

    /// The Fig 10 fixpoint, parameterized over precomputed analyses.
    fn compute_with(
        cfg: &Cfg,
        cd: &ControlDeps,
        meta: &LoopControlMeta,
        lines: &Lines,
    ) -> SwitchPlacement {
        let n_loops = meta.forest.len();
        let n_lines = lines.n();

        // Base references: statements' access-set lines.
        let base_refs: Vec<Vec<LineId>> = cfg
            .node_ids()
            .map(|n| lines.referenced_lines(cfg.stmt(n)))
            .collect();

        // circ starts as "referenced in the original loop body".
        let mut circ = vec![vec![false; n_lines]; n_loops];
        for (lid, info) in meta.forest.iter() {
            for &b in &info.body {
                for &l in &base_refs[b.index()] {
                    circ[lid.index()][l.index()] = true;
                }
            }
        }

        let mut needs = vec![vec![false; cfg.len()]; n_lines];
        loop {
            // Effective reference sets under current circulation.
            let refs: Vec<Vec<LineId>> = cfg
                .node_ids()
                .map(|n| match cfg.stmt(n) {
                    Stmt::LoopEntry { loop_id } | Stmt::LoopExit { loop_id } => lines
                        .ids()
                        .filter(|l| circ[loop_id.index()][l.index()])
                        .collect(),
                    // Owned copy: the table mixes these static entries
                    // with per-iteration computed ones above.
                    _ => base_refs[n.index()].clone(),
                })
                .collect();

            // Fig 10: per line, iterate control dependence from the
            // referencing nodes.
            for l in lines.ids() {
                let seeds: Vec<NodeId> = cfg
                    .node_ids()
                    .filter(|n| refs[n.index()].contains(&l))
                    .collect();
                let marked = cd.iterated(&seeds);
                for n in cfg.node_ids() {
                    // `start` is a fork only by the start→end convention;
                    // its "switch" has a constant predicate, so tokens are
                    // emitted directly instead (Fig 11's start case).
                    if marked[n.index()] && cfg.stmt(n).is_fork() && n != cfg.start() {
                        needs[l.index()][n.index()] = true;
                    }
                }
            }

            // Grow circulation: switched-at-a-fork-inside-the-body, then
            // upward closure (a line circulating in an inner loop must
            // circulate in every enclosing loop).
            let mut changed = false;
            for (lid, info) in meta.forest.iter() {
                for &b in &info.body {
                    if !cfg.stmt(b).is_fork() || b == cfg.start() {
                        continue;
                    }
                    for l in lines.ids() {
                        if needs[l.index()][b.index()] && !circ[lid.index()][l.index()] {
                            circ[lid.index()][l.index()] = true;
                            changed = true;
                        }
                    }
                }
            }
            for (lid, info) in meta.forest.iter() {
                if let Some(parent) = info.parent {
                    // Snapshot the inner loop's row: the parent's row in
                    // the same table is mutated below.
                    let inner = circ[lid.index()].clone();
                    for (li, inner_has) in inner.iter().enumerate() {
                        if *inner_has && !circ[parent.index()][li] {
                            circ[parent.index()][li] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                // Recompute final refs for the solution.
                let final_refs: Vec<Vec<LineId>> = cfg
                    .node_ids()
                    .map(|n| match cfg.stmt(n) {
                        Stmt::LoopEntry { loop_id } | Stmt::LoopExit { loop_id } => lines
                            .ids()
                            .filter(|l| circ[loop_id.index()][l.index()])
                            .collect(),
                        _ => base_refs[n.index()].clone(),
                    })
                    .collect();
                return SwitchPlacement {
                    needs,
                    circ,
                    refs: final_refs,
                };
            }
            // Reset `needs` for the next round (monotone, but recompute
            // cleanly for clarity).
            for per_line in &mut needs {
                per_line.iter_mut().for_each(|b| *b = false);
            }
        }
    }
}

/// Brute-force oracle for Definition 3 via Definition 1: fork `f` needs a
/// switch for line `l` iff some node referencing `l` (under the given
/// reference sets) is between `f` and `ipostdom(f)`. Used in tests to
/// validate the worklist algorithm (Theorem 1).
pub fn needs_switch_bruteforce(
    cfg: &Cfg,
    refs: &dyn Fn(NodeId) -> Vec<LineId>,
    f: NodeId,
    l: LineId,
) -> bool {
    let pd = DomTree::postdominators(cfg);
    cfg.node_ids()
        .any(|n| refs(n).contains(&l) && between(cfg, &pd, f, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::loop_control::insert_loop_control;
    use cf2df_cfg::{Cover, CoverStrategy};
    use cf2df_lang::parse_to_cfg;

    fn setup(src: &str) -> (LoopControlled, Lines) {
        let parsed = parse_to_cfg(src).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
        (lc, lines)
    }

    #[test]
    fn fig9_x_bypasses_the_conditional() {
        let (lc, lines) = setup(cf2df_lang::corpus::FIG9);
        let sp = SwitchPlacement::compute(&lc, &lines);
        let cfg = &lc.cfg;
        let fork = cfg
            .node_ids()
            .find(|&n| matches!(cfg.stmt(n), Stmt::Branch { .. }))
            .unwrap();
        let var = |name: &str| {
            let v = cfg.vars.lookup(name).unwrap();
            lines.access_lines(v)[0]
        };
        // x is not referenced inside the conditional: no switch for it.
        assert!(!sp.needs_switch(fork, var("x")));
        // y and z are assigned inside the arms: switches needed.
        assert!(sp.needs_switch(fork, var("y")));
        assert!(sp.needs_switch(fork, var("z")));
        // w is only read by the predicate *at* the fork, not between the
        // fork and its postdominator: no switch for w either.
        assert!(!sp.needs_switch(fork, var("w")));
        assert_eq!(sp.total_switches(), 2);
    }

    #[test]
    fn loop_lines_circulate() {
        let (lc, lines) = setup(cf2df_lang::corpus::RUNNING_EXAMPLE);
        let sp = SwitchPlacement::compute(&lc, &lines);
        // Both x and y are referenced in the body: both circulate, and the
        // loop branch needs switches for both.
        let cfg = &lc.cfg;
        let br = cfg
            .node_ids()
            .find(|&n| matches!(cfg.stmt(n), Stmt::Branch { .. }))
            .unwrap();
        for l in lines.ids() {
            assert!(sp.circulates(0, l));
            assert!(sp.needs_switch(br, l));
        }
        // Loop-entry node references both lines at the fixpoint.
        let le = lc.entry_node[0];
        assert_eq!(sp.refs(le).len(), 2);
    }

    #[test]
    fn variable_unused_in_loop_does_not_circulate() {
        let src = "
            u := 1;
            x := 0;
            while x < 4 do { x := x + 1; }
            u := u + x;
        ";
        let (lc, lines) = setup(src);
        let sp = SwitchPlacement::compute(&lc, &lines);
        let cfg = &lc.cfg;
        let u_line = lines.access_lines(cfg.vars.lookup("u").unwrap())[0];
        let x_line = lines.access_lines(cfg.vars.lookup("x").unwrap())[0];
        assert!(!sp.circulates(0, u_line), "u bypasses the loop");
        assert!(sp.circulates(0, x_line));
        let br = cfg
            .node_ids()
            .find(|&n| matches!(cfg.stmt(n), Stmt::Branch { .. }))
            .unwrap();
        assert!(!sp.needs_switch(br, u_line));
        assert!(sp.needs_switch(br, x_line));
    }

    #[test]
    fn worklist_matches_bruteforce_on_corpus() {
        for (name, src) in cf2df_lang::corpus::all() {
            let (lc, lines) = setup(src);
            let sp = SwitchPlacement::compute(&lc, &lines);
            let cfg = &lc.cfg;
            // Oracle uses the *fixpoint* reference sets (so circulation is
            // taken as given) — this checks the CD⁺ computation itself.
            let refs = |n: NodeId| sp.refs(n).to_vec();
            for f in cfg.node_ids() {
                // Skip `start`: the algorithm exempts it by convention.
                if !cfg.stmt(f).is_fork() || f == cfg.start() {
                    continue;
                }
                for l in lines.ids() {
                    assert_eq!(
                        sp.needs_switch(f, l),
                        needs_switch_bruteforce(&cfg, &refs, f, l),
                        "{name}: fork {f:?}, line {l:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn nested_loop_circulation_is_upward_closed() {
        let src = "
            s := 0;
            for i := 1 to 3 do {
                for j := 1 to 3 do {
                    s := s + j;
                }
            }
        ";
        let (lc, lines) = setup(src);
        let sp = SwitchPlacement::compute(&lc, &lines);
        // j and s circulate in the inner loop; therefore also in the outer.
        let cfg = &lc.cfg;
        let j_line = lines.access_lines(cfg.vars.lookup("j").unwrap())[0];
        let s_line = lines.access_lines(cfg.vars.lookup("s").unwrap())[0];
        // Inner loops sort first.
        assert!(sp.circulates(0, j_line));
        assert!(sp.circulates(0, s_line));
        assert!(sp.circulates(1, j_line), "upward closure");
        assert!(sp.circulates(1, s_line));
    }

    #[test]
    fn aliasing_extends_switch_needs() {
        // p ~ q: an assignment to p inside the conditional forces switches
        // for both p's and q's lines.
        let src = "
            alias p ~ q;
            p := 1; q := 2; c := 0;
            if c == 0 then { p := 3; } else { skip; }
            r := q;
        ";
        let parsed = parse_to_cfg(src).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
        let sp = SwitchPlacement::compute(&lc, &lines);
        let cfg = &lc.cfg;
        let fork = cfg
            .node_ids()
            .find(|&n| matches!(cfg.stmt(n), Stmt::Branch { .. }))
            .unwrap();
        let p_line = lines.access_lines(cfg.vars.lookup("p").unwrap())[0];
        let q_line = lines.access_lines(cfg.vars.lookup("q").unwrap())[0];
        assert!(sp.needs_switch(fork, p_line));
        assert!(
            sp.needs_switch(fork, q_line),
            "store to p collects q's token inside the arm"
        );
    }
}
