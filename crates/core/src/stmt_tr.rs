//! Statement translation: the read/write blocks of Figs 3–4 (Schema 1),
//! 6–7 (Schema 2) and 12–13 (Schema 3), shared by the full and optimized
//! constructions.
//!
//! A memory operation on variable `x`:
//!
//! 1. collects the access tokens of every line in `C[x]` (a synch tree when
//!    there is more than one — Fig 13);
//! 2. fires split-phase;
//! 3. regenerates all collected tokens from its completion output.
//!
//! Expression subgraphs are pure dataflow over the loaded values; constants
//! fold into immediate operands. Within one statement each scalar variable
//! is loaded at most once (the paper's read block), and its value fans out
//! to all uses.

use crate::lines::{LineId, LineMode, Lines};
use cf2df_cfg::{Expr, LValue, Stmt, VarId};
use cf2df_dfg::build::{synch_flat, synch_tree};
use cf2df_dfg::{ArcKind, Dfg, OpKind, Port};
use std::collections::HashMap;

/// A compiled operand: either a constant (becomes an immediate slot) or a
/// port carrying the value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Operand {
    /// Compile-time constant.
    Imm(i64),
    /// Value produced at a port.
    P(Port),
}

/// Per-statement translation context. `cur[l]` holds the current source
/// port of line `l`'s token; lines not participating are `None`.
pub struct StmtCtx<'a> {
    /// The graph under construction.
    pub g: &'a mut Dfg,
    /// Line structure.
    pub lines: &'a Lines,
    /// Current token source per line.
    pub cur: &'a mut Vec<Option<Port>>,
    loaded: HashMap<VarId, Operand>,
}

impl<'a> StmtCtx<'a> {
    /// Create a context over the given line state.
    pub fn new(g: &'a mut Dfg, lines: &'a Lines, cur: &'a mut Vec<Option<Port>>) -> Self {
        StmtCtx {
            g,
            lines,
            cur,
            loaded: HashMap::new(),
        }
    }

    fn take_line(&mut self, l: LineId) -> Port {
        self.cur[l.index()]
            .take()
            .unwrap_or_else(|| panic!("line {l:?} has no current token at this statement"))
    }

    /// Thread a memory operation on `v` through its access set: collect the
    /// tokens, feed the op's access input, and regenerate every token from
    /// the op's access output.
    fn thread_mem(&mut self, v: VarId, op: cf2df_dfg::OpId, in_port: usize, out_port: usize) {
        let ls: Vec<LineId> = self.lines.access_lines(v).to_vec();
        debug_assert!(!ls.is_empty(), "every variable has an access set");
        let ins: Vec<Port> = ls.iter().map(|&l| self.take_line(l)).collect();
        let gathered = if self.lines.flat_synch() {
            synch_flat(self.g, &ins, ArcKind::Access)
        } else {
            synch_tree(self.g, &ins, ArcKind::Access)
        }
        .expect("non-empty access set");
        self.g
            .connect(gathered, Port::new(op, in_port), ArcKind::Access);
        for &l in &ls {
            self.cur[l.index()] = Some(Port::new(op, out_port));
        }
    }

    /// Read a scalar variable, returning its value operand. Cached per
    /// statement.
    pub fn read_scalar(&mut self, v: VarId) -> Operand {
        if let Some(&op) = self.loaded.get(&v) {
            return op;
        }
        let ls = self.lines.access_lines(v);
        let operand = if let [l] = ls[..] {
            if let LineMode::Value(lv) = self.lines.mode(l) {
                debug_assert_eq!(lv, v);
                // Value mode: tap the token (it is not consumed).
                let p = self.cur[l.index()]
                    .unwrap_or_else(|| panic!("value line {l:?} missing at read"));
                let op = Operand::P(p);
                self.loaded.insert(v, op);
                return op;
            }
            let ld = self.g.add(OpKind::Load { var: v });
            self.thread_mem(v, ld, 0, 1);
            Operand::P(Port::new(ld, 0))
        } else {
            let ld = self.g.add(OpKind::Load { var: v });
            self.thread_mem(v, ld, 0, 1);
            Operand::P(Port::new(ld, 0))
        };
        self.loaded.insert(v, operand);
        operand
    }

    /// Read an array element `v[idx]`.
    pub fn read_element(&mut self, v: VarId, idx: Operand) -> Operand {
        let ld = self.g.add(OpKind::LoadIdx { var: v });
        self.feed(ld, 0, idx, ArcKind::Value);
        self.thread_mem(v, ld, 1, 1);
        Operand::P(Port::new(ld, 0))
    }

    /// Write a scalar variable.
    pub fn write_scalar(&mut self, v: VarId, value: Operand) {
        let ls = self.lines.access_lines(v);
        if let [l] = ls[..] {
            if let LineMode::Value(_) = self.lines.mode(l) {
                // §6.1: replace the value token. The old token triggers the
                // gate so exactly one new token is produced per execution.
                let old = self.take_line(l);
                let gate = self.g.add(OpKind::Gate);
                self.feed(gate, 0, value, ArcKind::Value);
                self.g.connect(old, Port::new(gate, 1), ArcKind::Value);
                self.cur[l.index()] = Some(Port::new(gate, 0));
                return;
            }
        }
        let st = self.g.add(OpKind::Store { var: v });
        self.feed(st, 0, value, ArcKind::Value);
        self.thread_mem(v, st, 1, 0);
    }

    /// Write an array element `v[idx] := value`.
    pub fn write_element(&mut self, v: VarId, idx: Operand, value: Operand) {
        let st = self.g.add(OpKind::StoreIdx { var: v });
        self.feed(st, 0, idx, ArcKind::Value);
        self.feed(st, 1, value, ArcKind::Value);
        self.thread_mem(v, st, 2, 0);
    }

    /// Feed an operand into an input port: immediates become literal slots,
    /// ports become arcs.
    pub fn feed(&mut self, op: cf2df_dfg::OpId, port: usize, operand: Operand, kind: ArcKind) {
        match operand {
            Operand::Imm(c) => self.g.set_imm(op, port, c),
            Operand::P(p) => self.g.connect(p, Port::new(op, port), kind),
        }
    }

    /// Compile a pure expression into the graph, with constant folding.
    pub fn compile(&mut self, e: &Expr) -> Operand {
        match e {
            Expr::Const(c) => Operand::Imm(*c),
            Expr::Var(v) => self.read_scalar(*v),
            Expr::Index(v, idx) => {
                let i = self.compile(idx);
                self.read_element(*v, i)
            }
            Expr::Unary(op, inner) => {
                let v = self.compile(inner);
                match v {
                    Operand::Imm(c) => Operand::Imm(op.eval(c)),
                    Operand::P(p) => {
                        let o = self.g.add(OpKind::Unary { op: *op });
                        self.g.connect(p, Port::new(o, 0), ArcKind::Value);
                        Operand::P(Port::new(o, 0))
                    }
                }
            }
            Expr::Binary(op, l, r) => {
                let lv = self.compile(l);
                let rv = self.compile(r);
                match (lv, rv) {
                    (Operand::Imm(a), Operand::Imm(b)) => Operand::Imm(op.eval(a, b)),
                    _ => {
                        let o = self.g.add(OpKind::Binary { op: *op });
                        self.feed(o, 0, lv, ArcKind::Value);
                        self.feed(o, 1, rv, ArcKind::Value);
                        Operand::P(Port::new(o, 0))
                    }
                }
            }
        }
    }

    /// Translate an assignment statement (reads then write, per Fig 7's
    /// read block followed by the store).
    pub fn assign(&mut self, lhs: &LValue, rhs: &Expr) {
        let value = self.compile(rhs);
        match lhs {
            LValue::Var(v) => self.write_scalar(*v, value),
            LValue::Index(v, idx) => {
                let i = self.compile(idx);
                self.write_element(*v, i, value);
            }
        }
    }
}

/// Translate a fork's selector and create one switch per given line.
/// `n_dirs == 2` produces the paper's binary `switch`; larger arities
/// produce the multi-way `case` switch of footnote 3. Returns, per
/// switched line, its output ports in out-direction order. The selector
/// value fans out to every switch.
pub fn translate_fork(
    g: &mut Dfg,
    lines: &Lines,
    cur: &mut Vec<Option<Port>>,
    selector: &Expr,
    n_dirs: usize,
    switch_lines: &[LineId],
) -> Vec<(LineId, Vec<Port>)> {
    debug_assert!(n_dirs >= 2, "forks have at least two out-directions");
    let p = {
        let mut ctx = StmtCtx::new(g, lines, cur);
        ctx.compile(selector)
    };
    let mut out = Vec::with_capacity(switch_lines.len());
    for &l in switch_lines {
        let data = cur[l.index()]
            .take()
            .unwrap_or_else(|| panic!("line {l:?} missing at switch"));
        let sw = if n_dirs == 2 {
            g.add(OpKind::Switch)
        } else {
            g.add(OpKind::CaseSwitch {
                arms: n_dirs as u32,
            })
        };
        let kind = if lines.is_value(l) {
            ArcKind::Value
        } else {
            ArcKind::Access
        };
        g.connect(data, Port::new(sw, 0), kind);
        match p {
            Operand::Imm(c) => g.set_imm(sw, 1, c),
            Operand::P(pp) => g.connect(pp, Port::new(sw, 1), ArcKind::Value),
        }
        out.push((l, (0..n_dirs).map(|i| Port::new(sw, i)).collect()));
    }
    out
}

/// Binary-fork convenience wrapper over [`translate_fork`].
pub fn translate_branch(
    g: &mut Dfg,
    lines: &Lines,
    cur: &mut Vec<Option<Port>>,
    pred: &Expr,
    switch_lines: &[LineId],
) -> Vec<(LineId, Port, Port)> {
    translate_fork(g, lines, cur, pred, 2, switch_lines)
        .into_iter()
        .map(|(l, ports)| (l, ports[0], ports[1]))
        .collect()
}

/// The lines whose tokens a statement actually manipulates (as opposed to
/// passing through): the union of its variables' access sets.
pub fn touched_lines(lines: &Lines, stmt: &Stmt) -> Vec<LineId> {
    lines.referenced_lines(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{AliasStructure, BinOp, Cover, CoverStrategy, VarTable};

    fn setup(n_scalars: usize) -> (VarTable, Lines) {
        let mut t = VarTable::new();
        for i in 0..n_scalars {
            t.scalar(&format!("v{i}"));
        }
        let a = AliasStructure::for_table(&t);
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        let lines = Lines::new(&t, &a, &cover, false);
        (t, lines)
    }

    fn seeded(g: &mut Dfg, n: usize) -> Vec<Option<Port>> {
        let s = g.add(OpKind::Start);
        (0..n).map(|_| Some(Port::new(s, 0))).collect()
    }

    #[test]
    fn constant_folding_no_ops() {
        let (_, lines) = setup(1);
        let mut g = Dfg::new();
        let mut cur = seeded(&mut g, 1);
        let mut ctx = StmtCtx::new(&mut g, &lines, &mut cur);
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::Const(2), Expr::Const(3)),
            Expr::Const(4),
        );
        assert_eq!(ctx.compile(&e), Operand::Imm(20));
        assert_eq!(g.len(), 1, "no operators created for constants");
    }

    #[test]
    fn scalar_read_is_cached_per_statement() {
        let (_, lines) = setup(1);
        let mut g = Dfg::new();
        let mut cur = seeded(&mut g, 1);
        let mut ctx = StmtCtx::new(&mut g, &lines, &mut cur);
        // v0 * v0: one load, value fans out.
        let e = Expr::bin(BinOp::Mul, Expr::Var(VarId(0)), Expr::Var(VarId(0)));
        ctx.compile(&e);
        let loads = g
            .op_ids()
            .filter(|&o| matches!(g.kind(o), OpKind::Load { .. }))
            .count();
        assert_eq!(loads, 1);
    }

    #[test]
    fn assignment_threads_token_through_load_then_store() {
        let (_, lines) = setup(1);
        let mut g = Dfg::new();
        let mut cur = seeded(&mut g, 1);
        let mut ctx = StmtCtx::new(&mut g, &lines, &mut cur);
        // v0 := v0 + 1
        ctx.assign(
            &LValue::Var(VarId(0)),
            &Expr::bin(BinOp::Add, Expr::Var(VarId(0)), Expr::Const(1)),
        );
        // Ops: load, add, store. Token now sourced at the store.
        assert_eq!(g.len(), 4); // start + 3
        let st = g
            .op_ids()
            .find(|&o| matches!(g.kind(o), OpKind::Store { .. }))
            .unwrap();
        assert_eq!(cur[0], Some(Port::new(st, 0)));
        // The add's constant folded into an immediate.
        let add = g
            .op_ids()
            .find(|&o| matches!(g.kind(o), OpKind::Binary { .. }))
            .unwrap();
        assert_eq!(g.imm(add, 1), Some(1));
    }

    #[test]
    fn aliased_store_collects_multiple_tokens() {
        // X ~ Z: a store to X gathers lines of X and Z via a synch.
        let mut t = VarTable::new();
        let x = t.scalar("X");
        let z = t.scalar("Z");
        let mut a = AliasStructure::for_table(&t);
        a.relate(x, z);
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        let lines = Lines::new(&t, &a, &cover, false);
        let mut g = Dfg::new();
        let mut cur = seeded(&mut g, 2);
        let mut ctx = StmtCtx::new(&mut g, &lines, &mut cur);
        ctx.assign(&LValue::Var(x), &Expr::Const(7));
        let synchs = g
            .op_ids()
            .filter(|&o| matches!(g.kind(o), OpKind::Synch { .. }))
            .count();
        assert_eq!(synchs, 1, "two tokens collected through one synch");
        // Both lines regenerate from the store's completion.
        let st = g
            .op_ids()
            .find(|&o| matches!(g.kind(o), OpKind::Store { .. }))
            .unwrap();
        assert_eq!(cur[0], Some(Port::new(st, 0)));
        assert_eq!(cur[1], Some(Port::new(st, 0)));
    }

    #[test]
    fn value_mode_write_gates_on_old_token() {
        let mut t = VarTable::new();
        let v = t.scalar("v");
        let a = AliasStructure::for_table(&t);
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        let lines = Lines::new(&t, &a, &cover, true);
        let mut g = Dfg::new();
        let mut cur = seeded(&mut g, 1);
        let mut ctx = StmtCtx::new(&mut g, &lines, &mut cur);
        ctx.assign(&LValue::Var(v), &Expr::Const(5));
        // No load/store; a single gate with imm value 5.
        let gate = g
            .op_ids()
            .find(|&o| matches!(g.kind(o), OpKind::Gate))
            .expect("gate created");
        assert_eq!(g.imm(gate, 0), Some(5));
        assert_eq!(cur[0], Some(Port::new(gate, 0)));
        assert!(!g.op_ids().any(|o| g.kind(o).is_memory()));
    }

    #[test]
    fn value_mode_self_increment_taps_old_value() {
        let mut t = VarTable::new();
        let v = t.scalar("v");
        let a = AliasStructure::for_table(&t);
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        let lines = Lines::new(&t, &a, &cover, true);
        let mut g = Dfg::new();
        let mut cur = seeded(&mut g, 1);
        let mut ctx = StmtCtx::new(&mut g, &lines, &mut cur);
        ctx.assign(
            &LValue::Var(v),
            &Expr::bin(BinOp::Add, Expr::Var(v), Expr::Const(1)),
        );
        // add (tapping the old token) + gate; no memory ops.
        assert!(!g.op_ids().any(|o| g.kind(o).is_memory()));
        assert_eq!(
            g.op_ids()
                .filter(|&o| matches!(g.kind(o), OpKind::Binary { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn branch_switches_share_one_predicate() {
        let (_, lines) = setup(3);
        let mut g = Dfg::new();
        let mut cur = seeded(&mut g, 3);
        // pred: v0 < 5; switch all three lines.
        let all: Vec<LineId> = lines.ids().collect();
        let outs = translate_branch(
            &mut g,
            &lines,
            &mut cur,
            &Expr::bin(BinOp::Lt, Expr::Var(VarId(0)), Expr::Const(5)),
            &all,
        );
        assert_eq!(outs.len(), 3);
        let switches = g
            .op_ids()
            .filter(|&o| matches!(g.kind(o), OpKind::Switch))
            .count();
        assert_eq!(switches, 3);
        let cmps = g
            .op_ids()
            .filter(|&o| matches!(g.kind(o), OpKind::Binary { .. }))
            .count();
        assert_eq!(cmps, 1, "predicate computed once, fans out");
        // All lines were consumed by their switches.
        assert!(cur.iter().all(|c| c.is_none()));
    }

    #[test]
    fn array_write_reads_subscript_and_threads_array_line() {
        let mut t = VarTable::new();
        let i = t.scalar("i");
        let arr = t.array("arr", 8);
        let a = AliasStructure::for_table(&t);
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        let lines = Lines::new(&t, &a, &cover, false);
        let mut g = Dfg::new();
        let mut cur = seeded(&mut g, 2);
        let mut ctx = StmtCtx::new(&mut g, &lines, &mut cur);
        // arr[i] := arr[i+1]
        ctx.assign(
            &LValue::Index(arr, Expr::Var(i)),
            &Expr::index(arr, Expr::bin(BinOp::Add, Expr::Var(i), Expr::Const(1))),
        );
        let stats = cf2df_dfg::DfgStats::of(&g);
        assert_eq!(stats.loads, 2); // load i, load arr[i+1]
        assert_eq!(stats.stores, 1);
        // The array line threads load→store; i's line threads its load.
        let st = g
            .op_ids()
            .find(|&o| matches!(g.kind(o), OpKind::StoreIdx { .. }))
            .unwrap();
        assert_eq!(cur[lines.access_lines(arr)[0].index()], Some(Port::new(st, 0)));
    }
}
