//! Translation validation for the pipeline (the `certify` pass).
//!
//! Three independent obligations, layered on the abstract token-rate
//! analysis of [`cf2df_dfg::certify`]:
//!
//! 1. **Token linearity** — the dataflow graph's context analysis must be
//!    defect-free: every arc carries exactly one token per activation in
//!    its tag context, cycles are gated, loop tags are stripped before
//!    `End`.
//! 2. **Theorem 1 switch placement** — for the §4 optimized construction,
//!    an independent oracle recomputes the needed-switch relation from
//!    control dependence (`CD⁺`, Definition 5) node by node, with its own
//!    circulation fixpoint, and cross-checks the translator's placement
//!    both ways. A switch the oracle demands but the translator omitted is
//!    *unsound* (the token would bypass a fork its line is live across); a
//!    switch the translator placed but the oracle rejects is a missed
//!    optimization. Both are reported, separately.
//! 3. **Access-token conservation** — every pair of memory operations
//!    whose access sets intersect (and at least one of which writes) must
//!    be ordered within an activation whenever both can fire in one trace
//!    (Schema 2/3 soundness); and the cover must give aliased variables
//!    intersecting access sets and every variable a non-empty one
//!    (Schema 3's Fig 12/13 obligation).
//!
//! A failed obligation aborts the translation with
//! [`crate::pipeline::TranslateError::Certify`], carrying the full
//! [`CertifyReport`] — the graph never reaches the executor.

use crate::lines::{LineId, Lines};
use cf2df_cfg::loop_control::LoopControlMeta;
use cf2df_cfg::{AliasStructure, Cfg, ControlDeps, NodeId, Stmt, VarTable};
use cf2df_dfg::certify::Analysis;
use cf2df_dfg::{Defect, Dfg, OpId, OpKind};
use std::collections::BTreeSet;
use std::fmt;

/// A `(fork node, token line)` switch site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SwitchSite {
    /// The fork node in the (loop-controlled) CFG.
    pub node: NodeId,
    /// The token line the switch routes.
    pub line: LineId,
}

impl fmt::Display for SwitchSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fork {:?} line {:?}", self.node, self.line)
    }
}

/// The full result of the `certify` pass.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CertifyReport {
    /// Token-rate defects in the dataflow graph (with path witnesses).
    pub graph_defects: Vec<Defect>,
    /// Switch sites the Theorem 1 oracle demands but the translator did
    /// not place — unsoundness.
    pub missing_switches: Vec<SwitchSite>,
    /// Switch sites the translator placed but the oracle rejects — missed
    /// optimizations (every such switch is provably redundant).
    pub extra_switches: Vec<SwitchSite>,
    /// Access-token conservation violations (unordered conflicting memory
    /// operations).
    pub conservation_defects: Vec<String>,
    /// Cover-soundness violations (aliased variables whose access sets
    /// miss each other).
    pub cover_defects: Vec<String>,
    /// Switch sites cross-checked against the oracle (0 when the
    /// translation was not the optimized construction).
    pub switches_checked: usize,
    /// Conflicting co-occurring memory-operation pairs whose ordering was
    /// verified.
    pub memory_pairs_checked: usize,
}

impl CertifyReport {
    /// Did every obligation hold?
    pub fn is_clean(&self) -> bool {
        self.defect_count() == 0
    }

    /// Total defects across all obligations.
    pub fn defect_count(&self) -> usize {
        self.graph_defects.len()
            + self.missing_switches.len()
            + self.extra_switches.len()
            + self.conservation_defects.len()
            + self.cover_defects.len()
    }

    /// Machine-readable JSON rendering (hand-rolled; the report contains
    /// no externally controlled strings beyond variable names).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    '\n' => vec!['\\', 'n'],
                    c => vec![c],
                })
                .collect()
        }
        fn strings(items: &[String]) -> String {
            let body: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
            format!("[{}]", body.join(","))
        }
        fn sites(items: &[SwitchSite]) -> String {
            let body: Vec<String> = items
                .iter()
                .map(|s| format!("{{\"node\":{},\"line\":{}}}", s.node.0, s.line.0))
                .collect();
            format!("[{}]", body.join(","))
        }
        let defects: Vec<String> = self
            .graph_defects
            .iter()
            .map(|d| {
                let witness: Vec<String> =
                    d.witness.iter().map(|o| o.index().to_string()).collect();
                format!(
                    "{{\"kind\":\"{}\",\"op\":{},\"detail\":\"{}\",\"witness\":[{}]}}",
                    d.kind.name(),
                    d.op.map_or("null".into(), |o| o.index().to_string()),
                    esc(&d.detail),
                    witness.join(",")
                )
            })
            .collect();
        format!(
            "{{\"clean\":{},\"graph_defects\":[{}],\"missing_switches\":{},\
             \"extra_switches\":{},\"conservation_defects\":{},\"cover_defects\":{},\
             \"switches_checked\":{},\"memory_pairs_checked\":{}}}",
            self.is_clean(),
            defects.join(","),
            sites(&self.missing_switches),
            sites(&self.extra_switches),
            strings(&self.conservation_defects),
            strings(&self.cover_defects),
            self.switches_checked,
            self.memory_pairs_checked,
        )
    }
}

impl fmt::Display for CertifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "certified: {} switch sites, {} memory pairs, 0 defects",
                self.switches_checked, self.memory_pairs_checked
            );
        }
        writeln!(f, "{} certification defects:", self.defect_count())?;
        for d in &self.graph_defects {
            writeln!(f, "  {d}")?;
        }
        for s in &self.missing_switches {
            writeln!(f, "  [missing-switch] {s}: Theorem 1 requires a switch here")?;
        }
        for s in &self.extra_switches {
            writeln!(f, "  [extra-switch] {s}: provably redundant (missed optimization)")?;
        }
        for d in &self.conservation_defects {
            writeln!(f, "  [conservation] {d}")?;
        }
        for d in &self.cover_defects {
            writeln!(f, "  [cover] {d}")?;
        }
        Ok(())
    }
}

/// The Theorem 1 oracle: recompute the needed-switch relation from
/// control dependence, independently of the Fig 10 worklist in
/// [`crate::switch_place`].
///
/// Differences from the production algorithm, deliberate so the two do
/// not share failure modes: `CD⁺` is taken per *node* (Definition 5
/// directly, one closure per referencing node) rather than from per-line
/// seed sets, and the circulation fixpoint is grown from the needed-set
/// of each round rather than interleaved with the placement bitmaps.
pub fn theorem1_switches(
    cfg: &Cfg,
    cd: &ControlDeps,
    meta: &LoopControlMeta,
    lines: &Lines,
) -> BTreeSet<SwitchSite> {
    let base_refs: Vec<Vec<LineId>> = cfg
        .node_ids()
        .map(|n| lines.referenced_lines(cfg.stmt(n)))
        .collect();

    // Circulation: a line circulates through a loop iff it is referenced
    // in the body or needs a switch at a fork in the body; upward-closed
    // over the loop forest.
    let n_loops = meta.forest.len();
    let mut circ: Vec<BTreeSet<LineId>> = vec![BTreeSet::new(); n_loops];
    for (lid, info) in meta.forest.iter() {
        for &b in &info.body {
            circ[lid.index()].extend(base_refs[b.index()].iter().copied());
        }
    }

    // CD⁺ closures, one per node that references anything, memoized.
    let mut closures: Vec<Option<Vec<bool>>> = vec![None; cfg.len()];
    loop {
        let mut needed: BTreeSet<SwitchSite> = BTreeSet::new();
        for n in cfg.node_ids() {
            let refs: Vec<LineId> = match cfg.stmt(n) {
                Stmt::LoopEntry { loop_id } | Stmt::LoopExit { loop_id } => {
                    circ[loop_id.index()].iter().copied().collect()
                }
                _ => base_refs[n.index()].clone(),
            };
            if refs.is_empty() {
                continue;
            }
            let marked = closures[n.index()].get_or_insert_with(|| cd.iterated_single(n));
            for f in cfg.node_ids() {
                // `start` is exempt by the start→end convention: its
                // constant predicate makes its "switch" emit directly.
                if marked[f.index()] && cfg.stmt(f).is_fork() && f != cfg.start() {
                    for &l in &refs {
                        needed.insert(SwitchSite { node: f, line: l });
                    }
                }
            }
        }

        let mut changed = false;
        for (lid, info) in meta.forest.iter() {
            for s in &needed {
                if info.body.contains(&s.node) && circ[lid.index()].insert(s.line) {
                    changed = true;
                }
            }
        }
        // Upward closure: inner circulation implies outer.
        loop {
            let mut grew = false;
            for (lid, info) in meta.forest.iter() {
                if let Some(parent) = info.parent {
                    let inner: Vec<LineId> = circ[lid.index()].iter().copied().collect();
                    for l in inner {
                        if circ[parent.index()].insert(l) {
                            grew = true;
                            changed = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        if !changed {
            return needed;
        }
    }
}

/// Per-variable access-token conservation: any two memory operations with
/// intersecting access sets, at least one a store, that can fire in one
/// trace must be ordered within an activation. Returns the violations and
/// the number of pairs whose ordering was verified.
///
/// I-structure operations are exempt: write-once cells order reads after
/// the write dynamically (deferred reads), by design.
pub fn check_conservation(g: &Dfg, lines: &Lines, an: &Analysis) -> (Vec<String>, usize) {
    let mem: Vec<(OpId, &[LineId], bool)> = g
        .op_ids()
        .filter_map(|o| {
            let var = match *g.kind(o) {
                OpKind::Load { var }
                | OpKind::Store { var }
                | OpKind::LoadIdx { var }
                | OpKind::StoreIdx { var } => var,
                _ => return None,
            };
            Some((o, lines.access_lines(var), g.kind(o).is_store()))
        })
        .collect();

    let mut defects = Vec::new();
    let mut pairs = 0;
    for i in 0..mem.len() {
        for j in i + 1..mem.len() {
            let (a, la, sa) = mem[i];
            let (b, lb, sb) = mem[j];
            if !(sa || sb) || !la.iter().any(|l| lb.contains(l)) {
                continue;
            }
            if !an.may_cooccur(a, b) {
                continue;
            }
            pairs += 1;
            if !an.reaches(a, b) && !an.reaches(b, a) {
                defects.push(format!(
                    "{:?} ({}) and {:?} ({}) share an access line and can fire in one \
                     trace, but neither is ordered before the other",
                    a,
                    g.kind(a).mnemonic(),
                    b,
                    g.kind(b).mnemonic()
                ));
            }
        }
    }
    (defects, pairs)
}

/// Cover soundness (Fig 12/13): every variable's access set is non-empty,
/// and aliased variables' access sets intersect — otherwise operations on
/// the two names would not synchronize and a store could race a load of
/// its alias.
pub fn check_cover(vars: &VarTable, alias: &AliasStructure, lines: &Lines) -> Vec<String> {
    let mut out = Vec::new();
    let ids: Vec<_> = vars.ids().collect();
    for &u in &ids {
        if lines.access_lines(u).is_empty() {
            out.push(format!(
                "variable {} has an empty access set: its operations synchronize \
                 with nothing",
                vars.name(u)
            ));
        }
        for &v in &ids {
            if v.0 <= u.0 || !alias.aliased(u, v) {
                continue;
            }
            let la = lines.access_lines(u);
            let lb = lines.access_lines(v);
            if !la.iter().any(|l| lb.contains(l)) {
                out.push(format!(
                    "aliased variables {} and {} have disjoint access sets: their \
                     operations would not synchronize",
                    vars.name(u),
                    vars.name(v)
                ));
            }
        }
    }
    out
}
