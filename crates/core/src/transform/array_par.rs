//! Array-store parallelization (§6.3, Fig 14).
//!
//! For a loop whose only operation on array `x` is a store `x[i] := e`
//! with `i` advancing by a nonzero constant each iteration, stores of
//! successive iterations are independent. The rewrite duplicates the
//! array's access token at the loop entry — one copy proceeds straight to
//! the next iteration while the store runs — and synchronizes store
//! completions backwards through the iterations (Fig 14 b/c), so the token
//! leaves the loop only when every store has completed:
//!
//! ```text
//! chain(i) = synch( store_done(i),
//!                   merge( prev-iter(chain(i+1)), exit-token(last) ) )
//! chain(0) —loop-exit→ after the loop
//! ```

use crate::lines::{LineId, Lines};
use crate::translator::Built;
use cf2df_cfg::loop_control::LoopControlMeta;
use cf2df_cfg::{BinOp, Cfg, Expr, LValue, LoopId, NodeId, Stmt, VarId};
use cf2df_dfg::{ArcKind, Dfg, OpId, OpKind, Port};

/// An array-store site eligible for the Fig 14 rewrite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EligibleStore {
    /// The loop.
    pub loop_id: LoopId,
    /// The array variable.
    pub array: VarId,
    /// The array's (single) token line.
    pub line: LineId,
    /// The CFG node of the store statement.
    pub store_node: NodeId,
}

/// Is `e` of the form `i`, `i + c`, or `i - c` for the given `i`?
fn is_affine_in(e: &Expr, i: VarId) -> bool {
    match e {
        Expr::Var(v) => *v == i,
        Expr::Binary(BinOp::Add | BinOp::Sub, l, r) => {
            matches!(&**l, Expr::Var(v) if *v == i) && matches!(&**r, Expr::Const(_))
        }
        _ => false,
    }
}

/// Find eligible (loop, array) sites by the conservative subscript test:
/// the body contains exactly one statement touching the array — a store
/// `a[f(i)] := e` with `f` affine in an induction variable `i` that is
/// incremented by a nonzero constant exactly once per iteration — the body
/// never loads `a`, the body is a single straight path (so the store runs
/// on every iteration), and `a` is unaliased.
pub fn find_eligible(cfg: &Cfg, meta: &LoopControlMeta, lines: &Lines) -> Vec<EligibleStore> {
    let mut out = Vec::new();
    for (loop_id, info) in meta.forest.iter() {
        // Body must be a straight path: every non-fork body node has one
        // successor, and exactly one fork (the exit branch).
        let forks = info
            .body
            .iter()
            .filter(|&&n| cfg.stmt(n).is_fork())
            .count();
        if forks != 1 {
            continue;
        }
        // No inner loops (keep the canonical Fig 14 shape).
        if meta
            .forest
            .iter()
            .any(|(other, oi)| other != loop_id && info.body.contains(&oi.header))
        {
            continue;
        }

        // Induction variables: scalars assigned exactly once, as v := v ± c.
        let mut assigns: Vec<(NodeId, &LValue, &Expr)> = Vec::new();
        for &n in &info.body {
            if let Stmt::Assign { lhs, rhs } = cfg.stmt(n) {
                assigns.push((n, lhs, rhs));
            }
        }
        let is_induction = |v: VarId| -> bool {
            let mut count = 0;
            let mut ok = false;
            for (_, lhs, rhs) in &assigns {
                if lhs.var() == v {
                    count += 1;
                    ok = matches!(rhs,
                        Expr::Binary(BinOp::Add | BinOp::Sub, l, r)
                        if matches!(&**l, Expr::Var(w) if *w == v)
                            && matches!(&**r, Expr::Const(c) if *c != 0));
                }
            }
            count == 1 && ok
        };

        // Array candidates.
        for v in cfg.vars.ids() {
            if !matches!(cfg.vars.kind(v), cf2df_cfg::VarKind::Array { .. }) {
                continue;
            }
            let ls = lines.access_lines(v);
            let [line] = ls[..] else { continue };
            // Unaliased: no other variable shares this line.
            if cfg
                .vars
                .ids()
                .any(|w| w != v && lines.access_lines(w).contains(&line))
            {
                continue;
            }
            let mut store_node = None;
            let mut eligible = true;
            for &n in &info.body {
                let stmt = cfg.stmt(n);
                let reads_v = match stmt {
                    Stmt::Assign { lhs, rhs } => {
                        rhs.references(v)
                            || matches!(lhs, LValue::Index(_, idx) if idx.references(v))
                    }
                    Stmt::Branch { pred } => pred.references(v),
                    Stmt::Case { selector } => selector.references(v),
                    _ => false,
                };
                if reads_v {
                    eligible = false;
                    break;
                }
                if let Stmt::Assign { lhs, rhs } = stmt {
                    if lhs.var() == v {
                        if store_node.is_some() {
                            eligible = false; // two stores
                            break;
                        }
                        let LValue::Index(_, idx) = lhs else {
                            eligible = false;
                            break;
                        };
                        let affine_ok = idx
                            .vars()
                            .first()
                            .map(|&i| is_induction(i) && is_affine_in(idx, i))
                            .unwrap_or(false);
                        if !affine_ok || rhs.references(v) {
                            eligible = false;
                            break;
                        }
                        store_node = Some(n);
                    }
                }
            }
            if let (true, Some(store_node)) = (eligible, store_node) {
                out.push(EligibleStore {
                    loop_id,
                    array: v,
                    line,
                    store_node,
                });
            }
        }
    }
    out
}

/// The exact operator shape the rewrite requires on the array's line:
/// `LE.0 → store.access`, `store.done → switch.data`,
/// `switch.true → LE.1`, `switch.false → LX.0`.
struct Shape {
    le: OpId,
    store: OpId,
    sw: OpId,
    lx: OpId,
}

fn match_shape(g: &Dfg, built: &Built, meta: &LoopControlMeta, site: &EligibleStore) -> Option<Shape> {
    let le_node = meta.entry_node[site.loop_id.index()];
    let le = *built.ops.loop_entries.get(&(le_node, site.line))?;
    let outs = g.out_arcs();
    // LE.0 must feed exactly the store's access port.
    let le_arcs = &outs[le.index()][0];
    if le_arcs.len() != 1 {
        return None;
    }
    let store_port = g.arcs()[le_arcs[0]].to;
    let store = store_port.op;
    if !matches!(g.kind(store), OpKind::StoreIdx { var } if *var == site.array) {
        return None;
    }
    if store_port.port != 2 {
        return None;
    }
    // store.done → switch.data.
    let st_arcs = &outs[store.index()][0];
    if st_arcs.len() != 1 {
        return None;
    }
    let sw_port = g.arcs()[st_arcs[0]].to;
    let sw = sw_port.op;
    if !matches!(g.kind(sw), OpKind::Switch) || sw_port.port != 0 {
        return None;
    }
    // switch.true → LE.1; switch.false → LX.0.
    let t_arcs = &outs[sw.index()][0];
    let f_arcs = &outs[sw.index()][1];
    if t_arcs.len() != 1 || f_arcs.len() != 1 {
        return None;
    }
    let t_to = g.arcs()[t_arcs[0]].to;
    let f_to = g.arcs()[f_arcs[0]].to;
    if t_to != (Port { op: le, port: 1 }) {
        return None;
    }
    let lx = f_to.op;
    if !matches!(g.kind(lx), OpKind::LoopExit { loop_id } if *loop_id == site.loop_id)
        || f_to.port != 0
    {
        return None;
    }
    Some(Shape { le, store, sw, lx })
}

/// Apply the Fig 14 rewrite to every eligible site; returns the sites
/// rewritten.
pub fn parallelize_array_stores(
    built: &mut Built,
    cfg: &Cfg,
    meta: &LoopControlMeta,
    lines: &Lines,
) -> Vec<EligibleStore> {
    let sites = find_eligible(cfg, meta, lines);
    let mut applied = Vec::new();
    for site in sites {
        let Some(shape) = match_shape(&built.dfg, built, meta, &site) else {
            continue;
        };
        let g = &mut built.dfg;
        let l = site.loop_id;
        // 1. Duplicate the token at loop entry: the switch now takes it
        //    directly, racing ahead of the store.
        let ok = g.disconnect(Port::new(shape.store, 0), Port::new(shape.sw, 0));
        debug_assert!(ok);
        g.connect(
            Port::new(shape.le, 0),
            Port::new(shape.sw, 0),
            ArcKind::Access,
        );
        // 2. Backward completion chain.
        let sy = g.add_labeled(OpKind::Synch { inputs: 2 }, "fig14 chain".to_owned());
        let m = g.add_labeled(OpKind::Merge, "fig14 next-or-last".to_owned());
        let ii = g.add(OpKind::IterIndex { loop_id: l });
        let eq = g.add(OpKind::Binary { op: BinOp::Eq });
        g.set_imm(eq, 1, 0);
        let sw2 = g.add_labeled(OpKind::Switch, "fig14 at-iter-0?".to_owned());
        let pi = g.add(OpKind::PrevIter { loop_id: l });
        // store completion joins the chain.
        g.connect(Port::new(shape.store, 0), Port::new(sy, 0), ArcKind::Access);
        g.connect(Port::new(m, 0), Port::new(sy, 1), ArcKind::Access);
        // The last iteration's exit token terminates the chain…
        let ok = g.disconnect(Port::new(shape.sw, 1), Port::new(shape.lx, 0));
        debug_assert!(ok);
        g.connect(Port::new(shape.sw, 1), Port::new(m, 0), ArcKind::Access);
        // …and the chain walks back to iteration 0.
        g.connect(Port::new(sy, 0), Port::new(ii, 0), ArcKind::Access);
        g.connect(Port::new(sy, 0), Port::new(sw2, 0), ArcKind::Access);
        g.connect(Port::new(ii, 0), Port::new(eq, 0), ArcKind::Value);
        g.connect(Port::new(eq, 0), Port::new(sw2, 1), ArcKind::Value);
        g.connect(Port::new(sw2, 0), Port::new(shape.lx, 0), ArcKind::Access);
        g.connect(Port::new(sw2, 1), Port::new(pi, 0), ArcKind::Access);
        g.connect(Port::new(pi, 0), Port::new(m, 0), ArcKind::Access);
        applied.push(site);
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::loop_control::insert_loop_control;
    use cf2df_cfg::{AliasStructure, Cover, CoverStrategy, MemLayout};
    use cf2df_lang::parse_to_cfg;
    use cf2df_machine::{run, vonneumann, MachineConfig};

    fn setup(src: &str) -> (cf2df_cfg::loop_control::LoopControlled, Lines, AliasStructure) {
        let parsed = parse_to_cfg(src).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
        (lc, lines, parsed.alias)
    }

    #[test]
    fn array_loop_is_eligible() {
        let (lc, lines, _) = setup(cf2df_lang::corpus::ARRAY_LOOP);
        let sites = find_eligible(&lc.cfg, &lc.meta, &lines);
        assert_eq!(sites.len(), 1);
        assert_eq!(
            lc.cfg.vars.name(sites[0].array),
            "x",
            "the stored array is x"
        );
    }

    #[test]
    fn loads_disqualify() {
        let src = "
            array x[12];
            i := 0;
            l:
              i := i + 1;
              x[i] := x[i - 1] + 1;
              if i < 10 then { goto l; } else { goto end; }
        ";
        let (lc, lines, _) = setup(src);
        assert!(find_eligible(&lc.cfg, &lc.meta, &lines).is_empty());
    }

    #[test]
    fn non_induction_subscript_disqualifies() {
        let src = "
            array x[12];
            i := 0;
            l:
              i := i + 1;
              x[i * 2 % 11] := 1;
              if i < 10 then { goto l; } else { goto end; }
        ";
        let (lc, lines, _) = setup(src);
        assert!(find_eligible(&lc.cfg, &lc.meta, &lines).is_empty());
    }

    #[test]
    fn conditional_store_disqualifies() {
        let src = "
            array x[12];
            i := 0;
            l:
              i := i + 1;
              if i % 2 == 0 then { x[i] := 1; } else { skip; }
              if i < 10 then { goto l; } else { goto end; }
        ";
        let (lc, lines, _) = setup(src);
        assert!(find_eligible(&lc.cfg, &lc.meta, &lines).is_empty());
    }

    #[test]
    fn rewrite_preserves_semantics_and_overlaps_stores() {
        // Memory elimination keeps the induction variable on a value token,
        // so the array stores are the loop's bottleneck — the situation
        // Fig 14 addresses.
        let parsed = parse_to_cfg(cf2df_lang::corpus::ARRAY_LOOP).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, true);
        let mut built = crate::optimized::construct(&lc, &lines).unwrap();
        let layout = MemLayout::distinct(&lc.cfg.vars);
        let slow = MachineConfig::unbounded().mem_latency(40);
        let before = run(&built.dfg, &layout, slow.clone()).unwrap();

        let applied = parallelize_array_stores(&mut built, &lc.cfg, &lc.meta, &lines);
        assert_eq!(applied.len(), 1);
        cf2df_dfg::validate(&built.dfg).unwrap();
        if let Err(defects) = cf2df_dfg::certify(&built.dfg) {
            panic!(
                "fig 14 rewrite fails certification:\n{}",
                defects
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
        let after = run(&built.dfg, &layout, slow.clone()).unwrap();
        assert_eq!(after.memory, before.memory, "same final store");

        let vn = vonneumann::interpret(&lc.cfg, &layout, &slow).unwrap();
        assert_eq!(after.memory, vn.memory, "matches sequential semantics");
        assert!(
            after.stats.makespan < before.stats.makespan,
            "stores overlap: {} → {}",
            before.stats.makespan,
            after.stats.makespan
        );
        assert_eq!(after.stats.leftover_tokens, 0);
    }
}
