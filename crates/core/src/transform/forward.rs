//! Store-to-load forwarding (§6.2).
//!
//! "If a store to a variable z is followed sequentially by a read from z,
//! with no intervening stores to any variable that could be aliased to z,
//! then the value stored can be passed directly to the output of the
//! load."
//!
//! On the dataflow graph the condition is a *direct* access arc from a
//! scalar store's completion to a load of the same variable: any
//! intervening (possibly aliased) operation would sit on that token line
//! between them, and aliased access sets route through synch trees rather
//! than direct arcs — so the arc test is exactly the paper's condition.
//! The load is deleted; its value consumers take the stored value, its
//! access consumers take the store's completion.

use cf2df_dfg::{Dfg, OpId, OpKind, Port};

/// Apply the rewrite; returns the number of loads forwarded. The graph is
/// compacted afterwards, so **operator ids change**; the id map is
/// returned for callers holding references.
pub fn forward_stores(g: &mut Dfg) -> (usize, Vec<Option<OpId>>) {
    let mut forwarded = 0;
    loop {
        let ins = g.in_arcs();
        let outs = g.out_arcs();
        // Find a (store, load) pair: Store{v}.0 --access--> Load{v}.0.
        let mut found = None;
        'search: for st in g.op_ids() {
            let OpKind::Store { var } = *g.kind(st) else {
                continue;
            };
            for &ai in &outs[st.index()][0] {
                let to = g.arcs()[ai].to;
                if to.port == 0 {
                    if let OpKind::Load { var: lv } = *g.kind(to.op) {
                        if lv == var {
                            found = Some((st, to.op));
                            break 'search;
                        }
                    }
                }
            }
        }
        let Some((st, ld)) = found else {
            break;
        };

        // The stored value: either an immediate or a source port.
        let st_value_imm = g.imm(st, 0);
        let st_value_src = ins[st.index()][0]
            .first()
            .map(|&ai| g.arcs()[ai].from);

        // Value consumers of the load.
        let value_dests: Vec<(Port, cf2df_dfg::ArcKind)> = outs[ld.index()][0]
            .iter()
            .map(|&ai| (g.arcs()[ai].to, g.arcs()[ai].kind))
            .collect();
        // Access consumers of the load.
        let access_dests: Vec<(Port, cf2df_dfg::ArcKind)> = outs[ld.index()][1]
            .iter()
            .map(|&ai| (g.arcs()[ai].to, g.arcs()[ai].kind))
            .collect();

        // The forwarded value's source port: the store's value input, or —
        // for an immediate — a gate that emits the constant once per store
        // completion (keeping per-tag token discipline intact).
        let value_src = if value_dests.is_empty() {
            None
        } else {
            match (st_value_imm, st_value_src) {
                (Some(c), _) => {
                    let gate = g.add_labeled(OpKind::Gate, "fwd const".to_owned());
                    g.set_imm(gate, 0, c);
                    g.connect(
                        Port::new(st, 0),
                        Port::new(gate, 1),
                        cf2df_dfg::ArcKind::Access,
                    );
                    Some(Port::new(gate, 0))
                }
                (None, Some(src)) => Some(src),
                (None, None) => unreachable!("store has a value input"),
            }
        };

        // Rewire: value.
        for (dest, kind) in &value_dests {
            g.disconnect(Port::new(ld, 0), *dest);
            g.connect(value_src.expect("non-empty dests"), *dest, *kind);
        }
        // Rewire: access chain skips the load.
        for (dest, kind) in &access_dests {
            g.disconnect(Port::new(ld, 1), *dest);
            g.connect(Port::new(st, 0), *dest, *kind);
        }
        // Remove the store→load arc; the load is now isolated.
        g.disconnect(Port::new(st, 0), Port::new(ld, 0));
        forwarded += 1;
    }
    if forwarded > 0 {
        let (compacted, map) = g.compact();
        *g = compacted;
        (forwarded, map)
    } else {
        let map = g.op_ids().map(Some).collect();
        (forwarded, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{MemLayout, VarId, VarTable};
    use cf2df_dfg::graph::ArcKind;
    use cf2df_machine::{run, MachineConfig};

    /// start → store x := 7 → load x → store y := loaded → end.
    fn graph() -> (Dfg, MemLayout) {
        let mut t = VarTable::new();
        t.scalar("x");
        t.scalar("y");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let st_x = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(st_x, 0, 7);
        let ld_x = g.add(OpKind::Load { var: VarId(0) });
        let st_y = g.add(OpKind::Store { var: VarId(1) });
        let e = g.add(OpKind::End { inputs: 2 });
        g.connect(Port::new(s, 0), Port::new(st_x, 1), ArcKind::Access);
        g.connect(Port::new(st_x, 0), Port::new(ld_x, 0), ArcKind::Access);
        g.connect(Port::new(ld_x, 0), Port::new(st_y, 0), ArcKind::Value);
        g.connect(Port::new(s, 0), Port::new(st_y, 1), ArcKind::Access);
        g.connect(Port::new(ld_x, 1), Port::new(e, 0), ArcKind::Access);
        g.connect(Port::new(st_y, 0), Port::new(e, 1), ArcKind::Access);
        (g, layout)
    }

    #[test]
    fn forwarding_removes_the_load() {
        let (mut g, layout) = graph();
        let before = run(&g, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap();
        let (n, _) = forward_stores(&mut g);
        assert_eq!(n, 1);
        cf2df_dfg::validate(&g).unwrap();
        assert!(
            !g.op_ids().any(|o| matches!(g.kind(o), OpKind::Load { .. })),
            "load deleted"
        );
        let after = run(&g, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap();
        assert_eq!(after.memory, before.memory);
        assert_eq!(after.stats.mem_reads, 0);
        assert!(after.stats.makespan < before.stats.makespan);
    }

    #[test]
    fn different_variable_not_forwarded() {
        // store x → load y (y's load just happens to be threaded after —
        // only possible when they share a line, i.e. aliasing): must not
        // forward.
        let mut t = VarTable::new();
        t.scalar("x");
        t.scalar("y");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let st_x = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(st_x, 0, 7);
        let ld_y = g.add(OpKind::Load { var: VarId(1) });
        let e = g.add(OpKind::End { inputs: 2 });
        g.connect(Port::new(s, 0), Port::new(st_x, 1), ArcKind::Access);
        g.connect(Port::new(st_x, 0), Port::new(ld_y, 0), ArcKind::Access);
        g.connect(Port::new(ld_y, 0), Port::new(e, 0), ArcKind::Value);
        g.connect(Port::new(ld_y, 1), Port::new(e, 1), ArcKind::Access);
        let (n, _) = forward_stores(&mut g);
        assert_eq!(n, 0);
        let _ = layout;
    }

    #[test]
    fn chain_of_forwards_converges() {
        // store x := 1 → load x → (value feeds a +1) → store x → load x …
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let mut access = Port::new(s, 0);
        let mut last_store = None;
        for i in 0..3 {
            let st = g.add(OpKind::Store { var: VarId(0) });
            match last_store {
                None => g.set_imm(st, 0, 1),
                Some(prev_val) => {
                    let add = g.add(OpKind::Binary { op: cf2df_cfg::BinOp::Add });
                    g.set_imm(add, 1, i);
                    g.connect(prev_val, Port::new(add, 0), ArcKind::Value);
                    g.connect(Port::new(add, 0), Port::new(st, 0), ArcKind::Value);
                }
            }
            g.connect(access, Port::new(st, 1), ArcKind::Access);
            let ld = g.add(OpKind::Load { var: VarId(0) });
            g.connect(Port::new(st, 0), Port::new(ld, 0), ArcKind::Access);
            access = Port::new(ld, 1);
            last_store = Some(Port::new(ld, 0));
        }
        // Terminal: feed the last loaded value into a store to x again so
        // it is consumed, then end.
        let st = g.add(OpKind::Store { var: VarId(0) });
        g.connect(last_store.unwrap(), Port::new(st, 0), ArcKind::Value);
        g.connect(access, Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);

        let before = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let (n, _) = forward_stores(&mut g);
        assert_eq!(n, 3, "every load forwarded");
        cf2df_dfg::validate(&g).unwrap();
        let after = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(after.memory, before.memory);
    }
}
