//! Conventional compiler optimizations *on the dataflow graph* — common
//! subexpression elimination and dead code elimination.
//!
//! The paper's abstract claims "dataflow graphs can serve as an executable
//! intermediate representation in parallelizing compilers"; its conclusion
//! adds that the Typhoon project would show usefulness "for conventional
//! optimizations and for parallelization". These two passes substantiate
//! the claim: both are ordinary value-numbering/liveness ideas, and both
//! are *sound by construction* on the dataflow IR because arcs are exactly
//! the dependences — no separate alias or control analysis is needed.

use cf2df_dfg::{Dfg, OpId, OpKind, Port};
use std::collections::HashMap;

/// Value-numbering key: operator mnemonic, immediates, per-port sources.
type ExprKey = (String, Vec<Option<i64>>, Vec<Vec<Port>>);

/// Is the operator a pure value function of its inputs (same inputs ⇒ same
/// output, no effects, exactly one output port, not merge-like)?
fn is_pure_value_op(kind: &OpKind) -> bool {
    matches!(
        kind,
        OpKind::Unary { .. } | OpKind::Binary { .. } | OpKind::Identity
    )
}

/// Common subexpression elimination: two pure operators with identical
/// kinds, immediates, and input sources compute identical values under
/// every tag, so one can serve all consumers. Runs to fixpoint; returns
/// the number of operators eliminated (the graph is compacted, id map
/// returned).
pub fn eliminate_common_subexpressions(g: &mut Dfg) -> (usize, Vec<Option<OpId>>) {
    let mut eliminated = 0;
    loop {
        let ins = g.in_arcs();
        // Key: (mnemonic-kind, imms, sorted-per-port sources).
        let mut table: HashMap<ExprKey, OpId> = HashMap::new();
        let mut victim: Option<(OpId, OpId)> = None;
        for op in g.op_ids() {
            let kind = g.kind(op);
            if !is_pure_value_op(kind) {
                continue;
            }
            // Skip fully-detached operators (left behind by earlier merges
            // until compaction): "merging" two of them would loop forever.
            if ins[op.index()].iter().all(|arcs| arcs.is_empty()) {
                continue;
            }
            let n_in = kind.n_inputs();
            let imms: Vec<Option<i64>> = (0..n_in).map(|p| g.imm(op, p)).collect();
            let mut srcs: Vec<Vec<Port>> = Vec::with_capacity(n_in);
            for arcs in ins[op.index()].iter().take(n_in) {
                let mut v: Vec<Port> = arcs.iter().map(|&ai| g.arcs()[ai].from).collect();
                v.sort_by_key(|p| (p.op.0, p.port));
                srcs.push(v);
            }
            let key = (kind.mnemonic(), imms, srcs);
            match table.get(&key) {
                Some(&keep) => {
                    victim = Some((keep, op));
                    break;
                }
                None => {
                    table.insert(key, op);
                }
            }
        }
        let Some((keep, dup)) = victim else { break };
        // Rewire the duplicate's consumers to the kept op and detach it.
        let outs = g.out_arcs();
        let dests: Vec<(Port, cf2df_dfg::ArcKind)> = outs[dup.index()][0]
            .iter()
            .map(|&ai| (g.arcs()[ai].to, g.arcs()[ai].kind))
            .collect();
        for (d, kind) in dests {
            g.disconnect(Port::new(dup, 0), d);
            g.connect(Port::new(keep, 0), d, kind);
        }
        let mut in_srcs: Vec<(Port, Port)> = Vec::new();
        for (p, arcs) in ins[dup.index()].iter().enumerate() {
            for &ai in arcs {
                in_srcs.push((g.arcs()[ai].from, Port::new(dup, p)));
            }
        }
        for (src, to) in in_srcs {
            g.disconnect(src, to);
        }
        eliminated += 1;
    }
    if eliminated > 0 {
        let (compacted, map) = g.compact();
        *g = compacted;
        (eliminated, map)
    } else {
        (0, g.op_ids().map(Some).collect())
    }
}

/// Dead code elimination: pure operators (and switches) none of whose
/// outputs reach a consumer can never influence memory or termination —
/// remove them and the arcs feeding them, iterating as removals expose
/// more dead operators. Returns the count removed and the id map.
pub fn eliminate_dead_code(g: &mut Dfg) -> (usize, Vec<Option<OpId>>) {
    let mut removed = 0;
    loop {
        let outs = g.out_arcs();
        let ins = g.in_arcs();
        let mut victim = None;
        for op in g.op_ids() {
            let kind = g.kind(op);
            let deletable = is_pure_value_op(kind) || matches!(kind, OpKind::Switch);
            if !deletable {
                continue;
            }
            let unused = outs[op.index()].iter().all(|arcs| arcs.is_empty());
            // An op with no inputs connected is already detached; skip it
            // (compaction drops it).
            let has_inputs = ins[op.index()].iter().any(|arcs| !arcs.is_empty());
            if unused && has_inputs {
                victim = Some(op);
                break;
            }
        }
        let Some(op) = victim else { break };
        let mut in_srcs: Vec<(Port, Port)> = Vec::new();
        for (p, arcs) in ins[op.index()].iter().enumerate() {
            for &ai in arcs {
                in_srcs.push((g.arcs()[ai].from, Port::new(op, p)));
            }
        }
        for (src, to) in in_srcs {
            g.disconnect(src, to);
        }
        removed += 1;
    }
    if removed > 0 {
        let (compacted, map) = g.compact();
        *g = compacted;
        (removed, map)
    } else {
        (0, g.op_ids().map(Some).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{BinOp, MemLayout, VarId, VarTable};
    use cf2df_dfg::graph::ArcKind;
    use cf2df_machine::{run, MachineConfig};

    /// x loaded once, (x+1) computed twice feeding two stores.
    fn duplicated_graph() -> (Dfg, MemLayout) {
        let mut t = VarTable::new();
        t.scalar("x");
        t.scalar("y");
        t.scalar("z");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let add1 = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add1, 1, 1);
        let add2 = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add2, 1, 1);
        let st_y = g.add(OpKind::Store { var: VarId(1) });
        let st_z = g.add(OpKind::Store { var: VarId(2) });
        let e = g.add(OpKind::End { inputs: 2 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(add1, 0), ArcKind::Value);
        g.connect(Port::new(ld, 0), Port::new(add2, 0), ArcKind::Value);
        g.connect(Port::new(add1, 0), Port::new(st_y, 0), ArcKind::Value);
        g.connect(Port::new(add2, 0), Port::new(st_z, 0), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st_y, 1), ArcKind::Access);
        g.connect(Port::new(st_y, 0), Port::new(st_z, 1), ArcKind::Access);
        g.connect(Port::new(st_z, 0), Port::new(e, 0), ArcKind::Access);
        g.connect(Port::new(s, 0), Port::new(e, 1), ArcKind::Access);
        (g, layout)
    }

    #[test]
    fn cse_merges_identical_adds() {
        let (mut g, layout) = duplicated_graph();
        let before = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let (n, _) = eliminate_common_subexpressions(&mut g);
        assert_eq!(n, 1);
        cf2df_dfg::validate(&g).unwrap();
        let adds = g
            .op_ids()
            .filter(|&o| matches!(g.kind(o), OpKind::Binary { .. }))
            .count();
        assert_eq!(adds, 1);
        let after = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(after.memory, before.memory);
        assert_eq!(after.stats.fired, before.stats.fired - 1);
    }

    #[test]
    fn cse_respects_different_immediates() {
        let (mut g, _) = duplicated_graph();
        // Change one immediate: no longer a common subexpression.
        let add2 = g
            .op_ids()
            .filter(|&o| matches!(g.kind(o), OpKind::Binary { .. }))
            .nth(1)
            .unwrap();
        g.set_imm(add2, 1, 2);
        let (n, _) = eliminate_common_subexpressions(&mut g);
        assert_eq!(n, 0);
    }

    #[test]
    fn dce_removes_unused_chain() {
        let (mut g, layout) = duplicated_graph();
        // Orphan one add: its store's value consumer goes away → first make
        // the add dead by detaching its consumer store's value input and
        // feeding the store an immediate instead.
        let add2 = g
            .op_ids()
            .filter(|&o| matches!(g.kind(o), OpKind::Binary { .. }))
            .nth(1)
            .unwrap();
        let st_z = g
            .op_ids()
            .filter(|&o| matches!(g.kind(o), OpKind::Store { .. }))
            .nth(1)
            .unwrap();
        g.disconnect(Port::new(add2, 0), Port::new(st_z, 0));
        g.set_imm(st_z, 0, 99);
        let before = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let (n, _) = eliminate_dead_code(&mut g);
        assert_eq!(n, 1, "the dangling add disappears");
        cf2df_dfg::validate(&g).unwrap();
        let after = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(after.memory, before.memory);
    }

    #[test]
    fn passes_are_idempotent_on_clean_graphs() {
        for (_, src) in cf2df_lang::corpus::all() {
            let parsed = cf2df_lang::parse_to_cfg(src).unwrap();
            let t = crate::pipeline::translate(
                &parsed.cfg,
                &parsed.alias,
                &crate::pipeline::TranslateOptions::schema3(
                    cf2df_cfg::CoverStrategy::Singletons,
                )
                    .with_memory_elimination(true),
            )
            .unwrap();
            let mut g = t.dfg.clone();
            let (c, _) = eliminate_common_subexpressions(&mut g);
            let (d, _) = eliminate_dead_code(&mut g);
            cf2df_dfg::validate(&g).unwrap();
            let mut g2 = g.clone();
            let (c2, _) = eliminate_common_subexpressions(&mut g2);
            let (d2, _) = eliminate_dead_code(&mut g2);
            assert_eq!((c2, d2), (0, 0), "second run must be a no-op");
            let _ = (c, d);
        }
    }

    #[test]
    fn cse_preserves_semantics_across_corpus() {
        let mc = MachineConfig::unbounded();
        for (name, src) in cf2df_lang::corpus::all() {
            let parsed = cf2df_lang::parse_to_cfg(src).unwrap();
            let layout = MemLayout::distinct(&parsed.cfg.vars);
            let t = crate::pipeline::translate(
                &parsed.cfg,
                &parsed.alias,
                &crate::pipeline::TranslateOptions::schema3(
                    cf2df_cfg::CoverStrategy::Singletons,
                )
                    .with_memory_elimination(true),
            )
            .unwrap();
            let before = run(&t.dfg, &layout, mc.clone()).unwrap();
            let mut g = t.dfg.clone();
            eliminate_common_subexpressions(&mut g);
            eliminate_dead_code(&mut g);
            let after = run(&g, &layout, mc.clone()).unwrap();
            assert_eq!(after.memory, before.memory, "{name}");
        }
    }
}
