//! Write-once arrays on I-structure memory (§6.3).
//!
//! "A further enhancement … is to detect when an array is 'write-once'. If
//! the dataflow machine has I-structure memory, array reads and writes can
//! be done concurrently, since I-structure memory takes care of delaying
//! premature read requests until the corresponding writes have occurred."
//!
//! The transform converts a chosen array's element operations to
//! I-structure operations and releases them from the access-token line:
//!
//! * stores fire as soon as index and value are ready (not gated on the
//!   line); the line instead *synchronizes with* each store's completion,
//!   so the program still cannot terminate before all writes land;
//! * loads fire as soon as their index is ready; premature reads are
//!   deferred by the memory until the matching write.
//!
//! **Preconditions are the caller's responsibility** (the paper gives no
//! detection algorithm either): every cell of the array must be written at
//! most once per execution, and every cell that is read must eventually be
//! written. Violations are *detected, not silent*: a double write faults
//! with a memory fault (`IStructureRewrite`), and an unmatched read leaves the machine
//! deadlocked with a diagnostic. Note the final values live in the
//! machine's I-structure memory snapshot (`Outcome::ist_memory`).

use cf2df_dfg::{ArcKind, Dfg, OpId, OpKind, Port};
use cf2df_cfg::VarId;

/// Convert every element operation on the given arrays to I-structure
/// operations. Returns the number of operations converted; the graph is
/// compacted, and the id map is returned for callers holding op ids.
pub fn convert_arrays(g: &mut Dfg, arrays: &[VarId]) -> (usize, Vec<Option<OpId>>) {
    let mut converted = 0;
    let sites: Vec<OpId> = g
        .op_ids()
        .filter(|&o| match g.kind(o) {
            OpKind::LoadIdx { var } | OpKind::StoreIdx { var } => arrays.contains(var),
            _ => false,
        })
        .collect();
    for op in sites {
        let ins = g.in_arcs();
        let outs = g.out_arcs();
        // Gather everything (pure reads of arc indices) before mutating:
        // `disconnect` invalidates arc indices.
        let gather_in = |port: usize| -> (Option<i64>, Vec<(Port, ArcKind)>) {
            (
                g.imm(op, port),
                ins[op.index()][port]
                    .iter()
                    .map(|&ai| (g.arcs()[ai].from, g.arcs()[ai].kind))
                    .collect(),
            )
        };
        let gather_out = |port: usize| -> Vec<(Port, ArcKind)> {
            outs[op.index()][port]
                .iter()
                .map(|&ai| (g.arcs()[ai].to, g.arcs()[ai].kind))
                .collect()
        };
        match *g.kind(op) {
            OpKind::StoreIdx { var } => {
                // Old ports: in [index, value, access]; out [access].
                let (idx_imm, idx_arcs) = gather_in(0);
                let (val_imm, val_arcs) = gather_in(1);
                let (_, line_arcs) = gather_in(2);
                let dests = gather_out(0);

                let ist = g.add_labeled(OpKind::IstStore { var }, "write-once".to_owned());
                if let (Some(idx_c), Some(val_c)) = (idx_imm, val_imm) {
                    // Both operands constant: the store needs *some*
                    // trigger — gate the index on the line token (no
                    // early-fire benefit for this corner, but correct).
                    let gate = g.add(OpKind::Gate);
                    g.set_imm(gate, 0, idx_c);
                    if let Some((src, _)) = line_arcs.first() {
                        g.connect(*src, Port::new(gate, 1), ArcKind::Access);
                    }
                    g.connect(Port::new(gate, 0), Port::new(ist, 0), ArcKind::Value);
                    g.set_imm(ist, 1, val_c);
                } else {
                    rewire_input(g, op, 0, ist, 0, idx_imm, &idx_arcs);
                    rewire_input(g, op, 1, ist, 1, val_imm, &val_arcs);
                }
                // The line bypasses the store but synchronizes with its
                // completion.
                for (src, _) in &line_arcs {
                    g.disconnect(*src, Port::new(op, 2));
                }
                for (d, _) in &dests {
                    g.disconnect(Port::new(op, 0), *d);
                }
                let sy = g.add(OpKind::Synch { inputs: 2 });
                if let Some((src, _)) = line_arcs.first() {
                    g.connect(*src, Port::new(sy, 0), ArcKind::Access);
                }
                g.connect(Port::new(ist, 0), Port::new(sy, 1), ArcKind::Access);
                for (d, kind) in dests {
                    g.connect(Port::new(sy, 0), d, kind);
                }
                converted += 1;
            }
            OpKind::LoadIdx { var } => {
                // Old ports: in [index, access]; out [value, access].
                let (idx_imm, idx_arcs) = gather_in(0);
                let (_, line_arcs) = gather_in(1);
                let value_dests = gather_out(0);
                let access_dests = gather_out(1);

                let ist = g.add_labeled(OpKind::IstLoad { var }, "write-once".to_owned());
                if let Some(idx_c) = idx_imm {
                    // Constant index: gate on the line token as the trigger.
                    let gate = g.add(OpKind::Gate);
                    g.set_imm(gate, 0, idx_c);
                    if let Some((src, _)) = line_arcs.first() {
                        g.connect(*src, Port::new(gate, 1), ArcKind::Access);
                    }
                    g.connect(Port::new(gate, 0), Port::new(ist, 0), ArcKind::Value);
                } else {
                    rewire_input(g, op, 0, ist, 0, idx_imm, &idx_arcs);
                }
                for (to, _) in &value_dests {
                    g.disconnect(Port::new(op, 0), *to);
                    g.connect(Port::new(ist, 0), *to, ArcKind::Value);
                }
                // The line bypasses the load entirely.
                for (src, _) in &line_arcs {
                    g.disconnect(*src, Port::new(op, 1));
                }
                for (d, kind) in &access_dests {
                    g.disconnect(Port::new(op, 1), *d);
                    if let Some((src, _)) = line_arcs.first() {
                        g.connect(*src, *d, *kind);
                    }
                }
                converted += 1;
            }
            _ => unreachable!("filtered above"),
        }
    }
    if converted > 0 {
        let (compacted, map) = g.compact();
        *g = compacted;
        (converted, map)
    } else {
        (0, g.op_ids().map(Some).collect())
    }
}

/// Move an input (immediate or arcs) from `old`'s port to `new`'s port.
fn rewire_input(
    g: &mut Dfg,
    old: OpId,
    from_port: usize,
    new: OpId,
    to_port: usize,
    imm: Option<i64>,
    arcs: &[(Port, ArcKind)],
) {
    if let Some(c) = imm {
        g.set_imm(new, to_port, c);
        return;
    }
    for (src, kind) in arcs {
        g.disconnect(*src, Port::new(old, from_port));
        g.connect(*src, Port::new(new, to_port), *kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{MemLayout, VarTable};
    use cf2df_machine::{run, MachineConfig, MachineError};

    /// start → store a[0] := 5 (slow path) ∥ load a[0] → store result in
    /// a[1]: with ordinary memory the load must be sequenced; with
    /// I-structures the read defers and still gets 5.
    fn graph(t: &mut VarTable) -> (Dfg, VarId) {
        let a = t.array("a", 2);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let st = g.add(OpKind::StoreIdx { var: a });
        g.set_imm(st, 0, 0);
        g.set_imm(st, 1, 5);
        let ld = g.add(OpKind::LoadIdx { var: a });
        g.set_imm(ld, 0, 0);
        let st2 = g.add(OpKind::StoreIdx { var: a });
        g.set_imm(st2, 0, 1);
        // line: start → st → ld → st2 → end; ld value feeds st2's value.
        g.connect(Port::new(s, 0), Port::new(st, 2), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(ld, 1), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(st2, 1), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st2, 2), ArcKind::Access);
        g.connect(Port::new(st2, 0), Port::new(e, 0), ArcKind::Access);
        (g, a)
    }

    #[test]
    fn conversion_preserves_values_in_ist_memory() {
        let mut t = VarTable::new();
        let (mut g, a) = graph(&mut t);
        let layout = MemLayout::distinct(&t);
        let before = run(&g, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap();
        let (n, _) = convert_arrays(&mut g, &[a]);
        assert_eq!(n, 3);
        cf2df_dfg::validate(&g).unwrap();
        let after = run(&g, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap();
        // Values now live in I-structure memory.
        assert_eq!(after.ist_memory, before.memory);
        assert_eq!(after.stats.leftover_tokens, 0);
    }

    #[test]
    fn double_write_faults() {
        let mut t = VarTable::new();
        let a = t.array("a", 2);
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let st1 = g.add(OpKind::StoreIdx { var: a });
        g.set_imm(st1, 0, 0);
        g.set_imm(st1, 1, 1);
        let st2 = g.add(OpKind::StoreIdx { var: a });
        g.set_imm(st2, 0, 0); // same cell!
        g.set_imm(st2, 1, 2);
        g.connect(Port::new(s, 0), Port::new(st1, 2), ArcKind::Access);
        g.connect(Port::new(st1, 0), Port::new(st2, 2), ArcKind::Access);
        g.connect(Port::new(st2, 0), Port::new(e, 0), ArcKind::Access);
        let (n, _) = convert_arrays(&mut g, &[a]);
        assert_eq!(n, 2);
        let err = run(&g, &layout, MachineConfig::unbounded()).unwrap_err();
        assert!(matches!(err, MachineError::Memory(_)), "{err}");
    }

    #[test]
    fn unmatched_read_deadlocks_with_diagnostic() {
        let mut t = VarTable::new();
        let a = t.array("a", 2);
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let ld = g.add(OpKind::LoadIdx { var: a });
        g.set_imm(ld, 0, 1);
        let st = g.add(OpKind::StoreIdx { var: a });
        g.set_imm(st, 0, 0);
        g.connect(Port::new(s, 0), Port::new(ld, 1), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(st, 1), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st, 2), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        let (_, _) = convert_arrays(&mut g, &[a]);
        // a[1] is never written: the read defers forever → deadlock.
        let err = run(&g, &layout, MachineConfig::unbounded()).unwrap_err();
        assert!(matches!(err, MachineError::Deadlock { .. }), "{err}");
    }
}
