//! Parallelizing transformations on translated dataflow graphs (§6).

pub mod array_par;
pub mod cleanup;
pub mod forward;
pub mod istructure;
pub mod read_par;

pub use array_par::parallelize_array_stores;
pub use cleanup::{eliminate_common_subexpressions, eliminate_dead_code};
pub use forward::forward_stores;
pub use istructure::convert_arrays;
pub use read_par::parallelize_reads;
