//! Read parallelization (§6.2).
//!
//! "Consider a sequence of load operations, each of which receives the
//! access from its predecessor and passes it directly to its successor.
//! The predecessor of the first load can safely replicate access and pass
//! it to every operation in the sequence. The replicas must be collected
//! and passed to the successor of the last operation. By parallelizing
//! maximal sequences of load operations, read parallelism is maximized."
//!
//! This is a pure graph rewrite: it finds maximal chains of loads linked
//! by access arcs and fans the incoming access token out to all of them,
//! collecting their completions in a synch tree.

use cf2df_dfg::build::synch_tree;
use cf2df_dfg::{ArcKind, Dfg, OpId, OpKind, Port};

/// The (access-in, access-out) port indices of a load, or `None` if the
/// operator is not an access-threaded load.
fn load_access_ports(kind: &OpKind) -> Option<(usize, usize)> {
    match kind {
        OpKind::Load { .. } => Some((0, 1)),
        OpKind::LoadIdx { .. } => Some((1, 1)),
        _ => None,
    }
}

/// Apply the rewrite; returns the number of chains parallelized.
pub fn parallelize_reads(g: &mut Dfg) -> usize {
    let outs = g.out_arcs();
    let ins = g.in_arcs();

    // next[load] = the load that receives our access token, when that
    // handoff is a simple one-to-one arc.
    let mut next: Vec<Option<OpId>> = vec![None; g.len()];
    let mut has_prev: Vec<bool> = vec![false; g.len()];
    for op in g.op_ids() {
        let Some((_, out_p)) = load_access_ports(g.kind(op)) else {
            continue;
        };
        let out_arcs = &outs[op.index()][out_p];
        if out_arcs.len() != 1 {
            continue; // completion already fans out: leave it alone
        }
        let to = g.arcs()[out_arcs[0]].to;
        let Some((in_p, _)) = load_access_ports(g.kind(to.op)) else {
            continue;
        };
        if to.port as usize != in_p {
            continue; // feeds the value port of another load, not its access
        }
        next[op.index()] = Some(to.op);
        has_prev[to.op.index()] = true;
    }

    // Walk maximal chains from heads.
    let mut chains: Vec<Vec<OpId>> = Vec::new();
    for op in g.op_ids() {
        if load_access_ports(g.kind(op)).is_none() {
            continue;
        }
        if has_prev[op.index()] {
            continue; // not a head
        }
        let mut chain = vec![op];
        let mut cur = op;
        while let Some(n) = next[cur.index()] {
            chain.push(n);
            cur = n;
        }
        if chain.len() >= 2 {
            chains.push(chain);
        }
    }

    let mut rewritten = 0;
    for chain in &chains {
        let head = chain[0];
        let tail = *chain.last().expect("non-empty");
        let (head_in, _) = load_access_ports(g.kind(head)).expect("load");
        let (_, tail_out) = load_access_ports(g.kind(tail)).expect("load");

        // Source feeding the head's access input.
        let head_in_arcs = &ins[head.index()][head_in];
        assert_eq!(head_in_arcs.len(), 1, "access ports are single-fed");
        let source = g.arcs()[head_in_arcs[0]].from;

        // Where the tail's completion currently goes.
        let tail_dests: Vec<Port> = outs[tail.index()][tail_out]
            .iter()
            .map(|&ai| g.arcs()[ai].to)
            .collect();

        // Rewire: source fans to every load; completions synch; tree output
        // feeds the old destinations.
        for &load in &chain[1..] {
            let (in_p, out_p) = load_access_ports(g.kind(load)).expect("load");
            // Remove the chain link into this load.
            let prev = chain[chain.iter().position(|&x| x == load).unwrap() - 1];
            let (_, prev_out) = load_access_ports(g.kind(prev)).expect("load");
            let ok = g.disconnect(Port::new(prev, prev_out), Port::new(load, in_p));
            debug_assert!(ok, "chain arc must exist");
            g.connect(source, Port::new(load, in_p), ArcKind::Access);
            let _ = out_p;
        }
        for &d in &tail_dests {
            let ok = g.disconnect(Port::new(tail, tail_out), d);
            debug_assert!(ok);
        }
        let completions: Vec<Port> = chain
            .iter()
            .map(|&ld| {
                let (_, out_p) = load_access_ports(g.kind(ld)).expect("load");
                Port::new(ld, out_p)
            })
            .collect();
        let tree = synch_tree(g, &completions, ArcKind::Access).expect("≥2 loads");
        for &d in &tail_dests {
            g.connect(tree, d, ArcKind::Access);
        }
        rewritten += 1;
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{MemLayout, VarId, VarTable};
    use cf2df_machine::{run, MachineConfig};

    /// start → load v0 → load v0 → load v0 → end (access chain), values
    /// discarded into a sum for determinism.
    fn chain_graph(n: usize) -> (Dfg, MemLayout) {
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let mut prev = Port::new(s, 0);
        for _ in 0..n {
            let ld = g.add(OpKind::Load { var: VarId(0) });
            g.connect(prev, Port::new(ld, 0), ArcKind::Access);
            prev = Port::new(ld, 1);
        }
        g.connect(prev, Port::new(e, 0), ArcKind::Access);
        (g, layout)
    }

    #[test]
    fn chain_is_flattened() {
        let (mut g, layout) = chain_graph(4);
        let before = run(&g, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap();
        let n = parallelize_reads(&mut g);
        assert_eq!(n, 1);
        cf2df_dfg::validate(&g).unwrap();
        let after = run(&g, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap();
        // 4 sequential loads at latency 10 ≈ 40+; parallel ≈ 10 + tree.
        assert!(
            after.stats.makespan < before.stats.makespan / 2,
            "sequential {} vs parallel {}",
            before.stats.makespan,
            after.stats.makespan
        );
        assert_eq!(after.memory, before.memory);
    }

    #[test]
    fn single_load_untouched() {
        let (mut g, _) = chain_graph(1);
        let ops_before = g.len();
        assert_eq!(parallelize_reads(&mut g), 0);
        assert_eq!(g.len(), ops_before);
    }

    #[test]
    fn store_breaks_the_chain() {
        // load → store → load: not parallelizable across the store.
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let l1 = g.add(OpKind::Load { var: VarId(0) });
        let st = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(st, 0, 9);
        let l2 = g.add(OpKind::Load { var: VarId(0) });
        g.connect(Port::new(s, 0), Port::new(l1, 0), ArcKind::Access);
        g.connect(Port::new(l1, 1), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(l2, 0), ArcKind::Access);
        g.connect(Port::new(l2, 1), Port::new(e, 0), ArcKind::Access);
        assert_eq!(parallelize_reads(&mut g), 0);
        let _ = layout;
    }

    #[test]
    fn mixed_load_kinds_chain() {
        let mut t = VarTable::new();
        t.scalar("x");
        let a = t.array("a", 4);
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let e = g.add(OpKind::End { inputs: 1 });
        let l1 = g.add(OpKind::Load { var: VarId(0) });
        let l2 = g.add(OpKind::LoadIdx { var: a });
        g.set_imm(l2, 0, 2);
        g.connect(Port::new(s, 0), Port::new(l1, 0), ArcKind::Access);
        g.connect(Port::new(l1, 1), Port::new(l2, 1), ArcKind::Access);
        g.connect(Port::new(l2, 1), Port::new(e, 0), ArcKind::Access);
        assert_eq!(parallelize_reads(&mut g), 1);
        cf2df_dfg::validate(&g).unwrap();
        run(&g, &layout, MachineConfig::unbounded()).unwrap();
    }
}
