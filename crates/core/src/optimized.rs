//! The optimized direct construction (§4.2): build the dataflow graph from
//! switch placement and source vectors, creating **no redundant switches**
//! — tokens bypass every region that does not reference them.

use crate::lines::{LineId, LineMode, Lines};
use crate::source_vec::{SourceVectors, SvSrc};
use crate::stmt_tr::{translate_fork, StmtCtx};
use crate::switch_place::SwitchPlacement;
use crate::translator::{Built, LineOps};
use cf2df_cfg::intervals::Irreducible;
use cf2df_cfg::loop_control::LoopControlled;
use cf2df_cfg::reach::topo_order_ignoring_backedges;
use cf2df_cfg::{Cfg, FunctionContext, LoopForest, NodeId, OutDir, Stmt};
use cf2df_dfg::build::merge as merge_build;
use cf2df_dfg::{ArcKind, Dfg, OpKind, Port};
use std::collections::HashMap;

fn arc_kind(lines: &Lines, l: LineId) -> ArcKind {
    match lines.mode(l) {
        LineMode::Access => ArcKind::Access,
        LineMode::Value(_) => ArcKind::Value,
    }
}

/// Build the optimized dataflow graph for a loop-controlled CFG.
///
/// An irreducible CFG is a diagnosable input error, not a programming
/// error, so it surfaces as `Err` rather than a panic.
pub fn construct(lc: &LoopControlled, lines: &Lines) -> Result<Built, Irreducible> {
    let sp = SwitchPlacement::compute(lc, lines);
    construct_with(lc, lines, &sp)
}

/// As [`construct`], reusing a precomputed switch placement.
pub fn construct_with(
    lc: &LoopControlled,
    lines: &Lines,
    sp: &SwitchPlacement,
) -> Result<Built, Irreducible> {
    let sv = SourceVectors::compute(lc, lines, sp)?;
    let cfg = &lc.cfg;
    let forest = LoopForest::compute(cfg)?;
    let backedges = forest.backedge_indices(cfg);
    let order = topo_order_ignoring_backedges(cfg, &backedges);
    Ok(construct_body(cfg, lines, sp, &sv, &order))
}

/// [`construct`] drawing the topological order from a
/// [`FunctionContext`]'s cache and reusing precomputed switch placement
/// and source vectors (the pass manager computes those as their own
/// stages).
pub fn construct_cached(
    fctx: &mut FunctionContext,
    lines: &Lines,
    sp: &SwitchPlacement,
    sv: &SourceVectors,
) -> Result<Built, Irreducible> {
    let order = fctx.topo_order()?;
    Ok(construct_body(fctx.cfg(), lines, sp, sv, &order))
}

/// The §4.2 construction core, parameterized over precomputed analyses.
fn construct_body(
    cfg: &Cfg,
    lines: &Lines,
    sp: &SwitchPlacement,
    sv: &SourceVectors,
    order: &[NodeId],
) -> Built {
    let n_lines = lines.n();

    let mut g = Dfg::new();
    let start_op = g.add(OpKind::Start);
    let end_op = g.add(OpKind::End {
        inputs: n_lines.max(1) as u32,
    });
    let mut ops = LineOps::default();

    // Resolved output port per (node, out-direction, line).
    let mut port_of: HashMap<(NodeId, OutDir, LineId), Port> = HashMap::new();
    let resolve = |port_of: &HashMap<(NodeId, OutDir, LineId), Port>, s: SvSrc, l: LineId| {
        *port_of
            .get(&(s.node, s.dir, l))
            .unwrap_or_else(|| panic!("unresolved source {s:?} for {l:?}"))
    };

    for &n in order {
        match cfg.stmt(n) {
            Stmt::Start => {
                for l in lines.ids() {
                    port_of.insert((n, OutDir::TRUE, l), Port::new(start_op, 0));
                }
            }
            Stmt::End => {
                for (i, l) in lines.ids().enumerate() {
                    let srcs: Vec<Port> = sv
                        .at(n, l)
                        .iter()
                        .map(|&s| resolve(&port_of, s, l))
                        .collect();
                    assert!(!srcs.is_empty(), "line {l:?} never reaches end");
                    let mut src =
                        merge_build(&mut g, &srcs, arc_kind(lines, l)).expect("non-empty");
                    if let LineMode::Value(v) = lines.mode(l) {
                        let st = g.add_labeled(
                            OpKind::Store { var: v },
                            format!("writeback {}", lines.name(l)),
                        );
                        g.connect(src, Port::new(st, 0), ArcKind::Value);
                        g.connect(src, Port::new(st, 1), ArcKind::Value);
                        src = Port::new(st, 0);
                    }
                    g.connect(src, Port::new(end_op, i), ArcKind::Access);
                }
                if n_lines == 0 {
                    g.connect(Port::new(start_op, 0), Port::new(end_op, 0), ArcKind::Access);
                }
            }
            Stmt::Join => {
                for l in lines.ids() {
                    let srcs = sv.at(n, l);
                    if srcs.len() >= 2 {
                        let resolved: Vec<Port> =
                            srcs.iter().map(|&s| resolve(&port_of, s, l)).collect();
                        let m = g.add_labeled(
                            OpKind::Merge,
                            format!("{} @{n:?}", lines.name(l)),
                        );
                        for p in resolved {
                            g.connect(p, Port::new(m, 0), arc_kind(lines, l));
                        }
                        port_of.insert((n, OutDir::TRUE, l), Port::new(m, 0));
                    }
                }
            }
            Stmt::Assign { lhs, rhs } => {
                let refs = sp.refs(n).to_vec();
                let mut cur: Vec<Option<Port>> = vec![None; n_lines];
                for &l in &refs {
                    let srcs = sv.at(n, l);
                    assert_eq!(srcs.len(), 1, "statement source must be unique");
                    cur[l.index()] = Some(resolve(&port_of, srcs[0], l));
                }
                {
                    let mut ctx = StmtCtx::new(&mut g, lines, &mut cur);
                    ctx.assign(lhs, rhs);
                }
                for &l in &refs {
                    port_of.insert((n, OutDir::TRUE, l), cur[l.index()].expect("threaded"));
                }
            }
            Stmt::Branch { pred } | Stmt::Case { selector: pred } => {
                let pred_lines: Vec<LineId> = {
                    let mut v = Vec::new();
                    for var in pred.vars() {
                        for &l in lines.access_lines(var) {
                            if !v.contains(&l) {
                                v.push(l);
                            }
                        }
                    }
                    v
                };
                let switched = sp.switch_lines(n, lines);
                let mut cur: Vec<Option<Port>> = vec![None; n_lines];
                for l in pred_lines.iter().chain(switched.iter()) {
                    if cur[l.index()].is_none() {
                        let srcs = sv.at(n, *l);
                        assert_eq!(srcs.len(), 1, "switch/pred source must be unique");
                        cur[l.index()] = Some(resolve(&port_of, srcs[0], *l));
                    }
                }
                let n_dirs = cfg.succs(n).len();
                let outs = translate_fork(&mut g, lines, &mut cur, pred, n_dirs, &switched);
                for (l, ports) in outs {
                    ops.switches.insert((n, l), ports[0].op);
                    for (i, &p) in ports.iter().enumerate() {
                        port_of.insert((n, OutDir::from_edge_index(i), l), p);
                    }
                }
                // Predicate-read lines without a switch: regenerated by the
                // read block, then bypass to the postdominator.
                for &l in &pred_lines {
                    if !switched.contains(&l) {
                        port_of.insert(
                            (n, OutDir::TRUE, l),
                            cur[l.index()].expect("read block regenerates"),
                        );
                    }
                }
            }
            Stmt::LoopEntry { loop_id } => {
                for &l in sp.refs(n) {
                    let le = g.add_labeled(
                        OpKind::LoopEntry { loop_id: *loop_id },
                        format!("{} @{n:?}", lines.name(l)),
                    );
                    ops.loop_entries.insert((n, l), le);
                    for &s in sv.at(n, l) {
                        let p = resolve(&port_of, s, l);
                        g.connect(p, Port::new(le, 0), arc_kind(lines, l));
                    }
                    port_of.insert((n, OutDir::TRUE, l), Port::new(le, 0));
                }
            }
            Stmt::LoopExit { loop_id } => {
                for &l in sp.refs(n) {
                    let srcs = sv.at(n, l);
                    assert_eq!(srcs.len(), 1, "loop exit source must be unique");
                    let p = resolve(&port_of, srcs[0], l);
                    let lx = g.add_labeled(
                        OpKind::LoopExit { loop_id: *loop_id },
                        format!("{} @{n:?}", lines.name(l)),
                    );
                    ops.loop_exits.insert((n, l), lx);
                    g.connect(p, Port::new(lx, 0), arc_kind(lines, l));
                    port_of.insert((n, OutDir::TRUE, l), Port::new(lx, 0));
                }
            }
        }
    }

    // Backedge wiring into loop-entry port 1.
    for n in cfg.node_ids() {
        if !matches!(cfg.stmt(n), Stmt::LoopEntry { .. }) {
            continue;
        }
        for &l in sp.refs(n) {
            let le = ops.loop_entries[&(n, l)];
            for &s in sv.back_at(n, l) {
                let p = resolve(&port_of, s, l);
                g.connect(p, Port::new(le, 1), arc_kind(lines, l));
            }
        }
    }

    Built { dfg: g, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::loop_control::insert_loop_control;
    use cf2df_cfg::{Cover, CoverStrategy};
    use cf2df_dfg::validate::redundant_switches;
    use cf2df_lang::parse_to_cfg;

    fn build(src: &str) -> Built {
        build_opts(src, false)
    }

    fn build_opts(src: &str, elim: bool) -> Built {
        let parsed = parse_to_cfg(src).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, elim);
        construct(&lc, &lines).unwrap()
    }

    #[test]
    fn corpus_builds_and_validates() {
        for (name, src) in cf2df_lang::corpus::all() {
            let built = build(src);
            cf2df_dfg::validate(&built.dfg)
                .unwrap_or_else(|e| panic!("{name}: {e:?}\n{}", built.dfg.pretty()));
        }
    }

    #[test]
    fn no_redundant_switches_anywhere() {
        for (name, src) in cf2df_lang::corpus::all() {
            let built = build(src);
            assert!(
                redundant_switches(&built.dfg).is_empty(),
                "{name} has redundant switches"
            );
        }
    }

    #[test]
    fn fig9_has_fewer_switches_than_schema2() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::FIG9).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
        let full = crate::translator::translate_full(&lc.cfg, &lines).unwrap();
        let opt = construct(&lc, &lines).unwrap();
        let s_full = cf2df_dfg::DfgStats::of(&full.dfg).switches;
        let s_opt = cf2df_dfg::DfgStats::of(&opt.dfg).switches;
        assert_eq!(s_full, 4, "Schema 2 switches all four variables");
        assert_eq!(s_opt, 2, "optimized keeps only y and z switches");
    }

    #[test]
    fn memory_elimination_composes() {
        for (name, src) in cf2df_lang::corpus::all() {
            let built = build_opts(src, true);
            cf2df_dfg::validate(&built.dfg)
                .unwrap_or_else(|e| panic!("{name}: {e:?}"));
        }
    }

    #[test]
    fn loop_entries_only_for_circulating_lines() {
        let src = "
            u := 1;
            x := 0;
            while x < 4 do { x := x + 1; }
            u := u + x;
        ";
        let built = build(src);
        let stats = cf2df_dfg::DfgStats::of(&built.dfg);
        // Only x circulates: 1 loop entry + 1 loop exit.
        assert_eq!(stats.loop_control, 2);
    }
}
