//! One-call translation pipeline: CFG → (node splitting) → loop control →
//! schema translation → §6 transforms.

use crate::lines::Lines;
use crate::translator::{translate_full, Built};
use cf2df_cfg::intervals::Irreducible;
use cf2df_cfg::loop_control::{insert_loop_control, split_irreducible, LoopControlled};
use cf2df_cfg::{AliasStructure, Cfg, CfgError, Cover, CoverStrategy, LoopForest};
use cf2df_dfg::{Dfg, DfgStats};
use std::fmt;

/// Which translation schema to apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Schema {
    /// §2.3: a single access token (sequential semantics).
    One,
    /// §3: one access token per variable. Requires an alias-free program.
    Two,
    /// §5: one access token per cover element of the alias structure.
    Three(CoverStrategy),
}

/// Translation options. Start from one of the constructors and adjust
/// fields as needed.
#[derive(Clone, Debug)]
pub struct TranslateOptions {
    /// The schema.
    pub schema: Schema,
    /// Apply the §4 optimized direct construction (no redundant switches).
    pub optimized: bool,
    /// Apply §6.1 memory elimination for unaliased scalars.
    pub eliminate_memory: bool,
    /// Apply the §6.2 read-parallelization rewrite.
    pub parallelize_reads: bool,
    /// Apply the §6.3 / Fig 14 array-store parallelization rewrite.
    pub parallelize_array_stores: bool,
    /// Apply §6.2 store-to-load forwarding.
    pub forward_stores: bool,
    /// Gather multi-token access sets with one flat n-ary synch instead of
    /// a binary synch tree (ablation of the Fig 2 synch-tree realization:
    /// trees pipeline in O(log n) depth, flat synchs are single operators).
    pub flat_synch: bool,
    /// Run the dataflow-IR cleanup passes (common-subexpression and dead
    /// code elimination) after everything else — the "conventional
    /// optimizations" the paper's abstract promises the IR supports.
    pub cleanup: bool,
    /// Arrays (by name) to place in write-once I-structure memory
    /// (§6.3's enhancement). **Opt-in and unchecked**: the caller asserts
    /// each listed array is written at most once per cell and that every
    /// read cell is eventually written; violations fault or deadlock at
    /// run time rather than corrupt results. Unknown names are ignored.
    pub istructure_arrays: Vec<String>,
    /// Insert loop control (§3). Disabling this on a cyclic program
    /// reproduces the paper's broken Fig 8 graph, whose token collisions
    /// the machine detects.
    pub loop_control: bool,
    /// Make irreducible CFGs reducible by node splitting first.
    pub split_irreducible: bool,
}

impl TranslateOptions {
    /// Schema 1: the sequential baseline.
    pub fn schema1() -> Self {
        TranslateOptions {
            schema: Schema::One,
            optimized: false,
            eliminate_memory: false,
            parallelize_reads: false,
            parallelize_array_stores: false,
            forward_stores: false,
            flat_synch: false,
            cleanup: false,
            istructure_arrays: Vec::new(),
            loop_control: true,
            split_irreducible: true,
        }
    }

    /// Schema 2: per-variable tokens.
    pub fn schema2() -> Self {
        TranslateOptions {
            schema: Schema::Two,
            ..Self::schema1()
        }
    }

    /// Schema 3 with the given cover strategy.
    pub fn schema3(cover: CoverStrategy) -> Self {
        TranslateOptions {
            schema: Schema::Three(cover),
            ..Self::schema1()
        }
    }

    /// The §4 optimized construction over per-variable tokens.
    pub fn optimized() -> Self {
        TranslateOptions {
            optimized: true,
            ..Self::schema2()
        }
    }

    /// Everything on: optimized construction plus all §6 transforms.
    pub fn full_parallel() -> Self {
        TranslateOptions {
            optimized: true,
            eliminate_memory: true,
            parallelize_reads: true,
            parallelize_array_stores: true,
            forward_stores: true,
            cleanup: true,
            ..Self::schema2()
        }
    }

    /// Builder-style field toggles.
    pub fn with_optimized(mut self, on: bool) -> Self {
        self.optimized = on;
        self
    }

    /// Toggle §6.1 memory elimination.
    pub fn with_memory_elimination(mut self, on: bool) -> Self {
        self.eliminate_memory = on;
        self
    }

    /// Toggle the §6.2 read-parallelization rewrite.
    pub fn with_read_parallelization(mut self, on: bool) -> Self {
        self.parallelize_reads = on;
        self
    }

    /// Toggle the §6.3 array-store rewrite.
    pub fn with_array_parallelization(mut self, on: bool) -> Self {
        self.parallelize_array_stores = on;
        self
    }

    /// Toggle loop control (disable only to reproduce Fig 8's failure).
    pub fn with_loop_control(mut self, on: bool) -> Self {
        self.loop_control = on;
        self
    }

    /// Toggle §6.2 store-to-load forwarding.
    pub fn with_store_forwarding(mut self, on: bool) -> Self {
        self.forward_stores = on;
        self
    }

    /// Toggle flat n-ary token gathering (ablation).
    pub fn with_flat_synch(mut self, on: bool) -> Self {
        self.flat_synch = on;
        self
    }

    /// Toggle the CSE/DCE cleanup passes.
    pub fn with_cleanup(mut self, on: bool) -> Self {
        self.cleanup = on;
        self
    }

    /// Declare arrays as write-once I-structures (§6.3; see the field docs
    /// for the caller's obligations).
    pub fn with_istructure_arrays<S: Into<String>>(
        mut self,
        names: impl IntoIterator<Item = S>,
    ) -> Self {
        self.istructure_arrays = names.into_iter().map(Into::into).collect();
        self
    }
}

/// Why a translation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// The CFG violates the §2.1 invariants.
    Cfg(Vec<CfgError>),
    /// The CFG is irreducible and node splitting was disabled (or blew up).
    Irreducible(Irreducible),
    /// Schema 2 was requested for a program with aliasing (§3 assumes none;
    /// use Schema 3).
    AliasingRequiresSchema3,
    /// The optimized construction requires loop control.
    OptimizedNeedsLoopControl,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Cfg(errs) => {
                write!(f, "invalid CFG: ")?;
                for e in errs {
                    write!(f, "{e}; ")?;
                }
                Ok(())
            }
            TranslateError::Irreducible(e) => write!(f, "{e}"),
            TranslateError::AliasingRequiresSchema3 => {
                write!(f, "Schema 2 assumes no aliasing; use Schema 3 with a cover")
            }
            TranslateError::OptimizedNeedsLoopControl => {
                write!(f, "the optimized construction requires loop control")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// A completed translation.
#[derive(Clone, Debug)]
pub struct Translated {
    /// The dataflow graph.
    pub dfg: Dfg,
    /// The CFG actually translated (after node splitting and loop-control
    /// insertion).
    pub cfg: Cfg,
    /// Loop-control metadata, when loop control was inserted.
    pub loop_controlled: Option<LoopControlled>,
    /// The token-line structure used.
    pub lines: Lines,
    /// Operator bookkeeping from the construction.
    pub ops: crate::translator::LineOps,
    /// Graph statistics.
    pub stats: DfgStats,
    /// Number of §6.2 load chains parallelized.
    pub read_chains_parallelized: usize,
    /// §6.3 sites rewritten.
    pub array_sites_parallelized: usize,
    /// §6.2 loads eliminated by store-to-load forwarding.
    pub stores_forwarded: usize,
    /// Element operations converted to I-structure operations (§6.3).
    pub istructure_ops: usize,
    /// Operators removed by the CSE/DCE cleanup passes.
    pub ops_cleaned: usize,
}

/// Translate a control-flow graph into a dataflow graph.
pub fn translate(
    cfg: &Cfg,
    alias: &AliasStructure,
    opts: &TranslateOptions,
) -> Result<Translated, TranslateError> {
    cfg.validate().map_err(TranslateError::Cfg)?;
    let cover_strategy = match &opts.schema {
        Schema::One => CoverStrategy::SingleToken,
        Schema::Two => {
            if !alias.is_identity() {
                return Err(TranslateError::AliasingRequiresSchema3);
            }
            CoverStrategy::Singletons
        }
        Schema::Three(c) => c.clone(),
    };
    if opts.optimized && !opts.loop_control {
        return Err(TranslateError::OptimizedNeedsLoopControl);
    }

    // Reducibility (with optional node splitting).
    let working: Cfg = if LoopForest::compute(cfg).is_ok() {
        cfg.clone()
    } else if opts.split_irreducible {
        split_irreducible(cfg).map_err(TranslateError::Irreducible)?
    } else {
        return Err(TranslateError::Irreducible(
            LoopForest::compute(cfg).unwrap_err(),
        ));
    };

    let cover = Cover::build(&cover_strategy, alias);
    let lines = Lines::new(&working.vars, alias, &cover, opts.eliminate_memory)
        .with_flat_synch(opts.flat_synch);

    let (built, final_cfg, lc): (Built, Cfg, Option<LoopControlled>) = if opts.loop_control {
        let lc = insert_loop_control(&working).map_err(TranslateError::Irreducible)?;
        let built = if opts.optimized {
            crate::optimized::construct(&lc, &lines)
        } else {
            translate_full(&lc.cfg, &lines)
        };
        (built, lc.cfg.clone(), Some(lc))
    } else {
        (translate_full(&working, &lines), working, None)
    };

    let mut built = built;
    let mut array_sites = 0;
    if opts.parallelize_array_stores {
        if let Some(lc) = &lc {
            array_sites = crate::transform::parallelize_array_stores(&mut built, lc, &lines).len();
        }
    }
    let mut read_chains = 0;
    if opts.parallelize_reads {
        read_chains = crate::transform::parallelize_reads(&mut built.dfg);
    }
    let mut stores_forwarded = 0;
    if opts.forward_stores {
        let (n, map) = crate::transform::forward_stores(&mut built.dfg);
        stores_forwarded = n;
        built.ops.remap(&map);
    }
    let mut ops_cleaned = 0;
    if opts.cleanup {
        let (c, map) = crate::transform::eliminate_common_subexpressions(&mut built.dfg);
        built.ops.remap(&map);
        let (d, map) = crate::transform::eliminate_dead_code(&mut built.dfg);
        built.ops.remap(&map);
        ops_cleaned = c + d;
    }
    let mut istructure_ops = 0;
    if !opts.istructure_arrays.is_empty() {
        let ids: Vec<cf2df_cfg::VarId> = opts
            .istructure_arrays
            .iter()
            .filter_map(|name| final_cfg.vars.lookup(name))
            .collect();
        let (n, map) = crate::transform::convert_arrays(&mut built.dfg, &ids);
        istructure_ops = n;
        built.ops.remap(&map);
    }

    let stats = DfgStats::of(&built.dfg);
    debug_assert!(
        cf2df_dfg::validate(&built.dfg).is_ok(),
        "translator produced an invalid graph:\n{}",
        built.dfg.pretty()
    );
    Ok(Translated {
        dfg: built.dfg,
        cfg: final_cfg,
        loop_controlled: lc,
        lines,
        ops: built.ops,
        stats,
        read_chains_parallelized: read_chains,
        array_sites_parallelized: array_sites,
        stores_forwarded,
        istructure_ops,
        ops_cleaned,
    })
}

impl TranslateOptions {
    /// `full_parallel` but over Schema 3 singleton covers (works with
    /// aliasing).
    pub fn full_parallel_schema3() -> Self {
        TranslateOptions {
            schema: Schema::Three(CoverStrategy::Singletons),
            ..Self::full_parallel()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_lang::parse_to_cfg;

    #[test]
    fn all_schemas_translate_corpus() {
        for (name, src) in cf2df_lang::corpus::all() {
            let parsed = parse_to_cfg(src).unwrap();
            let schemas: Vec<TranslateOptions> = vec![
                TranslateOptions::schema1(),
                TranslateOptions::schema3(CoverStrategy::Singletons),
                TranslateOptions::schema3(CoverStrategy::AliasClasses),
                TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
                TranslateOptions::full_parallel_schema3(),
            ];
            for (i, o) in schemas.iter().enumerate() {
                let t = translate(&parsed.cfg, &parsed.alias, o)
                    .unwrap_or_else(|e| panic!("{name} opts#{i}: {e}"));
                cf2df_dfg::validate(&t.dfg).unwrap_or_else(|e| panic!("{name} opts#{i}: {e:?}"));
            }
        }
    }

    #[test]
    fn schema2_rejects_aliasing() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::FORTRAN_ALIAS).unwrap();
        let err = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap_err();
        assert_eq!(err, TranslateError::AliasingRequiresSchema3);
        // Schema 3 handles it.
        translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons),
        )
        .unwrap();
    }

    #[test]
    fn optimized_requires_loop_control() {
        let parsed = parse_to_cfg("x := 1;").unwrap();
        let opts = TranslateOptions::optimized().with_loop_control(false);
        assert_eq!(
            translate(&parsed.cfg, &parsed.alias, &opts).unwrap_err(),
            TranslateError::OptimizedNeedsLoopControl
        );
    }

    #[test]
    fn array_loop_gets_fig14_rewrite() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::ARRAY_LOOP).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema2().with_array_parallelization(true),
        )
        .unwrap();
        assert_eq!(t.array_sites_parallelized, 1);
    }

    #[test]
    fn read_parallelization_reports_chains() {
        // Consecutive statements reading x force a load chain on x's line.
        let src = "x := 3; a := x + 1; b := x * 2; c := x - 1;";
        let parsed = parse_to_cfg(src).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema2().with_read_parallelization(true),
        )
        .unwrap();
        assert!(t.read_chains_parallelized >= 1);
    }

    #[test]
    fn invalid_cfg_is_rejected() {
        // Hand-build a CFG with an unreachable node.
        let mut vars = cf2df_cfg::VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = cf2df_cfg::Cfg::new(vars);
        let a = cfg.add_node(cf2df_cfg::Stmt::Assign {
            lhs: cf2df_cfg::LValue::Var(x),
            rhs: cf2df_cfg::Expr::Const(1),
        });
        cfg.set_entry(a);
        cfg.add_edge(a, cfg.end());
        let orphan = cfg.add_node(cf2df_cfg::Stmt::Join);
        cfg.add_edge(orphan, cfg.end());
        let alias = cf2df_cfg::AliasStructure::for_table(&cfg.vars);
        let err = translate(&cfg, &alias, &TranslateOptions::schema2()).unwrap_err();
        assert!(matches!(err, TranslateError::Cfg(_)));
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn irreducible_without_splitting_is_rejected() {
        let parsed = parse_to_cfg(
            "x:=0; if x==0 then { goto a; } else { goto b; }
             a: x:=x+1; if x>9 then { goto end; } else { skip; } goto b;
             b: x:=x+2; if x>9 then { goto end; } else { skip; } goto a;",
        )
        .unwrap();
        let mut opts = TranslateOptions::schema2();
        opts.split_irreducible = false;
        let err = translate(&parsed.cfg, &parsed.alias, &opts).unwrap_err();
        assert!(matches!(err, TranslateError::Irreducible(_)));
        // With splitting (the default) it works and is correct.
        let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
        cf2df_dfg::validate(&t.dfg).unwrap();
    }

    #[test]
    fn stats_are_populated() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::RUNNING_EXAMPLE).unwrap();
        let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
        assert!(t.stats.ops > 0);
        assert!(t.stats.switches >= 2);
        assert!(t.loop_controlled.is_some());
    }
}
