//! One-call translation pipeline: CFG → (node splitting) → loop control →
//! schema translation → §6 transforms.
//!
//! The pipeline is a sequence of named [`Pass`] stages run by a
//! [`PassManager`] over a single [`PassCtx`]: the CFG is owned by a
//! [`FunctionContext`] whose analysis cache memoizes dominators,
//! postdominators, control dependence, the loop forest, topological
//! order, predecessor lists, validity, and alias covers. Stages that
//! mutate the CFG (node splitting, loop-control insertion) bump its
//! revision and invalidate only what they can change; every other stage
//! reads analyses through the cache, so one full translation computes
//! each analysis at most once per CFG revision.

use crate::lines::Lines;
use crate::pass::{Pass, PassCtx, PassManager, PassRecord};
use crate::source_vec::SourceVectors;
use crate::switch_place::SwitchPlacement;
use crate::translator::translate_full_cached;
use cf2df_cfg::intervals::Irreducible;
use cf2df_cfg::loop_control::{
    insert_loop_control_in_place, split_irreducible, LoopControlMeta,
};
use cf2df_cfg::{
    AliasStructure, CacheStats, Cfg, CfgError, CoverStrategy, FunctionContext, Preserved,
};
use cf2df_dfg::{Dfg, DfgStats};
use std::fmt;

/// Which translation schema to apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Schema {
    /// §2.3: a single access token (sequential semantics).
    One,
    /// §3: one access token per variable. Requires an alias-free program.
    Two,
    /// §5: one access token per cover element of the alias structure.
    Three(CoverStrategy),
}

/// Translation options. Start from one of the constructors and adjust
/// fields as needed.
#[derive(Clone, Debug)]
pub struct TranslateOptions {
    /// The schema.
    pub schema: Schema,
    /// Apply the §4 optimized direct construction (no redundant switches).
    pub optimized: bool,
    /// Apply §6.1 memory elimination for unaliased scalars.
    pub eliminate_memory: bool,
    /// Apply the §6.2 read-parallelization rewrite.
    pub parallelize_reads: bool,
    /// Apply the §6.3 / Fig 14 array-store parallelization rewrite.
    pub parallelize_array_stores: bool,
    /// Apply §6.2 store-to-load forwarding.
    pub forward_stores: bool,
    /// Gather multi-token access sets with one flat n-ary synch instead of
    /// a binary synch tree (ablation of the Fig 2 synch-tree realization:
    /// trees pipeline in O(log n) depth, flat synchs are single operators).
    pub flat_synch: bool,
    /// Run the dataflow-IR cleanup passes (common-subexpression and dead
    /// code elimination) after everything else — the "conventional
    /// optimizations" the paper's abstract promises the IR supports.
    pub cleanup: bool,
    /// Arrays (by name) to place in write-once I-structure memory
    /// (§6.3's enhancement). **Opt-in and unchecked**: the caller asserts
    /// each listed array is written at most once per cell and that every
    /// read cell is eventually written; violations fault or deadlock at
    /// run time rather than corrupt results. Unknown names are ignored.
    pub istructure_arrays: Vec<String>,
    /// Run the static translation validator ([`crate::certify`]) as the
    /// last stage: token-rate certification of the produced graph, the
    /// Theorem 1 switch-placement cross-check, and access-token
    /// conservation. On by default; requires loop control (the Fig 8
    /// reproduction graphs are deliberately uncertifiable, so the pass is
    /// skipped when `loop_control` is off).
    pub certify: bool,
    /// Insert loop control (§3). Disabling this on a cyclic program
    /// reproduces the paper's broken Fig 8 graph, whose token collisions
    /// the machine detects.
    pub loop_control: bool,
    /// Make irreducible CFGs reducible by node splitting first.
    pub split_irreducible: bool,
    /// Fuse maximal linear operator chains into compound `Macro` actors
    /// ([`cf2df_dfg::fuse`]) after certification, eliding their interior
    /// tokens, rendezvous slots, and firings at execution time. On by
    /// default; a pure machine-level coarsening that leaves Schema 1–3
    /// semantics and tag allocation untouched. Runs only with loop
    /// control on (like `certify` — the Fig 8 reproduction graphs are
    /// left byte-for-byte as the paper draws them).
    pub fuse: bool,
}

impl TranslateOptions {
    /// Schema 1: the sequential baseline.
    pub fn schema1() -> Self {
        TranslateOptions {
            schema: Schema::One,
            optimized: false,
            eliminate_memory: false,
            parallelize_reads: false,
            parallelize_array_stores: false,
            forward_stores: false,
            flat_synch: false,
            cleanup: false,
            istructure_arrays: Vec::new(),
            certify: true,
            loop_control: true,
            split_irreducible: true,
            fuse: true,
        }
    }

    /// Schema 2: per-variable tokens.
    pub fn schema2() -> Self {
        TranslateOptions {
            schema: Schema::Two,
            ..Self::schema1()
        }
    }

    /// Schema 3 with the given cover strategy.
    pub fn schema3(cover: CoverStrategy) -> Self {
        TranslateOptions {
            schema: Schema::Three(cover),
            ..Self::schema1()
        }
    }

    /// The §4 optimized construction over per-variable tokens.
    pub fn optimized() -> Self {
        TranslateOptions {
            optimized: true,
            ..Self::schema2()
        }
    }

    /// Everything on: optimized construction plus all §6 transforms.
    pub fn full_parallel() -> Self {
        TranslateOptions {
            optimized: true,
            eliminate_memory: true,
            parallelize_reads: true,
            parallelize_array_stores: true,
            forward_stores: true,
            cleanup: true,
            ..Self::schema2()
        }
    }

    /// `full_parallel` but over Schema 3 singleton covers (works with
    /// aliasing).
    pub fn full_parallel_schema3() -> Self {
        TranslateOptions {
            schema: Schema::Three(CoverStrategy::Singletons),
            ..Self::full_parallel()
        }
    }

    /// Builder-style field toggles.
    pub fn with_optimized(mut self, on: bool) -> Self {
        self.optimized = on;
        self
    }

    /// Toggle §6.1 memory elimination.
    pub fn with_memory_elimination(mut self, on: bool) -> Self {
        self.eliminate_memory = on;
        self
    }

    /// Toggle the §6.2 read-parallelization rewrite.
    pub fn with_read_parallelization(mut self, on: bool) -> Self {
        self.parallelize_reads = on;
        self
    }

    /// Toggle the §6.3 array-store rewrite.
    pub fn with_array_parallelization(mut self, on: bool) -> Self {
        self.parallelize_array_stores = on;
        self
    }

    /// Toggle loop control (disable only to reproduce Fig 8's failure).
    pub fn with_loop_control(mut self, on: bool) -> Self {
        self.loop_control = on;
        self
    }

    /// Toggle the static translation validator.
    pub fn with_certify(mut self, on: bool) -> Self {
        self.certify = on;
        self
    }

    /// Toggle macro-op fusion (the post-certify chain coarsening).
    pub fn with_fuse(mut self, on: bool) -> Self {
        self.fuse = on;
        self
    }

    /// Toggle §6.2 store-to-load forwarding.
    pub fn with_store_forwarding(mut self, on: bool) -> Self {
        self.forward_stores = on;
        self
    }

    /// Toggle flat n-ary token gathering (ablation).
    pub fn with_flat_synch(mut self, on: bool) -> Self {
        self.flat_synch = on;
        self
    }

    /// Toggle the CSE/DCE cleanup passes.
    pub fn with_cleanup(mut self, on: bool) -> Self {
        self.cleanup = on;
        self
    }

    /// Declare arrays as write-once I-structures (§6.3; see the field docs
    /// for the caller's obligations).
    pub fn with_istructure_arrays<S: Into<String>>(
        mut self,
        names: impl IntoIterator<Item = S>,
    ) -> Self {
        self.istructure_arrays = names.into_iter().map(Into::into).collect();
        self
    }
}

/// Why a translation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// The CFG violates the §2.1 invariants.
    Cfg(Vec<CfgError>),
    /// The CFG is irreducible and node splitting was disabled (or blew up).
    Irreducible(Irreducible),
    /// Schema 2 was requested for a program with aliasing (§3 assumes none;
    /// use Schema 3).
    AliasingRequiresSchema3,
    /// The optimized construction requires loop control.
    OptimizedNeedsLoopControl,
    /// The static translation validator found defects in the produced
    /// graph; the full report is attached and the graph is withheld from
    /// the caller.
    Certify(Box<crate::certify::CertifyReport>),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Cfg(errs) => {
                write!(f, "invalid CFG: ")?;
                for e in errs {
                    write!(f, "{e}; ")?;
                }
                Ok(())
            }
            TranslateError::Irreducible(e) => write!(f, "{e}"),
            TranslateError::AliasingRequiresSchema3 => {
                write!(f, "Schema 2 assumes no aliasing; use Schema 3 with a cover")
            }
            TranslateError::OptimizedNeedsLoopControl => {
                write!(f, "the optimized construction requires loop control")
            }
            TranslateError::Certify(report) => {
                write!(f, "translation failed certification: {report}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// A completed translation.
#[derive(Clone, Debug)]
pub struct Translated {
    /// The dataflow graph.
    pub dfg: Dfg,
    /// The CFG actually translated (after node splitting and loop-control
    /// insertion).
    pub cfg: Cfg,
    /// Loop-control metadata, when loop control was inserted.
    pub loop_control: Option<LoopControlMeta>,
    /// The token-line structure used.
    pub lines: Lines,
    /// Operator bookkeeping from the construction.
    pub ops: crate::translator::LineOps,
    /// Graph statistics.
    pub stats: DfgStats,
    /// Per-pass instrumentation (always on): name, wall time, analyses
    /// computed vs. served from cache, CFG/DFG sizes in and out.
    pub passes: Vec<PassRecord>,
    /// Cumulative analysis-cache counters for the whole translation.
    pub cache_stats: CacheStats,
    /// How many times the CFG was mutated (its final revision stamp).
    pub revisions: u64,
    /// Number of §6.2 load chains parallelized.
    pub read_chains_parallelized: usize,
    /// §6.3 sites rewritten.
    pub array_sites_parallelized: usize,
    /// §6.2 loads eliminated by store-to-load forwarding.
    pub stores_forwarded: usize,
    /// Element operations converted to I-structure operations (§6.3).
    pub istructure_ops: usize,
    /// Operators removed by the CSE/DCE cleanup passes.
    pub ops_cleaned: usize,
    /// Linear chains collapsed into `Macro` operators by the fusion pass.
    pub chains_fused: usize,
    /// Operators eliminated by fusion (chain interiors; each macro firing
    /// elides this many individual firings in total across the graph).
    pub ops_fused: usize,
    /// The clean certification report, when the `certify` pass ran.
    pub certify: Option<crate::certify::CertifyReport>,
}

// ---------------------------------------------------------------------------
// The passes.

/// Checks the §2.1 CFG invariants (memoized as the `validity` analysis).
struct ValidatePass;
impl Pass for ValidatePass {
    fn name(&self) -> &'static str {
        "validate"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        ctx.fctx.validate().map_err(TranslateError::Cfg)
    }
}

/// Resolves the schema to a cover strategy, rejects inconsistent options,
/// and builds the token-line structure.
struct BuildLinesPass;
impl Pass for BuildLinesPass {
    fn name(&self) -> &'static str {
        "lines"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let strategy = match &ctx.opts.schema {
            Schema::One => CoverStrategy::SingleToken,
            Schema::Two => {
                if !ctx.fctx.alias().is_identity() {
                    return Err(TranslateError::AliasingRequiresSchema3);
                }
                CoverStrategy::Singletons
            }
            Schema::Three(c) => c.clone(),
        };
        if ctx.opts.optimized && !ctx.opts.loop_control {
            return Err(TranslateError::OptimizedNeedsLoopControl);
        }
        let cover = ctx.fctx.cover(&strategy);
        let lines = Lines::new(
            &ctx.fctx.cfg().vars,
            ctx.fctx.alias(),
            &cover,
            ctx.opts.eliminate_memory,
        )
        .with_flat_synch(ctx.opts.flat_synch);
        ctx.lines = Some(lines);
        Ok(())
    }
}

/// Ensures the CFG is reducible, node-splitting it if allowed. The loop
/// forest computed for the test stays in the cache for every later stage.
struct ReducibilityPass;
impl Pass for ReducibilityPass {
    fn name(&self) -> &'static str {
        "reducibility"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        if let Err(e) = ctx.fctx.loop_forest() {
            if !ctx.opts.split_irreducible {
                return Err(TranslateError::Irreducible(e));
            }
            let split = split_irreducible(ctx.fctx.cfg()).map_err(TranslateError::Irreducible)?;
            ctx.fctx.replace_cfg(split, Preserved::VALIDITY);
        }
        Ok(())
    }
}

/// Inserts §3 loop-control statements in place, bumping the CFG revision.
struct LoopControlPass;
impl Pass for LoopControlPass {
    fn name(&self) -> &'static str {
        "loop-control"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let meta =
            insert_loop_control_in_place(&mut ctx.fctx).map_err(TranslateError::Irreducible)?;
        ctx.loop_control = Some(meta);
        Ok(())
    }
}

/// Computes the §4 switch placement (Theorem 1 / Fig 10).
struct SwitchPlacementPass;
impl Pass for SwitchPlacementPass {
    fn name(&self) -> &'static str {
        "switch-placement"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let sp = SwitchPlacement::compute_cached(
            &mut ctx.fctx,
            ctx.loop_control.as_ref().expect("loop-control pass ran"),
            ctx.lines.as_ref().expect("lines pass ran"),
        );
        ctx.switch_placement = Some(sp);
        Ok(())
    }
}

/// Computes the §4 source vectors (Fig 11).
struct SourceVectorsPass;
impl Pass for SourceVectorsPass {
    fn name(&self) -> &'static str {
        "source-vectors"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let sv = SourceVectors::compute_cached(
            &mut ctx.fctx,
            ctx.loop_control.as_ref().expect("loop-control pass ran"),
            ctx.lines.as_ref().expect("lines pass ran"),
            ctx.switch_placement.as_ref().expect("switch-placement pass ran"),
        )
        .map_err(TranslateError::Irreducible)?;
        ctx.source_vectors = Some(sv);
        Ok(())
    }
}

/// The §4.2 optimized direct construction.
struct ConstructOptimizedPass;
impl Pass for ConstructOptimizedPass {
    fn name(&self) -> &'static str {
        "construct-optimized"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let built = crate::optimized::construct_cached(
            &mut ctx.fctx,
            ctx.lines.as_ref().expect("lines pass ran"),
            ctx.switch_placement.as_ref().expect("switch-placement pass ran"),
            ctx.source_vectors.as_ref().expect("source-vectors pass ran"),
        )
        .map_err(TranslateError::Irreducible)?;
        // Snapshot the placed switch sites before the §6 transforms can
        // remap or delete operators: the certify pass cross-checks these
        // against the Theorem 1 oracle.
        ctx.placed_switches = Some(built.ops.switches.keys().copied().collect());
        ctx.built = Some(built);
        Ok(())
    }
}

/// The straightforward schema translation (§2.3/§3/§5).
struct TranslateFullPass;
impl Pass for TranslateFullPass {
    fn name(&self) -> &'static str {
        "translate-full"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let built =
            translate_full_cached(&mut ctx.fctx, ctx.lines.as_ref().expect("lines pass ran"))
                .map_err(TranslateError::Irreducible)?;
        ctx.built = Some(built);
        Ok(())
    }
}

/// §6.3 / Fig 14 array-store parallelization.
struct ArrayParallelizePass;
impl Pass for ArrayParallelizePass {
    fn name(&self) -> &'static str {
        "array-parallelize"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let applied = crate::transform::parallelize_array_stores(
            ctx.built.as_mut().expect("construction pass ran"),
            ctx.fctx.cfg(),
            ctx.loop_control.as_ref().expect("loop-control pass ran"),
            ctx.lines.as_ref().expect("lines pass ran"),
        );
        ctx.array_sites_parallelized = applied.len();
        Ok(())
    }
}

/// §6.2 read parallelization.
struct ReadParallelizePass;
impl Pass for ReadParallelizePass {
    fn name(&self) -> &'static str {
        "read-parallelize"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        ctx.read_chains_parallelized =
            crate::transform::parallelize_reads(&mut ctx.built_mut().dfg);
        Ok(())
    }
}

/// §6.2 store-to-load forwarding.
struct ForwardStoresPass;
impl Pass for ForwardStoresPass {
    fn name(&self) -> &'static str {
        "forward-stores"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let built = ctx.built_mut();
        let (n, map) = crate::transform::forward_stores(&mut built.dfg);
        built.ops.remap(&map);
        ctx.stores_forwarded = n;
        Ok(())
    }
}

/// Dataflow-IR cleanup: common-subexpression then dead-code elimination.
struct CleanupPass;
impl Pass for CleanupPass {
    fn name(&self) -> &'static str {
        "cleanup"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let built = ctx.built_mut();
        let (c, map) = crate::transform::eliminate_common_subexpressions(&mut built.dfg);
        built.ops.remap(&map);
        let (d, map) = crate::transform::eliminate_dead_code(&mut built.dfg);
        built.ops.remap(&map);
        ctx.ops_cleaned = c + d;
        Ok(())
    }
}

/// §6.3 I-structure conversion for the opted-in arrays.
struct IStructurePass;
impl Pass for IStructurePass {
    fn name(&self) -> &'static str {
        "istructure"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let ids: Vec<cf2df_cfg::VarId> = ctx
            .opts
            .istructure_arrays
            .iter()
            .filter_map(|name| ctx.fctx.cfg().vars.lookup(name))
            .collect();
        let built = ctx.built.as_mut().expect("construction pass ran");
        let (n, map) = crate::transform::convert_arrays(&mut built.dfg, &ids);
        built.ops.remap(&map);
        ctx.istructure_ops = n;
        Ok(())
    }
}

/// Macro-op fusion ([`cf2df_dfg::fuse`]): collapse maximal linear chains
/// of strict operators into compound `Macro` actors. Scheduled *after*
/// `certify` — the validator certifies the graph the schemas produced,
/// and fusion is a machine-level coarsening of that certified graph
/// (itself re-checkable: a fused graph still certifies, macros being
/// ordinary strict operators to the token-rate analysis).
struct FusePass;
impl Pass for FusePass {
    fn name(&self) -> &'static str {
        "fuse"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let built = ctx.built_mut();
        let (stats, map) = cf2df_dfg::fuse(&mut built.dfg);
        built.ops.remap(&map);
        ctx.chains_fused = stats.chains;
        ctx.ops_fused = stats.ops_fused;
        Ok(())
    }
}

/// The static translation validator (always scheduled last): token-rate
/// certification, the Theorem 1 cross-check, and access-token
/// conservation. See [`crate::certify`].
struct CertifyPass;
impl Pass for CertifyPass {
    fn name(&self) -> &'static str {
        "certify"
    }
    fn run(&mut self, ctx: &mut PassCtx) -> Result<(), TranslateError> {
        let (missing, extra, switches_checked) = match &ctx.placed_switches {
            Some(placed) => {
                let placed: std::collections::BTreeSet<crate::certify::SwitchSite> = placed
                    .iter()
                    .map(|&(node, line)| crate::certify::SwitchSite { node, line })
                    .collect();
                let cd = ctx.fctx.control_deps();
                let oracle = crate::certify::theorem1_switches(
                    ctx.fctx.cfg(),
                    &cd,
                    ctx.loop_control.as_ref().expect("certify requires loop control"),
                    ctx.lines.as_ref().expect("lines pass ran"),
                );
                (
                    oracle.difference(&placed).copied().collect(),
                    placed.difference(&oracle).copied().collect(),
                    oracle.union(&placed).count(),
                )
            }
            None => (Vec::new(), Vec::new(), 0),
        };
        let built = ctx.built.as_ref().expect("construction pass ran");
        let lines = ctx.lines.as_ref().expect("lines pass ran");
        let analysis = cf2df_dfg::certify::analyze(&built.dfg);
        let (conservation_defects, memory_pairs_checked) =
            crate::certify::check_conservation(&built.dfg, lines, &analysis);
        let cover_defects =
            crate::certify::check_cover(&ctx.fctx.cfg().vars, ctx.fctx.alias(), lines);
        let report = crate::certify::CertifyReport {
            graph_defects: analysis.defects,
            missing_switches: missing,
            extra_switches: extra,
            conservation_defects,
            cover_defects,
            switches_checked,
            memory_pairs_checked,
        };
        if report.is_clean() {
            ctx.certify_report = Some(report);
            Ok(())
        } else {
            Err(TranslateError::Certify(Box::new(report)))
        }
    }
}

/// Assemble the pass schedule for `opts`. Disabled stages are simply not
/// scheduled, so the record list names exactly the stages that ran.
fn schedule(opts: &TranslateOptions) -> PassManager {
    let mut pm = PassManager::new();
    pm.add(ValidatePass).add(BuildLinesPass).add(ReducibilityPass);
    if opts.loop_control {
        pm.add(LoopControlPass);
    }
    if opts.optimized {
        pm.add(SwitchPlacementPass)
            .add(SourceVectorsPass)
            .add(ConstructOptimizedPass);
    } else {
        pm.add(TranslateFullPass);
    }
    if opts.parallelize_array_stores && opts.loop_control {
        pm.add(ArrayParallelizePass);
    }
    if opts.parallelize_reads {
        pm.add(ReadParallelizePass);
    }
    if opts.forward_stores {
        pm.add(ForwardStoresPass);
    }
    if opts.cleanup {
        pm.add(CleanupPass);
    }
    if !opts.istructure_arrays.is_empty() {
        pm.add(IStructurePass);
    }
    if opts.certify && opts.loop_control {
        pm.add(CertifyPass);
    }
    if opts.fuse && opts.loop_control {
        pm.add(FusePass);
    }
    pm
}

/// Translate a control-flow graph into a dataflow graph.
///
/// Borrowed-input convenience over [`translate_cfg`]: the caller keeps
/// their graph, so this copies it once at the API boundary — the only
/// CFG copy in the whole pipeline.
pub fn translate(
    cfg: &Cfg,
    alias: &AliasStructure,
    opts: &TranslateOptions,
) -> Result<Translated, TranslateError> {
    translate_cfg(cfg.clone(), alias.clone(), opts)
}

/// Translate an owned control-flow graph into a dataflow graph without
/// copying it: the pass manager mutates it in place (node splitting,
/// loop-control insertion) and returns it in [`Translated::cfg`].
pub fn translate_cfg(
    cfg: Cfg,
    alias: AliasStructure,
    opts: &TranslateOptions,
) -> Result<Translated, TranslateError> {
    let mut ctx = PassCtx::new(FunctionContext::new(cfg, alias), opts);
    let passes = schedule(opts).run(&mut ctx)?;

    let built = ctx.built.take().expect("a construction pass always runs");
    let stats = DfgStats::of(&built.dfg);
    debug_assert!(
        cf2df_dfg::validate(&built.dfg).is_ok(),
        "translator produced an invalid graph:\n{}",
        built.dfg.pretty()
    );
    Ok(Translated {
        dfg: built.dfg,
        loop_control: ctx.loop_control,
        lines: ctx.lines.take().expect("the lines pass always runs"),
        ops: built.ops,
        stats,
        passes,
        cache_stats: ctx.fctx.stats(),
        revisions: ctx.fctx.revision(),
        cfg: ctx.fctx.into_cfg(),
        read_chains_parallelized: ctx.read_chains_parallelized,
        array_sites_parallelized: ctx.array_sites_parallelized,
        stores_forwarded: ctx.stores_forwarded,
        istructure_ops: ctx.istructure_ops,
        ops_cleaned: ctx.ops_cleaned,
        chains_fused: ctx.chains_fused,
        ops_fused: ctx.ops_fused,
        certify: ctx.certify_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_lang::parse_to_cfg;

    #[test]
    fn all_schemas_translate_corpus() {
        for (name, src) in cf2df_lang::corpus::all() {
            let parsed = parse_to_cfg(src).unwrap();
            let schemas: Vec<TranslateOptions> = vec![
                TranslateOptions::schema1(),
                TranslateOptions::schema3(CoverStrategy::Singletons),
                TranslateOptions::schema3(CoverStrategy::AliasClasses),
                TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
                TranslateOptions::full_parallel_schema3(),
            ];
            for (i, o) in schemas.iter().enumerate() {
                // A certification failure Displays the full defect report,
                // path witnesses included — never a bare Debug dump.
                let t = translate(&parsed.cfg, &parsed.alias, o)
                    .unwrap_or_else(|e| panic!("{name} opts#{i}: {e}"));
                let report = t.certify.as_ref().unwrap_or_else(|| {
                    panic!("{name} opts#{i}: certify pass did not run")
                });
                assert!(report.is_clean(), "{name} opts#{i}: {report}");
            }
        }
    }

    #[test]
    fn schema2_rejects_aliasing() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::FORTRAN_ALIAS).unwrap();
        let err = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap_err();
        assert_eq!(err, TranslateError::AliasingRequiresSchema3);
        // Schema 3 handles it.
        translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons),
        )
        .unwrap();
    }

    #[test]
    fn optimized_requires_loop_control() {
        let parsed = parse_to_cfg("x := 1;").unwrap();
        let opts = TranslateOptions::optimized().with_loop_control(false);
        assert_eq!(
            translate(&parsed.cfg, &parsed.alias, &opts).unwrap_err(),
            TranslateError::OptimizedNeedsLoopControl
        );
    }

    #[test]
    fn array_loop_gets_fig14_rewrite() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::ARRAY_LOOP).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema2().with_array_parallelization(true),
        )
        .unwrap();
        assert_eq!(t.array_sites_parallelized, 1);
    }

    #[test]
    fn read_parallelization_reports_chains() {
        // Consecutive statements reading x force a load chain on x's line.
        let src = "x := 3; a := x + 1; b := x * 2; c := x - 1;";
        let parsed = parse_to_cfg(src).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema2().with_read_parallelization(true),
        )
        .unwrap();
        assert!(t.read_chains_parallelized >= 1);
    }

    #[test]
    fn invalid_cfg_is_rejected() {
        // Hand-build a CFG with an unreachable node.
        let mut vars = cf2df_cfg::VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = cf2df_cfg::Cfg::new(vars);
        let a = cfg.add_node(cf2df_cfg::Stmt::Assign {
            lhs: cf2df_cfg::LValue::Var(x),
            rhs: cf2df_cfg::Expr::Const(1),
        });
        cfg.set_entry(a);
        cfg.add_edge(a, cfg.end());
        let orphan = cfg.add_node(cf2df_cfg::Stmt::Join);
        cfg.add_edge(orphan, cfg.end());
        let alias = cf2df_cfg::AliasStructure::for_table(&cfg.vars);
        let err = translate(&cfg, &alias, &TranslateOptions::schema2()).unwrap_err();
        assert!(matches!(err, TranslateError::Cfg(_)));
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn irreducible_without_splitting_is_rejected() {
        let parsed = parse_to_cfg(
            "x:=0; if x==0 then { goto a; } else { goto b; }
             a: x:=x+1; if x>9 then { goto end; } else { skip; } goto b;
             b: x:=x+2; if x>9 then { goto end; } else { skip; } goto a;",
        )
        .unwrap();
        let mut opts = TranslateOptions::schema2();
        opts.split_irreducible = false;
        let err = translate(&parsed.cfg, &parsed.alias, &opts).unwrap_err();
        assert!(matches!(err, TranslateError::Irreducible(_)));
        // With splitting (the default) it works and certifies: any defect
        // panics with the full report rather than a bare unwrap.
        let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2())
            .unwrap_or_else(|e| panic!("split translation failed: {e}"));
        let report = t.certify.expect("certify pass ran");
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn stats_are_populated() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::RUNNING_EXAMPLE).unwrap();
        let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
        assert!(t.stats.ops > 0);
        assert!(t.stats.switches >= 2);
        assert!(t.loop_control.is_some());
    }

    #[test]
    fn pass_records_name_exactly_the_stages_that_ran() {
        let parsed = parse_to_cfg(cf2df_lang::corpus::RUNNING_EXAMPLE).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::full_parallel_schema3(),
        )
        .unwrap();
        let names: Vec<_> = t.passes.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            [
                "validate",
                "lines",
                "reducibility",
                "loop-control",
                "switch-placement",
                "source-vectors",
                "construct-optimized",
                "array-parallelize",
                "read-parallelize",
                "forward-stores",
                "cleanup",
                "certify",
                "fuse",
            ]
        );
        // The schedule shrinks with the options.
        let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
        let names: Vec<_> = t.passes.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            [
                "validate",
                "lines",
                "reducibility",
                "loop-control",
                "translate-full",
                "certify",
                "fuse"
            ]
        );
    }

    #[test]
    fn analyses_are_shared_across_passes() {
        // Loop control inserts nodes (revision 0 → 1); afterwards every
        // analysis is computed at most once, and the construction stages
        // hit the cache instead of recomputing.
        let parsed = parse_to_cfg(cf2df_lang::corpus::RUNNING_EXAMPLE).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::full_parallel_schema3(),
        )
        .unwrap();
        assert_eq!(t.revisions, 1, "only loop control mutates this CFG");
        assert!(t.cache_stats.total_hits() > 0, "stages share analyses");
        use cf2df_cfg::AnalysisKind::*;
        for k in [Dominators, Postdominators, ControlDeps, LoopForest, TopoOrder, Preds] {
            assert!(
                t.cache_stats.computed_of(k) <= t.revisions + 1,
                "{}: computed {} times across {} revisions",
                k.name(),
                t.cache_stats.computed_of(k),
                t.revisions
            );
        }
        // The §4 analyses are needed only after loop control, so exactly
        // once each.
        assert_eq!(t.cache_stats.computed_of(Postdominators), 1);
        assert_eq!(t.cache_stats.computed_of(ControlDeps), 1);
        assert_eq!(t.cache_stats.computed_of(TopoOrder), 1);
    }
}
