//! Token lines.
//!
//! A *line* is one circulating token: Schema 2 has one per variable,
//! Schema 3 one per cover element, Schema 1 a single line for the whole
//! store. A memory operation on variable `x` collects the tokens of every
//! line in `x`'s *access set* — the cover elements intersecting `[x]`
//! (Fig 12/13).
//!
//! Under the §6.1 memory-elimination transform, a line whose element is a
//! single unaliased scalar switches to *value mode*: the token carries the
//! variable's current value, loads become taps, and stores become gated
//! value replacements.

use cf2df_cfg::{AliasStructure, Cover, Stmt, VarId, VarKind, VarTable};

/// Index of a token line (= cover element).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId(pub u32);

impl LineId {
    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for LineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ln{}", self.0)
    }
}

/// What a line's token carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LineMode {
    /// A dummy access token (ordering only).
    Access,
    /// The current value of the given scalar variable (§6.1).
    Value(VarId),
}

/// The token-line structure of a translation.
#[derive(Clone, Debug)]
pub struct Lines {
    modes: Vec<LineMode>,
    /// Per variable: the lines a memory operation on it must collect.
    access: Vec<Vec<LineId>>,
    names: Vec<String>,
    /// Gather access tokens with one flat n-ary synch instead of a binary
    /// synch tree (an ablation of Fig 2's "synch tree" realization).
    flat_synch: bool,
}

impl Lines {
    /// Build the line structure for a cover of an alias structure.
    /// `eliminate_memory` enables value mode for eligible lines.
    pub fn new(
        vars: &VarTable,
        alias: &AliasStructure,
        cover: &Cover,
        eliminate_memory: bool,
    ) -> Lines {
        let n = cover.len();
        let mut access: Vec<Vec<LineId>> = Vec::with_capacity(vars.len());
        for v in vars.ids() {
            access.push(
                cover
                    .access_set(v, alias)
                    .into_iter()
                    .map(|i| LineId(i as u32))
                    .collect(),
            );
        }
        let mut modes = vec![LineMode::Access; n];
        let mut names: Vec<String> = cover
            .elements()
            .iter()
            .map(|el| {
                el.iter()
                    .map(|&v| vars.name(v).to_owned())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        if eliminate_memory {
            for (i, el) in cover.elements().iter().enumerate() {
                if let [v] = el[..] {
                    let eligible = alias.unaliased(v)
                        && matches!(vars.kind(v), VarKind::Scalar)
                        && access[v.index()] == [LineId(i as u32)];
                    if eligible {
                        modes[i] = LineMode::Value(v);
                        names[i] = format!("{}=val", vars.name(v));
                    }
                }
            }
        }
        Lines {
            modes,
            access,
            names,
            flat_synch: false,
        }
    }

    /// Gather multi-token access sets with a single flat synch operator
    /// instead of a binary tree.
    pub fn with_flat_synch(mut self, on: bool) -> Self {
        self.flat_synch = on;
        self
    }

    /// Whether flat gathering is enabled.
    pub fn flat_synch(&self) -> bool {
        self.flat_synch
    }

    /// Number of lines.
    pub fn n(&self) -> usize {
        self.modes.len()
    }

    /// Iterate over all line ids.
    pub fn ids(&self) -> impl Iterator<Item = LineId> {
        (0..self.modes.len() as u32).map(LineId)
    }

    /// The mode of a line.
    pub fn mode(&self, l: LineId) -> LineMode {
        self.modes[l.index()]
    }

    /// Is the line in value mode?
    pub fn is_value(&self, l: LineId) -> bool {
        matches!(self.modes[l.index()], LineMode::Value(_))
    }

    /// The access set of a variable, as line ids.
    pub fn access_lines(&self, v: VarId) -> &[LineId] {
        &self.access[v.index()]
    }

    /// Lines a statement touches: the union of the access sets of every
    /// variable it references (read or written). Switch placement
    /// (Definition 3, generalized to cover elements) seeds from this.
    pub fn referenced_lines(&self, stmt: &Stmt) -> Vec<LineId> {
        let mut out: Vec<LineId> = Vec::new();
        for v in stmt.referenced_vars() {
            for &l in self.access_lines(v) {
                if !out.contains(&l) {
                    out.push(l);
                }
            }
        }
        out.sort();
        out
    }

    /// Human-readable name of a line.
    pub fn name(&self, l: LineId) -> &str {
        &self.names[l.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::CoverStrategy;

    fn fortran() -> (VarTable, AliasStructure) {
        let mut t = VarTable::new();
        let x = t.scalar("X");
        let _y = t.scalar("Y");
        let z = t.scalar("Z");
        let mut a = AliasStructure::for_table(&t);
        a.relate(x, z);
        a.relate(VarId(1), z);
        (t, a)
    }

    #[test]
    fn schema2_lines_are_per_var() {
        let mut t = VarTable::new();
        let x = t.scalar("x");
        let y = t.scalar("y");
        let a = AliasStructure::for_table(&t);
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        let lines = Lines::new(&t, &a, &cover, false);
        assert_eq!(lines.n(), 2);
        assert_eq!(lines.access_lines(x), &[LineId(0)]);
        assert_eq!(lines.access_lines(y), &[LineId(1)]);
        assert_eq!(lines.mode(LineId(0)), LineMode::Access);
    }

    #[test]
    fn schema1_single_line_collects_everything() {
        let mut t = VarTable::new();
        let x = t.scalar("x");
        t.scalar("y");
        let a = AliasStructure::for_table(&t);
        let cover = Cover::build(&CoverStrategy::SingleToken, &a);
        let lines = Lines::new(&t, &a, &cover, false);
        assert_eq!(lines.n(), 1);
        assert_eq!(lines.access_lines(x), &[LineId(0)]);
    }

    #[test]
    fn fortran_access_sets_match_paper() {
        let (t, a) = fortran();
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        let lines = Lines::new(&t, &a, &cover, false);
        assert_eq!(lines.access_lines(VarId(0)).len(), 2); // X: {X, Z}
        assert_eq!(lines.access_lines(VarId(1)).len(), 2); // Y: {Y, Z}
        assert_eq!(lines.access_lines(VarId(2)).len(), 3); // Z: all
    }

    #[test]
    fn value_mode_only_for_unaliased_scalars() {
        let (t, a) = fortran();
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        let lines = Lines::new(&t, &a, &cover, true);
        // X, Y, Z are all aliased: none eligible.
        assert!(lines.ids().all(|l| !lines.is_value(l)));

        let mut t2 = VarTable::new();
        let v = t2.scalar("v");
        let arr = t2.array("arr", 4);
        let a2 = AliasStructure::for_table(&t2);
        let c2 = Cover::build(&CoverStrategy::Singletons, &a2);
        let lines2 = Lines::new(&t2, &a2, &c2, true);
        assert_eq!(lines2.mode(lines2.access_lines(v)[0]), LineMode::Value(v));
        // Arrays stay in access mode.
        assert_eq!(lines2.mode(lines2.access_lines(arr)[0]), LineMode::Access);
    }

    #[test]
    fn referenced_lines_of_statement() {
        let (t, a) = fortran();
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        let lines = Lines::new(&t, &a, &cover, false);
        // X := Y reads Y, writes X: lines = C[X] ∪ C[Y] = {X,Z} ∪ {Y,Z}.
        let stmt = Stmt::Assign {
            lhs: cf2df_cfg::LValue::Var(VarId(0)),
            rhs: cf2df_cfg::Expr::Var(VarId(1)),
        };
        let ls = lines.referenced_lines(&stmt);
        assert_eq!(ls, vec![LineId(0), LineId(1), LineId(2)]);
        let _ = t;
    }

    #[test]
    fn line_names_render() {
        let (t, a) = fortran();
        let cover = Cover::build(&CoverStrategy::SingleToken, &a);
        let lines = Lines::new(&t, &a, &cover, false);
        assert_eq!(lines.name(LineId(0)), "X,Y,Z");
        let _ = t;
    }
}
