#![warn(missing_docs)]

//! **cf2df-core** — the paper's contribution: translating imperative
//! control-flow graphs into dataflow graphs.
//!
//! Beck, Johnson & Pingali, *From Control Flow to Dataflow* (Cornell
//! TR 89-1050 / ICPP 1990) present a sequence of translation schemas:
//!
//! * **Schema 1** (§2.3): a single access token circulates like a program
//!   counter — sequential semantics, expression parallelism only.
//! * **Schema 2** (§3): one access token per variable; independent memory
//!   operations proceed in parallel. Cyclic graphs require interval
//!   decomposition and loop-control statements.
//! * **Schema 3** (§5): aliasing handled by circulating one token per
//!   *cover element*; an operation on `x` collects every token whose
//!   element intersects the alias class `[x]`.
//! * **Optimized construction** (§4): switches are placed only where
//!   iterated control dependence requires them (Theorem 1), and the graph
//!   is wired directly from *source vectors* (Fig 11) with no redundant
//!   switches.
//! * **Parallelizing transformations** (§6): memory elimination for
//!   unaliased scalars, read parallelization, and array-store
//!   parallelization (Fig 14).
//!
//! All three schemas are implemented by one parameterized translator
//! ([`translator`]): Schema 1 is the single-element cover, Schema 2 the
//! singleton cover over an alias-free program, Schema 3 the general case.
//! The optimized construction ([`optimized`]) shares the same statement
//! translation but wires token lines from source vectors.
//!
//! Entry point: [`pipeline::translate`].
//!
//! ```
//! use cf2df_core::pipeline::{translate, TranslateOptions};
//! let parsed = cf2df_lang::parse_to_cfg(cf2df_lang::corpus::RUNNING_EXAMPLE).unwrap();
//! let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
//! assert!(cf2df_dfg::validate(&t.dfg).is_ok());
//! ```

pub mod certify;
pub mod lines;
pub mod optimized;
pub mod pass;
pub mod pipeline;
pub mod source_vec;
pub mod stmt_tr;
pub mod switch_place;
pub mod transform;
pub mod translator;

pub use certify::{CertifyReport, SwitchSite};
pub use lines::{LineId, LineMode, Lines};
pub use pass::{render_pass_table, Pass, PassCtx, PassManager, PassRecord};
pub use pipeline::{
    translate, translate_cfg, Schema, TranslateError, TranslateOptions, Translated,
};
pub use switch_place::SwitchPlacement;
