//! Artifact-to-artifact regression comparison: the engine behind
//! `cf2df check-bench --compare OLD.json`.
//!
//! Wall-clock comparisons use the *median* of the per-batch samples (the
//! mean is still poisoned by outlier batches on noisy machines) and flag
//! a regression only when the new median exceeds the old by more than a
//! relative tolerance **and** an absolute floor — a 25% swing on a 2 µs
//! workload is scheduler jitter, not a regression. Deterministic
//! quantities (operators fired, simulated makespan) are compared
//! exactly: they may improve, but a silent increase fails the gate.
//!
//! Both documents must individually pass
//! [`crate::artifacts::validate_artifact`] first, and may be of
//! different schema versions — comparing a new version-2 artifact
//! against an old committed version-1 baseline is the expected upgrade
//! path.

use crate::artifacts::validate_artifact;
use crate::json::{self, Json};

/// Default relative tolerance for wall-clock comparisons (25%).
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Absolute slack added on top of the relative tolerance: medians within
/// this many nanoseconds of each other never count as regressions,
/// whatever the ratio. Guards the short workloads, whose medians sit
/// well inside scheduler jitter.
pub const ABSOLUTE_FLOOR_NS: f64 = 10_000.0;

/// Jitter allowance for [`Comparison::require_wall_leq`] (20%): the
/// ceiling gate means "at or below the baseline", but two honest runs
/// of the same binary differ by double-digit percentages on a busy
/// single-core host (the in-verify bench runs right after full builds,
/// which leave the box measurably warmer than a standalone run), so a
/// literal `<=` would flake. 20% is under the margin the compiled
/// representation actually holds (25–40% on the gated workloads) and
/// strictly tighter than the 25% ordinary regression tolerance.
pub const WALL_CEILING_JITTER: f64 = 0.20;

/// Outcome of comparing one measured quantity across two artifacts.
#[derive(Clone, Debug)]
pub struct Delta {
    /// What was compared, e.g. `loop_nest/threaded/4 wall_ns`.
    pub what: String,
    /// Baseline (old artifact) value.
    pub old: f64,
    /// Candidate (new artifact) value.
    pub new: f64,
    /// Whether this delta breaches the gate.
    pub regressed: bool,
}

impl Delta {
    /// One aligned report line, flagging regressions.
    pub fn line(&self) -> String {
        let ratio = if self.old > 0.0 { self.new / self.old } else { f64::NAN };
        format!(
            "{:<52} {:>12.1} -> {:>12.1}  ({:>6.2}x){}",
            self.what,
            self.old,
            self.new,
            ratio,
            if self.regressed { "  REGRESSED" } else { "" }
        )
    }
}

/// Full result of an artifact comparison.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Every quantity compared, in document order.
    pub deltas: Vec<Delta>,
    /// Workloads present in only one of the two artifacts (reported,
    /// not fatal: suites evolve).
    pub unmatched: Vec<String>,
}

impl Comparison {
    /// Deltas that breached the gate.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Enforce a *minimum improvement*: every `tokens_processed` delta
    /// for a workload whose name starts with `prefix` must show `new`
    /// at least `frac` below `old`. This is the fusion acceptance gate —
    /// comparing a fused artifact against its unfused twin must show
    /// the promised token-traffic reduction, not merely "no increase".
    /// Token counts are deterministic, so no tolerance applies. Returns
    /// the violations as report lines (empty = gate passed).
    pub fn require_token_reduction(&self, frac: f64, prefix: &str) -> Vec<String> {
        let mut violations = Vec::new();
        let mut matched = false;
        for d in &self.deltas {
            let Some(rest) = d.what.strip_suffix(" tokens_processed") else {
                continue;
            };
            if !rest.starts_with(prefix) {
                continue;
            }
            matched = true;
            let reduction = if d.old > 0.0 { 1.0 - d.new / d.old } else { 0.0 };
            if reduction < frac {
                violations.push(format!(
                    "{}: tokens {} -> {} is only a {:.1}% reduction (need >= {:.1}%)",
                    rest,
                    d.old,
                    d.new,
                    reduction * 100.0,
                    frac * 100.0
                ));
            }
        }
        if !matched {
            violations.push(format!(
                "no tokens_processed deltas matched workload prefix '{prefix}'"
            ));
        }
        violations
    }

    /// Enforce a *ceiling*: every executor/simulator `wall_ns` median
    /// for a workload whose name starts with `prefix` must be at or
    /// below the baseline's, modulo [`WALL_CEILING_JITTER`] and the
    /// [`ABSOLUTE_FLOOR_NS`] floor — much tighter than the ordinary
    /// regression tolerance. This is the compiled-graph acceptance
    /// gate: lowering to the dense runtime representation must not cost
    /// wall time against the committed baseline on the named workloads,
    /// at any worker width. Returns the violations as report lines
    /// (empty = gate passed).
    pub fn require_wall_leq(&self, prefix: &str) -> Vec<String> {
        let mut violations = Vec::new();
        let mut matched = false;
        for d in &self.deltas {
            let Some(rest) = d.what.strip_suffix(" wall_ns") else {
                continue;
            };
            if !rest.starts_with(prefix) {
                continue;
            }
            matched = true;
            let ceiling = d.old * (1.0 + WALL_CEILING_JITTER) + ABSOLUTE_FLOOR_NS;
            if d.new > ceiling {
                violations.push(format!(
                    "{}: median wall {:.0} ns -> {:.0} ns exceeds the baseline \
                     (ceiling {:.0} ns)",
                    rest, d.old, d.new, ceiling
                ));
            }
        }
        if !matched {
            violations.push(format!("no wall_ns deltas matched workload prefix '{prefix}'"));
        }
        violations
    }
}

fn wall_median(v: &Json, ctx: &str) -> Result<f64, String> {
    v.get("median_ns")
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{ctx}: missing median_ns"))
}

/// A wall-clock delta regresses when the new median exceeds the old by
/// both the relative tolerance and the absolute floor.
fn wall_regressed(old: f64, new: f64, tolerance: f64) -> bool {
    new > old * (1.0 + tolerance) + ABSOLUTE_FLOOR_NS
}

fn by_name<'a>(doc: &'a Json, ctx: &str) -> Result<Vec<(&'a str, &'a Json)>, String> {
    Ok(doc
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: missing workloads array"))?
        .iter()
        .filter_map(|w| w.get("name").and_then(Json::as_str).map(|n| (n, w)))
        .collect())
}

fn lookup<'a>(rows: &[(&'a str, &'a Json)], name: &str) -> Option<&'a Json> {
    rows.iter().find(|(n, _)| *n == name).map(|(_, w)| *w)
}

fn compare_pipeline(
    old: &Json,
    new: &Json,
    out: &mut Comparison,
) -> Result<(), String> {
    let old_rows = by_name(old, "old pipeline")?;
    let new_rows = by_name(new, "new pipeline")?;
    for (name, nw) in &new_rows {
        let Some(ow) = lookup(&old_rows, name) else {
            out.unmatched.push(format!("{name} (new only)"));
            continue;
        };
        let olds = ow.get("measurements").and_then(Json::as_arr).unwrap_or(&[]);
        let news = nw.get("measurements").and_then(Json::as_arr).unwrap_or(&[]);
        for nm in news {
            let label = nm.get("label").and_then(Json::as_str).unwrap_or("?");
            let Some(om) = olds
                .iter()
                .find(|m| m.get("label").and_then(Json::as_str) == Some(label))
            else {
                continue;
            };
            // Deterministic simulator quantities: a larger makespan or
            // firing count is a real translation/scheduling regression,
            // no tolerance applies.
            for key in ["fired", "makespan"] {
                let (Some(o), Some(n)) = (
                    om.get(key).and_then(Json::as_num),
                    nm.get(key).and_then(Json::as_num),
                ) else {
                    continue;
                };
                out.deltas.push(Delta {
                    what: format!("{name}/{label} {key}"),
                    old: o,
                    new: n,
                    regressed: n > o,
                });
            }
        }
    }
    for (name, _) in &old_rows {
        if lookup(&new_rows, name).is_none() {
            out.unmatched.push(format!("{name} (old only)"));
        }
    }
    Ok(())
}

fn compare_executor(
    old: &Json,
    new: &Json,
    tolerance: f64,
    out: &mut Comparison,
) -> Result<(), String> {
    let old_rows = by_name(old, "old executor")?;
    let new_rows = by_name(new, "new executor")?;
    for (name, nw) in &new_rows {
        let Some(ow) = lookup(&old_rows, name) else {
            out.unmatched.push(format!("{name} (new only)"));
            continue;
        };
        // Compile wall (v4+): present only when both documents record
        // the compile-once lowering; a v3-baseline upgrade simply skips
        // the delta.
        if let (Some(oc), Some(nc)) = (ow.get("compile_wall_ns"), nw.get("compile_wall_ns")) {
            let o = wall_median(oc, &format!("old {name}.compile_wall_ns"))?;
            let n = wall_median(nc, &format!("new {name}.compile_wall_ns"))?;
            out.deltas.push(Delta {
                what: format!("{name}/compile wall_ns"),
                old: o,
                new: n,
                regressed: wall_regressed(o, n, tolerance),
            });
        }
        if let (Some(osim), Some(nsim)) = (ow.get("simulator_wall_ns"), nw.get("simulator_wall_ns"))
        {
            let o = wall_median(osim, &format!("old {name}.simulator_wall_ns"))?;
            let n = wall_median(nsim, &format!("new {name}.simulator_wall_ns"))?;
            out.deltas.push(Delta {
                what: format!("{name}/simulator wall_ns"),
                old: o,
                new: n,
                regressed: wall_regressed(o, n, tolerance),
            });
        }
        let olds = ow.get("threads").and_then(Json::as_arr).unwrap_or(&[]);
        let news = nw.get("threads").and_then(Json::as_arr).unwrap_or(&[]);
        for nt in news {
            let workers = nt.get("workers").and_then(Json::as_num).unwrap_or(-1.0);
            let Some(ot) = olds
                .iter()
                .find(|t| t.get("workers").and_then(Json::as_num) == Some(workers))
            else {
                continue;
            };
            let ctx = format!("{name}/threaded/{workers}");
            let o = wall_median(
                ot.get("wall_ns").ok_or_else(|| format!("old {ctx}: no wall_ns"))?,
                &format!("old {ctx}"),
            )?;
            let n = wall_median(
                nt.get("wall_ns").ok_or_else(|| format!("new {ctx}: no wall_ns"))?,
                &format!("new {ctx}"),
            )?;
            out.deltas.push(Delta {
                what: format!("{ctx} wall_ns"),
                old: o,
                new: n,
                regressed: wall_regressed(o, n, tolerance),
            });
            // Token traffic is deterministic per workload: more tokens
            // through the rendezvous store than the baseline means a
            // coarsening (fusion) or scheduling change went backwards.
            if let (Some(o), Some(n)) = (
                ot.get("tokens_processed").and_then(Json::as_num),
                nt.get("tokens_processed").and_then(Json::as_num),
            ) {
                out.deltas.push(Delta {
                    what: format!("{ctx} tokens_processed"),
                    old: o,
                    new: n,
                    regressed: n > o,
                });
            }
        }
    }
    for (name, _) in &old_rows {
        if lookup(&new_rows, name).is_none() {
            out.unmatched.push(format!("{name} (old only)"));
        }
    }
    Ok(())
}

fn compare_translate(
    old: &Json,
    new: &Json,
    tolerance: f64,
    out: &mut Comparison,
) -> Result<(), String> {
    let old_rows = by_name(old, "old translate")?;
    let new_rows = by_name(new, "new translate")?;
    for (name, nw) in &new_rows {
        let Some(ow) = lookup(&old_rows, name) else {
            out.unmatched.push(format!("{name} (new only)"));
            continue;
        };
        let olds = ow.get("configs").and_then(Json::as_arr).unwrap_or(&[]);
        let news = nw.get("configs").and_then(Json::as_arr).unwrap_or(&[]);
        for nc in news {
            let label = nc.get("label").and_then(Json::as_str).unwrap_or("?");
            let Some(oc) = olds
                .iter()
                .find(|c| c.get("label").and_then(Json::as_str) == Some(label))
            else {
                continue;
            };
            let ctx = format!("{name}/{label}");
            let o = wall_median(
                oc.get("wall_ns").ok_or_else(|| format!("old {ctx}: no wall_ns"))?,
                &format!("old {ctx}"),
            )?;
            let n = wall_median(
                nc.get("wall_ns").ok_or_else(|| format!("new {ctx}: no wall_ns"))?,
                &format!("new {ctx}"),
            )?;
            out.deltas.push(Delta {
                what: format!("{ctx} wall_ns"),
                old: o,
                new: n,
                regressed: wall_regressed(o, n, tolerance),
            });
            // The cache discipline gates exactly: computing an analysis
            // more often than the baseline means a stage stopped sharing.
            if let (Some(o), Some(n)) = (
                oc.get("analyses_computed").and_then(Json::as_num),
                nc.get("analyses_computed").and_then(Json::as_num),
            ) {
                out.deltas.push(Delta {
                    what: format!("{ctx} analyses_computed"),
                    old: o,
                    new: n,
                    regressed: n > o,
                });
            }
        }
    }
    for (name, _) in &old_rows {
        if lookup(&new_rows, name).is_none() {
            out.unmatched.push(format!("{name} (old only)"));
        }
    }
    Ok(())
}

fn compare_throughput(
    old: &Json,
    new: &Json,
    tolerance: f64,
    out: &mut Comparison,
) -> Result<(), String> {
    let old_rows = by_name(old, "old throughput")?;
    let new_rows = by_name(new, "new throughput")?;
    for (name, nw) in &new_rows {
        let Some(ow) = lookup(&old_rows, name) else {
            out.unmatched.push(format!("{name} (new only)"));
            continue;
        };
        let olds = ow.get("arms").and_then(Json::as_arr).unwrap_or(&[]);
        let news = nw.get("arms").and_then(Json::as_arr).unwrap_or(&[]);
        for na in news {
            let workers = na.get("workers").and_then(Json::as_num).unwrap_or(-1.0);
            let inflight = na.get("inflight").and_then(Json::as_num).unwrap_or(-1.0);
            let Some(oa) = olds.iter().find(|a| {
                a.get("workers").and_then(Json::as_num) == Some(workers)
                    && a.get("inflight").and_then(Json::as_num) == Some(inflight)
            }) else {
                continue;
            };
            let ctx = format!("{name}/throughput/{workers}w/{inflight}in");
            // Throughput is a rate, so the regression sense is inverted
            // — new below old flags — but the *gate* is computed on the
            // underlying batch wall medians, so the relative tolerance
            // and the absolute nanosecond floor apply exactly as they
            // do to every other wall-clock comparison.
            let o_wall = wall_median(
                oa.get("wall_ns").ok_or_else(|| format!("old {ctx}: no wall_ns"))?,
                &format!("old {ctx}"),
            )?;
            let n_wall = wall_median(
                na.get("wall_ns").ok_or_else(|| format!("new {ctx}: no wall_ns"))?,
                &format!("new {ctx}"),
            )?;
            if let (Some(o), Some(n)) = (
                oa.get("req_per_sec").and_then(Json::as_num),
                na.get("req_per_sec").and_then(Json::as_num),
            ) {
                out.deltas.push(Delta {
                    what: format!("{ctx} req_per_sec"),
                    old: o,
                    new: n,
                    regressed: wall_regressed(o_wall, n_wall, tolerance),
                });
            }
            // Token traffic through the multiplexed rendezvous store is
            // deterministic per batch: a silent increase means the serve
            // engine started pushing more tokens per request.
            if let (Some(o), Some(n)) = (
                oa.get("tokens_processed").and_then(Json::as_num),
                na.get("tokens_processed").and_then(Json::as_num),
            ) {
                out.deltas.push(Delta {
                    what: format!("{ctx} tokens_processed"),
                    old: o,
                    new: n,
                    regressed: n > o,
                });
            }
        }
    }
    for (name, _) in &old_rows {
        if lookup(&new_rows, name).is_none() {
            out.unmatched.push(format!("{name} (old only)"));
        }
    }
    Ok(())
}

/// Enforce the multiplexing acceptance gate on a *single* throughput
/// artifact: at `workers` workers, the `req_per_sec` median at
/// admission window `inflight` must be at least `factor` × the
/// inflight-1 serial baseline on at least `min_workloads` workloads.
/// This is what "concurrent invocations beat back-to-back runs" means,
/// measured: the multiplexed engine must convert the idle worker time a
/// small graph leaves behind into cross-request throughput, not merely
/// avoid slowing down. Returns the violations as report lines (empty =
/// gate passed); an artifact of the wrong kind is an error.
pub fn require_inflight_speedup(
    text: &str,
    workers: f64,
    inflight: f64,
    factor: f64,
    min_workloads: usize,
) -> Result<Vec<String>, String> {
    validate_artifact(text)?;
    let doc = json::parse(text)?;
    if doc.get("artifact").and_then(Json::as_str) != Some("throughput") {
        return Err("the inflight-speedup gate needs a throughput artifact".to_owned());
    }
    let mut cleared = 0usize;
    let mut lines = Vec::new();
    for (name, w) in by_name(&doc, "throughput")? {
        let arms = w.get("arms").and_then(Json::as_arr).unwrap_or(&[]);
        let rate = |k: f64| {
            arms.iter()
                .find(|a| {
                    a.get("workers").and_then(Json::as_num) == Some(workers)
                        && a.get("inflight").and_then(Json::as_num) == Some(k)
                })
                .and_then(|a| a.get("req_per_sec").and_then(Json::as_num))
        };
        let (Some(base), Some(multi)) = (rate(1.0), rate(inflight)) else {
            continue;
        };
        let ratio = multi / base;
        if ratio >= factor {
            cleared += 1;
        } else {
            lines.push(format!(
                "{name}: {multi:.0} req/s at inflight {inflight} vs {base:.0} serial is only \
                 {ratio:.2}x (need >= {factor:.2}x)"
            ));
        }
    }
    if cleared >= min_workloads {
        return Ok(Vec::new());
    }
    lines.push(format!(
        "only {cleared} workload(s) cleared the {factor:.2}x inflight-{inflight} speedup at \
         {workers} workers (need >= {min_workloads})"
    ));
    Ok(lines)
}

/// Compare a new artifact against an old baseline of the same kind.
///
/// Both documents must validate on their own. Wall-clock medians are
/// gated by `tolerance` (relative) plus [`ABSOLUTE_FLOOR_NS`];
/// deterministic counters are gated exactly. The two documents must
/// agree on `quick` — quick and full runs use differently sized
/// workloads under the same names, so comparing them would be
/// meaningless.
pub fn compare_artifacts(
    old_text: &str,
    new_text: &str,
    tolerance: f64,
) -> Result<Comparison, String> {
    validate_artifact(old_text).map_err(|e| format!("old artifact invalid: {e}"))?;
    validate_artifact(new_text).map_err(|e| format!("new artifact invalid: {e}"))?;
    let old = json::parse(old_text)?;
    let new = json::parse(new_text)?;
    let kind = |d: &Json| d.get("artifact").and_then(Json::as_str).map(str::to_owned);
    let (ok, nk) = (kind(&old), kind(&new));
    if ok != nk {
        return Err(format!("artifact kinds differ: old {ok:?} vs new {nk:?}"));
    }
    let quick = |d: &Json| matches!(d.get("quick"), Some(Json::Bool(true)));
    if quick(&old) != quick(&new) {
        return Err("cannot compare a quick artifact against a full one".to_owned());
    }
    let mut out = Comparison::default();
    match ok.as_deref() {
        Some("pipeline") => compare_pipeline(&old, &new, &mut out)?,
        Some("executor") => compare_executor(&old, &new, tolerance, &mut out)?,
        Some("translate") => compare_translate(&old, &new, tolerance, &mut out)?,
        Some("throughput") => compare_throughput(&old, &new, tolerance, &mut out)?,
        other => return Err(format!("unrecognized artifact kind {other:?}")),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::{
        executor_artifact, pipeline_artifact, throughput_artifact, translate_artifact,
    };

    #[test]
    fn identical_artifacts_never_regress() {
        for doc in [
            pipeline_artifact(true, true).unwrap(),
            executor_artifact(true, true).unwrap(),
            translate_artifact(true, true).unwrap(),
            throughput_artifact(true, true).unwrap(),
        ] {
            let cmp = compare_artifacts(&doc, &doc, DEFAULT_TOLERANCE).unwrap();
            assert!(!cmp.deltas.is_empty());
            assert!(cmp.regressions().is_empty(), "{:?}", cmp.regressions());
            assert!(cmp.unmatched.is_empty());
        }
    }

    #[test]
    fn wall_clock_gate_has_relative_and_absolute_components() {
        // Under the floor: a 10x swing on a 500 ns median is jitter.
        assert!(!wall_regressed(500.0, 5_000.0, 0.25));
        // Over the floor and over the tolerance: regression.
        assert!(wall_regressed(100_000.0, 200_000.0, 0.25));
        // Over the floor but within tolerance: fine.
        assert!(!wall_regressed(100_000.0, 120_000.0, 0.25));
        // Exactly at the boundary is not a regression (strict >).
        assert!(!wall_regressed(100_000.0, 125_000.0 + ABSOLUTE_FLOOR_NS, 0.25));
    }

    #[test]
    fn deterministic_pipeline_counters_gate_exactly() {
        let doc = pipeline_artifact(true, true).unwrap();
        // Inflate every fired count in the "new" artifact by editing the
        // JSON: any increase must be flagged.
        // Prepending a digit makes every count strictly larger.
        let inflated = doc.replace("\"fired\":", "\"fired\":1");
        let cmp = compare_artifacts(&doc, &inflated, DEFAULT_TOLERANCE).unwrap();
        assert!(
            cmp.regressions().iter().any(|d| d.what.contains("fired")),
            "inflated fired counts must regress: {:?}",
            cmp.deltas
        );
        // And the reverse direction (a decrease) is an improvement.
        let cmp = compare_artifacts(&inflated, &doc, DEFAULT_TOLERANCE).unwrap();
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn executor_token_traffic_gates_exactly() {
        let doc = executor_artifact(true, true).unwrap();
        let inflated = doc.replace("\"tokens_processed\":", "\"tokens_processed\":1");
        let cmp = compare_artifacts(&doc, &inflated, DEFAULT_TOLERANCE).unwrap();
        assert!(
            cmp.regressions()
                .iter()
                .any(|d| d.what.contains("tokens_processed")),
            "inflated token traffic must regress: {:?}",
            cmp.deltas
        );
        // A reduction (what fusion buys) is an improvement, not a flag.
        let cmp = compare_artifacts(&inflated, &doc, DEFAULT_TOLERANCE).unwrap();
        assert!(cmp
            .regressions()
            .iter()
            .all(|d| !d.what.contains("tokens_processed")));
    }

    #[test]
    fn translate_cache_counters_gate_exactly() {
        let doc = translate_artifact(true, true).unwrap();
        let inflated = doc.replace("\"analyses_computed\":", "\"analyses_computed\":1");
        let cmp = compare_artifacts(&doc, &inflated, DEFAULT_TOLERANCE).unwrap();
        assert!(
            cmp.regressions()
                .iter()
                .any(|d| d.what.contains("analyses_computed")),
            "recomputing analyses must regress: {:?}",
            cmp.deltas
        );
        // Fewer computations (better caching) is an improvement.
        let cmp = compare_artifacts(&inflated, &doc, DEFAULT_TOLERANCE).unwrap();
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn token_reduction_floor_flags_insufficient_improvement() {
        let doc = executor_artifact(true, true).unwrap();
        // Identical artifacts: 0% reduction, so any positive floor fails
        // for the matching workloads and passes at a 0% floor.
        let cmp = compare_artifacts(&doc, &doc, DEFAULT_TOLERANCE).unwrap();
        assert!(!cmp.require_token_reduction(0.25, "loop_nest").is_empty());
        assert!(cmp.require_token_reduction(0.0, "loop_nest").is_empty());
        // A prefix matching nothing is itself a violation, not a pass.
        let misses = cmp.require_token_reduction(0.25, "no_such_workload");
        assert_eq!(misses.len(), 1, "{misses:?}");
        // A genuine 30% reduction clears the 25% floor. Scaling every
        // token count up in the *old* document fakes an unfused
        // baseline with more traffic.
        let unfused_like = executor_artifact(true, false).unwrap();
        let cmp = compare_artifacts(&unfused_like, &doc, DEFAULT_TOLERANCE).unwrap();
        let violations = cmp.require_token_reduction(0.25, "loop_nest");
        assert!(
            violations.is_empty(),
            "fused-vs-unfused quick loop_nest must clear the 25% floor: {violations:?}"
        );
    }

    #[test]
    fn wall_ceiling_gate_flags_medians_above_baseline() {
        let doc = executor_artifact(true, true).unwrap();
        let cmp = compare_artifacts(&doc, &doc, DEFAULT_TOLERANCE).unwrap();
        // Identical medians sit exactly at the ceiling: the gate passes.
        assert!(cmp.require_wall_leq("loop_nest").is_empty());
        // A prefix matching nothing is itself a violation, not a pass.
        assert_eq!(cmp.require_wall_leq("no_such_workload").len(), 1);
        // Inflating every median ~10x in the new document must breach
        // the ceiling on the loop_nest wall deltas (prepending a digit
        // makes each positive median strictly larger).
        let slower = doc.replace("\"median_ns\":", "\"median_ns\":9");
        let cmp = compare_artifacts(&doc, &slower, DEFAULT_TOLERANCE).unwrap();
        assert!(!cmp.require_wall_leq("loop_nest").is_empty());
        // The reverse direction — the new document is faster — passes.
        let cmp = compare_artifacts(&slower, &doc, DEFAULT_TOLERANCE).unwrap();
        assert!(cmp.require_wall_leq("loop_nest").is_empty());
    }

    #[test]
    fn throughput_rates_gate_with_inverted_sense() {
        let doc = throughput_artifact(true, true).unwrap();
        // Inflating every batch median ~10x in the new document (a
        // throughput collapse) must flag req_per_sec deltas.
        let slower = doc.replace("\"median_ns\":", "\"median_ns\":9");
        let cmp = compare_artifacts(&doc, &slower, DEFAULT_TOLERANCE).unwrap();
        assert!(
            cmp.regressions().iter().any(|d| d.what.contains("req_per_sec")),
            "a throughput collapse must regress: {:?}",
            cmp.deltas
        );
        // The reverse direction — the new document is faster — passes.
        let cmp = compare_artifacts(&slower, &doc, DEFAULT_TOLERANCE).unwrap();
        assert!(cmp.regressions().is_empty(), "{:?}", cmp.regressions());
        // Pushing more tokens per batch is an exact-gated regression.
        let chattier = doc.replace("\"tokens_processed\":", "\"tokens_processed\":1");
        let cmp = compare_artifacts(&doc, &chattier, DEFAULT_TOLERANCE).unwrap();
        assert!(cmp.regressions().iter().any(|d| d.what.contains("tokens_processed")));
    }

    #[test]
    fn inflight_speedup_gate_counts_clearing_workloads() {
        let doc = throughput_artifact(true, true).unwrap();
        // Any positive rate clears a zero factor.
        assert!(require_inflight_speedup(&doc, 4.0, 4.0, 0.0, 2).unwrap().is_empty());
        // No real machine clears an astronomically large factor; the
        // violations name the workloads and the shortfall.
        let violations = require_inflight_speedup(&doc, 4.0, 4.0, 1e9, 2).unwrap();
        assert!(!violations.is_empty());
        assert!(violations.last().unwrap().contains("need >= 2"), "{violations:?}");
        // The gate refuses non-throughput artifacts.
        let e = executor_artifact(true, true).unwrap();
        assert!(require_inflight_speedup(&e, 4.0, 4.0, 1.0, 1)
            .unwrap_err()
            .contains("throughput artifact"));
    }

    #[test]
    fn mismatched_kinds_and_modes_are_rejected() {
        let p = pipeline_artifact(true, true).unwrap();
        let e = executor_artifact(true, true).unwrap();
        assert!(compare_artifacts(&p, &e, DEFAULT_TOLERANCE)
            .unwrap_err()
            .contains("kinds differ"));
        let full_claimed = p.replace("\"quick\":true", "\"quick\":false");
        assert!(compare_artifacts(&p, &full_claimed, DEFAULT_TOLERANCE)
            .unwrap_err()
            .contains("quick"));
    }

    #[test]
    fn suite_changes_surface_as_unmatched_not_errors() {
        let doc = pipeline_artifact(true, true).unwrap();
        let renamed = doc.replace("\"name\":\"loop_nest\"", "\"name\":\"loop_nest_v2\"");
        let cmp = compare_artifacts(&doc, &renamed, DEFAULT_TOLERANCE).unwrap();
        assert!(cmp.unmatched.iter().any(|u| u.contains("new only")), "{:?}", cmp.unmatched);
        assert!(cmp.unmatched.iter().any(|u| u.contains("old only")), "{:?}", cmp.unmatched);
    }
}
