#![warn(missing_docs)]

//! Workload generators and the experiment harness that regenerates every
//! figure and claim of *From Control Flow to Dataflow*.
//!
//! * [`workloads`] — parameterized program generators (random structured
//!   programs, scaling families) used by benches and property tests;
//! * [`harness`] — run a program through a translation configuration and
//!   the machine, collecting comparable metrics;
//! * [`figures`] — one reproduction function per paper figure/claim,
//!   printed by the `figures` binary and recorded in `EXPERIMENTS.md`.

pub mod figures;
pub mod harness;
pub mod workloads;

pub use harness::{measure, measure_source, Measurement};
