#![warn(missing_docs)]

//! Workload generators and the experiment harness that regenerates every
//! figure and claim of *From Control Flow to Dataflow*.
//!
//! * [`workloads`] — parameterized program generators (random structured
//!   programs, scaling families) used by benches and property tests;
//! * [`harness`] — run a program through a translation configuration and
//!   the machine, collecting comparable metrics;
//! * [`figures`] — one reproduction function per paper figure/claim,
//!   printed by the `figures` binary and recorded in `EXPERIMENTS.md`;
//! * [`artifacts`] — the `cf2df bench` engine: render and validate the
//!   `BENCH_pipeline.json` / `BENCH_executor.json` artifacts;
//! * [`json`] — a hand-rolled RFC 8259 writer and validator (in-tree
//!   replacement for `serde_json`, per the offline/no-deps build policy);
//! * [`prng`] — a seedable xorshift64* generator (in-tree replacement for
//!   the `rand` crate, per the offline/no-deps build policy);
//! * [`timing`] — a minimal wall-clock micro-benchmark harness (in-tree
//!   replacement for `criterion`) driving the `benches/` targets.

pub mod artifacts;
pub mod compare;
pub mod figures;
pub mod harness;
pub mod json;
pub mod prng;
pub mod timing;
pub mod workloads;

pub use harness::{measure, measure_source, Measurement};
