//! One reproduction function per paper figure / claim.
//!
//! Each function regenerates the artifact of a figure — the graph, the
//! placement table, or the measurement its caption claims — and returns a
//! text report. The `figures` binary prints them; `EXPERIMENTS.md` records
//! their output next to the paper's qualitative expectation.

use crate::harness::{assert_equivalent, measure, measure_baseline, table, Measurement};
use crate::workloads;
use cf2df_cfg::{CoverStrategy, MemLayout, Stmt};
use cf2df_core::pipeline::{translate, TranslateOptions};
use cf2df_core::switch_place::SwitchPlacement;
use cf2df_core::Lines;
use cf2df_lang::parse_to_cfg;
use cf2df_machine::{run, MachineConfig};
use std::fmt::Write as _;

/// Fig 1: the running example's control-flow graph.
pub fn f1_running_example_cfg() -> String {
    let parsed = parse_to_cfg(cf2df_lang::corpus::RUNNING_EXAMPLE).unwrap();
    let mut s = String::from("# F1 (Fig 1): control-flow graph of the running example\n");
    s.push_str(&parsed.cfg.pretty());
    s.push_str("\nDOT:\n");
    s.push_str(&cf2df_cfg::dot::cfg_to_dot(&parsed.cfg, "fig1"));
    s
}

/// Fig 2: operator semantics, demonstrated by firing counts on a
/// conditional.
pub fn f2_operators() -> String {
    let src = "x := 1; if x < 2 then { y := 1; } else { y := 2; } z := y;";
    let parsed = parse_to_cfg(src).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    let out = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
    let mut s = String::from("# F2 (Fig 2): switch/merge/synch in a translated conditional\n");
    let _ = writeln!(s, "{}", t.stats.summary());
    let _ = writeln!(
        s,
        "executed: fired={} makespan={} (switch routes one arm; merge forwards it)",
        out.stats.fired, out.stats.makespan
    );
    s
}

/// Figs 3–5: Schema 1 on the running example.
pub fn f3_f5_schema1() -> String {
    let parsed = parse_to_cfg(cf2df_lang::corpus::RUNNING_EXAMPLE).unwrap();
    let mc = MachineConfig::unbounded();
    let rows = vec![
        measure_baseline(&parsed, &mc),
        measure(&parsed, &TranslateOptions::schema1(), &mc, "schema1"),
    ];
    assert_equivalent(&rows);
    let mut s = table(
        "F3-F5 (Figs 3-5): Schema 1 — sequential semantics, expression parallelism only",
        &rows,
    );
    let _ = writeln!(
        s,
        "(Schema 1 avg parallelism {:.2} ≈ 1: statements execute one at a time)",
        rows[1].avg_parallelism
    );
    s
}

/// Figs 6–8: Schema 2 vs Schema 1, plus the loop-control necessity claim.
pub fn f6_f8_schema2() -> String {
    let mc = MachineConfig::unbounded();
    let mut s = String::new();
    let parsed = parse_to_cfg(cf2df_lang::corpus::INDEPENDENT).unwrap();
    let rows = vec![
        measure_baseline(&parsed, &mc),
        measure(&parsed, &TranslateOptions::schema1(), &mc, "schema1"),
        measure(&parsed, &TranslateOptions::schema2(), &mc, "schema2"),
    ];
    assert_equivalent(&rows);
    s.push_str(&table(
        "F6-F8 (Figs 6-8): Schema 2 parallelizes independent memory operations",
        &rows,
    ));

    // Loop-control necessity: Schema 2 without loop control on a skewed
    // loop violates the one-token-per-arc discipline.
    let skewed = "
        l:
          y := y + 1;
          y := y + 3;
          y := y + 5;
          x := x + 1;
          if x < 8 then { goto l; } else { goto end; }
    ";
    let parsed = parse_to_cfg(skewed).unwrap();
    let broken = translate(
        &parsed.cfg,
        &parsed.alias,
        &TranslateOptions::schema2().with_loop_control(false),
    )
    .unwrap();
    let layout = MemLayout::distinct(&broken.cfg.vars);
    let err = run(&broken.dfg, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap_err();
    let _ = writeln!(
        s,
        "without loop control (Fig 8's warning): {err}"
    );
    let good = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let out = run(&good.dfg, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap();
    let _ = writeln!(
        s,
        "with loop control: clean run, {} iteration tags, 0 collisions",
        out.stats.tags_created
    );
    s
}

/// Fig 9 + Figs 10–11: switch placement on Fig 9's graph, and the
/// order-constraint removal measured on a predicate-heavy variant.
pub fn f9_f11_switch_elimination() -> String {
    let mut s = String::from(
        "# F9-F11 (Figs 9-11): redundant switch elimination via CD+ and source vectors\n",
    );
    // Placement table for Fig 9.
    let parsed = parse_to_cfg(cf2df_lang::corpus::FIG9).unwrap();
    let lc = cf2df_cfg::loop_control::insert_loop_control(&parsed.cfg).unwrap();
    let cover = cf2df_cfg::Cover::build(&CoverStrategy::Singletons, &parsed.alias);
    let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
    let sp = SwitchPlacement::compute(&lc, &lines);
    let fork = lc
        .cfg
        .node_ids()
        .find(|&n| matches!(lc.cfg.stmt(n), Stmt::Branch { .. }))
        .unwrap();
    let _ = writeln!(s, "switch placement at Fig 9's fork (if w == 0):");
    for l in lines.ids() {
        let _ = writeln!(
            s,
            "  access_{:<4} needs switch: {}",
            lines.name(l),
            sp.needs_switch(fork, l)
        );
    }
    // Static comparison.
    let full = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let opt = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::optimized()).unwrap();
    let _ = writeln!(
        s,
        "Fig 9 switches: schema2 = {}, optimized = {} (x and w bypass)",
        full.stats.switches, opt.stats.switches
    );

    // Behavioural: predicate delay no longer blocks x.
    let src = "
        array c[2];
        x := x + 1;
        if c[c[c[0]]] == 0 then { y := 1; } else { z := 1; }
        x := x * 3;
        x := x + 7;
        x := x - 2;
    ";
    let parsed = parse_to_cfg(src).unwrap();
    let mc = MachineConfig::unbounded().mem_latency(10);
    let rows = vec![
        measure(&parsed, &TranslateOptions::schema2(), &mc, "schema2"),
        measure(&parsed, &TranslateOptions::optimized(), &mc, "optimized"),
    ];
    assert_equivalent(&rows);
    s.push_str(&table(
        "critical path with a slow predicate (3 chained array loads)",
        &rows,
    ));
    s
}

/// Figs 12–13 / §5: aliasing covers — access sets, synchronization, and
/// the parallelism/synchronization tradeoff.
pub fn f12_f13_alias_covers() -> String {
    let mut s = String::from("# F12-F13 (Figs 12-13, §5): aliasing and covers\n");
    let parsed = parse_to_cfg(cf2df_lang::corpus::FORTRAN_ALIAS).unwrap();
    // Access sets of the paper's FORTRAN example.
    let cover = cf2df_cfg::Cover::build(&CoverStrategy::Singletons, &parsed.alias);
    for name in ["fx", "fy", "fz"] {
        let v = parsed.cfg.vars.lookup(name).unwrap();
        let _ = writeln!(
            s,
            "  C[{name}] collects {} access tokens",
            cover.access_set(v, &parsed.alias).len()
        );
    }
    let mc = MachineConfig::unbounded().mem_latency(6);
    let covers: Vec<(&str, CoverStrategy)> = vec![
        ("singletons", CoverStrategy::Singletons),
        ("alias-classes", CoverStrategy::AliasClasses),
        ("single-token", CoverStrategy::SingleToken),
    ];
    let rows: Vec<Measurement> = covers
        .iter()
        .map(|(label, c)| {
            measure(
                &parsed,
                &TranslateOptions::schema3(c.clone()),
                &mc,
                label,
            )
        })
        .collect();
    assert_equivalent(&rows);
    s.push_str(&table(
        "FORTRAN example (every op involves Z): covers trade synch ops, not parallelism",
        &rows,
    ));

    let tradeoff = "
        alias p ~ q;
        p := 1; q := 2;
        u := 3; v := 4;
        u := u * u + 1;  v := v * v + 2;
        u := u * 2 - 3;  v := v * 2 - 5;
        p := p + q;
    ";
    let parsed = parse_to_cfg(tradeoff).unwrap();
    let rows: Vec<Measurement> = covers
        .iter()
        .map(|(label, c)| {
            measure(
                &parsed,
                &TranslateOptions::schema3(c.clone()),
                &mc,
                label,
            )
        })
        .collect();
    assert_equivalent(&rows);
    s.push_str(&table(
        "aliased pair + independent work: singleton cover buys parallelism",
        &rows,
    ));
    s
}

/// Fig 14 / §6.3: array-store parallelization, swept over memory latency.
pub fn f14_array_stores() -> String {
    let mut s = String::from("# F14 (Fig 14, §6.3): parallelizing array stores\n");
    let parsed = parse_to_cfg(&workloads::array_store_loop(16)).unwrap();
    let base = TranslateOptions::schema2().with_memory_elimination(true);
    let para = base.clone().with_array_parallelization(true);
    let _ = writeln!(
        s,
        "{:>10} {:>12} {:>12} {:>8}",
        "latency", "sequential", "parallel", "speedup"
    );
    for lat in [1u64, 5, 20, 50, 100] {
        let mc = MachineConfig::unbounded().mem_latency(lat);
        let a = measure(&parsed, &base, &mc, "seq");
        let b = measure(&parsed, &para, &mc, "par");
        assert_equivalent(&[a.clone(), b.clone()]);
        let _ = writeln!(
            s,
            "{:>10} {:>12} {:>12} {:>7.2}x",
            lat,
            a.makespan,
            b.makespan,
            a.makespan as f64 / b.makespan as f64
        );
    }
    s.push_str("(speedup grows with memory latency: stores overlap across iterations)\n");
    s
}

/// §3's size claim: the Schema 2 dataflow graph is O(E·V).
pub fn c1_graph_size() -> String {
    let mut s = String::from("# C1 (§3): dataflow graph size is O(E·V)\n");
    let _ = writeln!(
        s,
        "{:>6} {:>6} {:>6} {:>8} {:>10} {:>10} {:>10}",
        "vars", "E", "E*V", "arcs(s2)", "arcs/(E*V)", "arcs(opt)", "opt/s2"
    );
    for n in [2usize, 4, 8, 16, 24] {
        let src = workloads::loop_with_bystanders(n, 2, 4);
        let parsed = parse_to_cfg(&src).unwrap();
        let e = parsed.cfg.edge_count();
        let v = parsed.cfg.vars.len();
        let t2 = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
        let to = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::optimized()).unwrap();
        let _ = writeln!(
            s,
            "{:>6} {:>6} {:>6} {:>8} {:>10.2} {:>10} {:>10.2}",
            v,
            e,
            e * v,
            t2.stats.arcs,
            t2.stats.arcs as f64 / (e * v) as f64,
            to.stats.arcs,
            to.stats.arcs as f64 / t2.stats.arcs as f64
        );
    }
    s.push_str("(schema2 arcs track E*V; the optimized construction breaks the coupling)\n");
    s
}

/// §6.1: memory elimination.
pub fn c2_memory_elimination() -> String {
    let mut s = String::from("# C2 (§6.1): eliminating memory operations for unaliased scalars\n");
    let mc = MachineConfig::unbounded().mem_latency(4);
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "program", "mem(plain)", "mem(elim)", "T(plain)", "T(elim)"
    );
    for (name, src) in cf2df_lang::corpus::all() {
        if name == "fortran_alias" {
            continue; // aliased scalars are not eligible
        }
        let parsed = parse_to_cfg(src).unwrap();
        let plain = measure(
            &parsed,
            &TranslateOptions::schema3(CoverStrategy::Singletons),
            &mc,
            "plain",
        );
        let elim = measure(
            &parsed,
            &TranslateOptions::schema3(CoverStrategy::Singletons).with_memory_elimination(true),
            &mc,
            "elim",
        );
        assert_equivalent(&[plain.clone(), elim.clone()]);
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>10} {:>10} {:>10}",
            name, plain.mem_ops, elim.mem_ops, plain.makespan, elim.makespan
        );
    }
    s
}

/// §6.2: read parallelization.
pub fn c3_read_parallelization() -> String {
    let mut s = String::from("# C3 (§6.2): parallelizing maximal load sequences\n");
    let mc = MachineConfig::unbounded().mem_latency(20);
    let _ = writeln!(
        s,
        "{:>8} {:>12} {:>12} {:>8}",
        "reads", "T(chained)", "T(parallel)", "speedup"
    );
    for n in [2usize, 4, 8, 16] {
        let src = workloads::read_fanout(n);
        let parsed = parse_to_cfg(&src).unwrap();
        let plain = measure(&parsed, &TranslateOptions::schema2(), &mc, "plain");
        let par = measure(
            &parsed,
            &TranslateOptions::schema2().with_read_parallelization(true),
            &mc,
            "readpar",
        );
        assert_equivalent(&[plain.clone(), par.clone()]);
        let _ = writeln!(
            s,
            "{:>8} {:>12} {:>12} {:>7.2}x",
            n,
            plain.makespan,
            par.makespan,
            plain.makespan as f64 / par.makespan as f64
        );
    }
    s
}

/// The headline claim: translated imperative programs expose parallelism
/// on the dataflow machine.
pub fn c4_overall_parallelism() -> String {
    let mut s = String::from(
        "# C4: average parallelism across the corpus (unbounded processors, unit latency)\n",
    );
    let mc = MachineConfig::unbounded();
    let _ = writeln!(
        s,
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "program", "baseline", "schema1", "schema2*", "optim", "full"
    );
    for (name, src) in cf2df_lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let rows = vec![
            measure_baseline(&parsed, &mc),
            measure(&parsed, &TranslateOptions::schema1(), &mc, "s1"),
            measure(
                &parsed,
                &TranslateOptions::schema3(CoverStrategy::Singletons),
                &mc,
                "s2",
            ),
            measure(
                &parsed,
                &TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
                &mc,
                "opt",
            ),
            measure(&parsed, &TranslateOptions::full_parallel_schema3(), &mc, "full"),
        ];
        assert_equivalent(&rows);
        let _ = writeln!(
            s,
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            name,
            rows[0].avg_parallelism,
            rows[1].avg_parallelism,
            rows[2].avg_parallelism,
            rows[3].avg_parallelism,
            rows[4].avg_parallelism
        );
    }
    s.push_str("(schema2* = Schema 3 with singleton covers, which is Schema 2 when alias-free)\n");
    s
}

/// §2.2: split-phase memory tolerates latency when the graph has
/// parallelism.
pub fn c5_latency_tolerance() -> String {
    let mut s = String::from(
        "# C5 (§2.2): split-phase memory + parallelism hide memory latency\n",
    );
    let src = workloads::independent_updates(8);
    let parsed = parse_to_cfg(&src).unwrap();
    let _ = writeln!(
        s,
        "{:>8} {:>12} {:>12} {:>10}",
        "latency", "T(vonNeum)", "T(schema2)", "ratio"
    );
    for lat in [1u64, 4, 16, 64] {
        let mc = MachineConfig::unbounded().mem_latency(lat);
        let base = measure_baseline(&parsed, &mc);
        let s2 = measure(&parsed, &TranslateOptions::schema2(), &mc, "s2");
        let _ = writeln!(
            s,
            "{:>8} {:>12} {:>12} {:>9.2}x",
            lat,
            base.makespan,
            s2.makespan,
            base.makespan as f64 / s2.makespan as f64
        );
    }
    s.push_str("(the dataflow advantage grows with latency: independent ops overlap)\n");
    s
}

/// §6.3's write-once enhancement: I-structure arrays let reading loops
/// overlap writing loops.
pub fn c6_istructures() -> String {
    let mut s = String::from(
        "# C6 (§6.3): write-once arrays on I-structure memory (stencil, 3 loops)\n",
    );
    let parsed = parse_to_cfg(cf2df_lang::corpus::STENCIL).unwrap();
    let base = TranslateOptions::optimized().with_memory_elimination(true);
    let ist = base.clone().with_istructure_arrays(["src", "dst"]);
    let _ = writeln!(
        s,
        "{:>8} {:>12} {:>12} {:>8} {:>10}",
        "latency", "T(ordered)", "T(i-struct)", "speedup", "deferred"
    );
    for lat in [2u64, 8, 32] {
        let mc = MachineConfig::unbounded().mem_latency(lat);
        let t_base = translate(&parsed.cfg, &parsed.alias, &base).unwrap();
        let t_ist = translate(&parsed.cfg, &parsed.alias, &ist).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let o_base = run(&t_base.dfg, &layout, mc.clone()).unwrap();
        let o_ist = run(&t_ist.dfg, &layout, mc).unwrap();
        let _ = writeln!(
            s,
            "{:>8} {:>12} {:>12} {:>7.2}x {:>10}",
            lat,
            o_base.stats.makespan,
            o_ist.stats.makespan,
            o_base.stats.makespan as f64 / o_ist.stats.makespan as f64,
            o_ist.stats.deferred_reads
        );
    }
    s.push_str("(deferred = reads that issued before their producing write)\n");
    s
}

/// §6.2 store-to-load forwarding across the corpus.
pub fn c7_store_forwarding() -> String {
    let mut s = String::from("# C7 (§6.2): store-to-load forwarding\n");
    let mc = MachineConfig::unbounded().mem_latency(8);
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "program", "forwarded", "rd(before)", "rd(after)", "T-change"
    );
    for (name, src) in cf2df_lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let plain = TranslateOptions::schema3(CoverStrategy::Singletons);
        let fwd = plain.clone().with_store_forwarding(true);
        let a = measure(&parsed, &plain, &mc, "plain");
        let t = translate(&parsed.cfg, &parsed.alias, &fwd).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let out = run(&t.dfg, &layout, mc.clone()).unwrap();
        assert_eq!(out.memory, a.memory);
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>10} {:>10} {:>+10}",
            name,
            t.stores_forwarded,
            a.mem_ops,
            out.stats.mem_reads + out.stats.mem_writes,
            out.stats.makespan as i64 - a.makespan as i64
        );
    }
    s
}

/// Waiting-matching (frame memory) pressure: rendezvous-slot high-water
/// marks per configuration — the ETS hardware cost of parallelism.
pub fn c8_frame_pressure() -> String {
    let mut s = String::from(
        "# C8: rendezvous-slot high-water mark (ETS frame-memory pressure)\n",
    );
    let mc = MachineConfig::unbounded();
    let _ = writeln!(
        s,
        "{:<16} {:>8} {:>8} {:>8}",
        "program", "schema1", "schema2", "full"
    );
    for (name, src) in cf2df_lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let mut cells = Vec::new();
        for opts in [
            TranslateOptions::schema1(),
            TranslateOptions::schema3(CoverStrategy::Singletons),
            TranslateOptions::full_parallel_schema3(),
        ] {
            let t = translate(&parsed.cfg, &parsed.alias, &opts).unwrap();
            let layout = MemLayout::distinct(&parsed.cfg.vars);
            let out = run(&t.dfg, &layout, mc.clone()).unwrap();
            cells.push(out.stats.max_pending_slots);
        }
        let _ = writeln!(
            s,
            "{:<16} {:>8} {:>8} {:>8}",
            name, cells[0], cells[1], cells[2]
        );
    }
    s.push_str("(more parallelism → more concurrent rendezvous: the paper's machine pays in frame memory)\n");

    // Space-time tradeoff under back-pressure: a finite waiting-matching
    // store throttles slot allocation; undersizing it costs makespan and
    // can frame-deadlock.
    let parsed = parse_to_cfg(cf2df_lang::corpus::STENCIL).unwrap();
    let t = translate(
        &parsed.cfg,
        &parsed.alias,
        &TranslateOptions::full_parallel_schema3(),
    )
    .unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let sweep = |s: &mut String, label: &str, dfg: &cf2df_dfg::Dfg, layout: &MemLayout, caps: &[usize]| {
        let _ = writeln!(s, "\nframe-capacity sweep ({label}):");
        let _ = writeln!(s, "{:>10} {:>10}", "capacity", "makespan");
        for &cap in caps {
            match run(dfg, layout, MachineConfig::unbounded().frame_capacity(cap)) {
                Ok(out) => {
                    let _ = writeln!(s, "{:>10} {:>10}", cap, out.stats.makespan);
                }
                Err(e) => {
                    let kind = if format!("{e}").contains("frame-store") {
                        "deadlock"
                    } else {
                        "fault"
                    };
                    let _ = writeln!(s, "{:>10} {:>10}", cap, kind);
                }
            }
        }
    };
    // The behaviour is a threshold, not graceful degradation: with enough
    // slots the machine runs at full speed; undersized, the oldest slots
    // wait on tokens that themselves need new slots and the naive
    // back-pressure *frame-deadlocks*. Sizing the waiting-matching store
    // is a real constraint of the paper's machine.
    let p2 = parse_to_cfg(cf2df_lang::corpus::INDEPENDENT).unwrap();
    let t2 = translate(&p2.cfg, &p2.alias, &TranslateOptions::schema2()).unwrap();
    let l2 = MemLayout::distinct(&p2.cfg.vars);
    sweep(&mut s, "independent, schema2", &t2.dfg, &l2, &[1, 2, 4, 9]);
    sweep(&mut s, "stencil, full transforms", &t.dfg, &layout, &[64, 151]);
    s
}

/// The abstract's IR claim: conventional optimizations run directly on
/// the dataflow graph. CSE + DCE operator savings per program.
pub fn c11_ir_optimizations() -> String {
    let mut s = String::from(
        "# C11 (abstract/§7): conventional optimizations on the dataflow IR (CSE + DCE)\n",
    );
    let _ = writeln!(
        s,
        "{:<16} {:>8} {:>8} {:>8} {:>10}",
        "program", "ops", "cse", "dce", "ops-after"
    );
    for (name, src) in cf2df_lang::corpus::all() {
        let parsed = parse_to_cfg(src).unwrap();
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons)
                .with_memory_elimination(true),
        )
        .unwrap();
        let mut g = t.dfg.clone();
        let (c, _) = cf2df_core::transform::eliminate_common_subexpressions(&mut g);
        let (d, _) = cf2df_core::transform::eliminate_dead_code(&mut g);
        // Semantics check.
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let a = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let b = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(a.memory, b.memory, "{name}");
        let _ = writeln!(
            s,
            "{:<16} {:>8} {:>8} {:>8} {:>10}",
            name,
            t.stats.ops,
            c,
            d,
            g.len()
        );
    }
    s.push_str("(arcs are the dependences: value numbering needs no alias or control analysis)\n");
    s
}

/// All partitions of `0..n` (Bell-number many — keep `n` small).
fn partitions(n: usize) -> Vec<Vec<Vec<cf2df_cfg::VarId>>> {
    use cf2df_cfg::VarId;
    let mut out: Vec<Vec<Vec<VarId>>> = vec![Vec::new()];
    for i in 0..n as u32 {
        let mut next = Vec::new();
        for p in &out {
            for b in 0..p.len() {
                let mut q = p.clone();
                q[b].push(VarId(i));
                next.push(q);
            }
            let mut q = p.clone();
            q.push(vec![VarId(i)]);
            next.push(q);
        }
        out = next;
    }
    out
}

/// §5's open question, answered by exhaustion: "It is possible to find a
/// cover that maximizes parallelism and one that minimizes synchronization
/// … in general there will be no one cover that achieves both." We
/// enumerate *every* partition cover of the variables and report the
/// Pareto frontier of (synchronization cost, makespan).
pub fn c10_cover_pareto() -> String {
    let mut s = String::from(
        "# C10 (§5): exhaustive cover search — the parallelism/synchronization Pareto frontier\n",
    );
    // The tradeoff program: an aliased pair plus independent work, with a
    // loop and a conditional so each extra token line costs real machinery
    // (switches, merges, loop-control operators).
    let src = "
        alias p ~ q;
        p := 1; q := 2;
        u := 3; v := 4;
        for i := 1 to 3 do {
            u := u * u % 91;
            v := v * 2 - 5;
            if u > v then { p := p + q; } else { q := q + 1; }
        }
    ";
    let parsed = parse_to_cfg(src).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let mc = MachineConfig::unbounded().mem_latency(6);
    let n = parsed.cfg.vars.len();
    let mut points: Vec<(usize, u64, String)> = Vec::new();
    for cover_parts in partitions(n) {
        let strategy = CoverStrategy::Custom(cover_parts.clone());
        let cover = cf2df_cfg::Cover::build(&strategy, &parsed.alias);
        let synch = cover.synchronization_cost(&parsed.alias);
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(strategy),
        )
        .unwrap();
        let out = run(&t.dfg, &layout, mc.clone()).unwrap();
        let desc = cover_parts
            .iter()
            .map(|el| {
                let names: Vec<&str> =
                    el.iter().map(|&v| parsed.cfg.vars.name(v)).collect();
                format!("{{{}}}", names.join(","))
            })
            .collect::<Vec<_>>()
            .join(" ");
        // Synchronization machinery: arcs measure the token plumbing each
        // extra line costs (switches, merges, loop control, gathering),
        // plus the per-operation token collections.
        points.push((t.stats.arcs + synch, out.stats.makespan, desc));
    }
    let total = points.len();
    // Pareto: no other point is <= in both coordinates and < in one.
    let mut frontier: Vec<&(usize, u64, String)> = points
        .iter()
        .filter(|a| {
            !points.iter().any(|b| {
                (b.0 <= a.0 && b.1 < a.1) || (b.0 < a.0 && b.1 <= a.1)
            })
        })
        .collect();
    frontier.sort_by_key(|p| (p.0, p.1));
    frontier.dedup_by(|a, b| (a.0, a.1) == (b.0, b.1));
    let _ = writeln!(s, "{total} covers evaluated; Pareto frontier:");
    let _ = writeln!(s, "{:>12} {:>9}  cover", "synch(static)", "makespan");
    for (synch, mk, desc) in frontier {
        let _ = writeln!(s, "{synch:>12} {mk:>9}  {desc}");
    }
    s.push_str(
        "(no single cover minimizes both columns — the tradeoff the paper conjectured)\n",
    );
    s
}

/// Ablation: binary synch trees (the paper's Fig 2 "synch tree") vs flat
/// n-ary synchs for gathering large access sets.
pub fn c12_synch_tree_ablation() -> String {
    let mut s = String::from(
        "# C12 (ablation): binary synch tree vs flat n-ary synch for token gathering\n",
    );
    // A star alias structure: hub ~ s0..s6, so every op on the hub
    // collects 8 tokens.
    let mut src = String::new();
    for i in 0..7 {
        src.push_str(&format!("alias hub ~ s{i};\n"));
    }
    for i in 0..7 {
        src.push_str(&format!("s{i} := {i};\n"));
    }
    src.push_str("hub := 1;\nhub := hub * 2;\nhub := hub + 5;\n");
    let parsed = parse_to_cfg(&src).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let _ = writeln!(
        s,
        "{:<8} {:>7} {:>8} {:>9} {:>9}",
        "gather", "ops", "synchs", "makespan", "max-par"
    );
    for (label, flat) in [("tree", false), ("flat", true)] {
        let t = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::schema3(CoverStrategy::Singletons).with_flat_synch(flat),
        )
        .unwrap();
        let out = run(&t.dfg, &layout, MachineConfig::unbounded()).unwrap();
        let _ = writeln!(
            s,
            "{:<8} {:>7} {:>8} {:>9} {:>9}",
            label, t.stats.ops, t.stats.synchs, out.stats.makespan, out.stats.max_parallelism
        );
    }
    s.push_str(
        "(trees cost log-depth latency but pipeline in 2-input hardware slots;\n flat synchs are single operators with wide rendezvous)\n",
    );
    s
}

/// A named figure-reproduction function.
pub type Report = (&'static str, fn() -> String);

/// All reports in order.
pub fn all_reports() -> Vec<Report> {
    vec![
        ("f1", f1_running_example_cfg),
        ("f2", f2_operators),
        ("f3-f5", f3_f5_schema1),
        ("f6-f8", f6_f8_schema2),
        ("f9-f11", f9_f11_switch_elimination),
        ("f12-f13", f12_f13_alias_covers),
        ("f14", f14_array_stores),
        ("c1", c1_graph_size),
        ("c2", c2_memory_elimination),
        ("c3", c3_read_parallelization),
        ("c4", c4_overall_parallelism),
        ("c5", c5_latency_tolerance),
        ("c6", c6_istructures),
        ("c7", c7_store_forwarding),
        ("c8", c8_frame_pressure),
        ("c10", c10_cover_pareto),
        ("c11", c11_ir_optimizations),
        ("c12", c12_synch_tree_ablation),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_figure_reproduces() {
        for (name, f) in super::all_reports() {
            let report = f();
            assert!(!report.is_empty(), "{name} produced no output");
        }
    }
}

#[cfg(test)]
mod pareto_tests {
    #[test]
    fn cover_pareto_frontier_is_a_real_tradeoff() {
        let report = super::c10_cover_pareto();
        // At least two incomparable optima (the paper's conjecture).
        let rows = report
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .count();
        assert!(rows >= 2, "frontier collapsed to one point:\n{report}");
    }

    #[test]
    fn partitions_count_matches_bell_numbers() {
        assert_eq!(super::partitions(1).len(), 1);
        assert_eq!(super::partitions(2).len(), 2);
        assert_eq!(super::partitions(3).len(), 5);
        assert_eq!(super::partitions(4).len(), 15);
        assert_eq!(super::partitions(5).len(), 52);
    }
}
