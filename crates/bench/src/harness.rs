//! The measurement harness: run a program under a translation
//! configuration on the simulated dataflow machine and under the
//! sequential baseline, and collect comparable metrics.

use cf2df_cfg::MemLayout;
use cf2df_core::pipeline::{translate, TranslateOptions, Translated};
use cf2df_lang::Parsed;
use cf2df_machine::vonneumann;
use cf2df_machine::{run, MachineConfig};

/// Metrics of one (program, configuration) run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Configuration label.
    pub label: String,
    /// Static graph size: operators.
    pub ops: usize,
    /// Static graph size: arcs.
    pub arcs: usize,
    /// Static switch count.
    pub switches: usize,
    /// Static merge count.
    pub merges: usize,
    /// Dynamic: operators fired.
    pub fired: u64,
    /// Dynamic: makespan (critical path with unbounded processors).
    pub makespan: u64,
    /// Dynamic: average parallelism (fired / makespan).
    pub avg_parallelism: f64,
    /// Dynamic: peak parallelism.
    pub max_parallelism: u32,
    /// Dynamic memory operations executed.
    pub mem_ops: u64,
    /// Final memory (for equivalence checks).
    pub memory: Vec<i64>,
}

impl Measurement {
    /// Machine-readable JSON rendering via the shared [`crate::json`]
    /// writer: string escapes are JSON-conformant (`\uXXXX`, not Rust's
    /// `\u{..}`) and a non-finite `avg_parallelism` renders as `null`
    /// rather than the invalid tokens `NaN`/`inf`. `memory` is omitted —
    /// it is an equivalence-check artifact, not a metric.
    pub fn to_json(&self) -> String {
        let mut o = crate::json::Obj::new();
        o.str("label", &self.label)
            .num("ops", self.ops as u64)
            .num("arcs", self.arcs as u64)
            .num("switches", self.switches as u64)
            .num("merges", self.merges as u64)
            .num("fired", self.fired)
            .num("makespan", self.makespan)
            .float("avg_parallelism", self.avg_parallelism)
            .num("max_parallelism", self.max_parallelism)
            .num("mem_ops", self.mem_ops);
        o.finish()
    }
}

/// Translate and simulate; panics on translation or machine errors (the
/// harness is for known-good configurations — failure modes are exercised
/// by dedicated tests).
pub fn measure(
    parsed: &Parsed,
    opts: &TranslateOptions,
    machine: &MachineConfig,
    label: &str,
) -> Measurement {
    let t: Translated = translate(&parsed.cfg, &parsed.alias, opts)
        .unwrap_or_else(|e| panic!("{label}: translation failed: {e}"));
    let layout = MemLayout::distinct(&t.cfg.vars);
    let out = run(&t.dfg, &layout, machine.clone())
        .unwrap_or_else(|e| panic!("{label}: machine failed: {e}"));
    Measurement {
        label: label.to_owned(),
        ops: t.stats.ops,
        arcs: t.stats.arcs,
        switches: t.stats.switches,
        merges: t.stats.merges,
        fired: out.stats.fired,
        makespan: out.stats.makespan,
        avg_parallelism: out.stats.avg_parallelism(),
        max_parallelism: out.stats.max_parallelism,
        mem_ops: out.stats.mem_reads + out.stats.mem_writes,
        memory: out.memory,
    }
}

/// Parse source and [`measure`].
pub fn measure_source(
    src: &str,
    opts: &TranslateOptions,
    machine: &MachineConfig,
    label: &str,
) -> Measurement {
    let parsed = cf2df_lang::parse_to_cfg(src).expect("workload parses");
    measure(&parsed, opts, machine, label)
}

/// The sequential baseline as a [`Measurement`].
pub fn measure_baseline(parsed: &Parsed, machine: &MachineConfig) -> Measurement {
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    let out = vonneumann::interpret(&parsed.cfg, &layout, machine)
        .expect("baseline interprets");
    Measurement {
        label: "von-neumann".to_owned(),
        ops: 0,
        arcs: 0,
        switches: 0,
        merges: 0,
        fired: out.stats.fired,
        makespan: out.stats.makespan,
        avg_parallelism: out.stats.avg_parallelism(),
        max_parallelism: 1,
        mem_ops: out.stats.mem_reads + out.stats.mem_writes,
        memory: out.memory,
    }
}

/// Render measurements as an aligned text table (the "figure" output).
pub fn table(title: &str, rows: &[Measurement]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "## {title}");
    let _ = writeln!(
        s,
        "{:<26} {:>7} {:>7} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "config", "ops", "arcs", "switches", "fired", "makespan", "avg-par", "max-par", "mem-ops"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<26} {:>7} {:>7} {:>8} {:>8} {:>9} {:>9.2} {:>8} {:>8}",
            r.label, r.ops, r.arcs, r.switches, r.fired, r.makespan, r.avg_parallelism,
            r.max_parallelism, r.mem_ops
        );
    }
    s
}

/// Assert that all measurements computed the same final memory.
pub fn assert_equivalent(rows: &[Measurement]) {
    for pair in rows.windows(2) {
        assert_eq!(
            pair[0].memory, pair[1].memory,
            "{} and {} disagree on final memory",
            pair[0].label, pair[1].label
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_and_baseline_agree_on_memory() {
        let parsed = cf2df_lang::parse_to_cfg(cf2df_lang::corpus::RUNNING_EXAMPLE).unwrap();
        let mc = MachineConfig::unbounded();
        let rows = vec![
            measure_baseline(&parsed, &mc),
            measure(&parsed, &TranslateOptions::schema1(), &mc, "schema1"),
            measure(&parsed, &TranslateOptions::schema2(), &mc, "schema2"),
            measure(&parsed, &TranslateOptions::optimized(), &mc, "optimized"),
        ];
        assert_equivalent(&rows);
        let t = table("running example", &rows);
        assert!(t.contains("schema2"));
        assert_eq!(t.lines().count(), 2 + rows.len());
        // Every emitted measurement is well-formed JSON.
        for r in &rows {
            crate::json::parse(&r.to_json()).unwrap_or_else(|e| panic!("{e}: {}", r.to_json()));
        }
    }

    /// The two historical `to_json` bugs: Rust-style `\u{..}` escapes and
    /// `NaN`/`inf` from a zero-makespan measurement — both invalid JSON.
    #[test]
    fn to_json_is_well_formed_on_hostile_measurements() {
        let m = Measurement {
            label: "quotes \" back\\slash \n ctrl\u{1} bell\u{7}".to_owned(),
            ops: 1,
            arcs: 2,
            switches: 0,
            merges: 0,
            fired: 5,
            makespan: 0,
            avg_parallelism: f64::INFINITY, // what fired/makespan gives at makespan == 0
            max_parallelism: 1,
            mem_ops: 0,
            memory: Vec::new(),
        };
        let doc = m.to_json();
        let v = crate::json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_eq!(
            v.get("label").unwrap().as_str().unwrap(),
            m.label,
            "label round-trips through escaping"
        );
        assert_eq!(v.get("avg_parallelism"), Some(&crate::json::Json::Null));
        assert_eq!(v.get("fired").unwrap().as_num(), Some(5.0));

        let nan = Measurement { avg_parallelism: f64::NAN, ..m };
        crate::json::parse(&nan.to_json()).expect("NaN renders as null");
    }
}
