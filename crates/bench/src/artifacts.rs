//! The benchmark-artifact pipeline behind `cf2df bench`.
//!
//! Runs the canonical workload suite ([`crate::workloads`]) through the
//! deterministic simulator and the threaded executor at 1/2/4/8 workers,
//! collecting [`crate::harness::Measurement`]s, executor metrics
//! ([`cf2df_machine::ParMetrics`]), and wall-clock timings
//! ([`crate::timing`]), and renders two artifacts:
//!
//! * `BENCH_pipeline.json` — simulated (idealized-parallelism) metrics
//!   per workload per translation configuration;
//! * `BENCH_executor.json` — wall-clock scaling and scheduler counters
//!   of the threaded executor;
//! * `BENCH_translate.json` — wall-clock time of the translation
//!   pipeline itself per workload per configuration, plus the pass
//!   manager's deterministic counters (passes run, CFG revisions,
//!   analyses computed vs. cache hits, output graph size);
//! * `BENCH_throughput.json` — requests per second of the multiplexed
//!   serve engine ([`cf2df_machine::serve`]) at every worker count ×
//!   admission-window level, against a back-to-back serial baseline on
//!   the same pool.
//!
//! All are emitted through [`crate::json`] and checked by the
//! [`validate_artifact`] schema validator: every required field must be
//! present and every numeric field finite (a non-finite float renders as
//! `null` and is rejected), so a bench regression can never hide behind
//! a malformed artifact. These artifacts are the repo's performance
//! trajectory: every perf PR regenerates them and is judged against the
//! committed baseline.

use crate::harness::{measure, measure_baseline, Measurement};
use crate::json::{self, Json, Obj};
use crate::timing::{Stats, Timer};
use crate::workloads;
use cf2df_cfg::MemLayout;
use cf2df_core::pipeline::{translate, TranslateOptions};
use cf2df_machine::{
    compile, run_compiled, run_concurrent, run_threaded_compiled_pooled_with, CompiledGraph,
    ExecutorPool, MachineConfig, ParConfig,
};
use std::time::Duration;

/// Worker counts the executor artifact sweeps.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Admission-window (inflight-invocation) levels the throughput artifact
/// sweeps. Level 1 is measured as a back-to-back loop of ordinary pooled
/// runs — the honest serial baseline the multiplexed levels are judged
/// against — not as a serve session with a window of one.
pub const INFLIGHT_LEVELS: [usize; 3] = [1, 4, 16];

/// Current artifact schema version. Version 2 added `p95_ns` to every
/// wall-clock stats block and, on the executor artifact,
/// `speedup_vs_1w`/`fast_path_fires` per thread entry plus
/// `batches`/`fast_path` per worker. Version 3 records macro-op fusion:
/// a top-level `fused` flag on every artifact (the suites run fused by
/// default and unfused under `--no-fuse`), `macro_fires`/`ops_elided`
/// per executor thread entry plus `fired_unfused` per workload, and
/// `macros`/`fused_ops` per translate config. Version 4 records the
/// compiled-graph lowering ([`cf2df_machine::compile`]): every executor
/// run goes through the compile-once entry points (the graph is lowered
/// to its dense [`cf2df_machine::CompiledGraph`] exactly once per
/// workload, outside the timed region), and each executor workload
/// entry gains `compile_wall_ns` (wall-clock stats of the lowering
/// itself) plus a `compiled` footprint block (`ops`, `out_ports`,
/// `dest_slots`, `imm_slots`, `macro_steps`, `bytes`, `max_hot_arity`).
/// Version 5 adds the *throughput* artifact (`BENCH_throughput.json`):
/// requests-per-second of the tag-space-multiplexed serve engine
/// ([`cf2df_machine::serve`]) at [`WORKER_COUNTS`] ×
/// [`INFLIGHT_LEVELS`], each arm judged against the back-to-back serial
/// baseline on the same pool. The three existing artifact kinds are
/// structurally unchanged by v5. [`validate_artifact`] still accepts
/// version-1 through -4 documents so old committed baselines keep
/// validating.
pub const SCHEMA_VERSION: u64 = 5;

/// The canonical workload suite, sized for `quick` (CI smoke) or full
/// (trajectory baseline) mode.
pub fn suite(quick: bool) -> Vec<(&'static str, String)> {
    if quick {
        vec![
            ("independent_updates", workloads::independent_updates(6)),
            ("dependence_chain", workloads::dependence_chain(8)),
            ("diamond_ladder", workloads::diamond_ladder(3)),
            ("loop_bystanders", workloads::loop_with_bystanders(6, 2, 4)),
            ("array_store_loop", workloads::array_store_loop(8)),
            ("read_fanout", workloads::read_fanout(6)),
            ("loop_nest", workloads::loop_nest(2, 3)),
        ]
    } else {
        vec![
            ("independent_updates", workloads::independent_updates(16)),
            ("dependence_chain", workloads::dependence_chain(64)),
            ("diamond_ladder", workloads::diamond_ladder(8)),
            ("loop_bystanders", workloads::loop_with_bystanders(12, 4, 16)),
            ("array_store_loop", workloads::array_store_loop(48)),
            ("read_fanout", workloads::read_fanout(16)),
            ("loop_nest", workloads::loop_nest(3, 6)),
        ]
    }
}

/// Workloads used for wall-clock executor timing (a subset: timing wants
/// fewer, heavier programs).
fn executor_suite(quick: bool) -> Vec<(&'static str, String)> {
    if quick {
        vec![
            ("loop_nest", workloads::loop_nest(3, 4)),
            ("independent_updates", workloads::independent_updates(8)),
            ("loop_nest_wide", workloads::loop_nest(2, 16)),
            ("array_update_kernel", workloads::array_update_kernel(4, 16)),
        ]
    } else {
        // loop_nest is sized so one execution takes milliseconds: the
        // scaling comparison must measure the executor, not the fixed
        // per-run cost of waking and parking pool threads (~µs), which
        // would otherwise dominate the 1-vs-N-worker delta on small
        // hosts. loop_nest_wide and array_update_kernel fire thousands
        // of operators each, so multi-worker scaling clears scheduler
        // noise.
        vec![
            ("loop_nest", workloads::loop_nest(4, 10)),
            ("independent_updates", workloads::independent_updates(24)),
            ("array_store_loop", workloads::array_store_loop(64)),
            ("loop_nest_wide", workloads::loop_nest(3, 16)),
            ("array_update_kernel", workloads::array_update_kernel(8, 64)),
        ]
    }
}

fn timer(quick: bool) -> Timer {
    if quick {
        Timer::with_budgets(Duration::from_millis(5), Duration::from_millis(20)).quiet()
    } else {
        // Means gate perf regressions (see `crate::compare`), and on a
        // shared host they converge slowly: give full mode a generous
        // measurement budget so scheduler-interference outliers average
        // out instead of deciding the comparison.
        Timer::with_budgets(Duration::from_millis(200), Duration::from_millis(1000)).quiet()
    }
}

fn stats_json(s: &Stats) -> String {
    let mut o = Obj::new();
    o.float("mean_ns", s.mean_ns)
        .float("median_ns", s.median_ns)
        .float("p95_ns", s.p95_ns)
        .float("min_ns", s.min_ns)
        .float("max_ns", s.max_ns)
        .num("iters", s.iters);
    o.finish()
}

/// The static footprint of a workload's [`CompiledGraph`] — the v4
/// executor artifact records it so table growth (more dest slots per
/// op, wider immediates) is visible in the trajectory, not just wall
/// time.
fn footprint_json(cg: &CompiledGraph) -> String {
    let f = cg.footprint();
    let mut o = Obj::new();
    o.num("ops", f.ops as u64)
        .num("out_ports", f.out_ports as u64)
        .num("dest_slots", f.dest_slots as u64)
        .num("imm_slots", f.imm_slots as u64)
        .num("macro_steps", f.macro_steps as u64)
        .num("bytes", f.bytes as u64)
        .num("max_hot_arity", cg.max_hot_arity() as u64);
    o.finish()
}

// ---------------------------------------------------------------------
// BENCH_pipeline.json
// ---------------------------------------------------------------------

/// Render the pipeline artifact: every suite workload through the
/// baseline interpreter and three translation configurations on the
/// simulator. `fuse` selects whether the pipelines run macro-op fusion
/// (the committed baselines do; `--no-fuse` produces the contrast).
pub fn pipeline_artifact(quick: bool, fuse: bool) -> Result<String, String> {
    let mc = MachineConfig::unbounded();
    let mut entries = Vec::new();
    for (name, src) in suite(quick) {
        let parsed = cf2df_lang::parse_to_cfg(&src)
            .map_err(|e| format!("workload {name} failed to parse: {e}"))?;
        let rows: Vec<Measurement> = vec![
            measure_baseline(&parsed, &mc),
            measure(&parsed, &TranslateOptions::schema1().with_fuse(fuse), &mc, "schema1"),
            measure(&parsed, &TranslateOptions::schema2().with_fuse(fuse), &mc, "schema2"),
            measure(&parsed, &TranslateOptions::optimized().with_fuse(fuse), &mc, "optimized"),
        ];
        for pair in rows.windows(2) {
            if pair[0].memory != pair[1].memory {
                return Err(format!(
                    "workload {name}: {} and {} disagree on final memory",
                    pair[0].label, pair[1].label
                ));
            }
        }
        let mut o = Obj::new();
        o.str("name", name)
            .raw("measurements", &json::array(rows.iter().map(|r| r.to_json())));
        entries.push(o.finish());
    }
    let mut doc = Obj::new();
    doc.str("artifact", "pipeline")
        .num("schema_version", SCHEMA_VERSION)
        .bool("quick", quick)
        .bool("fused", fuse)
        .raw("workloads", &json::array(entries));
    let text = doc.finish();
    validate_artifact(&text)?;
    Ok(text)
}

// ---------------------------------------------------------------------
// BENCH_executor.json
// ---------------------------------------------------------------------

/// Render the executor artifact: wall-clock timings of the simulator and
/// the threaded executor at [`WORKER_COUNTS`], plus the executor's
/// scheduler/rendezvous metrics, per workload. `fuse` selects macro-op
/// fusion; each workload entry also records `fired_unfused` (=`fired +
/// ops_elided`, deterministic) so a fused artifact carries its own
/// token-traffic contrast.
pub fn executor_artifact(quick: bool, fuse: bool) -> Result<String, String> {
    let mut t = timer(quick);
    // One persistent pool per worker count, shared by every workload:
    // thread spawn latency stays outside the timed region, which is what
    // the scaling numbers are supposed to be about.
    let pools: Vec<ExecutorPool> = WORKER_COUNTS.iter().map(|&w| ExecutorPool::new(w)).collect();
    let mut entries = Vec::new();
    for (name, src) in executor_suite(quick) {
        let parsed = cf2df_lang::parse_to_cfg(&src)
            .map_err(|e| format!("workload {name} failed to parse: {e}"))?;
        // The full pipeline: memory elision is what exposes the long
        // same-tag operator chains the fusion pass coarsens, so the
        // executor artifact's token-traffic numbers reflect what fusion
        // actually buys in the best-optimized configuration.
        let tr = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::full_parallel_schema3().with_fuse(fuse),
        )
        .map_err(|e| format!("workload {name} failed to translate: {e}"))?;
        let layout = MemLayout::distinct(&tr.cfg.vars);
        // Compile once per workload: every run below — simulator and
        // threaded, timed and untimed — reuses the same dense tables, so
        // the wall numbers measure execution, not graph lowering. The
        // lowering cost gets its own stats block instead.
        let cg = compile(&tr.dfg)
            .map_err(|e| format!("workload {name}: compile fault: {e}"))?;
        let compile_wall = stats_json(t.bench(&format!("{name}/compile"), || {
            std::hint::black_box(compile(&tr.dfg).unwrap().footprint().bytes)
        }));
        let sim = run_compiled(&cg, &layout, MachineConfig::unbounded())
            .map_err(|e| format!("workload {name}: simulator fault: {e}"))?;
        let sim_wall = stats_json(t.bench(&format!("{name}/simulator"), || {
            std::hint::black_box(
                run_compiled(&cg, &layout, MachineConfig::unbounded()).unwrap().stats.fired,
            )
        }));

        // Verification pass (untimed): correctness and scheduler metrics
        // per worker count.
        let par_cfg = ParConfig::default();
        let mut outs = Vec::new();
        for (pool, workers) in pools.iter().zip(WORKER_COUNTS) {
            let (res, _, _) = run_threaded_compiled_pooled_with(&cg, &layout, pool, &par_cfg);
            let out =
                res.map_err(|e| format!("workload {name} at {workers} workers: {e}"))?;
            if out.memory != sim.memory {
                return Err(format!(
                    "workload {name} at {workers} workers: memory diverges from simulator"
                ));
            }
            // Benchmarked runs carry no fault plan: the chaos layer must
            // be provably dormant (its tallies are always collected).
            if out.metrics.chaos.total() != 0 {
                return Err(format!(
                    "workload {name} at {workers} workers: chaos faults injected on an \
                     ordinary run: {:?}",
                    out.metrics.chaos
                ));
            }
            outs.push(out);
        }

        // Timed pass: all worker counts measured *paired*, so machine
        // drift over the measurement window cannot masquerade as a
        // scaling difference between counts.
        let labels: Vec<String> = WORKER_COUNTS
            .iter()
            .map(|w| format!("{name}/threaded/{w}"))
            .collect();
        let mut closures: Vec<Box<dyn FnMut() + '_>> = pools
            .iter()
            .map(|pool| {
                let (cg, layout, par_cfg) = (&cg, &layout, &par_cfg);
                Box::new(move || {
                    let (res, _, _) =
                        run_threaded_compiled_pooled_with(cg, layout, pool, par_cfg);
                    std::hint::black_box(res.unwrap().fired);
                }) as Box<dyn FnMut() + '_>
            })
            .collect();
        let mut arms: Vec<(&str, &mut dyn FnMut())> = labels
            .iter()
            .map(|l| l.as_str())
            .zip(closures.iter_mut().map(|c| &mut **c as &mut dyn FnMut()))
            .collect();
        let walls = t.bench_paired(&mut arms, Duration::from_millis(150));

        let mut threads = Vec::new();
        let mean_1w = walls[WORKER_COUNTS.iter().position(|&w| w == 1).expect("1w is swept")]
            .mean_ns;
        for ((out, wall), workers) in outs.iter().zip(&walls).zip(WORKER_COUNTS) {
            let m = &out.metrics;
            let per_worker = json::array(m.workers.iter().enumerate().map(|(i, w)| {
                let mut o = Obj::new();
                o.num("worker", i as u64)
                    .num("processed", w.processed)
                    .num("local_pops", w.local_pops)
                    .num("injector_hits", w.injector_hits)
                    .num("steals", w.steals)
                    .num("parks", w.parks)
                    .num("unparks", w.unparks)
                    .num("batches", w.batches)
                    .num("fast_path", w.fast_path);
                o.finish()
            }));
            let mut o = Obj::new();
            o.num("workers", workers as u64)
                .raw("wall_ns", &stats_json(wall))
                .float("speedup_vs_1w", mean_1w / wall.mean_ns)
                .num("fired", out.fired)
                .num("tokens_processed", m.tokens_processed)
                .num("merged", m.merged)
                .num("fast_path_fires", m.fast_path_fires)
                .num("macro_fires", m.macro_fires)
                .num("ops_elided", m.ops_elided)
                .num("max_pending_slots", m.max_pending_slots)
                .num("tags_created", m.tags_created)
                .num("deferred_reads", m.deferred_reads)
                .num("deferred_read_peak", m.deferred_read_peak)
                .raw("per_worker", &per_worker);
            threads.push(o.finish());
        }

        let mut o = Obj::new();
        o.str("name", name)
            .num("fired", sim.stats.fired)
            .num("fired_unfused", sim.stats.fired + sim.stats.ops_elided)
            .raw("compile_wall_ns", &compile_wall)
            .raw("compiled", &footprint_json(&cg))
            .raw("simulator_wall_ns", &sim_wall)
            .raw("threads", &json::array(threads));
        entries.push(o.finish());
    }
    let mut doc = Obj::new();
    doc.str("artifact", "executor")
        .num("schema_version", SCHEMA_VERSION)
        .bool("quick", quick)
        .bool("fused", fuse)
        .raw(
            "worker_counts",
            &json::array(WORKER_COUNTS.iter().map(|w| w.to_string())),
        )
        .raw("workloads", &json::array(entries));
    let text = doc.finish();
    validate_artifact(&text)?;
    Ok(text)
}

// ---------------------------------------------------------------------
// BENCH_translate.json
// ---------------------------------------------------------------------

/// Translation configurations the translate artifact sweeps, labeled as
/// in `cf2df compare`. With fusion on, a `full-nofuse` contrast config
/// rides along so the artifact shows what the fusion pass costs and
/// saves; with `--no-fuse` everything is already unfused and the
/// contrast would be a duplicate.
fn translate_configs(fuse: bool) -> Vec<(&'static str, TranslateOptions)> {
    let mut v = vec![
        ("schema1", TranslateOptions::schema1().with_fuse(fuse)),
        ("schema2", TranslateOptions::schema2().with_fuse(fuse)),
        ("optimized", TranslateOptions::optimized().with_fuse(fuse)),
        ("full", TranslateOptions::full_parallel_schema3().with_fuse(fuse)),
    ];
    if fuse {
        v.push((
            "full-nofuse",
            TranslateOptions::full_parallel_schema3().with_fuse(false),
        ));
    }
    v
}

/// Render the translate artifact: wall-clock timings of the translation
/// pipeline per suite workload per configuration, alongside the pass
/// manager's deterministic counters. The wall medians gate pipeline
/// performance; `analyses_computed` gates the cache discipline — any
/// increase means a stage started recomputing an analysis it used to
/// share.
pub fn translate_artifact(quick: bool, fuse: bool) -> Result<String, String> {
    let mut t = timer(quick);
    let mut entries = Vec::new();
    for (name, src) in suite(quick) {
        let parsed = cf2df_lang::parse_to_cfg(&src)
            .map_err(|e| format!("workload {name} failed to parse: {e}"))?;
        let mut rows = Vec::new();
        for (label, opts) in translate_configs(fuse) {
            let tr = translate(&parsed.cfg, &parsed.alias, &opts)
                .map_err(|e| format!("workload {name}/{label} failed to translate: {e}"))?;
            let wall = stats_json(t.bench(&format!("{name}/translate/{label}"), || {
                std::hint::black_box(
                    translate(&parsed.cfg, &parsed.alias, &opts).unwrap().stats.ops,
                )
            }));
            let mut o = Obj::new();
            o.str("label", label)
                .raw("wall_ns", &wall)
                .num("passes", tr.passes.len() as u64)
                .num("revisions", tr.revisions)
                .num("analyses_computed", tr.cache_stats.total_computed())
                .num("cache_hits", tr.cache_stats.total_hits())
                .num("ops", tr.stats.ops as u64)
                .num("arcs", tr.stats.arcs as u64)
                .num("switches", tr.stats.switches as u64)
                .num("macros", tr.stats.macros as u64)
                .num("fused_ops", tr.stats.fused_ops as u64);
            rows.push(o.finish());
        }
        let mut o = Obj::new();
        o.str("name", name).raw("configs", &json::array(rows));
        entries.push(o.finish());
    }
    let mut doc = Obj::new();
    doc.str("artifact", "translate")
        .num("schema_version", SCHEMA_VERSION)
        .bool("quick", quick)
        .bool("fused", fuse)
        .raw("workloads", &json::array(entries));
    let text = doc.finish();
    validate_artifact(&text)?;
    Ok(text)
}

// ---------------------------------------------------------------------
// BENCH_throughput.json
// ---------------------------------------------------------------------

/// Requests per timed batch of the throughput artifact. Each wall-clock
/// sample covers one whole batch; `req_per_sec` is derived from the
/// median batch time.
fn throughput_requests(quick: bool) -> usize {
    if quick {
        8
    } else {
        32
    }
}

/// Workloads for the request-throughput artifact: deliberately *small*
/// graphs. A short program exposes little intra-request parallelism, so
/// a multi-worker pool starves running one request at a time — these
/// are exactly the workloads where admitting several invocations into
/// the shared tag space should pay, and where the acceptance gate
/// ([`crate::compare::require_inflight_speedup`]) demands it does.
fn throughput_suite(quick: bool) -> Vec<(&'static str, String)> {
    if quick {
        vec![
            ("dependence_chain", workloads::dependence_chain(8)),
            ("diamond_ladder", workloads::diamond_ladder(3)),
            ("read_fanout", workloads::read_fanout(6)),
        ]
    } else {
        vec![
            ("dependence_chain", workloads::dependence_chain(16)),
            ("diamond_ladder", workloads::diamond_ladder(4)),
            ("read_fanout", workloads::read_fanout(8)),
        ]
    }
}

/// Render the throughput artifact: requests-per-second of
/// [`cf2df_machine::serve`] per small workload at [`WORKER_COUNTS`] ×
/// [`INFLIGHT_LEVELS`]. The inflight-1 arm is a back-to-back loop of
/// ordinary pooled runs on the same [`ExecutorPool`] — the serial
/// baseline every multiplexed arm's `speedup_vs_inflight1` is measured
/// against. All arms are benchmarked *paired* so machine drift cannot
/// masquerade as a multiplexing difference, and every arm first runs an
/// untimed verification batch whose results must match the
/// deterministic simulator.
pub fn throughput_artifact(quick: bool, fuse: bool) -> Result<String, String> {
    let mut t = timer(quick);
    let requests = throughput_requests(quick);
    let pools: Vec<ExecutorPool> = WORKER_COUNTS.iter().map(|&w| ExecutorPool::new(w)).collect();
    let levels = INFLIGHT_LEVELS.len();
    let base_ki = INFLIGHT_LEVELS.iter().position(|&k| k == 1).expect("inflight 1 is swept");
    let mut entries = Vec::new();
    for (name, src) in throughput_suite(quick) {
        let parsed = cf2df_lang::parse_to_cfg(&src)
            .map_err(|e| format!("workload {name} failed to parse: {e}"))?;
        let tr = translate(
            &parsed.cfg,
            &parsed.alias,
            &TranslateOptions::full_parallel_schema3().with_fuse(fuse),
        )
        .map_err(|e| format!("workload {name} failed to translate: {e}"))?;
        let layout = MemLayout::distinct(&tr.cfg.vars);
        let cg = compile(&tr.dfg)
            .map_err(|e| format!("workload {name}: compile fault: {e}"))?;
        let sim = run_compiled(&cg, &layout, MachineConfig::unbounded())
            .map_err(|e| format!("workload {name}: simulator fault: {e}"))?;
        let par_cfg = ParConfig::default();

        // Verification pass (untimed): every arm runs one full batch;
        // each request's final memory must match the simulator, and the
        // chaos layer must be provably dormant. Token traffic is
        // deterministic, so it is recorded here, outside the timed
        // region.
        let mut tokens = vec![0u64; WORKER_COUNTS.len() * levels];
        for (wi, (pool, &workers)) in pools.iter().zip(WORKER_COUNTS.iter()).enumerate() {
            for (ki, &inflight) in INFLIGHT_LEVELS.iter().enumerate() {
                let ctx = format!("workload {name} at {workers} workers / inflight {inflight}");
                if inflight == 1 {
                    let mut total = 0u64;
                    for _ in 0..requests {
                        let (res, _, _) =
                            run_threaded_compiled_pooled_with(&cg, &layout, pool, &par_cfg);
                        let out = res.map_err(|e| format!("{ctx}: {e}"))?;
                        if out.memory != sim.memory {
                            return Err(format!("{ctx}: memory diverges from simulator"));
                        }
                        if out.metrics.chaos.total() != 0 {
                            return Err(format!("{ctx}: chaos faults on an ordinary run"));
                        }
                        total += out.metrics.tokens_processed;
                    }
                    tokens[wi * levels + ki] = total;
                } else {
                    let (results, stats) =
                        run_concurrent(&cg, &layout, pool, inflight, &par_cfg, requests);
                    for res in results {
                        let out = res.map_err(|e| format!("{ctx}: {e}"))?;
                        if out.memory != sim.memory {
                            return Err(format!("{ctx}: memory diverges from simulator"));
                        }
                    }
                    if stats.completed_ok != requests as u64 {
                        return Err(format!(
                            "{ctx}: {} of {requests} requests completed",
                            stats.completed_ok
                        ));
                    }
                    if stats.chaos.total() != 0 {
                        return Err(format!("{ctx}: chaos faults on an ordinary run"));
                    }
                    tokens[wi * levels + ki] = stats.tokens_processed;
                }
            }
        }

        // Timed pass: every (workers, inflight) arm paired. One closure
        // invocation = one whole batch of `requests` requests.
        let mut labels = Vec::new();
        let mut closures: Vec<Box<dyn FnMut() + '_>> = Vec::new();
        for (pool, &workers) in pools.iter().zip(WORKER_COUNTS.iter()) {
            for &inflight in &INFLIGHT_LEVELS {
                labels.push(format!("{name}/throughput/{workers}w/{inflight}in"));
                let (cg, layout, par_cfg) = (&cg, &layout, &par_cfg);
                closures.push(Box::new(move || {
                    if inflight == 1 {
                        for _ in 0..requests {
                            let (res, _, _) =
                                run_threaded_compiled_pooled_with(cg, layout, pool, par_cfg);
                            std::hint::black_box(res.unwrap().fired);
                        }
                    } else {
                        let (results, _) =
                            run_concurrent(cg, layout, pool, inflight, par_cfg, requests);
                        for r in results {
                            std::hint::black_box(r.unwrap().fired);
                        }
                    }
                }) as Box<dyn FnMut() + '_>);
            }
        }
        let mut arms: Vec<(&str, &mut dyn FnMut())> = labels
            .iter()
            .map(|l| l.as_str())
            .zip(closures.iter_mut().map(|c| &mut **c as &mut dyn FnMut()))
            .collect();
        let walls = t.bench_paired(&mut arms, Duration::from_millis(150));

        let mut arms_json = Vec::new();
        for (wi, &workers) in WORKER_COUNTS.iter().enumerate() {
            let base_median = walls[wi * levels + base_ki].median_ns;
            for (ki, &inflight) in INFLIGHT_LEVELS.iter().enumerate() {
                let wall = &walls[wi * levels + ki];
                let rps = requests as f64 * 1e9 / wall.median_ns;
                let mut o = Obj::new();
                o.num("workers", workers as u64)
                    .num("inflight", inflight as u64)
                    .num("requests", requests as u64)
                    .raw("wall_ns", &stats_json(wall))
                    .float("req_per_sec", rps)
                    .float("speedup_vs_inflight1", base_median / wall.median_ns)
                    .num("tokens_processed", tokens[wi * levels + ki]);
                arms_json.push(o.finish());
            }
        }

        let mut o = Obj::new();
        o.str("name", name)
            .num("fired", sim.stats.fired)
            .raw("arms", &json::array(arms_json));
        entries.push(o.finish());
    }
    let mut doc = Obj::new();
    doc.str("artifact", "throughput")
        .num("schema_version", SCHEMA_VERSION)
        .bool("quick", quick)
        .bool("fused", fuse)
        .num("requests", requests as u64)
        .raw(
            "worker_counts",
            &json::array(WORKER_COUNTS.iter().map(|w| w.to_string())),
        )
        .raw(
            "inflight_levels",
            &json::array(INFLIGHT_LEVELS.iter().map(|k| k.to_string())),
        )
        .raw("workloads", &json::array(entries));
    let text = doc.finish();
    validate_artifact(&text)?;
    Ok(text)
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

fn req<'a>(v: &'a Json, ctx: &str, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing field '{key}'"))
}

fn req_num(v: &Json, ctx: &str, key: &str) -> Result<f64, String> {
    req(v, ctx, key)?
        .as_num()
        .ok_or_else(|| format!("{ctx}: field '{key}' is not a finite number"))
}

fn req_str<'a>(v: &'a Json, ctx: &str, key: &str) -> Result<&'a str, String> {
    req(v, ctx, key)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: field '{key}' is not a string"))
}

fn req_arr<'a>(v: &'a Json, ctx: &str, key: &str) -> Result<&'a [Json], String> {
    let a = req(v, ctx, key)?
        .as_arr()
        .ok_or_else(|| format!("{ctx}: field '{key}' is not an array"))?;
    if a.is_empty() {
        return Err(format!("{ctx}: array '{key}' is empty"));
    }
    Ok(a)
}

fn check_stats(v: &Json, ctx: &str, version: u64) -> Result<(), String> {
    for key in ["mean_ns", "median_ns", "min_ns", "max_ns", "iters"] {
        req_num(v, ctx, key)?;
    }
    if version >= 2 {
        req_num(v, ctx, "p95_ns")?;
    }
    if req_num(v, ctx, "iters")? < 1.0 {
        return Err(format!("{ctx}: zero iterations measured"));
    }
    Ok(())
}

/// The document's declared schema version — required, and must be one
/// this validator understands (1 through [`SCHEMA_VERSION`]). Version 3
/// and later documents additionally declare `fused` as a boolean.
fn schema_version(doc: &Json, ctx: &str) -> Result<u64, String> {
    let v = req_num(doc, ctx, "schema_version")?;
    let v = v as u64;
    if !(1..=SCHEMA_VERSION).contains(&v) {
        return Err(format!(
            "{ctx}: unsupported schema_version {v} (understood: 1..={SCHEMA_VERSION})"
        ));
    }
    if v >= 3 && !matches!(req(doc, ctx, "fused")?, Json::Bool(_)) {
        return Err(format!("{ctx}: field 'fused' is not a boolean"));
    }
    Ok(v)
}

fn validate_pipeline_value(doc: &Json) -> Result<(), String> {
    schema_version(doc, "pipeline")?;
    for (wi, w) in req_arr(doc, "pipeline", "workloads")?.iter().enumerate() {
        let name = req_str(w, &format!("workloads[{wi}]"), "name")?.to_owned();
        for (mi, m) in req_arr(w, &name, "measurements")?.iter().enumerate() {
            let ctx = format!("{name}.measurements[{mi}]");
            req_str(m, &ctx, "label")?;
            for key in [
                "ops",
                "arcs",
                "switches",
                "merges",
                "fired",
                "makespan",
                "avg_parallelism",
                "max_parallelism",
                "mem_ops",
            ] {
                req_num(m, &ctx, key)?;
            }
        }
    }
    Ok(())
}

fn validate_executor_value(doc: &Json) -> Result<(), String> {
    let version = schema_version(doc, "executor")?;
    let counts: Vec<f64> = req_arr(doc, "executor", "worker_counts")?
        .iter()
        .map(|c| c.as_num().ok_or("worker_counts entry is not a number".to_owned()))
        .collect::<Result<_, _>>()?;
    for (wi, w) in req_arr(doc, "executor", "workloads")?.iter().enumerate() {
        let name = req_str(w, &format!("workloads[{wi}]"), "name")?.to_owned();
        req_num(w, &name, "fired")?;
        if version >= 3 {
            let unfused = req_num(w, &name, "fired_unfused")?;
            if unfused < req_num(w, &name, "fired")? {
                return Err(format!("{name}: fired_unfused below fired"));
            }
        }
        if version >= 4 {
            check_stats(
                req(w, &name, "compile_wall_ns")?,
                &format!("{name}.compile_wall_ns"),
                version,
            )?;
            let c = req(w, &name, "compiled")?;
            let cctx = format!("{name}.compiled");
            for key in [
                "ops",
                "out_ports",
                "dest_slots",
                "imm_slots",
                "macro_steps",
                "bytes",
                "max_hot_arity",
            ] {
                req_num(c, &cctx, key)?;
            }
        }
        check_stats(
            req(w, &name, "simulator_wall_ns")?,
            &format!("{name}.simulator_wall_ns"),
            version,
        )?;
        let threads = req_arr(w, &name, "threads")?;
        for c in &counts {
            if !threads
                .iter()
                .any(|t| t.get("workers").and_then(Json::as_num) == Some(*c))
            {
                return Err(format!("{name}: no thread entry for {c} workers"));
            }
        }
        for t in threads {
            let workers = req_num(t, &name, "workers")?;
            let ctx = format!("{name}.threads[workers={workers}]");
            check_stats(req(t, &ctx, "wall_ns")?, &format!("{ctx}.wall_ns"), version)?;
            for key in [
                "fired",
                "tokens_processed",
                "merged",
                "max_pending_slots",
                "tags_created",
                "deferred_reads",
                "deferred_read_peak",
            ] {
                req_num(t, &ctx, key)?;
            }
            if version >= 2 {
                let speedup = req_num(t, &ctx, "speedup_vs_1w")?;
                if speedup <= 0.0 {
                    return Err(format!("{ctx}: speedup_vs_1w must be positive"));
                }
                req_num(t, &ctx, "fast_path_fires")?;
            }
            if version >= 3 {
                req_num(t, &ctx, "macro_fires")?;
                req_num(t, &ctx, "ops_elided")?;
            }
            let per_worker = req_arr(t, &ctx, "per_worker")?;
            if per_worker.len() != workers as usize {
                return Err(format!(
                    "{ctx}: per_worker has {} entries, expected {workers}",
                    per_worker.len()
                ));
            }
            for (i, pw) in per_worker.iter().enumerate() {
                let pctx = format!("{ctx}.per_worker[{i}]");
                for key in [
                    "worker",
                    "processed",
                    "local_pops",
                    "injector_hits",
                    "steals",
                    "parks",
                    "unparks",
                ] {
                    req_num(pw, &pctx, key)?;
                }
                if version >= 2 {
                    req_num(pw, &pctx, "batches")?;
                    req_num(pw, &pctx, "fast_path")?;
                }
            }
        }
    }
    Ok(())
}

fn validate_translate_value(doc: &Json) -> Result<(), String> {
    let version = schema_version(doc, "translate")?;
    for (wi, w) in req_arr(doc, "translate", "workloads")?.iter().enumerate() {
        let name = req_str(w, &format!("workloads[{wi}]"), "name")?.to_owned();
        for (ci, c) in req_arr(w, &name, "configs")?.iter().enumerate() {
            let ctx = format!("{name}.configs[{ci}]");
            req_str(c, &ctx, "label")?;
            check_stats(req(c, &ctx, "wall_ns")?, &format!("{ctx}.wall_ns"), version)?;
            for key in [
                "passes",
                "revisions",
                "analyses_computed",
                "cache_hits",
                "ops",
                "arcs",
                "switches",
            ] {
                req_num(c, &ctx, key)?;
            }
            if req_num(c, &ctx, "passes")? < 1.0 {
                return Err(format!("{ctx}: no passes recorded"));
            }
            if version >= 3 {
                req_num(c, &ctx, "macros")?;
                req_num(c, &ctx, "fused_ops")?;
            }
        }
    }
    Ok(())
}

fn validate_throughput_value(doc: &Json) -> Result<(), String> {
    let version = schema_version(doc, "throughput")?;
    if version < 5 {
        return Err(format!(
            "throughput: artifact kind requires schema_version >= 5, got {version}"
        ));
    }
    if req_num(doc, "throughput", "requests")? < 1.0 {
        return Err("throughput: zero requests per batch".to_owned());
    }
    let num_list = |key: &str| -> Result<Vec<f64>, String> {
        req_arr(doc, "throughput", key)?
            .iter()
            .map(|c| {
                c.as_num()
                    .ok_or_else(|| format!("throughput: {key} entry is not a number"))
            })
            .collect()
    };
    let counts = num_list("worker_counts")?;
    let levels = num_list("inflight_levels")?;
    for (wi, w) in req_arr(doc, "throughput", "workloads")?.iter().enumerate() {
        let name = req_str(w, &format!("workloads[{wi}]"), "name")?.to_owned();
        req_num(w, &name, "fired")?;
        let arms = req_arr(w, &name, "arms")?;
        for c in &counts {
            for l in &levels {
                if !arms.iter().any(|a| {
                    a.get("workers").and_then(Json::as_num) == Some(*c)
                        && a.get("inflight").and_then(Json::as_num) == Some(*l)
                }) {
                    return Err(format!("{name}: no arm for {c} workers / inflight {l}"));
                }
            }
        }
        for a in arms {
            let workers = req_num(a, &name, "workers")?;
            let inflight = req_num(a, &name, "inflight")?;
            let ctx = format!("{name}.arms[{workers}w/{inflight}in]");
            check_stats(req(a, &ctx, "wall_ns")?, &format!("{ctx}.wall_ns"), version)?;
            for key in ["requests", "tokens_processed"] {
                req_num(a, &ctx, key)?;
            }
            if req_num(a, &ctx, "req_per_sec")? <= 0.0 {
                return Err(format!("{ctx}: req_per_sec must be positive"));
            }
            if req_num(a, &ctx, "speedup_vs_inflight1")? <= 0.0 {
                return Err(format!("{ctx}: speedup_vs_inflight1 must be positive"));
            }
        }
    }
    Ok(())
}

/// Validate a bench artifact: well-formed JSON, a recognized `artifact`
/// kind, every required field present, every numeric field finite.
pub fn validate_artifact(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    match doc.get("artifact").and_then(Json::as_str) {
        Some("pipeline") => validate_pipeline_value(&doc),
        Some("executor") => validate_executor_value(&doc),
        Some("translate") => validate_translate_value(&doc),
        Some("throughput") => validate_throughput_value(&doc),
        other => Err(format!("unrecognized artifact kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_artifact_validates() {
        let doc = pipeline_artifact(true, true).unwrap();
        validate_artifact(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("artifact").unwrap().as_str(), Some("pipeline"));
        let names: Vec<&str> = v
            .get("workloads")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|w| w.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"loop_nest"), "{names:?}");
    }

    #[test]
    fn quick_executor_artifact_validates_and_sweeps_workers() {
        let doc = executor_artifact(true, true).unwrap();
        validate_artifact(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        let w0 = &v.get("workloads").unwrap().as_arr().unwrap()[0];
        let threads = w0.get("threads").unwrap().as_arr().unwrap();
        let counts: Vec<f64> = threads
            .iter()
            .map(|t| t.get("workers").unwrap().as_num().unwrap())
            .collect();
        assert_eq!(counts, vec![1.0, 2.0, 4.0, 8.0]);
        // v4: the compile-once lowering is measured and its footprint
        // recorded per workload.
        assert!(w0.get("compile_wall_ns").unwrap().get("median_ns").unwrap().as_num().is_some());
        let fp = w0.get("compiled").unwrap();
        assert!(fp.get("ops").unwrap().as_num().unwrap() >= 1.0);
        assert!(fp.get("bytes").unwrap().as_num().unwrap() >= 1.0);
        assert!(fp.get("max_hot_arity").unwrap().as_num().is_some());
        // Per-worker steal/park counters are present and self-consistent.
        for t in threads {
            let fired = t.get("fired").unwrap().as_num().unwrap();
            let merged = t.get("merged").unwrap().as_num().unwrap();
            let processed = t.get("tokens_processed").unwrap().as_num().unwrap();
            assert_eq!(processed, fired + merged);
            assert!(t.get("speedup_vs_1w").unwrap().as_num().unwrap() > 0.0);
            assert!(t.get("fast_path_fires").unwrap().as_num().is_some());
            // Fusion accounting: elided ops explain the gap to the
            // unfused firing count recorded on the workload.
            let elided = t.get("ops_elided").unwrap().as_num().unwrap();
            let unfused = w0.get("fired_unfused").unwrap().as_num().unwrap();
            assert_eq!(fired + elided, unfused);
            let by_worker: f64 = t
                .get("per_worker")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .map(|pw| pw.get("processed").unwrap().as_num().unwrap())
                .sum();
            assert_eq!(by_worker, processed);
        }
    }

    #[test]
    fn quick_translate_artifact_validates_and_counts_passes() {
        let doc = translate_artifact(true, true).unwrap();
        validate_artifact(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("artifact").unwrap().as_str(), Some("translate"));
        for w in v.get("workloads").unwrap().as_arr().unwrap() {
            for c in w.get("configs").unwrap().as_arr().unwrap() {
                let passes = c.get("passes").unwrap().as_num().unwrap();
                let computed = c.get("analyses_computed").unwrap().as_num().unwrap();
                assert!(passes >= 5.0, "every config runs the core stages");
                assert!(computed >= 1.0, "something must be analyzed");
                // The optimized/full pipelines share analyses between
                // stages, so cache hits must appear.
                let label = c.get("label").unwrap().as_str().unwrap();
                if label == "optimized" || label == "full" {
                    assert!(
                        c.get("cache_hits").unwrap().as_num().unwrap() >= 1.0,
                        "{label} must hit the analysis cache"
                    );
                }
            }
        }
    }

    #[test]
    fn quick_throughput_artifact_validates_and_sweeps_arms() {
        let doc = throughput_artifact(true, true).unwrap();
        validate_artifact(&doc).unwrap();
        let v = json::parse(&doc).unwrap();
        assert_eq!(v.get("artifact").unwrap().as_str(), Some("throughput"));
        let workloads = v.get("workloads").unwrap().as_arr().unwrap();
        assert!(workloads.len() >= 2, "the acceptance gate needs >= 2 workloads");
        for w in workloads {
            let arms = w.get("arms").unwrap().as_arr().unwrap();
            assert_eq!(arms.len(), WORKER_COUNTS.len() * INFLIGHT_LEVELS.len());
            for a in arms {
                let rps = a.get("req_per_sec").unwrap().as_num().unwrap();
                assert!(rps > 0.0);
                let speedup = a.get("speedup_vs_inflight1").unwrap().as_num().unwrap();
                assert!(speedup > 0.0);
                // The inflight-1 arm is its own baseline by construction.
                if a.get("inflight").unwrap().as_num() == Some(1.0) {
                    assert_eq!(speedup, 1.0);
                }
                assert!(a.get("tokens_processed").unwrap().as_num().unwrap() > 0.0);
            }
        }
        // A throughput document claiming a pre-v5 schema is rejected:
        // the artifact kind did not exist before version 5.
        let v4 = doc.replace("\"schema_version\":5", "\"schema_version\":4");
        let err = validate_artifact(&v4).unwrap_err();
        assert!(err.contains("requires schema_version >= 5"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_and_nonfinite_fields() {
        assert!(validate_artifact("{}").is_err());
        assert!(validate_artifact("{\"artifact\":\"nope\"}").is_err());
        // A null (= non-finite) required field fails.
        let bad = r#"{"artifact":"pipeline","schema_version":1,"workloads":[{"name":"w","measurements":[
            {"label":"l","ops":1,"arcs":1,"switches":0,"merges":0,"fired":1,
             "makespan":0,"avg_parallelism":null,"max_parallelism":1,"mem_ops":0}]}]}"#;
        let err = validate_artifact(bad).unwrap_err();
        assert!(err.contains("avg_parallelism"), "{err}");
        // A missing field fails.
        let missing = r#"{"artifact":"pipeline","schema_version":1,"workloads":[{"name":"w","measurements":[
            {"label":"l"}]}]}"#;
        let err = validate_artifact(missing).unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    #[test]
    fn validator_handles_both_schema_versions() {
        // A minimal version-1 executor artifact (no p95_ns, no
        // speedup/fast-path/batch fields) must still validate — old
        // committed baselines are compared against forever.
        let v1 = r#"{"artifact":"executor","schema_version":1,"quick":true,
            "worker_counts":[1],
            "workloads":[{"name":"w","fired":3,
              "simulator_wall_ns":{"mean_ns":1.0,"median_ns":1.0,"min_ns":1.0,"max_ns":1.0,"iters":5},
              "threads":[{"workers":1,
                "wall_ns":{"mean_ns":1.0,"median_ns":1.0,"min_ns":1.0,"max_ns":1.0,"iters":5},
                "fired":3,"tokens_processed":3,"merged":0,"max_pending_slots":1,
                "tags_created":0,"deferred_reads":0,"deferred_read_peak":0,
                "per_worker":[{"worker":0,"processed":3,"local_pops":2,
                  "injector_hits":1,"steals":0,"parks":0,"unparks":0}]}]}]}"#;
        validate_artifact(v1).unwrap();
        // The same document claiming version 2 must fail: v2 requires
        // the new fields.
        let v2_missing = v1.replace("\"schema_version\":1", "\"schema_version\":2");
        let err = validate_artifact(&v2_missing).unwrap_err();
        assert!(err.contains("p95_ns"), "{err}");
        // The same document claiming version 4 must fail: v4 requires
        // the v3 fusion fields and the compile-once lowering record
        // (the first missing one — `fused` — is what it trips on).
        let v4_missing = v1.replace("\"schema_version\":1", "\"schema_version\":4");
        let err = validate_artifact(&v4_missing).unwrap_err();
        assert!(err.contains("fused"), "{err}");
        // A version this validator does not understand is rejected.
        let v9 = v1.replace("\"schema_version\":1", "\"schema_version\":9");
        let err = validate_artifact(&v9).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "{err}");
        // No version at all is rejected.
        let none = v1.replace("\"schema_version\":1,", "");
        let err = validate_artifact(&none).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }
}
