//! A minimal JSON writer and well-formedness checker.
//!
//! The workspace builds without serde (offline/no-deps policy), so every
//! `BENCH_*.json` artifact and [`crate::harness::Measurement`] rendering
//! goes through this one module: a tiny object/array writer that emits
//! *conformant* JSON (RFC 8259 string escapes, non-finite floats as
//! `null`) and a recursive-descent parser used as the in-tree validator
//! for everything we emit.

use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Escape a string for inclusion in a JSON string literal (without the
/// surrounding quotes): `"` and `\` are backslash-escaped, control
/// characters become `\n`/`\t`/… or `\u00XX`. Everything else — UTF-8
/// included — passes through verbatim, as JSON allows.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value: non-finite values (which JSON cannot
/// represent) become `null`, finite values use Rust's round-trippable
/// decimal rendering (never scientific notation, always a valid JSON
/// number).
pub fn float(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Incremental JSON object writer.
///
/// ```
/// let mut o = cf2df_bench::json::Obj::new();
/// o.str("label", "a \"quoted\" name");
/// o.num("fired", 42u64);
/// assert_eq!(o.finish(), r#"{"label":"a \"quoted\" name","fired":42}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Obj {
        Obj { buf: String::new() }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
        &mut self.buf
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Obj {
        let e = escape(v);
        let _ = write!(self.key(k), "\"{e}\"");
        self
    }

    /// Add an integer field.
    pub fn num(&mut self, k: &str, v: impl Into<u128>) -> &mut Obj {
        let v = v.into();
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a float field (`null` when non-finite).
    pub fn float(&mut self, k: &str, v: f64) -> &mut Obj {
        let f = float(v);
        self.key(k).push_str(&f);
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Obj {
        let _ = write!(self.key(k), "{v}");
        self
    }

    /// Add a field whose value is already-rendered JSON (a nested object
    /// or array).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Obj {
        self.key(k).push_str(v);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Render an iterator of already-rendered JSON values as an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

// ---------------------------------------------------------------------
// Parsing / validation
// ---------------------------------------------------------------------

/// A parsed JSON value — the in-tree validator's output.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (keys are not deduplicated).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) if x.is_finite() => Some(*x),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Returns an error describing the first
/// violation (with byte offset) — this is the well-formedness checker
/// applied to every artifact the workspace emits.
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(&c) => Err(format!("unexpected '{}' at byte {}", c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {} (expected {lit})", *pos))
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let k = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let v = parse_value(b, pos)?;
        fields.push((k, v));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' at byte {pos}, found {other:?}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' at byte {pos}, found {other:?}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}' at byte {pos}"))?;
                        // Surrogates are accepted only as escape pairs;
                        // lone surrogates map to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("invalid escape {other:?} at byte {pos}"));
                    }
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!(
                    "raw control character 0x{c:02x} in string at byte {pos}"
                ));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // safe to do bytewise).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid utf8 input"));
            }
        }
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> usize {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos - s
    };
    if digits(b, pos) == 0 {
        return Err(format!("expected digits at byte {pos}"));
    }
    // JSON forbids leading zeros: "01" is two tokens, i.e. invalid here.
    let int_part = &b[start..*pos];
    let unsigned = if int_part[0] == b'-' { &int_part[1..] } else { int_part };
    if unsigned.len() > 1 && unsigned[0] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(b, pos) == 0 {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if digits(b, pos) == 0 {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
    let x: f64 = text
        .parse()
        .map_err(|_| format!("unparseable number '{text}' at byte {start}"))?;
    Ok(Json::Num(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_is_json_conformant() {
        // Control chars, quotes, backslashes — including the cases where
        // Rust's `escape_default` would emit invalid `\u{..}` escapes.
        let nasty = "q\"\\ \n \t \u{1} \u{7f} é日";
        let escaped = escape(nasty);
        let doc = format!("{{\"k\":\"{escaped}\"}}");
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed.get("k").unwrap().as_str().unwrap(), nasty);
        assert!(escaped.contains("\\u0001"));
        assert!(!escaped.contains("\\u{"), "Rust-style escapes are not JSON");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
        assert_eq!(float(f64::NEG_INFINITY), "null");
        assert_eq!(float(2.5), "2.5");
        let mut o = Obj::new();
        o.float("a", f64::NAN).float("b", 1.5);
        let doc = o.finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().as_num(), Some(1.5));
    }

    #[test]
    fn writer_roundtrips_through_parser() {
        let mut inner = Obj::new();
        inner.num("n", 7u64).bool("ok", true);
        let mut o = Obj::new();
        o.str("label", "a \"b\" \\c\u{0}")
            .num("big", u64::MAX)
            .raw("inner", &inner.finish())
            .raw("arr", &array((0..3).map(|i| i.to_string())));
        let doc = o.finish();
        let v = parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        assert_eq!(v.get("label").unwrap().as_str().unwrap(), "a \"b\" \\c\u{0}");
        assert_eq!(v.get("inner").unwrap().get("n").unwrap().as_num(), Some(7.0));
        assert_eq!(v.get("arr").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "\"\\u{41}\"", // Rust-style escape: invalid JSON
            "\"raw \u{1} control\"",
            "NaN",
            "inf",
            "{\"a\":01}",
            "{\"a\":1}x",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn validator_accepts_the_grammar() {
        for good in [
            "null",
            "true",
            "-0.5e3",
            "[]",
            "{}",
            "{\"a\":[1,2,{\"b\":\"\\u0041\"}],\"c\":null}",
            "  [ 1 , 2 ]  ",
        ] {
            parse(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }
}
