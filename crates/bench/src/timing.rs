//! A minimal wall-clock micro-benchmark harness.
//!
//! In-tree replacement for `criterion` (removed per the offline/no-deps
//! build policy). The `benches/` targets are plain `harness = false`
//! binaries built on this module: each benchmark warms up, then measures
//! batched iterations until a time budget is spent, and prints one
//! aligned line of statistics. No statistical regression machinery — the
//! goal is honest relative numbers printed offline, not criterion's HTML
//! reports.
//!
//! ```no_run
//! let mut t = cf2df_bench::timing::Timer::quick();
//! t.bench("sum", || (0..1000u64).sum::<u64>());
//! ```

use std::time::{Duration, Instant};

/// One benchmark's collected statistics, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Benchmark label.
    pub name: String,
    /// Total measured iterations.
    pub iters: u64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Median of the per-batch means, ns/iter (robust to scheduler noise).
    pub median_ns: f64,
    /// Fastest batch, ns/iter.
    pub min_ns: f64,
    /// Slowest batch, ns/iter.
    pub max_ns: f64,
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

impl Stats {
    /// One aligned report line.
    pub fn line(&self) -> String {
        format!(
            "{:<44} {} /iter  (median {}, min {}, max {}, {} iters)",
            self.name,
            human(self.mean_ns),
            human(self.median_ns),
            human(self.min_ns),
            human(self.max_ns),
            self.iters
        )
    }
}

/// The benchmark driver: time budgets plus the accumulated results.
pub struct Timer {
    warmup: Duration,
    measure: Duration,
    /// Results of every `bench` call, in execution order.
    pub results: Vec<Stats>,
    quiet: bool,
}

impl Timer {
    /// Short windows tuned for CI-like settings (matches the old
    /// criterion `quick()` profile: ~300 ms warm-up, ~800 ms measure).
    pub fn quick() -> Timer {
        Timer {
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(800),
            results: Vec::new(),
            quiet: false,
        }
    }

    /// Custom budgets.
    pub fn with_budgets(warmup: Duration, measure: Duration) -> Timer {
        Timer {
            warmup,
            measure,
            results: Vec::new(),
            quiet: false,
        }
    }

    /// Suppress per-benchmark printing (used by this module's tests).
    pub fn quiet(mut self) -> Timer {
        self.quiet = true;
        self
    }

    /// Print a group heading, mirroring criterion's benchmark groups.
    pub fn group(&self, name: &str) {
        if !self.quiet {
            println!("\n## {name}");
        }
    }

    /// Measure `f`, print one report line, and record the stats.
    ///
    /// The closure's return value is passed through
    /// [`std::hint::black_box`] so the computation cannot be optimized
    /// away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Stats {
        // Warm-up, and estimate the per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est_per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Batch so each batch lasts ≳100 µs: per-batch clock reads then
        // cost well under 1% of what they time.
        let batch = ((100_000.0 / est_per_iter.max(1.0)).ceil() as u64).clamp(1, 1 << 20);

        let mut per_iter: Vec<f64> = Vec::new();
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || per_iter.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }

        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let mut sorted = per_iter.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let stats = Stats {
            name: name.to_owned(),
            iters: total_iters,
            mean_ns: mean,
            median_ns: median,
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
        };
        if !self.quiet {
            println!("{}", stats.line());
        }
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let mut t =
            Timer::with_budgets(Duration::from_millis(5), Duration::from_millis(20)).quiet();
        let s = t.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.iters > 0);
        assert!(s.mean_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert_eq!(t.results.len(), 1);
    }

    #[test]
    fn report_lines_are_humane() {
        assert!(human(12.3).contains("ns"));
        assert!(human(12_300.0).contains("µs"));
        assert!(human(12_300_000.0).contains("ms"));
        assert!(human(2_000_000_000.0).contains('s'));
    }
}
