//! A minimal wall-clock micro-benchmark harness.
//!
//! In-tree replacement for `criterion` (removed per the offline/no-deps
//! build policy). The `benches/` targets are plain `harness = false`
//! binaries built on this module: each benchmark warms up, then measures
//! batched iterations until a time budget is spent, and prints one
//! aligned line of statistics. No statistical regression machinery — the
//! goal is honest relative numbers printed offline, not criterion's HTML
//! reports.
//!
//! ```no_run
//! let mut t = cf2df_bench::timing::Timer::quick();
//! t.bench("sum", || (0..1000u64).sum::<u64>());
//! ```

use std::time::{Duration, Instant};

/// One benchmark's collected statistics, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Benchmark label.
    pub name: String,
    /// Total measured iterations.
    pub iters: u64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Median of the per-batch means, ns/iter (robust to scheduler noise).
    pub median_ns: f64,
    /// 95th percentile of the per-batch means, ns/iter. The honest tail
    /// number: `max_ns` is routinely 4–12× the median from one unlucky
    /// batch, which would make regression comparisons flaky.
    pub p95_ns: f64,
    /// Fastest batch, ns/iter.
    pub min_ns: f64,
    /// Slowest batch, ns/iter.
    pub max_ns: f64,
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

impl Stats {
    /// One aligned report line.
    pub fn line(&self) -> String {
        format!(
            "{:<44} {} /iter  (median {}, p95 {}, min {}, max {}, {} iters)",
            self.name,
            human(self.mean_ns),
            human(self.median_ns),
            human(self.p95_ns),
            human(self.min_ns),
            human(self.max_ns),
            self.iters
        )
    }
}

/// The benchmark driver: time budgets plus the accumulated results.
pub struct Timer {
    warmup: Duration,
    measure: Duration,
    /// Results of every `bench` call, in execution order.
    pub results: Vec<Stats>,
    quiet: bool,
}

impl Timer {
    /// Short windows tuned for CI-like settings (matches the old
    /// criterion `quick()` profile: ~300 ms warm-up, ~800 ms measure).
    pub fn quick() -> Timer {
        Timer {
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(800),
            results: Vec::new(),
            quiet: false,
        }
    }

    /// Custom budgets.
    pub fn with_budgets(warmup: Duration, measure: Duration) -> Timer {
        Timer {
            warmup,
            measure,
            results: Vec::new(),
            quiet: false,
        }
    }

    /// Suppress per-benchmark printing (used by this module's tests).
    pub fn quiet(mut self) -> Timer {
        self.quiet = true;
        self
    }

    /// Print a group heading, mirroring criterion's benchmark groups.
    pub fn group(&self, name: &str) {
        if !self.quiet {
            println!("\n## {name}");
        }
    }

    /// Measure `f`, print one report line, and record the stats.
    ///
    /// The closure's return value is passed through
    /// [`std::hint::black_box`] so the computation cannot be optimized
    /// away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &Stats {
        // Warm-up, and estimate the per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est_per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        // Batch so each batch lasts ≳100 µs: per-batch clock reads then
        // cost well under 1% of what they time.
        let batch = ((100_000.0 / est_per_iter.max(1.0)).ceil() as u64).clamp(1, 1 << 20);

        let mut per_iter: Vec<f64> = Vec::new();
        let mut total_iters = 0u64;
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || per_iter.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
        }

        // Even after the warm-up loop, the first *measured* batch is
        // routinely several times slower than the rest (page faults,
        // frequency ramp, cold branch predictors); with enough samples
        // it is discarded so one cold batch cannot poison the mean.
        if per_iter.len() >= 8 {
            let dropped = per_iter.remove(0);
            total_iters -= batch;
            debug_assert!(dropped >= 0.0);
        }

        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let mut sorted = per_iter.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        // Nearest-rank p95 (clamped to the last sample).
        let p95 = sorted[((sorted.len() * 95).div_ceil(100)).saturating_sub(1)];
        let stats = Stats {
            name: name.to_owned(),
            iters: total_iters,
            mean_ns: mean,
            median_ns: median,
            p95_ns: p95,
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
        };
        if !self.quiet {
            println!("{}", stats.line());
        }
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// Measure several alternatives *paired*: cycle through the arms in
    /// `slice`-long contiguous chunks until every arm has spent the full
    /// measure budget. Sequential [`Timer::bench`] calls give each arm a
    /// different stretch of wall-clock time, so slow machine-speed drift
    /// (thermal, background load) shows up as a phantom difference
    /// between arms; interleaving spreads the drift over all of them, so
    /// the *comparison* is honest even when the absolute numbers wander.
    /// Chunks (rather than strict alternation) keep each arm's runs
    /// back-to-back and warm.
    ///
    /// Returns one [`Stats`] per arm, in order; all are also appended to
    /// [`Timer::results`].
    pub fn bench_paired(
        &mut self,
        arms: &mut [(&str, &mut dyn FnMut())],
        slice: Duration,
    ) -> Vec<Stats> {
        let n = arms.len();
        assert!(n > 0, "bench_paired needs at least one arm");
        // Warm up each arm and size its batch, as in `bench`.
        let mut batches = Vec::with_capacity(n);
        for (_, f) in arms.iter_mut() {
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            while warm_start.elapsed() < self.warmup || warm_iters == 0 {
                f();
                warm_iters += 1;
            }
            let est = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
            batches.push(((100_000.0 / est.max(1.0)).ceil() as u64).clamp(1, 1 << 20));
        }

        let mut samples: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut spent = vec![Duration::ZERO; n];
        while spent.iter().any(|s| *s < self.measure) {
            for (i, (_, f)) in arms.iter_mut().enumerate() {
                if spent[i] >= self.measure && !samples[i].is_empty() {
                    continue;
                }
                let slice_start = Instant::now();
                loop {
                    let t0 = Instant::now();
                    for _ in 0..batches[i] {
                        f();
                    }
                    samples[i].push(t0.elapsed().as_nanos() as f64 / batches[i] as f64);
                    if slice_start.elapsed() >= slice || spent[i] + slice_start.elapsed() >= self.measure
                    {
                        break;
                    }
                }
                spent[i] += slice_start.elapsed();
            }
        }

        let mut out = Vec::with_capacity(n);
        for (i, (name, _)) in arms.iter().enumerate() {
            let mut per_iter = std::mem::take(&mut samples[i]);
            let mut total_iters = per_iter.len() as u64 * batches[i];
            if per_iter.len() >= 8 {
                per_iter.remove(0);
                total_iters -= batches[i];
            }
            let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
            let mut sorted = per_iter;
            sorted.sort_by(|a, b| a.total_cmp(b));
            let stats = Stats {
                name: (*name).to_owned(),
                iters: total_iters,
                mean_ns: mean,
                median_ns: sorted[sorted.len() / 2],
                p95_ns: sorted[((sorted.len() * 95).div_ceil(100)).saturating_sub(1)],
                min_ns: sorted[0],
                max_ns: sorted[sorted.len() - 1],
            };
            if !self.quiet {
                println!("{}", stats.line());
            }
            self.results.push(stats.clone());
            out.push(stats);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let mut t =
            Timer::with_budgets(Duration::from_millis(5), Duration::from_millis(20)).quiet();
        let s = t.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.iters > 0);
        assert!(s.mean_ns > 0.0);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
        assert!(s.median_ns <= s.p95_ns && s.p95_ns <= s.max_ns);
        assert!(s.line().contains("p95"));
        assert_eq!(t.results.len(), 1);
    }

    #[test]
    fn paired_measurement_compares_arms_fairly() {
        let mut t =
            Timer::with_budgets(Duration::from_millis(5), Duration::from_millis(30)).quiet();
        let spin = |turns: u64| {
            move || {
                let mut acc = 0u64;
                for i in 0..turns {
                    acc = acc.wrapping_add(i * i);
                }
                std::hint::black_box(acc);
            }
        };
        let mut fast = spin(100);
        let mut slow = spin(10_000);
        let stats = t.bench_paired(
            &mut [("fast", &mut fast), ("slow", &mut slow)],
            Duration::from_millis(5),
        );
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "fast");
        assert_eq!(stats[1].name, "slow");
        for s in &stats {
            assert!(s.iters > 0);
            assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns && s.p95_ns <= s.max_ns);
        }
        // A 100x bigger workload cannot measure faster than the small one.
        assert!(stats[1].mean_ns > stats[0].mean_ns);
        assert_eq!(t.results.len(), 2);
    }

    #[test]
    fn report_lines_are_humane() {
        assert!(human(12.3).contains("ns"));
        assert!(human(12_300.0).contains("µs"));
        assert!(human(12_300_000.0).contains("ms"));
        assert!(human(2_000_000_000.0).contains('s'));
    }
}
