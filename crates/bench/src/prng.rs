//! A tiny seedable pseudo-random number generator (xorshift64*).
//!
//! Replaces the external `rand` crate for everything the workspace needs:
//! deterministic workload generation and the in-house property-test
//! harness. Not cryptographic — statistical quality is more than enough
//! for fuzzing program shapes. The same seed always yields the same
//! stream, on every platform, forever; generated corpora are therefore
//! reproducible across builds.

/// Seedable xorshift64* generator.
///
/// The raw xorshift64* stream has well-known weaknesses from low-entropy
/// seeds (e.g. seed 0 is a fixed point of plain xorshift), so the seed is
/// first dispersed through a splitmix64 step — the standard recipe for
/// initializing xorshift-family states from small integers.
#[derive(Clone, Debug)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Create a generator from a 64-bit seed. Any seed is valid,
    /// including zero.
    pub fn seed_from_u64(seed: u64) -> Prng {
        // splitmix64 finalizer: guarantees a non-zero, well-mixed state.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Prng {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* (Vigna): xorshift step then a multiplicative mix.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    ///
    /// Uses the widening-multiply reduction (Lemire); the modulo bias is
    /// at most `n / 2^64`, far below anything a program generator can
    /// observe.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "Prng::below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform `usize` in the half-open range `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `i64` in the half-open range `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// `true` with probability `num / den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        debug_assert!(den > 0 && num <= den, "ratio {num}/{den}");
        self.below(u64::from(den)) < u64::from(num)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range_usize(0, xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = Prng::seed_from_u64(0);
        let vals: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0), "stream must not be stuck");
        assert_ne!(vals[0], vals[1]);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Prng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn ranges_honor_bounds() {
        let mut r = Prng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.range_i64(-5, 20);
            assert!((-5..20).contains(&v));
            let u = r.range_usize(1, 4);
            assert!((1..4).contains(&u));
        }
    }

    #[test]
    fn ratio_and_chance_are_plausible() {
        let mut r = Prng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "1/4 ratio wildly off: {hits}");
        let hits = (0..10_000).filter(|_| r.chance(0.5)).count();
        assert!((4500..5500).contains(&hits), "0.5 chance wildly off: {hits}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn pick_selects_every_element_eventually() {
        let mut r = Prng::seed_from_u64(13);
        let xs = ["a", "b", "c"];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*r.pick(&xs));
        }
        assert_eq!(seen.len(), 3);
    }
}
