//! Program generators.
//!
//! Two kinds: *scaling families* with a size knob (for the O(E·V) size
//! sweep and the parallelism experiments) and a *seeded random program
//! generator* producing terminating, reducible Imp programs (for
//! differential and property tests).

use crate::prng::Prng;
use std::fmt::Write as _;

/// `n` independent variable updates followed by a reduction — the workload
/// where per-variable tokens (Schema 2) shine over the single token
/// (Schema 1).
pub fn independent_updates(n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        let _ = writeln!(s, "v{i} := {};", i + 1);
    }
    for i in 0..n {
        let _ = writeln!(s, "v{i} := v{i} * 3 + {i};");
    }
    let mut sum = String::from("0");
    for i in 0..n {
        sum = format!("{sum} + v{i}");
    }
    let _ = writeln!(s, "total := {sum};");
    s
}

/// A single dependence chain of length `n` — no parallelism anywhere; all
/// schemas should perform alike (the paper's worst case).
pub fn dependence_chain(n: usize) -> String {
    let mut s = String::from("x := 1;\n");
    for _ in 0..n {
        s.push_str("x := x * 3 + 1;\n");
    }
    s
}

/// A ladder of `n` if-then-else diamonds over disjoint variables; under
/// Schema 2 every diamond still switches every variable, under the
/// optimized construction each variable passes only its own diamond.
pub fn diamond_ladder(n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        let _ = writeln!(s, "c{i} := {i} % 2;");
    }
    for i in 0..n {
        let _ = writeln!(
            s,
            "if c{i} == 0 then {{ d{i} := {i}; }} else {{ d{i} := {i} + 100; }}"
        );
    }
    let mut sum = String::from("0");
    for i in 0..n {
        sum = format!("{sum} + d{i}");
    }
    let _ = writeln!(s, "total := {sum};");
    s
}

/// `vars` variables updated inside a loop of `iters` iterations, only
/// `live` of them actually referenced in the body — the rest bypass the
/// loop entirely in the optimized construction.
pub fn loop_with_bystanders(vars: usize, live: usize, iters: usize) -> String {
    let mut s = String::new();
    for i in 0..vars {
        let _ = writeln!(s, "v{i} := {i};");
    }
    let _ = writeln!(s, "i := 0;");
    let _ = writeln!(s, "while i < {iters} do {{");
    let _ = writeln!(s, "  i := i + 1;");
    for j in 0..live.min(vars) {
        let _ = writeln!(s, "  v{j} := v{j} + i;");
    }
    let _ = writeln!(s, "}}");
    let mut sum = String::from("0");
    for i in 0..vars {
        sum = format!("{sum} + v{i}");
    }
    let _ = writeln!(s, "total := {sum};");
    s
}

/// The Fig 14 array-store loop, scaled: store `iters` elements.
pub fn array_store_loop(iters: usize) -> String {
    format!(
        "array x[{}];\n\
         i := 0;\n\
         l:\n\
           i := i + 1;\n\
           x[i] := 1;\n\
           if i < {iters} then {{ goto l; }} else {{ goto end; }}\n",
        iters + 1
    )
}

/// `n` consecutive statements all reading `x` — a maximal load sequence
/// for the §6.2 read-parallelization rewrite.
pub fn read_fanout(n: usize) -> String {
    let mut s = String::from("x := 7;\n");
    for i in 0..n {
        let _ = writeln!(s, "r{i} := x + {i};");
    }
    s
}

/// A wide array-update kernel: `arrays` arrays, each walked by one
/// counted loop that reads the previous element, combines it with a few
/// scalars, and stores the next — `arrays * iters` store iterations with
/// long serial arithmetic chains inside each body (macro-op fusion's
/// best case) and cross-array independence for the workers to exploit.
pub fn array_update_kernel(arrays: usize, iters: usize) -> String {
    let mut s = String::new();
    for a in 0..arrays {
        let _ = writeln!(s, "array b{a}[{}];", iters + 1);
    }
    for a in 0..arrays {
        let _ = writeln!(s, "b{a}[0] := {};", a + 1);
    }
    for a in 0..arrays {
        let _ = writeln!(s, "for i{a} := 1 to {iters} do {{");
        let _ = writeln!(s, "  t{a} := b{a}[i{a} - 1] * 3 + i{a};");
        let _ = writeln!(s, "  t{a} := t{a} - t{a} / 7 + {a};");
        let _ = writeln!(s, "  b{a}[i{a}] := t{a} % 1000;");
        let _ = writeln!(s, "}}");
    }
    let mut sum = String::from("0");
    for a in 0..arrays {
        sum = format!("{sum} + b{a}[{iters}]");
    }
    let _ = writeln!(s, "total := {sum};");
    s
}

/// Nested counted loops, `depth` deep, `width` iterations each.
pub fn loop_nest(depth: usize, width: usize) -> String {
    let mut s = String::from("acc := 0;\n");
    for d in 0..depth {
        let _ = writeln!(s, "{}for i{d} := 1 to {width} do {{", "  ".repeat(d));
    }
    let body_vars = (0..depth)
        .map(|d| format!("i{d}"))
        .collect::<Vec<_>>()
        .join(" + ");
    let _ = writeln!(s, "{}acc := acc + {body_vars};", "  ".repeat(depth));
    for d in (0..depth).rev() {
        let _ = writeln!(s, "{}}}", "  ".repeat(d));
    }
    s
}

/// Configuration for the random program generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of scalar variables to draw from.
    pub n_vars: usize,
    /// Number of arrays (each of length 8).
    pub n_arrays: usize,
    /// Statements per block.
    pub block_len: usize,
    /// Maximum nesting depth of ifs/loops.
    pub max_depth: usize,
    /// Probability (percent) of declaring alias pairs.
    pub alias_percent: u32,
    /// Maximum `for` trip count.
    pub max_trip: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            n_vars: 5,
            n_arrays: 1,
            block_len: 4,
            max_depth: 3,
            alias_percent: 20,
            max_trip: 4,
        }
    }
}

/// Generate a random, terminating, reducible Imp program. The same seed
/// always yields the same program.
pub fn random_program(seed: u64, cfgen: &GenConfig) -> String {
    let mut rng = Prng::seed_from_u64(seed);
    let mut s = String::new();
    for a in 0..cfgen.n_arrays {
        let _ = writeln!(s, "array a{a}[8];");
    }
    // Alias declarations between scalar pairs, and between array pairs
    // (arrays share a length, so consistent bindings exist for them too).
    for i in 0..cfgen.n_vars {
        for j in (i + 1)..cfgen.n_vars {
            if rng.ratio(cfgen.alias_percent.min(100), 100) {
                let _ = writeln!(s, "alias v{i} ~ v{j};");
            }
        }
    }
    for i in 0..cfgen.n_arrays {
        for j in (i + 1)..cfgen.n_arrays {
            if rng.ratio(cfgen.alias_percent.min(100), 100) {
                let _ = writeln!(s, "alias a{i} ~ a{j};");
            }
        }
    }
    // Initialize everything deterministically.
    for i in 0..cfgen.n_vars {
        let _ = writeln!(s, "v{i} := {};", rng.range_i64(-5, 20));
    }
    let mut counter = 0usize;
    gen_block(&mut rng, cfgen, &mut s, cfgen.max_depth, 0, &mut counter);
    s
}

fn gen_expr(rng: &mut Prng, cfgen: &GenConfig, depth: usize) -> String {
    if depth == 0 || rng.ratio(2, 5) {
        return match rng.range_usize(0, 3) {
            0 => format!("{}", rng.range_i64(-4, 10)),
            1 => format!("v{}", rng.range_usize(0, cfgen.n_vars)),
            _ => {
                if cfgen.n_arrays > 0 && rng.chance(0.3) {
                    // Clamp the subscript into range with min/max.
                    let a = rng.range_usize(0, cfgen.n_arrays);
                    let v = rng.range_usize(0, cfgen.n_vars);
                    format!("a{a}[min(max(v{v}, 0), 7)]")
                } else {
                    format!("v{}", rng.range_usize(0, cfgen.n_vars))
                }
            }
        };
    }
    let l = gen_expr(rng, cfgen, depth - 1);
    let r = gen_expr(rng, cfgen, depth - 1);
    let op = rng.pick(&["+", "-", "*", "/", "%", "<", "<=", "==", "!="]);
    format!("({l} {op} {r})")
}

fn gen_block(
    rng: &mut Prng,
    cfgen: &GenConfig,
    s: &mut String,
    depth: usize,
    indent: usize,
    counter: &mut usize,
) {
    let pad = "  ".repeat(indent);
    let n = rng.range_usize(1, cfgen.block_len + 1);
    for _ in 0..n {
        match rng.range_usize(0, 10) {
            0..=4 => {
                // Assignment (occasionally to an array element).
                if cfgen.n_arrays > 0 && rng.chance(0.2) {
                    let a = rng.range_usize(0, cfgen.n_arrays);
                    let v = rng.range_usize(0, cfgen.n_vars);
                    let e = gen_expr(rng, cfgen, 2);
                    let _ = writeln!(s, "{pad}a{a}[min(max(v{v}, 0), 7)] := {e};");
                } else {
                    let v = rng.range_usize(0, cfgen.n_vars);
                    let e = gen_expr(rng, cfgen, 2);
                    let _ = writeln!(s, "{pad}v{v} := {e};");
                }
            }
            5..=6 if depth > 0 => {
                if rng.chance(0.25) {
                    // Multi-way branch (footnote 3).
                    let sel = gen_expr(rng, cfgen, 1);
                    let n_arms = rng.range_usize(2, 4);
                    let _ = writeln!(s, "{pad}case {sel} of {{");
                    for arm in 0..n_arms {
                        let _ = writeln!(s, "{pad}  {arm} => {{");
                        gen_block(rng, cfgen, s, depth - 1, indent + 2, counter);
                        let _ = writeln!(s, "{pad}  }}");
                    }
                    let _ = writeln!(s, "{pad}  else => {{");
                    gen_block(rng, cfgen, s, depth - 1, indent + 2, counter);
                    let _ = writeln!(s, "{pad}  }}");
                    let _ = writeln!(s, "{pad}}}");
                } else {
                    let c = gen_expr(rng, cfgen, 1);
                    let _ = writeln!(s, "{pad}if {c} then {{");
                    gen_block(rng, cfgen, s, depth - 1, indent + 1, counter);
                    if rng.chance(0.6) {
                        let _ = writeln!(s, "{pad}}} else {{");
                        gen_block(rng, cfgen, s, depth - 1, indent + 1, counter);
                    }
                    let _ = writeln!(s, "{pad}}}");
                }
            }
            7..=8 if depth > 0 => {
                // Counted loop with a fresh induction variable: always
                // terminates.
                let id = *counter;
                *counter += 1;
                let trip = rng.range_usize(1, cfgen.max_trip + 1);
                let _ = writeln!(s, "{pad}for t{id} := 1 to {trip} do {{");
                gen_block(rng, cfgen, s, depth - 1, indent + 1, counter);
                let _ = writeln!(s, "{pad}}}");
            }
            _ => {
                let _ = writeln!(s, "{pad}skip;");
            }
        }
    }
}

/// Random unstructured "goto soup": `blocks` labelled blocks ending in
/// conditional gotos to arbitrary labels. Termination is forced by a step
/// counter (`c`) checked in every block, so every program halts within
/// `3 * blocks * 8` statements; the resulting CFGs are frequently
/// *irreducible* (multi-entry cycles), exercising node splitting.
pub fn goto_soup(seed: u64, blocks: usize) -> String {
    let mut rng = Prng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let blocks = blocks.max(2);
    let mut s = String::from("c := 0;\nx := 1;\ny := 2;\n");
    let budget = 8 * blocks;
    for b in 0..blocks {
        let _ = writeln!(s, "b{b}:");
        // Fuel guard: every block path increments c and bails out.
        let _ = writeln!(s, "  c := c + 1;");
        let _ = writeln!(s, "  if c > {budget} then {{ goto end; }} else {{ skip; }}");
        // A little work.
        match rng.range_usize(0, 3) {
            0 => {
                let _ = writeln!(s, "  x := x + y;");
            }
            1 => {
                let _ = writeln!(s, "  y := y * 2 - x;");
            }
            _ => {
                let _ = writeln!(s, "  x := x - 1; y := y + c;");
            }
        }
        // Conditional jump to a random block (backward or forward: cycles
        // with multiple entries arise freely).
        let t1 = rng.range_usize(0, blocks);
        let _ = writeln!(
            s,
            "  if (x + y + c) % {} == 0 then {{ goto b{t1}; }} else {{ skip; }}",
            rng.range_usize(2, 5)
        );
        // Fall through to the next block (keeping every block reachable);
        // the final block ends the program.
        if b + 1 == blocks {
            let _ = writeln!(s, "  goto end;");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_lang::parse_to_cfg;

    #[test]
    fn scaling_families_parse() {
        for src in [
            independent_updates(6),
            dependence_chain(5),
            diamond_ladder(4),
            loop_with_bystanders(6, 2, 5),
            array_store_loop(10),
            read_fanout(5),
            loop_nest(3, 3),
            array_update_kernel(3, 4),
        ] {
            parse_to_cfg(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }

    #[test]
    fn random_programs_parse_and_validate() {
        let cfgen = GenConfig::default();
        for seed in 0..80 {
            let src = random_program(seed, &cfgen);
            let parsed = parse_to_cfg(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            parsed.cfg.validate().unwrap();
            cf2df_cfg::LoopForest::compute(&parsed.cfg).unwrap();
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let c = GenConfig::default();
        assert_eq!(random_program(42, &c), random_program(42, &c));
        assert_ne!(random_program(42, &c), random_program(43, &c));
    }

    #[test]
    fn random_programs_terminate_sequentially() {
        let c = GenConfig::default();
        for seed in 0..40 {
            let src = random_program(seed, &c);
            let parsed = parse_to_cfg(&src).unwrap();
            let layout = cf2df_cfg::MemLayout::distinct(&parsed.cfg.vars);
            let cfgm = cf2df_machine::MachineConfig::default();
            cf2df_machine::vonneumann::interpret(&parsed.cfg, &layout, &cfgm)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }
}
