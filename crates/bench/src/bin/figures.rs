//! Print the reproduction of every figure and claim of the paper.
//!
//! ```text
//! cargo run -p cf2df-bench --bin figures              # everything
//! cargo run -p cf2df-bench --bin figures -- f9-f11 c4 # selected
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reports = cf2df_bench::figures::all_reports();
    let selected: Vec<_> = if args.is_empty() {
        reports
    } else {
        reports
            .into_iter()
            .filter(|(name, _)| args.iter().any(|a| a == name))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("unknown figure id; available:");
        for (name, _) in cf2df_bench::figures::all_reports() {
            eprintln!("  {name}");
        }
        std::process::exit(2);
    }
    for (_, f) in selected {
        println!("{}", f());
        println!("{}", "=".repeat(78));
    }
}
