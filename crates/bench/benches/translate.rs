//! Translation throughput: how fast each schema compiles control-flow
//! graphs into dataflow graphs (the compiler-side cost of the paper's
//! techniques). Regenerates the cost side of experiments F3–F11.

use cf2df_bench::workloads;
use cf2df_cfg::CoverStrategy;
use cf2df_core::pipeline::{translate, TranslateOptions};
use cf2df_lang::parse_to_cfg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_schemas(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate_schema");
    for (name, src) in [
        ("running_example", cf2df_lang::corpus::RUNNING_EXAMPLE),
        ("nested", cf2df_lang::corpus::NESTED),
        ("stencil", cf2df_lang::corpus::STENCIL),
        ("unstructured", cf2df_lang::corpus::UNSTRUCTURED),
    ] {
        let parsed = parse_to_cfg(src).unwrap();
        for (label, opts) in [
            ("schema1", TranslateOptions::schema1()),
            ("schema2", TranslateOptions::schema3(CoverStrategy::Singletons)),
            (
                "optimized",
                TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
            ),
            ("full", TranslateOptions::full_parallel_schema3()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, name),
                &parsed,
                |b, parsed| {
                    b.iter(|| {
                        let t =
                            translate(&parsed.cfg, &parsed.alias, black_box(&opts)).unwrap();
                        black_box(t.stats.ops)
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // C1's static side: translation cost as variables scale.
    let mut g = c.benchmark_group("translate_scaling_vars");
    for n in [4usize, 16, 64] {
        let src = workloads::loop_with_bystanders(n, 2, 4);
        let parsed = parse_to_cfg(&src).unwrap();
        g.bench_with_input(BenchmarkId::new("schema2", n), &parsed, |b, parsed| {
            b.iter(|| {
                translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("optimized", n), &parsed, |b, parsed| {
            b.iter(|| {
                translate(&parsed.cfg, &parsed.alias, &TranslateOptions::optimized()).unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("translate_scaling_forks");
    for n in [4usize, 16, 64] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        g.bench_with_input(BenchmarkId::new("optimized", n), &parsed, |b, parsed| {
            b.iter(|| {
                translate(&parsed.cfg, &parsed.alias, &TranslateOptions::optimized()).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_frontend(c: &mut Criterion) {
    let src = workloads::random_program(7, &Default::default());
    c.bench_function("parse_and_lower", |b| {
        b.iter(|| parse_to_cfg(black_box(&src)).unwrap())
    });
}


/// Short measurement windows: these benches run in CI-like settings.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!{
    name = benches;
    config = quick();
    targets = bench_schemas, bench_scaling, bench_frontend
}
criterion_main!(benches);
