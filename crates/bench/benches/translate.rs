//! Translation throughput: how fast each schema compiles control-flow
//! graphs into dataflow graphs (the compiler-side cost of the paper's
//! techniques). Regenerates the cost side of experiments F3–F11.
//!
//! Plain `harness = false` binary on the in-tree [`cf2df_bench::timing`]
//! harness (the workspace builds offline, without criterion).

use cf2df_bench::{timing::Timer, workloads};
use cf2df_cfg::CoverStrategy;
use cf2df_core::pipeline::{translate, TranslateOptions};
use cf2df_lang::parse_to_cfg;
use std::hint::black_box;

fn bench_schemas(t: &mut Timer) {
    t.group("translate_schema");
    for (name, src) in [
        ("running_example", cf2df_lang::corpus::RUNNING_EXAMPLE),
        ("nested", cf2df_lang::corpus::NESTED),
        ("stencil", cf2df_lang::corpus::STENCIL),
        ("unstructured", cf2df_lang::corpus::UNSTRUCTURED),
    ] {
        let parsed = parse_to_cfg(src).unwrap();
        for (label, opts) in [
            ("schema1", TranslateOptions::schema1()),
            ("schema2", TranslateOptions::schema3(CoverStrategy::Singletons)),
            (
                "optimized",
                TranslateOptions::schema3(CoverStrategy::Singletons).with_optimized(true),
            ),
            ("full", TranslateOptions::full_parallel_schema3()),
        ] {
            t.bench(&format!("{label}/{name}"), || {
                let tr = translate(&parsed.cfg, &parsed.alias, black_box(&opts)).unwrap();
                black_box(tr.stats.ops)
            });
        }
    }
}

fn bench_scaling(t: &mut Timer) {
    // C1's static side: translation cost as variables scale.
    t.group("translate_scaling_vars");
    for n in [4usize, 16, 64] {
        let src = workloads::loop_with_bystanders(n, 2, 4);
        let parsed = parse_to_cfg(&src).unwrap();
        t.bench(&format!("schema2/{n}"), || {
            translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap()
        });
        t.bench(&format!("optimized/{n}"), || {
            translate(&parsed.cfg, &parsed.alias, &TranslateOptions::optimized()).unwrap()
        });
    }

    t.group("translate_scaling_forks");
    for n in [4usize, 16, 64] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        t.bench(&format!("optimized/{n}"), || {
            translate(&parsed.cfg, &parsed.alias, &TranslateOptions::optimized()).unwrap()
        });
    }
}

fn bench_frontend(t: &mut Timer) {
    t.group("frontend");
    let src = workloads::random_program(7, &Default::default());
    t.bench("parse_and_lower", || {
        parse_to_cfg(black_box(&src)).unwrap()
    });
}

fn main() {
    let mut t = Timer::quick();
    bench_schemas(&mut t);
    bench_scaling(&mut t);
    bench_frontend(&mut t);
}
