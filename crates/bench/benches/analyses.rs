//! Analysis costs: postdominators, control dependence, switch placement
//! (Fig 10), and source vectors (Fig 11) as the CFG grows. Regenerates the
//! algorithmic-cost side of experiments F10/F11.

use cf2df_bench::workloads;
use cf2df_cfg::loop_control::insert_loop_control;
use cf2df_cfg::{ControlDeps, Cover, CoverStrategy, DomTree, LoopForest};
use cf2df_core::source_vec::SourceVectors;
use cf2df_core::switch_place::SwitchPlacement;
use cf2df_core::Lines;
use cf2df_lang::parse_to_cfg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_postdominators(c: &mut Criterion) {
    let mut g = c.benchmark_group("postdominators");
    for n in [8usize, 32, 128] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &parsed.cfg, |b, cfg| {
            b.iter(|| black_box(DomTree::postdominators(cfg)))
        });
    }
    g.finish();
}

fn bench_control_deps(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_dependence");
    for n in [8usize, 32, 128] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        let pd = DomTree::postdominators(&parsed.cfg);
        g.bench_with_input(BenchmarkId::from_parameter(n), &parsed.cfg, |b, cfg| {
            b.iter(|| black_box(ControlDeps::compute(cfg, &pd)))
        });
    }
    g.finish();
}

fn bench_switch_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch_placement_fig10");
    for n in [8usize, 32, 128] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
        g.bench_with_input(BenchmarkId::from_parameter(n), &(lc, lines), |b, (lc, lines)| {
            b.iter(|| black_box(SwitchPlacement::compute(lc, lines)))
        });
    }
    g.finish();
}

fn bench_source_vectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("source_vectors_fig11");
    for n in [8usize, 32, 128] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
        let sp = SwitchPlacement::compute(&lc, &lines);
        g.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(lc, lines, sp),
            |b, (lc, lines, sp)| b.iter(|| black_box(SourceVectors::compute(lc, lines, sp))),
        );
    }
    g.finish();
}

fn bench_loop_forest(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_decomposition");
    for depth in [2usize, 4, 6] {
        let src = workloads::loop_nest(depth, 3);
        let parsed = parse_to_cfg(&src).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(depth), &parsed.cfg, |b, cfg| {
            b.iter(|| black_box(LoopForest::compute(cfg).unwrap()))
        });
    }
    g.finish();
}


/// Short measurement windows: these benches run in CI-like settings.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!{
    name = benches;
    config = quick();
    targets = bench_postdominators,
    bench_control_deps,
    bench_switch_placement,
    bench_source_vectors,
    bench_loop_forest
}
criterion_main!(benches);
