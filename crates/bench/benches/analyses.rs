//! Analysis costs: postdominators, control dependence, switch placement
//! (Fig 10), and source vectors (Fig 11) as the CFG grows. Regenerates the
//! algorithmic-cost side of experiments F10/F11.
//!
//! Plain `harness = false` binary on the in-tree [`cf2df_bench::timing`]
//! harness (the workspace builds offline, without criterion).

use cf2df_bench::{timing::Timer, workloads};
use cf2df_cfg::loop_control::insert_loop_control;
use cf2df_cfg::{ControlDeps, Cover, CoverStrategy, DomTree, LoopForest};
use cf2df_core::source_vec::SourceVectors;
use cf2df_core::switch_place::SwitchPlacement;
use cf2df_core::Lines;
use cf2df_lang::parse_to_cfg;
use std::hint::black_box;

fn bench_postdominators(t: &mut Timer) {
    t.group("postdominators");
    for n in [8usize, 32, 128] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        t.bench(&format!("n={n}"), || {
            black_box(DomTree::postdominators(&parsed.cfg))
        });
    }
}

fn bench_control_deps(t: &mut Timer) {
    t.group("control_dependence");
    for n in [8usize, 32, 128] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        let pd = DomTree::postdominators(&parsed.cfg);
        t.bench(&format!("n={n}"), || {
            black_box(ControlDeps::compute(&parsed.cfg, &pd))
        });
    }
}

fn bench_switch_placement(t: &mut Timer) {
    t.group("switch_placement_fig10");
    for n in [8usize, 32, 128] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
        t.bench(&format!("n={n}"), || {
            black_box(SwitchPlacement::compute(&lc, &lines))
        });
    }
}

fn bench_source_vectors(t: &mut Timer) {
    t.group("source_vectors_fig11");
    for n in [8usize, 32, 128] {
        let src = workloads::diamond_ladder(n);
        let parsed = parse_to_cfg(&src).unwrap();
        let lc = insert_loop_control(&parsed.cfg).unwrap();
        let cover = Cover::build(&CoverStrategy::Singletons, &parsed.alias);
        let lines = Lines::new(&lc.cfg.vars, &parsed.alias, &cover, false);
        let sp = SwitchPlacement::compute(&lc, &lines);
        t.bench(&format!("n={n}"), || {
            black_box(SourceVectors::compute(&lc, &lines, &sp))
        });
    }
}

fn bench_loop_forest(t: &mut Timer) {
    t.group("interval_decomposition");
    for depth in [2usize, 4, 6] {
        let src = workloads::loop_nest(depth, 3);
        let parsed = parse_to_cfg(&src).unwrap();
        t.bench(&format!("depth={depth}"), || {
            black_box(LoopForest::compute(&parsed.cfg).unwrap())
        });
    }
}

fn main() {
    let mut t = Timer::quick();
    bench_postdominators(&mut t);
    bench_control_deps(&mut t);
    bench_switch_placement(&mut t);
    bench_source_vectors(&mut t);
    bench_loop_forest(&mut t);
}
