//! Simulator throughput: executing translated graphs on the ETS machine.
//! Regenerates the dynamic side of experiments F6–F8, F14, C4, C5.
//!
//! Plain `harness = false` binary on the in-tree [`cf2df_bench::timing`]
//! harness (the workspace builds offline, without criterion).

use cf2df_bench::{timing::Timer, workloads};
use cf2df_cfg::MemLayout;
use cf2df_core::pipeline::{translate, TranslateOptions};
use cf2df_lang::parse_to_cfg;
use cf2df_machine::{run, MachineConfig};
use std::hint::black_box;

fn prepared(src: &str, opts: &TranslateOptions) -> (cf2df_dfg::Dfg, MemLayout) {
    let parsed = parse_to_cfg(src).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, opts).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    (t.dfg, layout)
}

fn bench_corpus(t: &mut Timer) {
    t.group("simulate");
    for (name, src) in [
        ("fib", cf2df_lang::corpus::FIB),
        ("nested", cf2df_lang::corpus::NESTED),
        ("collatz", cf2df_lang::corpus::COLLATZ),
        ("stencil", cf2df_lang::corpus::STENCIL),
    ] {
        for (label, opts) in [
            ("schema1", TranslateOptions::schema1()),
            ("schema2", TranslateOptions::schema2()),
            ("full", TranslateOptions::full_parallel()),
        ] {
            let (dfg, layout) = prepared(src, &opts);
            t.bench(&format!("{label}/{name}"), || {
                let out = run(&dfg, &layout, MachineConfig::unbounded()).unwrap();
                black_box(out.stats.fired)
            });
        }
    }
}

fn bench_processor_sweep(t: &mut Timer) {
    let (dfg, layout) = prepared(cf2df_lang::corpus::NESTED, &TranslateOptions::schema2());
    t.group("simulate_finite_processors");
    for p in [1usize, 4, 16] {
        t.bench(&format!("p={p}"), || {
            run(&dfg, &layout, MachineConfig::with_processors(p))
                .unwrap()
                .stats
                .makespan
        });
    }
}

fn bench_fig14(t: &mut Timer) {
    let src = workloads::array_store_loop(32);
    let base = TranslateOptions::schema2().with_memory_elimination(true);
    let para = base.clone().with_array_parallelization(true);
    let (g_base, layout) = prepared(&src, &base);
    let (g_para, _) = prepared(&src, &para);
    let mc = MachineConfig::unbounded().mem_latency(50);
    t.group("fig14_array_stores");
    t.bench("sequentialized", || {
        run(&g_base, &layout, mc.clone()).unwrap().stats.makespan
    });
    t.bench("parallelized", || {
        run(&g_para, &layout, mc.clone()).unwrap().stats.makespan
    });
}

fn bench_baseline(t: &mut Timer) {
    let parsed = parse_to_cfg(cf2df_lang::corpus::NESTED).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    t.group("baseline");
    t.bench("von_neumann_interpreter", || {
        cf2df_machine::vonneumann::interpret(&parsed.cfg, &layout, &MachineConfig::default())
            .unwrap()
            .statements
    });
}

fn main() {
    let mut t = Timer::quick();
    bench_corpus(&mut t);
    bench_processor_sweep(&mut t);
    bench_fig14(&mut t);
    bench_baseline(&mut t);
}
