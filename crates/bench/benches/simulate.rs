//! Simulator throughput: executing translated graphs on the ETS machine.
//! Regenerates the dynamic side of experiments F6–F8, F14, C4, C5.

use cf2df_bench::workloads;
use cf2df_cfg::MemLayout;
use cf2df_core::pipeline::{translate, TranslateOptions};
use cf2df_lang::parse_to_cfg;
use cf2df_machine::{run, MachineConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn prepared(src: &str, opts: &TranslateOptions) -> (cf2df_dfg::Dfg, MemLayout) {
    let parsed = parse_to_cfg(src).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, opts).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    (t.dfg, layout)
}

fn bench_corpus(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    for (name, src) in [
        ("fib", cf2df_lang::corpus::FIB),
        ("nested", cf2df_lang::corpus::NESTED),
        ("collatz", cf2df_lang::corpus::COLLATZ),
        ("stencil", cf2df_lang::corpus::STENCIL),
    ] {
        for (label, opts) in [
            ("schema1", TranslateOptions::schema1()),
            ("schema2", TranslateOptions::schema2()),
            ("full", TranslateOptions::full_parallel()),
        ] {
            let (dfg, layout) = prepared(src, &opts);
            g.bench_with_input(
                BenchmarkId::new(label, name),
                &(dfg, layout),
                |b, (dfg, layout)| {
                    b.iter(|| {
                        let out = run(dfg, layout, MachineConfig::unbounded()).unwrap();
                        black_box(out.stats.fired)
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_processor_sweep(c: &mut Criterion) {
    let (dfg, layout) = prepared(cf2df_lang::corpus::NESTED, &TranslateOptions::schema2());
    let mut g = c.benchmark_group("simulate_finite_processors");
    for p in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| run(&dfg, &layout, MachineConfig::with_processors(p)).unwrap().stats.makespan)
        });
    }
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let src = workloads::array_store_loop(32);
    let base = TranslateOptions::schema2().with_memory_elimination(true);
    let para = base.clone().with_array_parallelization(true);
    let (g_base, layout) = prepared(&src, &base);
    let (g_para, _) = prepared(&src, &para);
    let mc = MachineConfig::unbounded().mem_latency(50);
    let mut g = c.benchmark_group("fig14_array_stores");
    g.bench_function("sequentialized", |b| {
        b.iter(|| run(&g_base, &layout, mc.clone()).unwrap().stats.makespan)
    });
    g.bench_function("parallelized", |b| {
        b.iter(|| run(&g_para, &layout, mc.clone()).unwrap().stats.makespan)
    });
    g.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let parsed = parse_to_cfg(cf2df_lang::corpus::NESTED).unwrap();
    let layout = MemLayout::distinct(&parsed.cfg.vars);
    c.bench_function("von_neumann_interpreter", |b| {
        b.iter(|| {
            cf2df_machine::vonneumann::interpret(
                &parsed.cfg,
                &layout,
                &MachineConfig::default(),
            )
            .unwrap()
            .statements
        })
    });
}


/// Short measurement windows: these benches run in CI-like settings.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!{
    name = benches;
    config = quick();
    targets = bench_corpus,
    bench_processor_sweep,
    bench_fig14,
    bench_baseline
}
criterion_main!(benches);
