//! Wall-clock execution: the deterministic simulator vs the multi-threaded
//! token-pushing executor at different thread counts.
//!
//! Plain `harness = false` binary on the in-tree [`cf2df_bench::timing`]
//! harness (the workspace builds offline, without criterion).

use cf2df_bench::timing::Timer;
use cf2df_cfg::MemLayout;
use cf2df_core::pipeline::{translate, TranslateOptions};
use cf2df_lang::parse_to_cfg;
use cf2df_machine::parallel::run_threaded;
use cf2df_machine::{run, MachineConfig};
use std::hint::black_box;

fn workload() -> (cf2df_dfg::Dfg, MemLayout) {
    // A loop-heavy program with real work per iteration.
    let src = cf2df_bench::workloads::loop_nest(3, 6);
    let parsed = parse_to_cfg(&src).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    (t.dfg, layout)
}

fn main() {
    let (dfg, layout) = workload();
    let mut t = Timer::quick();
    t.group("executor");
    t.bench("simulator", || {
        let out = run(&dfg, &layout, MachineConfig::unbounded()).unwrap();
        black_box(out.stats.fired)
    });
    for threads in [1usize, 2, 4] {
        t.bench(&format!("threaded/{threads}"), || {
            let out = run_threaded(&dfg, &layout, threads).unwrap();
            black_box(out.fired)
        });
    }
}
