//! Wall-clock execution: the deterministic simulator vs the multi-threaded
//! token-pushing executor at different thread counts.

use cf2df_cfg::MemLayout;
use cf2df_core::pipeline::{translate, TranslateOptions};
use cf2df_lang::parse_to_cfg;
use cf2df_machine::parallel::run_threaded;
use cf2df_machine::{run, MachineConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn workload() -> (cf2df_dfg::Dfg, MemLayout) {
    // A loop-heavy program with real work per iteration.
    let src = cf2df_bench::workloads::loop_nest(3, 6);
    let parsed = parse_to_cfg(&src).unwrap();
    let t = translate(&parsed.cfg, &parsed.alias, &TranslateOptions::schema2()).unwrap();
    let layout = MemLayout::distinct(&t.cfg.vars);
    (t.dfg, layout)
}

fn bench_executors(c: &mut Criterion) {
    let (dfg, layout) = workload();
    let mut g = c.benchmark_group("executor");
    g.bench_function("simulator", |b| {
        b.iter(|| {
            let out = run(&dfg, &layout, MachineConfig::unbounded()).unwrap();
            black_box(out.stats.fired)
        })
    });
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("threaded", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let out = run_threaded(&dfg, &layout, threads).unwrap();
                    black_box(out.fired)
                })
            },
        );
    }
    g.finish();
}


/// Short measurement windows: these benches run in CI-like settings.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!{
    name = benches;
    config = quick();
    targets = bench_executors
}
criterion_main!(benches);
