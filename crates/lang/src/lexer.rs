//! Hand-written lexer for the Imp language.

use crate::error::LangError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `:=`
    Assign,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `~`
    Tilde,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `=>`
    FatArrow,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

/// A token with its source line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Tokenize source text. `#` starts a to-end-of-line comment.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut v: i64 = 0;
                while let Some(&c) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        v = v.wrapping_mul(10).wrapping_add(d as i64);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Int(v),
                    line,
                });
            }
            _ => {
                chars.next();
                let two = |chars: &mut std::iter::Peekable<std::str::Chars>, want: char| {
                    if chars.peek() == Some(&want) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let tok = match c {
                    ':' => {
                        if two(&mut chars, '=') {
                            Tok::Assign
                        } else {
                            Tok::Colon
                        }
                    }
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    '~' => Tok::Tilde,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBrack,
                    ']' => Tok::RBrack,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    '%' => Tok::Percent,
                    '=' => {
                        if two(&mut chars, '=') {
                            Tok::EqEq
                        } else if two(&mut chars, '>') {
                            Tok::FatArrow
                        } else {
                            return Err(LangError::Lex { line, ch: '=' });
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=') {
                            Tok::NotEq
                        } else {
                            Tok::Bang
                        }
                    }
                    '<' => {
                        if two(&mut chars, '=') {
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '=') {
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    '&' => {
                        if two(&mut chars, '&') {
                            Tok::AndAnd
                        } else {
                            return Err(LangError::Lex { line, ch: '&' });
                        }
                    }
                    '|' => {
                        if two(&mut chars, '|') {
                            Tok::OrOr
                        } else {
                            return Err(LangError::Lex { line, ch: '|' });
                        }
                    }
                    other => return Err(LangError::Lex { line, ch: other }),
                };
                out.push(Spanned { tok, line });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            toks("x := x + 1;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("x".into()),
                Tok::Plus,
                Tok::Int(1),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn distinguishes_colon_and_assign() {
        assert_eq!(
            toks("l: x := 1;"),
            vec![
                Tok::Ident("l".into()),
                Tok::Colon,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Semi
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("== != <= >= && || < > !"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Lt,
                Tok::Gt,
                Tok::Bang
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("x # comment\ny").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(matches!(lex("x @ y"), Err(LangError::Lex { ch: '@', .. })));
        assert!(matches!(lex("x = y"), Err(LangError::Lex { ch: '=', .. })));
        assert!(matches!(lex("a & b"), Err(LangError::Lex { ch: '&', .. })));
    }

    #[test]
    fn brackets_and_numbers() {
        assert_eq!(
            toks("a[10] := 3;"),
            vec![
                Tok::Ident("a".into()),
                Tok::LBrack,
                Tok::Int(10),
                Tok::RBrack,
                Tok::Assign,
                Tok::Int(3),
                Tok::Semi
            ]
        );
    }
}
