//! Recursive-descent parser for the Imp language.

use crate::ast::{AstExpr, AstLValue, AstStmt, Program};
use crate::error::LangError;
use crate::lexer::{lex, Spanned, Tok};
use cf2df_cfg::{BinOp, UnOp};

/// Parse source text into a [`Program`].
pub fn parse(src: &str) -> Result<Program, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LangError> {
        Err(LangError::Parse {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), LangError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), LangError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword `{kw}`, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        let mut prog = Program::default();
        // Declarations may appear anywhere at top level, but conventionally
        // lead the program.
        let mut body = Vec::new();
        while self.peek().is_some() {
            if self.is_kw("array") {
                self.pos += 1;
                let name = self.ident("array name")?;
                self.expect(&Tok::LBrack, "`[`")?;
                let len = match self.bump() {
                    Some(Tok::Int(n)) if n > 0 => n as u32,
                    _ => return self.err("expected positive array length"),
                };
                self.expect(&Tok::RBrack, "`]`")?;
                self.expect(&Tok::Semi, "`;`")?;
                prog.arrays.push((name, len));
            } else if self.is_kw("alias") {
                self.pos += 1;
                let a = self.ident("alias operand")?;
                self.expect(&Tok::Tilde, "`~`")?;
                let b = self.ident("alias operand")?;
                self.expect(&Tok::Semi, "`;`")?;
                prog.aliases.push((a, b));
            } else {
                body.push(self.stmt()?);
            }
        }
        prog.body = body;
        Ok(prog)
    }

    fn block(&mut self) -> Result<Vec<AstStmt>, LangError> {
        self.expect(&Tok::LBrace, "`{`")?;
        let mut out = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return self.err("unexpected end of input in block");
            }
            out.push(self.stmt()?);
        }
        self.pos += 1; // consume `}`
        Ok(out)
    }

    fn stmt(&mut self) -> Result<AstStmt, LangError> {
        let line = self.line();
        if self.is_kw("if") {
            self.pos += 1;
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let then_body = self.block()?;
            let else_body = if self.eat_kw("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(AstStmt::If {
                cond,
                then_body,
                else_body,
                line,
            });
        }
        if self.is_kw("while") {
            self.pos += 1;
            let cond = self.expr()?;
            self.expect_kw("do")?;
            let body = self.block()?;
            return Ok(AstStmt::While { cond, body, line });
        }
        if self.is_kw("for") {
            self.pos += 1;
            let var = self.ident("loop variable")?;
            self.expect(&Tok::Assign, "`:=`")?;
            let from = self.expr()?;
            self.expect_kw("to")?;
            let to = self.expr()?;
            self.expect_kw("do")?;
            let body = self.block()?;
            return Ok(AstStmt::For {
                var,
                from,
                to,
                body,
                line,
            });
        }
        if self.is_kw("case") {
            self.pos += 1;
            let selector = self.expr()?;
            self.expect_kw("of")?;
            self.expect(&Tok::LBrace, "`{`")?;
            let mut arms: Vec<Vec<AstStmt>> = Vec::new();
            let default = loop {
                if self.eat_kw("else") {
                    self.expect(&Tok::FatArrow, "`=>`")?;
                    break self.block()?;
                }
                match self.bump() {
                    Some(Tok::Int(n)) if n == arms.len() as i64 => {}
                    Some(Tok::Int(_)) => {
                        return self.err("case arms must be numbered 0, 1, 2, … in order")
                    }
                    _ => return self.err("expected an arm number or `else`"),
                }
                self.expect(&Tok::FatArrow, "`=>`")?;
                arms.push(self.block()?);
            };
            self.expect(&Tok::RBrace, "`}`")?;
            return Ok(AstStmt::Case {
                selector,
                arms,
                default,
                line,
            });
        }
        if self.is_kw("goto") {
            self.pos += 1;
            let label = self.ident("label")?;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(AstStmt::Goto { label, line });
        }
        if self.is_kw("skip") {
            self.pos += 1;
            self.expect(&Tok::Semi, "`;`")?;
            return Ok(AstStmt::Skip { line });
        }
        // Label: `ident :` (but not `ident :=`).
        if matches!(self.peek(), Some(Tok::Ident(_))) && self.peek2() == Some(&Tok::Colon) {
            let name = self.ident("label")?;
            self.pos += 1; // consume `:`
            return Ok(AstStmt::Label { name, line });
        }
        // Assignment: `ident := e;` or `ident [ e ] := e;`.
        let name = self.ident("statement")?;
        let lhs = if self.peek() == Some(&Tok::LBrack) {
            self.pos += 1;
            let idx = self.expr()?;
            self.expect(&Tok::RBrack, "`]`")?;
            AstLValue::Index(name, idx)
        } else {
            AstLValue::Var(name)
        };
        self.expect(&Tok::Assign, "`:=`")?;
        let rhs = self.expr()?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(AstStmt::Assign { lhs, rhs, line })
    }

    // Precedence climbing: || < && < comparisons < +- < */% < unary.
    fn expr(&mut self) -> Result<AstExpr, LangError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, LangError> {
        let mut l = self.and_expr()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            let r = self.and_expr()?;
            l = AstExpr::bin(BinOp::Or, l, r);
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> Result<AstExpr, LangError> {
        let mut l = self.cmp_expr()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.pos += 1;
            let r = self.cmp_expr()?;
            l = AstExpr::bin(BinOp::And, l, r);
        }
        Ok(l)
    }

    fn cmp_expr(&mut self) -> Result<AstExpr, LangError> {
        let l = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => BinOp::Eq,
            Some(Tok::NotEq) => BinOp::Ne,
            Some(Tok::Lt) => BinOp::Lt,
            Some(Tok::Le) => BinOp::Le,
            Some(Tok::Gt) => BinOp::Gt,
            Some(Tok::Ge) => BinOp::Ge,
            _ => return Ok(l),
        };
        self.pos += 1;
        let r = self.add_expr()?;
        Ok(AstExpr::bin(op, l, r))
    }

    fn add_expr(&mut self) -> Result<AstExpr, LangError> {
        let mut l = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => return Ok(l),
            };
            self.pos += 1;
            let r = self.mul_expr()?;
            l = AstExpr::bin(op, l, r);
        }
    }

    fn mul_expr(&mut self) -> Result<AstExpr, LangError> {
        let mut l = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => return Ok(l),
            };
            self.pos += 1;
            let r = self.unary_expr()?;
            l = AstExpr::bin(op, l, r);
        }
    }

    fn unary_expr(&mut self) -> Result<AstExpr, LangError> {
        match self.peek() {
            Some(Tok::Minus) => {
                self.pos += 1;
                let e = self.unary_expr()?;
                Ok(AstExpr::Unary(UnOp::Neg, Box::new(e)))
            }
            Some(Tok::Bang) => {
                self.pos += 1;
                let e = self.unary_expr()?;
                Ok(AstExpr::Unary(UnOp::Not, Box::new(e)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<AstExpr, LangError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(AstExpr::Const(n))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) if name == "min" || name == "max" => {
                // Builtin two-argument functions.
                if self.peek2() == Some(&Tok::LParen) {
                    self.pos += 2;
                    let a = self.expr()?;
                    self.expect(&Tok::Comma, "`,`")?;
                    let b = self.expr()?;
                    self.expect(&Tok::RParen, "`)`")?;
                    let op = if name == "min" { BinOp::Min } else { BinOp::Max };
                    return Ok(AstExpr::bin(op, a, b));
                }
                self.pos += 1;
                Ok(AstExpr::Var(name))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::LBrack) {
                    self.pos += 1;
                    let idx = self.expr()?;
                    self.expect(&Tok::RBrack, "`]`")?;
                    Ok(AstExpr::Index(name, Box::new(idx)))
                } else {
                    Ok(AstExpr::Var(name))
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_running_example() {
        let p = parse(crate::corpus::RUNNING_EXAMPLE).unwrap();
        assert_eq!(p.body.len(), 4); // label, two assigns, if
        assert!(matches!(&p.body[0], AstStmt::Label { name, .. } if name == "l"));
        assert!(matches!(&p.body[3], AstStmt::If { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("x := 1 + 2 * 3;").unwrap();
        let AstStmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        assert_eq!(
            *rhs,
            AstExpr::bin(
                BinOp::Add,
                AstExpr::Const(1),
                AstExpr::bin(BinOp::Mul, AstExpr::Const(2), AstExpr::Const(3))
            )
        );
    }

    #[test]
    fn precedence_cmp_and_logic() {
        let p = parse("x := a < b && c == d || e;").unwrap();
        let AstStmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        // ((a<b) && (c==d)) || e
        let AstExpr::Binary(BinOp::Or, l, _) = rhs else {
            panic!("top is ||: {rhs:?}")
        };
        assert!(matches!(**l, AstExpr::Binary(BinOp::And, ..)));
    }

    #[test]
    fn parens_override() {
        let p = parse("x := (1 + 2) * 3;").unwrap();
        let AstStmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        assert!(matches!(rhs, AstExpr::Binary(BinOp::Mul, ..)));
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse("x := - - 3; y := !(a < b);").unwrap();
        assert_eq!(p.body.len(), 2);
        let AstStmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        assert!(matches!(rhs, AstExpr::Unary(UnOp::Neg, _)));
    }

    #[test]
    fn min_max_builtins() {
        let p = parse("x := min(a, 3) + max(b, c);").unwrap();
        let AstStmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        let AstExpr::Binary(BinOp::Add, l, r) = rhs else {
            panic!()
        };
        assert!(matches!(**l, AstExpr::Binary(BinOp::Min, ..)));
        assert!(matches!(**r, AstExpr::Binary(BinOp::Max, ..)));
    }

    #[test]
    fn declarations() {
        let p = parse("array a[8]; alias x ~ y; a[0] := 1;").unwrap();
        assert_eq!(p.arrays, vec![("a".into(), 8)]);
        assert_eq!(p.aliases, vec![("x".into(), "y".into())]);
        assert!(matches!(
            &p.body[0],
            AstStmt::Assign {
                lhs: AstLValue::Index(..),
                ..
            }
        ));
    }

    #[test]
    fn structured_statements() {
        let src = "while x < 10 do { for i := 1 to 3 do { x := x + i; } } if x > 5 then { skip; } else { goto done; } done: skip;";
        let p = parse(src).unwrap();
        assert!(matches!(&p.body[0], AstStmt::While { .. }));
        assert!(matches!(&p.body[1], AstStmt::If { .. }));
        assert!(matches!(&p.body[2], AstStmt::Label { .. }));
    }

    #[test]
    fn case_statement_parses() {
        let p = parse(
            "sel := 1; case sel of { 0 => { x := 1; } 1 => { x := 2; } else => { x := 3; } }",
        )
        .unwrap();
        let AstStmt::Case { arms, default, .. } = &p.body[1] else {
            panic!("expected case")
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(default.len(), 1);
    }

    #[test]
    fn case_arm_numbering_enforced() {
        // Arms out of order.
        assert!(parse("case x of { 1 => { skip; } else => { skip; } }").is_err());
        // Missing else.
        assert!(parse("case x of { 0 => { skip; } }").is_err());
        // else must be last (a numbered arm after else is a parse error).
        assert!(parse("case x of { else => { skip; } 0 => { skip; } }").is_err());
    }

    #[test]
    fn error_messages_carry_lines() {
        let err = parse("x := 1;\ny := ;\n").unwrap_err();
        assert!(matches!(err, LangError::Parse { line: 2, .. }), "{err:?}");
        let err2 = parse("array a[0];").unwrap_err();
        assert!(matches!(err2, LangError::Parse { .. }));
        let err3 = parse("if x then x := 1;").unwrap_err();
        assert!(matches!(err3, LangError::Parse { .. }));
    }

    #[test]
    fn array_read_in_expression() {
        let p = parse("x := a[i + 1] * 2;").unwrap();
        let AstStmt::Assign { rhs, .. } = &p.body[0] else {
            panic!()
        };
        let AstExpr::Binary(BinOp::Mul, l, _) = rhs else {
            panic!()
        };
        assert!(matches!(**l, AstExpr::Index(..)));
    }
}
