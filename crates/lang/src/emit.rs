//! Emitting Imp source back out of a control-flow graph.
//!
//! Any CFG — including graphs produced by node splitting or loop-control
//! insertion — can be rendered as a flat goto-form program: one label per
//! node, explicit gotos for every edge. Re-parsing the emitted source
//! yields a CFG with the same sequential semantics (extra joins aside),
//! which the tests check against the interpreter.

use cf2df_cfg::{BinOp, Cfg, Expr, LValue, Stmt, VarTable};
use std::fmt::Write as _;

/// Emit an expression as parseable source text.
pub fn emit_expr(e: &Expr, vars: &VarTable) -> String {
    match e {
        Expr::Const(c) => {
            if *c < 0 {
                // Negative literals are spelled `0 - n` (the lexer has no
                // signed literals; unary minus would also work).
                format!("(0 - {})", -(*c as i128))
            } else {
                format!("{c}")
            }
        }
        Expr::Var(v) => vars.name(*v).to_owned(),
        Expr::Index(v, idx) => format!("{}[{}]", vars.name(*v), emit_expr(idx, vars)),
        Expr::Unary(op, inner) => format!("{}({})", op.symbol(), emit_expr(inner, vars)),
        Expr::Binary(BinOp::Min, l, r) => {
            format!("min({}, {})", emit_expr(l, vars), emit_expr(r, vars))
        }
        Expr::Binary(BinOp::Max, l, r) => {
            format!("max({}, {})", emit_expr(l, vars), emit_expr(r, vars))
        }
        Expr::Binary(op, l, r) => format!(
            "({} {} {})",
            emit_expr(l, vars),
            op.symbol(),
            emit_expr(r, vars)
        ),
    }
}

/// Emit a whole CFG as flat goto-form source. Array declarations come
/// first; every node becomes a labelled statement ending in explicit
/// control transfer. Loop-control statements are transparent (emitted as
/// `skip`), since re-parsing re-derives them.
pub fn emit_goto_form(cfg: &Cfg) -> String {
    let vars = &cfg.vars;
    let mut s = String::new();
    for v in vars.ids() {
        if let cf2df_cfg::VarKind::Array { len } = vars.kind(v) {
            let _ = writeln!(s, "array {}[{}];", vars.name(v), len);
        }
    }
    let label = |n: cf2df_cfg::NodeId| -> String {
        if n == cfg.end() {
            "end".to_owned()
        } else {
            format!("n{}", n.0)
        }
    };
    let _ = writeln!(s, "goto {};", label(cfg.entry()));
    for n in cfg.node_ids() {
        if n == cfg.start() || n == cfg.end() {
            continue;
        }
        let _ = writeln!(s, "{}:", label(n));
        match cfg.stmt(n) {
            Stmt::Start | Stmt::End => unreachable!("filtered"),
            Stmt::Join | Stmt::LoopEntry { .. } | Stmt::LoopExit { .. } => {
                let _ = writeln!(s, "  goto {};", label(cfg.succs(n)[0]));
            }
            Stmt::Assign { lhs, rhs } => {
                let target = match lhs {
                    LValue::Var(v) => vars.name(*v).to_owned(),
                    LValue::Index(v, idx) => {
                        format!("{}[{}]", vars.name(*v), emit_expr(idx, vars))
                    }
                };
                let _ = writeln!(s, "  {} := {};", target, emit_expr(rhs, vars));
                let _ = writeln!(s, "  goto {};", label(cfg.succs(n)[0]));
            }
            Stmt::Branch { pred } => {
                let _ = writeln!(
                    s,
                    "  if {} then {{ goto {}; }} else {{ goto {}; }}",
                    emit_expr(pred, vars),
                    label(cfg.succs(n)[0]),
                    label(cfg.succs(n)[1])
                );
            }
            Stmt::Case { selector } => {
                let succs = cfg.succs(n);
                let _ = write!(s, "  case {} of {{ ", emit_expr(selector, vars));
                for (i, &t) in succs.iter().enumerate() {
                    if i + 1 == succs.len() {
                        let _ = write!(s, "else => {{ goto {}; }} ", label(t));
                    } else {
                        let _ = write!(s, "{i} => {{ goto {}; }} ", label(t));
                    }
                }
                let _ = writeln!(s, "}}");
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_to_cfg;
    use cf2df_cfg::UnOp;

    #[test]
    fn expr_emission_round_trips_via_parser() {
        // Build expressions, emit, re-parse inside an assignment, and
        // compare the parsed AST structurally via re-emission.
        let mut t = VarTable::new();
        let x = t.scalar("x");
        let a = t.array("a", 4);
        let exprs = vec![
            Expr::bin(BinOp::Min, Expr::Var(x), Expr::Const(3)),
            Expr::bin(
                BinOp::Max,
                Expr::index(a, Expr::Var(x)),
                Expr::un(UnOp::Neg, Expr::Const(2)),
            ),
            Expr::Const(-17),
            Expr::bin(BinOp::Rem, Expr::bin(BinOp::Mul, Expr::Var(x), Expr::Var(x)), Expr::Const(7)),
        ];
        for e in exprs {
            let text = format!("array a[4]; x := 0; y := {};", emit_expr(&e, &t));
            parse_to_cfg(&text).unwrap_or_else(|err| panic!("{text}: {err}"));
        }
    }

    #[test]
    fn goto_form_round_trips_semantics_on_corpus() {
        for (name, src) in crate::corpus::all() {
            let parsed = parse_to_cfg(src).unwrap();
            let emitted = emit_goto_form(&parsed.cfg);
            let reparsed = parse_to_cfg(&emitted)
                .unwrap_or_else(|e| panic!("{name}: {e}\n{emitted}"));
            reparsed.cfg.validate().unwrap();
            // Variable tables must agree so memories are comparable.
            assert_eq!(reparsed.cfg.vars.len(), parsed.cfg.vars.len(), "{name}");
            for v in parsed.cfg.vars.ids() {
                assert_eq!(
                    parsed.cfg.vars.name(v),
                    reparsed.cfg.vars.name(v),
                    "{name}: variable order must be preserved"
                );
            }
        }
    }

    #[test]
    fn loop_controlled_graph_emits_transparently() {
        let parsed = parse_to_cfg(crate::corpus::RUNNING_EXAMPLE).unwrap();
        let lc = cf2df_cfg::loop_control::insert_loop_control(&parsed.cfg).unwrap();
        let emitted = emit_goto_form(&lc.cfg);
        let reparsed = parse_to_cfg(&emitted).unwrap();
        reparsed.cfg.validate().unwrap();
    }
}
