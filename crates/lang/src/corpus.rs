//! Canonical source programs: the paper's worked examples plus a suite of
//! kernels used throughout the tests, examples, and benchmarks.

/// The paper's running example (Fig 1):
///
/// ```text
/// start:
/// l: join
///    y := x + 1
///    x := x + 1
///    if x < 5 then goto l else goto end
/// end:
/// ```
pub const RUNNING_EXAMPLE: &str = "
l:
  y := x + 1;
  x := x + 1;
  if x < 5 then { goto l; } else { goto end; }
";

/// The restrictive-sequential-ordering example of Fig 9: `x` is not used
/// within the if-then-else, so in the optimized translation its access
/// token bypasses the conditional entirely and the second assignment to `x`
/// need not wait for the predicate `w == 0`.
pub const FIG9: &str = "
x := x + 1;
if w == 0 then {
  y := y + 1;
} else {
  z := z + 1;
}
x := 0;
";

/// The array loop of §6.3: stores to successive elements of `x` are
/// independent and can be executed in parallel (Fig 14).
///
/// ```text
/// start: join
///   i := i + 1;
///   x[i] := 1;
///   if i < 10 then goto start else goto end
/// ```
pub const ARRAY_LOOP: &str = "
array x[11];
l:
  i := i + 1;
  x[i] := 1;
  if i < 10 then { goto l; } else { goto end; }
";

/// The paper's FORTRAN aliasing scenario (§5): formals X and Y are each
/// aliased to Z but not to one another. The statements mimic a subroutine
/// body that reads and writes all three names.
pub const FORTRAN_ALIAS: &str = "
alias fx ~ fz;
alias fy ~ fz;
fx := fx + 1;
fy := fy * 2;
fz := fx + fy;
fx := fz - fy;
";

/// Euclid's algorithm: an unstructured two-variable loop.
pub const GCD: &str = "
a := 252;
b := 105;
l:
  if b == 0 then { goto end; } else { skip; }
  t := b;
  b := a % b;
  a := t;
  goto l;
";

/// Iterative Fibonacci.
pub const FIB: &str = "
n := 15;
a := 0;
b := 1;
for i := 1 to n do {
  t := a + b;
  a := b;
  b := t;
}
";

/// Polynomial evaluation by Horner's rule — long sequential dependence
/// chain on `acc`, but the coefficients load in parallel under Schema 2.
pub const HORNER: &str = "
array c[6];
c[0] := 3; c[1] := 1; c[2] := 4; c[3] := 1; c[4] := 5; c[5] := 9;
x := 2;
acc := 0;
for i := 0 to 5 do {
  acc := acc * x + c[5 - i];
}
";

/// Independent updates of many variables — the workload where Schema 2's
/// per-variable tokens shine over Schema 1's single token.
pub const INDEPENDENT: &str = "
a := 1;  b := 2;  c := 3;  d := 4;
e := 5;  f := 6;  g := 7;  h := 8;
a := a * 3 + 1;
b := b * 3 + 1;
c := c * 3 + 1;
d := d * 3 + 1;
e := e * 3 + 1;
f := f * 3 + 1;
g := g * 3 + 1;
h := h * 3 + 1;
s := a + b + c + d + e + f + g + h;
";

/// Sum reduction over an array.
pub const REDUCTION: &str = "
array v[16];
for i := 0 to 15 do {
  v[i] := i * i;
}
s := 0;
for i := 0 to 15 do {
  s := s + v[i];
}
";

/// Nested loops with a conditional — exercises nested interval
/// decomposition and switch placement together.
pub const NESTED: &str = "
s := 0;
for i := 1 to 6 do {
  for j := 1 to 6 do {
    if (i + j) % 2 == 0 then {
      s := s + i * j;
    } else {
      s := s - j;
    }
  }
}
";

/// Unstructured control flow with a goto into a conditional's continuation,
/// multi-exit loop included — stresses the general (non-syntactic)
/// algorithms of §4.
pub const UNSTRUCTURED: &str = "
x := 0;
y := 0;
l:
  x := x + 1;
  if x > 7 then { goto out; } else { skip; }
  if x % 2 == 0 then { y := y + x; goto l; } else { skip; }
  y := y + 1;
  goto l;
out:
z := x + y;
";

/// Collatz-style loop with data-dependent trip count.
pub const COLLATZ: &str = "
n := 27;
steps := 0;
l:
  if n == 1 then { goto end; } else { skip; }
  if n % 2 == 0 then { n := n / 2; } else { n := 3 * n + 1; }
  steps := steps + 1;
  goto l;
";

/// A stencil-like pass over an array (reads neighbours, writes a second
/// array) — memory-heavy, exercises array access tokens. Both arrays are
/// write-once and every cell read is written, so the §6.3 I-structure
/// enhancement applies to them.
pub const STENCIL: &str = "
array src[18];
array dst[18];
for i := 0 to 17 do {
  src[i] := i * 3 % 7;
}
for j := 1 to 16 do {
  dst[j] := (src[j - 1] + src[j] + src[j + 1]) / 3;
}
checksum := 0;
for k := 1 to 16 do {
  checksum := checksum + dst[k];
}
";

/// Bubble sort — loop-carried array dependences (reads and writes of the
/// same array every iteration), the hardest case for array access tokens.
pub const BUBBLE_SORT: &str = "
array v[8];
v[0] := 5; v[1] := 2; v[2] := 7; v[3] := 1;
v[4] := 9; v[5] := 3; v[6] := 8; v[7] := 0;
for i := 0 to 6 do {
  for j := 0 to 6 do {
    if v[j] > v[j + 1] then {
      t := v[j];
      v[j] := v[j + 1];
      v[j + 1] := t;
    }
  }
}
";

/// 3×3 matrix multiply over flattened arrays — non-affine subscripts, so
/// the Fig 14 rewrite must decline while everything else still applies.
pub const MATMUL: &str = "
array ma[9];
array mb[9];
array mc[9];
for i := 0 to 8 do {
  ma[i] := i + 1;
  mb[i] := 9 - i;
}
for i := 0 to 2 do {
  for j := 0 to 2 do {
    for k := 0 to 2 do {
      mc[i * 3 + j] := mc[i * 3 + j] + ma[i * 3 + k] * mb[k * 3 + j];
    }
  }
}
";

/// Sieve of Eratosthenes — a cell is written repeatedly (composite marks),
/// with a variable-stride inner loop.
pub const SIEVE: &str = "
array comp[20];
for p := 2 to 19 do {
  if comp[p] == 0 then {
    j := p + p;
    while j <= 19 do {
      comp[j] := 1;
      j := j + p;
    }
  }
}
primes := 0;
for n := 2 to 19 do {
  if comp[n] == 0 then { primes := primes + 1; }
}
";

/// Binary search with unstructured control flow.
pub const BINSEARCH: &str = "
array v[16];
for i := 0 to 15 do {
  v[i] := i * 3;
}
target := 33;
lo := 0;
hi := 15;
found := 0 - 1;
l:
  if lo > hi then { goto end; } else { skip; }
  mid := (lo + hi) / 2;
  if v[mid] == target then { found := mid; goto end; } else { skip; }
  if v[mid] < target then { lo := mid + 1; } else { hi := mid - 1; }
  goto l;
";

/// Iterative quicksort with an explicit stack array — recursion translated
/// to unstructured control flow, array-heavy, data-dependent branching.
pub const QUICKSORT: &str = "
array v[12];
array stk[16];
v[0] := 9;  v[1] := 3;  v[2] := 11; v[3] := 1;
v[4] := 14; v[5] := 0;  v[6] := 8;  v[7] := 5;
v[8] := 13; v[9] := 2;  v[10] := 7; v[11] := 4;
sp := 0;
stk[0] := 0;
stk[1] := 11;
sp := 2;
loop:
  if sp == 0 then { goto end; } else { skip; }
  sp := sp - 2;
  lo := stk[sp];
  hi := stk[sp + 1];
  if lo >= hi then { goto loop; } else { skip; }
  # Lomuto partition with pivot v[hi].
  pivot := v[hi];
  i := lo - 1;
  j := lo;
  part:
    if j >= hi then { goto place; } else { skip; }
    if v[j] < pivot then {
      i := i + 1;
      t := v[i]; v[i] := v[j]; v[j] := t;
    } else { skip; }
    j := j + 1;
    goto part;
  place:
  i := i + 1;
  t := v[i]; v[i] := v[hi]; v[hi] := t;
  # Push the two halves.
  stk[sp] := lo;
  stk[sp + 1] := i - 1;
  sp := sp + 2;
  stk[sp] := i + 1;
  stk[sp + 1] := hi;
  sp := sp + 2;
  goto loop;
";

/// A bytecode-interpreter dispatch loop — the classic multi-way branch
/// (footnote 3): `case` over an opcode fetched from memory. Opcodes:
/// 0 = add operand, 1 = multiply, 2 = subtract, anything else halts.
pub const VM_DISPATCH: &str = "
array code[8];
array arg[8];
code[0] := 0; arg[0] := 5;    # acc += 5
code[1] := 1; arg[1] := 3;    # acc *= 3
code[2] := 2; arg[2] := 4;    # acc -= 4
code[3] := 0; arg[3] := 9;    # acc += 9
code[4] := 1; arg[4] := 2;    # acc *= 2
code[5] := 9;                 # halt
acc := 0;
pc := 0;
loop:
  op := code[pc];
  case op of {
    0 => { acc := acc + arg[pc]; }
    1 => { acc := acc * arg[pc]; }
    2 => { acc := acc - arg[pc]; }
    else => { goto end; }
  }
  pc := pc + 1;
  goto loop;
";

/// All corpus programs with names, for sweep-style tests and benches.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("running_example", RUNNING_EXAMPLE),
        ("fig9", FIG9),
        ("array_loop", ARRAY_LOOP),
        ("fortran_alias", FORTRAN_ALIAS),
        ("gcd", GCD),
        ("fib", FIB),
        ("horner", HORNER),
        ("independent", INDEPENDENT),
        ("reduction", REDUCTION),
        ("nested", NESTED),
        ("unstructured", UNSTRUCTURED),
        ("collatz", COLLATZ),
        ("stencil", STENCIL),
        ("bubble_sort", BUBBLE_SORT),
        ("matmul", MATMUL),
        ("sieve", SIEVE),
        ("binsearch", BINSEARCH),
        ("quicksort", QUICKSORT),
        ("vm_dispatch", VM_DISPATCH),
    ]
}

#[cfg(test)]
mod tests {
    use crate::parse_to_cfg;

    #[test]
    fn entire_corpus_parses_and_validates() {
        for (name, src) in super::all() {
            let parsed = parse_to_cfg(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            parsed
                .cfg
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e:?}"));
        }
    }

    #[test]
    fn corpus_is_reducible() {
        for (name, src) in super::all() {
            let parsed = parse_to_cfg(src).unwrap();
            cf2df_cfg::LoopForest::compute(&parsed.cfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn fortran_alias_structure_matches_paper() {
        let parsed = parse_to_cfg(super::FORTRAN_ALIAS).unwrap();
        let vars = &parsed.cfg.vars;
        let x = vars.lookup("fx").unwrap();
        let y = vars.lookup("fy").unwrap();
        let z = vars.lookup("fz").unwrap();
        assert_eq!(parsed.alias.class(z), vec![x, y, z]);
        assert_eq!(parsed.alias.class(x).len(), 2);
        assert_eq!(parsed.alias.class(y).len(), 2);
    }

    #[test]
    fn unstructured_example_has_multi_exit_loop() {
        let parsed = parse_to_cfg(super::UNSTRUCTURED).unwrap();
        let forest = cf2df_cfg::LoopForest::compute(&parsed.cfg).unwrap();
        assert_eq!(forest.len(), 1);
        let (_, l) = forest.iter().next().unwrap();
        assert!(
            !l.exit_edges(&parsed.cfg).is_empty(),
            "loop must have an exit"
        );
    }
}
