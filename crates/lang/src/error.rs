//! Errors produced while parsing or lowering source programs.

use std::fmt;

/// Any front-end failure, with a 1-based source line where applicable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error: unexpected character.
    Lex {
        /// Source line.
        line: u32,
        /// Offending character.
        ch: char,
    },
    /// Parse error with a description of what was expected.
    Parse {
        /// Source line.
        line: u32,
        /// What went wrong.
        msg: String,
    },
    /// `goto l` where `l` is never defined.
    UndefinedLabel(String),
    /// The same label defined twice.
    DuplicateLabel(String),
    /// A statement can never execute (it follows an unconditional `goto`
    /// with no intervening label).
    UnreachableCode {
        /// Source line of the dead statement.
        line: u32,
    },
    /// `a[i]` used but `a` was not declared with `array a[n];`.
    UndeclaredArray(String),
    /// An `array`-declared name used as a scalar.
    ArrayUsedAsScalar(String),
    /// A name declared twice as an array.
    DuplicateArray(String),
    /// The program's CFG failed validation after lowering (e.g. an infinite
    /// loop with no path to `end`, which the paper's program model forbids).
    InvalidCfg(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { line, ch } => {
                write!(f, "line {line}: unexpected character {ch:?}")
            }
            LangError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            LangError::UndefinedLabel(l) => write!(f, "goto to undefined label {l:?}"),
            LangError::DuplicateLabel(l) => write!(f, "label {l:?} defined twice"),
            LangError::UnreachableCode { line } => {
                write!(f, "line {line}: unreachable statement (follows a goto)")
            }
            LangError::UndeclaredArray(a) => {
                write!(f, "array {a:?} indexed but never declared")
            }
            LangError::ArrayUsedAsScalar(a) => {
                write!(f, "array {a:?} used without a subscript")
            }
            LangError::DuplicateArray(a) => write!(f, "array {a:?} declared twice"),
            LangError::InvalidCfg(msg) => write!(f, "program violates CFG invariants: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}
