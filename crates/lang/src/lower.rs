//! Lowering the AST to the statement-level control-flow graph of §2.1.
//!
//! Structured constructs desugar into forks and joins; labels become join
//! nodes (the only legal targets of gotos, per the paper); `goto end`
//! targets the CFG's `end` node. The lowerer maintains a *frontier* of
//! dangling out-edges; whenever two or more dangling edges would converge
//! on a non-join node, an explicit join is inserted, preserving the
//! invariant that only joins (and loop entries, later) have multiple
//! predecessors.

use crate::ast::{AstExpr, AstLValue, AstStmt, Program};
use crate::error::LangError;
use cf2df_cfg::{AliasStructure, Cfg, Expr, LValue, NodeId, Stmt, VarTable};
use std::collections::HashMap;

/// The result of lowering: a validated CFG plus the declared alias
/// structure over its variables.
#[derive(Clone, Debug)]
pub struct Parsed {
    /// The control-flow graph (validated).
    pub cfg: Cfg,
    /// The alias structure declared with `alias x ~ y;` statements.
    pub alias: AliasStructure,
}

/// Lower a parsed program to a CFG, checking labels, array usage, and the
/// structural invariants of §2.1.
pub fn lower(program: &Program) -> Result<Parsed, LangError> {
    let mut vars = VarTable::new();
    for (name, len) in &program.arrays {
        if vars.lookup(name).is_some() {
            return Err(LangError::DuplicateArray(name.clone()));
        }
        vars.array(name, *len);
    }
    let mut lw = Lowerer {
        cfg: Cfg::new(vars),
        arrays: program.arrays.iter().map(|(n, _)| n.clone()).collect(),
        frontier: Vec::new(),
        labels: HashMap::new(),
    };
    lw.frontier.push((lw.cfg.start(), 0));
    lw.seq(&program.body)?;
    let end = lw.cfg.end();
    lw.attach(end);

    // Every referenced label must have been placed.
    for (name, l) in &lw.labels {
        if !l.placed {
            return Err(LangError::UndefinedLabel(name.clone()));
        }
    }

    // Alias declarations (names not seen yet are interned as scalars).
    let mut cfg = lw.cfg;
    let mut pairs = Vec::new();
    for (a, b) in &program.aliases {
        let va = cfg
            .vars
            .lookup(a)
            .unwrap_or_else(|| cfg.vars.scalar(a));
        let vb = cfg
            .vars
            .lookup(b)
            .unwrap_or_else(|| cfg.vars.scalar(b));
        pairs.push((va, vb));
    }
    let mut alias = AliasStructure::for_table(&cfg.vars);
    for (a, b) in pairs {
        alias.relate(a, b);
    }

    cfg.validate().map_err(|errs| {
        LangError::InvalidCfg(
            errs.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        )
    })?;
    Ok(Parsed { cfg, alias })
}

struct LabelState {
    node: NodeId,
    placed: bool,
}

struct Lowerer {
    cfg: Cfg,
    arrays: Vec<String>,
    /// Dangling out-edges `(node, out-index)` awaiting a target. Each entry
    /// currently points at a sentinel (the node itself) and is redirected
    /// exactly once.
    frontier: Vec<(NodeId, usize)>,
    labels: HashMap<String, LabelState>,
}

impl Lowerer {
    fn is_array(&self, name: &str) -> bool {
        self.arrays.iter().any(|a| a == name)
    }

    /// Add a node with `n_out` sentinel out-edges (pointing at itself until
    /// redirected).
    fn new_node(&mut self, stmt: Stmt, n_out: usize) -> NodeId {
        let id = self.cfg.add_node(stmt);
        for _ in 0..n_out {
            self.cfg.add_edge(id, id);
        }
        id
    }

    /// Redirect every frontier edge to `target`, inserting a join first if
    /// several edges would converge on a non-join.
    fn attach(&mut self, target: NodeId) {
        if self.frontier.len() >= 2
            && !matches!(self.cfg.stmt(target), Stmt::Join | Stmt::End)
        {
            let j = self.new_node(Stmt::Join, 1);
            let pending = std::mem::take(&mut self.frontier);
            for (n, i) in pending {
                self.cfg.redirect_edge(n, i, j);
            }
            self.frontier.push((j, 0));
        }
        for (n, i) in std::mem::take(&mut self.frontier) {
            self.cfg.redirect_edge(n, i, target);
        }
    }

    fn label_node(&mut self, name: &str) -> NodeId {
        if let Some(l) = self.labels.get(name) {
            return l.node;
        }
        // The fresh join's sentinel out-edge stays parked (outside the
        // frontier) until the label is placed.
        let node = self.new_node(Stmt::Join, 1);
        self.labels.insert(
            name.to_owned(),
            LabelState {
                node,
                placed: false,
            },
        );
        node
    }

    fn seq(&mut self, stmts: &[AstStmt]) -> Result<(), LangError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &AstStmt) -> Result<(), LangError> {
        // Dead-code check: only a label can resurrect the flow.
        if self.frontier.is_empty() && !matches!(s, AstStmt::Label { .. }) {
            return Err(LangError::UnreachableCode { line: s.line() });
        }
        match s {
            AstStmt::Skip { .. } => Ok(()),
            AstStmt::Assign { lhs, rhs, .. } => {
                let rhs = self.expr(rhs)?;
                let lhs = match lhs {
                    AstLValue::Var(name) => {
                        if self.is_array(name) {
                            return Err(LangError::ArrayUsedAsScalar(name.clone()));
                        }
                        LValue::Var(self.cfg.vars.scalar(name))
                    }
                    AstLValue::Index(name, idx) => {
                        if !self.is_array(name) {
                            return Err(LangError::UndeclaredArray(name.clone()));
                        }
                        let idx = self.expr(idx)?;
                        let v = self.cfg.vars.lookup(name).expect("declared array");
                        LValue::Index(v, idx)
                    }
                };
                let n = self.new_node(Stmt::Assign { lhs, rhs }, 1);
                self.attach(n);
                self.frontier.push((n, 0));
                Ok(())
            }
            AstStmt::Label { name, line } => {
                if name == "end" {
                    return Err(LangError::DuplicateLabel("end".into()));
                }
                let node = self.label_node(name);
                let l = self.labels.get_mut(name).expect("just created");
                if l.placed {
                    return Err(LangError::DuplicateLabel(name.clone()));
                }
                l.placed = true;
                let _ = line;
                self.attach(node);
                self.frontier.push((node, 0));
                Ok(())
            }
            AstStmt::Goto { label, .. } => {
                let target = if label == "end" {
                    self.cfg.end()
                } else {
                    self.label_node(label)
                };
                self.attach(target);
                Ok(())
            }
            AstStmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let pred = self.expr(cond)?;
                let br = self.new_node(Stmt::Branch { pred }, 2);
                self.attach(br);
                self.frontier.push((br, 0));
                self.seq(then_body)?;
                let mut after = std::mem::take(&mut self.frontier);
                self.frontier.push((br, 1));
                self.seq(else_body)?;
                self.frontier.append(&mut after);
                Ok(())
            }
            AstStmt::Case {
                selector,
                arms,
                default,
                ..
            } => {
                let selector = self.expr(selector)?;
                let n_out = arms.len() + 1;
                let case = self.new_node(Stmt::Case { selector }, n_out);
                self.attach(case);
                let mut after: Vec<(NodeId, usize)> = Vec::new();
                for (i, arm) in arms.iter().enumerate() {
                    self.frontier.push((case, i));
                    self.seq(arm)?;
                    after.append(&mut self.frontier);
                }
                self.frontier.push((case, n_out - 1));
                self.seq(default)?;
                self.frontier.append(&mut after);
                Ok(())
            }
            AstStmt::While { cond, body, .. } => {
                let head = self.new_node(Stmt::Join, 1);
                self.attach(head);
                self.frontier.push((head, 0));
                let pred = self.expr(cond)?;
                let br = self.new_node(Stmt::Branch { pred }, 2);
                self.attach(br);
                self.frontier.push((br, 0));
                self.seq(body)?;
                self.attach(head);
                self.frontier.push((br, 1));
                Ok(())
            }
            AstStmt::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                if self.is_array(var) {
                    return Err(LangError::ArrayUsedAsScalar(var.clone()));
                }
                let from = self.expr(from)?;
                let to = self.expr(to)?;
                let v = self.cfg.vars.scalar(var);
                let init = self.new_node(
                    Stmt::Assign {
                        lhs: LValue::Var(v),
                        rhs: from,
                    },
                    1,
                );
                self.attach(init);
                self.frontier.push((init, 0));
                let head = self.new_node(Stmt::Join, 1);
                self.attach(head);
                self.frontier.push((head, 0));
                let br = self.new_node(
                    Stmt::Branch {
                        pred: Expr::bin(cf2df_cfg::BinOp::Le, Expr::Var(v), to),
                    },
                    2,
                );
                self.attach(br);
                self.frontier.push((br, 0));
                self.seq(body)?;
                let incr = self.new_node(
                    Stmt::Assign {
                        lhs: LValue::Var(v),
                        rhs: Expr::bin(cf2df_cfg::BinOp::Add, Expr::Var(v), Expr::Const(1)),
                    },
                    1,
                );
                self.attach(incr);
                self.frontier.push((incr, 0));
                self.attach(head);
                self.frontier.push((br, 1));
                Ok(())
            }
        }
    }

    fn expr(&mut self, e: &AstExpr) -> Result<Expr, LangError> {
        Ok(match e {
            AstExpr::Const(c) => Expr::Const(*c),
            AstExpr::Var(name) => {
                if self.is_array(name) {
                    return Err(LangError::ArrayUsedAsScalar(name.clone()));
                }
                Expr::Var(self.cfg.vars.scalar(name))
            }
            AstExpr::Index(name, idx) => {
                if !self.is_array(name) {
                    return Err(LangError::UndeclaredArray(name.clone()));
                }
                let idx = self.expr(idx)?;
                let v = self.cfg.vars.lookup(name).expect("declared array");
                Expr::index(v, idx)
            }
            AstExpr::Unary(op, inner) => Expr::un(*op, self.expr(inner)?),
            AstExpr::Binary(op, l, r) => Expr::bin(*op, self.expr(l)?, self.expr(r)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_to_cfg;

    #[test]
    fn running_example_matches_fig1() {
        let parsed = parse_to_cfg(crate::corpus::RUNNING_EXAMPLE).unwrap();
        let cfg = &parsed.cfg;
        // start, end, join, two assigns, branch = 6 nodes.
        assert_eq!(cfg.len(), 6);
        assert_eq!(cfg.edge_count(), 7);
        let join = cfg.entry();
        assert!(matches!(cfg.stmt(join), Stmt::Join));
        let s1 = cfg.succs(join)[0];
        let s2 = cfg.succs(s1)[0];
        let br = cfg.succs(s2)[0];
        assert!(matches!(cfg.stmt(br), Stmt::Branch { .. }));
        assert_eq!(cfg.succs(br)[0], join, "true edge loops back to l");
        assert_eq!(cfg.succs(br)[1], cfg.end(), "false edge goes to end");
    }

    #[test]
    fn if_without_else_inserts_join() {
        let parsed = parse_to_cfg("x := 1; if x < 2 then { x := 3; } y := x;").unwrap();
        let cfg = &parsed.cfg;
        // There must be a join merging the then-arm with the false edge.
        let joins = cfg
            .node_ids()
            .filter(|&n| matches!(cfg.stmt(n), Stmt::Join))
            .count();
        assert_eq!(joins, 1);
        cfg.validate().unwrap();
    }

    #[test]
    fn while_lowers_to_loop() {
        let parsed = parse_to_cfg("x := 0; while x < 5 do { x := x + 1; } y := x;").unwrap();
        let forest = cf2df_cfg::LoopForest::compute(&parsed.cfg).unwrap();
        assert_eq!(forest.len(), 1);
    }

    #[test]
    fn for_lowers_to_counted_loop() {
        let parsed = parse_to_cfg("s := 0; for i := 1 to 3 do { s := s + i; }").unwrap();
        let forest = cf2df_cfg::LoopForest::compute(&parsed.cfg).unwrap();
        assert_eq!(forest.len(), 1);
        // init + head + branch + body + incr present.
        assert!(parsed.cfg.len() >= 7);
    }

    #[test]
    fn goto_end_supported() {
        let parsed = parse_to_cfg("x := 1; goto end;").unwrap();
        parsed.cfg.validate().unwrap();
    }

    #[test]
    fn undefined_label_rejected() {
        let err = parse_to_cfg("goto nowhere;").unwrap_err();
        assert_eq!(err, LangError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = parse_to_cfg("l: x := 1; l: y := 2;").unwrap_err();
        assert_eq!(err, LangError::DuplicateLabel("l".into()));
    }

    #[test]
    fn dead_code_rejected() {
        let err = parse_to_cfg("goto end;\nx := 1;").unwrap_err();
        assert!(matches!(err, LangError::UnreachableCode { line: 2 }));
    }

    #[test]
    fn code_after_goto_with_label_is_fine() {
        parse_to_cfg("goto l; skip; l: x := 1;").unwrap_err(); // skip after goto is dead
        parse_to_cfg("goto l; l: x := 1;").unwrap();
    }

    #[test]
    fn orphan_label_rejected_as_unreachable() {
        let err = parse_to_cfg("x := 1; goto end; l: y := 2; goto end;").unwrap_err();
        assert!(matches!(err, LangError::InvalidCfg(_)), "{err:?}");
    }

    #[test]
    fn array_misuse_rejected() {
        assert_eq!(
            parse_to_cfg("a[0] := 1;").unwrap_err(),
            LangError::UndeclaredArray("a".into())
        );
        assert_eq!(
            parse_to_cfg("array a[4]; a := 1;").unwrap_err(),
            LangError::ArrayUsedAsScalar("a".into())
        );
        assert_eq!(
            parse_to_cfg("array a[4]; x := a;").unwrap_err(),
            LangError::ArrayUsedAsScalar("a".into())
        );
        assert_eq!(
            parse_to_cfg("array a[4]; array a[4];").unwrap_err(),
            LangError::DuplicateArray("a".into())
        );
        assert_eq!(
            parse_to_cfg("x := 0; y := x[1];").unwrap_err(),
            LangError::UndeclaredArray("x".into())
        );
    }

    #[test]
    fn alias_structure_built() {
        let parsed =
            parse_to_cfg("alias x ~ z; alias y ~ z; x := 1; y := 2; z := 3;").unwrap();
        let vars = &parsed.cfg.vars;
        let x = vars.lookup("x").unwrap();
        let y = vars.lookup("y").unwrap();
        let z = vars.lookup("z").unwrap();
        assert!(parsed.alias.aliased(x, z));
        assert!(parsed.alias.aliased(y, z));
        assert!(!parsed.alias.aliased(x, y));
    }

    #[test]
    fn unstructured_goto_into_branch_arm() {
        // goto into the middle of a diamond's arm: legal, forms an
        // unstructured CFG that only the general algorithms handle.
        let src = "
            x := 0;
            if x == 0 then { goto m; } else { skip; }
            m:
            y := 1;
        ";
        let parsed = parse_to_cfg(src).unwrap();
        parsed.cfg.validate().unwrap();
    }

    #[test]
    fn empty_program_is_valid() {
        let parsed = parse_to_cfg("").unwrap();
        assert_eq!(parsed.cfg.len(), 2);
        parsed.cfg.validate().unwrap();
    }

    #[test]
    fn infinite_loop_rejected() {
        let err = parse_to_cfg("l: x := 1; goto l;").unwrap_err();
        assert!(matches!(err, LangError::InvalidCfg(_)));
    }

    #[test]
    fn nested_structured_constructs() {
        let src = "
            s := 0;
            for i := 1 to 4 do {
                for j := 1 to 4 do {
                    if (i + j) % 2 == 0 then { s := s + i * j; } else { s := s - 1; }
                }
            }
        ";
        let parsed = parse_to_cfg(src).unwrap();
        let forest = cf2df_cfg::LoopForest::compute(&parsed.cfg).unwrap();
        assert_eq!(forest.len(), 2);
    }
}
