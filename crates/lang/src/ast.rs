//! Abstract syntax of the Imp language.

use cf2df_cfg::{BinOp, UnOp};

/// A whole program: declarations followed by statements.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// `array a[n];` declarations.
    pub arrays: Vec<(String, u32)>,
    /// `alias x ~ y;` declarations.
    pub aliases: Vec<(String, String)>,
    /// Top-level statement sequence.
    pub body: Vec<AstStmt>,
}

/// Assignment target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstLValue {
    /// Scalar target.
    Var(String),
    /// Array-element target.
    Index(String, AstExpr),
}

/// Expression syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstExpr {
    /// Integer literal.
    Const(i64),
    /// Scalar read.
    Var(String),
    /// Array-element read.
    Index(String, Box<AstExpr>),
    /// Unary operation.
    Unary(UnOp, Box<AstExpr>),
    /// Binary operation.
    Binary(BinOp, Box<AstExpr>, Box<AstExpr>),
}

impl AstExpr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, l: AstExpr, r: AstExpr) -> AstExpr {
        AstExpr::Binary(op, Box::new(l), Box::new(r))
    }
}

/// Statement syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstStmt {
    /// `lhs := rhs;`
    Assign {
        /// Target.
        lhs: AstLValue,
        /// Right-hand side.
        rhs: AstExpr,
        /// Source line (for diagnostics).
        line: u32,
    },
    /// `if c then { … } [else { … }]`
    If {
        /// Condition.
        cond: AstExpr,
        /// Then-block.
        then_body: Vec<AstStmt>,
        /// Else-block (possibly empty).
        else_body: Vec<AstStmt>,
        /// Source line.
        line: u32,
    },
    /// `while c do { … }`
    While {
        /// Condition.
        cond: AstExpr,
        /// Loop body.
        body: Vec<AstStmt>,
        /// Source line.
        line: u32,
    },
    /// `for v := a to b do { … }` (inclusive bounds, step 1).
    For {
        /// Induction variable.
        var: String,
        /// Initial value.
        from: AstExpr,
        /// Final value (inclusive).
        to: AstExpr,
        /// Loop body.
        body: Vec<AstStmt>,
        /// Source line.
        line: u32,
    },
    /// `case e of { 0 => { … } 1 => { … } else => { … } }` — arms must be
    /// numbered consecutively from 0; the `else` arm is mandatory and last.
    Case {
        /// Selector expression.
        selector: AstExpr,
        /// Numbered arms, in order (arm `i` taken when selector == i).
        arms: Vec<Vec<AstStmt>>,
        /// The default arm.
        default: Vec<AstStmt>,
        /// Source line.
        line: u32,
    },
    /// `goto l;` — `goto end;` targets the program's `end` node.
    Goto {
        /// Target label.
        label: String,
        /// Source line.
        line: u32,
    },
    /// `l:` — a label marker binding `l` to the following program point.
    Label {
        /// The label name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `skip;` — no operation.
    Skip {
        /// Source line.
        line: u32,
    },
}

impl AstStmt {
    /// The source line of the statement.
    pub fn line(&self) -> u32 {
        match self {
            AstStmt::Assign { line, .. }
            | AstStmt::If { line, .. }
            | AstStmt::While { line, .. }
            | AstStmt::For { line, .. }
            | AstStmt::Case { line, .. }
            | AstStmt::Goto { line, .. }
            | AstStmt::Label { line, .. }
            | AstStmt::Skip { line } => *line,
        }
    }
}
