#![warn(missing_docs)]

//! A small imperative source language ("Imp") and its translation to the
//! statement-level control-flow graphs of §2.1.
//!
//! The language deliberately matches the paper's program model:
//!
//! * assignments `x := e` and `a[i] := e`;
//! * *unstructured* control flow via labels and `goto` (including
//!   `goto end`), exactly as in the paper's running example;
//! * structured sugar (`if/then/else`, `while`, `for`) that lowers to
//!   forks and joins;
//! * `array a[n];` declarations and `alias x ~ y;` declarations building
//!   the alias structure of §5 (the relation is reflexive and symmetric but
//!   **not** transitive, matching Definition 6).
//!
//! ```
//! use cf2df_lang::parse_to_cfg;
//! let program = cf2df_lang::corpus::RUNNING_EXAMPLE;
//! let parsed = parse_to_cfg(program).unwrap();
//! assert!(parsed.cfg.validate().is_ok());
//! ```

pub mod ast;
pub mod corpus;
pub mod emit;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{AstExpr, AstLValue, AstStmt, Program};
pub use error::LangError;
pub use lower::{lower, Parsed};

/// Parse source text and lower it to a validated control-flow graph.
pub fn parse_to_cfg(src: &str) -> Result<Parsed, LangError> {
    let program = parser::parse(src)?;
    lower(&program)
}
