#![warn(missing_docs)]

//! An explicit-token-store (ETS) dataflow machine simulator in the style of
//! Monsoon, the paper's target machine (§2.2).
//!
//! * Operators fire when tokens are present on their inputs; tokens destined
//!   for a multi-input operator rendezvous at a per-(operator, tag) slot —
//!   the simulator's analogue of Monsoon's frame memory.
//! * Memory is a *multiply-written* store: locations can be written more
//!   than once, and correct ordering is the responsibility of the dataflow
//!   graph's access tokens — exactly the paper's extension of the classical
//!   dataflow memory model. Loads and stores are split-phase: issuing does
//!   not block, responses arrive after a configurable latency.
//! * Loop iterations are distinguished by *tags* (iteration contexts)
//!   managed by the loop-entry/exit operators of §3, standing in for
//!   Monsoon's per-iteration frame allocation.
//! * I-structure memory (deferred reads, write-once cells) backs the §6.3
//!   write-once-array enhancement.
//!
//! The simulator detects the failure the paper warns about for cyclic
//! graphs without loop control — two tokens colliding on one arc/slot
//! ("each arc can hold at most one token") — and reports it as
//! [`MachineError::TokenCollision`].
//!
//! [`vonneumann`] provides the sequential control-flow interpreter used as
//! the baseline (the "thread descriptor" execution the paper contrasts
//! with), and [`parallel`] a multi-threaded token-pushing executor
//! demonstrating real parallel execution of the same graphs, built on the
//! std-only work-stealing [`scheduler`].

pub mod chaos;
pub mod compiled;
pub mod exec;
pub mod hash;
pub mod memory;
pub mod metrics;
pub mod parallel;
pub mod scheduler;
pub mod serve;
pub mod tag;
pub mod trace;
pub mod vonneumann;

pub use chaos::{ChaosConfig, ChaosTallies};
pub use compiled::{compile, CompiledGraph, Footprint};
pub use exec::{run, run_compiled, run_traced, MachineConfig, MachineError, Outcome};
pub use hash::{FxBuildHasher, FxHashMap};
pub use metrics::{ExecStats, ParMetrics, ServeStats, WorkerStats};
pub use parallel::{
    run_threaded, run_threaded_compiled, run_threaded_compiled_pooled_with, run_threaded_pooled,
    run_threaded_pooled_with, run_threaded_traced, run_threaded_with, ExecutorPool, FireEvent,
    ParConfig, ParOutcome,
};
pub use serve::{run_concurrent, serve, ReqId, ServeHandle};
pub use tag::{TagId, TagSplit, TagTable};
