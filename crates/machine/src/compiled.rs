//! The compiled runtime representation of a dataflow program.
//!
//! The `Dfg` is a *builder* structure: growable vectors of nodes and
//! arcs, `OpKind`s that own heap payloads (`Macro` carries its
//! micro-program as a `Vec<MacroStep>`), adjacency only derivable by
//! scanning the arc list. Both backends used to interpret it directly,
//! which meant cloning an `OpKind` per firing, rebuilding nested
//! `Vec<Vec<Vec<Port>>>` destination tables per run, and duplicating the
//! operator semantics between the simulator and the threaded executor.
//!
//! [`compile`] freezes a certified (and possibly fused) graph into an
//! immutable [`CompiledGraph`]:
//!
//! * a dense table of `Copy` per-operator descriptors ([`OpDesc`]:
//!   kind tag, arities, live-input count, classification flags,
//!   immediate/destination bases) — nothing is cloned per firing;
//! * CSR-style destination slices: one flat `Vec<Port>` plus two index
//!   arrays, so `dests(op, out_port)` is two array reads and a slice,
//!   and the per-port arc order of the builder graph is preserved
//!   exactly (the simulator's determinism depends on it);
//! * flat side arrays for immediates and macro micro-programs, indexed
//!   by ranges stored in the descriptors;
//! * the packed rendezvous key ([`key`]) both backends use for their
//!   waiting-matching stores, hashed with [`crate::hash::FxHasher`].
//!
//! The operator semantics live here too, once: [`fire_op`] is the single
//! firing kernel, generic over an [`Engine`] that supplies the backend
//! effects (token emission, tag interning, memory). The simulator and
//! the threaded executor are both `Engine`s; neither has a per-`OpKind`
//! match of its own.
//!
//! A `CompiledGraph` is a snapshot: it holds no reference to the `Dfg`
//! it was lowered from, and any mutation of that `Dfg` after lowering
//! (adding ops or arcs, changing immediates, re-kinding, fusing) is
//! simply not reflected — re-[`compile`] to pick it up. Compiling is one
//! linear pass, cheap enough to do per run; reuse pays off when one
//! graph runs many times ([`crate::parallel::run_threaded_compiled_pooled_with`],
//! the bench suites).

use crate::exec::MachineError;
use crate::memory::{DeferredRead, MemError};
use crate::tag::TagId;
use cf2df_cfg::{BinOp, LoopId, UnOp, VarId};
use cf2df_dfg::{macro_eval, Dfg, MacroStep, OpId, OpKind, Port};

/// Inline capacity of the executors' firing-value buffers and rendezvous
/// slots. Operators with at most this many input ports never touch the
/// heap on the deposit→fire path; wider ones (big `Synch`/`End` fan-ins,
/// extreme `Macro` chains) spill to a boxed slot. The
/// machine-laws test asserts no hot-kind operator in the corpus exceeds
/// it.
pub const INLINE_VALS: usize = 16;

/// A range into one of the [`CompiledGraph`]'s flat side arrays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepRange {
    start: u32,
    len: u32,
}

impl StepRange {
    /// Number of steps in the range.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// True when the range is empty (never produced by [`compile`]:
    /// a fused macro always has at least one step).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// The `Copy` mirror of [`OpKind`]: same variants, but heap payloads
/// replaced by ranges into the compiled graph's flat arrays, and
/// arity payloads (`End`/`Synch`/`Macro` input counts, which
/// [`OpDesc::n_inputs`] already carries) dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CKind {
    /// The unique source; never fires.
    Start,
    /// The unique sink; firing halts the run.
    End,
    /// Unary arithmetic/logic.
    Unary(UnOp),
    /// Binary arithmetic/logic.
    Binary(BinOp),
    /// Two-way steer by predicate.
    Switch,
    /// Multi-way steer; `arms` output ports, the last the default.
    CaseSwitch {
        /// Number of output arms (≥ 2).
        arms: u32,
    },
    /// Forward any arriving token.
    Merge,
    /// n-ary rendezvous emitting one dummy token.
    Synch,
    /// Forward unchanged.
    Identity,
    /// Emit the data input when the trigger arrives.
    Gate,
    /// Scalar load.
    Load(VarId),
    /// Scalar store.
    Store(VarId),
    /// Array-element load.
    LoadIdx(VarId),
    /// Array-element store.
    StoreIdx(VarId),
    /// I-structure read (may defer).
    IstLoad(VarId),
    /// I-structure write (releases deferred reads).
    IstStore(VarId),
    /// Loop-entry retagger.
    LoopEntry(LoopId),
    /// Loop-exit tag stripper.
    LoopExit(LoopId),
    /// Retag to the previous iteration.
    PrevIter(LoopId),
    /// Materialize the iteration index.
    IterIndex(LoopId),
    /// Fused loop-entry/switch compound.
    LoopSwitch(LoopId),
    /// Fused operator chain; the micro-program lives in the compiled
    /// graph's flat step array.
    Macro {
        /// The micro-program's range in [`CompiledGraph::steps`].
        steps: StepRange,
    },
}

/// Dense per-operator descriptor. 24 bytes, `Copy`: everything a firing
/// needs except the flat-array payloads the ranges point into.
#[derive(Clone, Copy, Debug)]
pub struct OpDesc {
    /// The operator kind (heap-free mirror of [`OpKind`]).
    pub kind: CKind,
    /// Number of input ports.
    pub n_inputs: u32,
    /// Number of output ports.
    pub n_outputs: u32,
    /// Number of token-fed (non-immediate) input ports.
    pub live: u32,
    /// Classification bits, see the `flag` constants.
    pub flags: u8,
    /// First slot of this op's immediates in [`CompiledGraph`]'s flat
    /// immediate array (`n_inputs` slots).
    imm_base: u32,
    /// This op's first global out-port index (into `port_start`).
    port_base: u32,
}

/// Flag bits of [`OpDesc::flags`].
pub mod flag {
    /// Merge-like deposit discipline: any single token fires the op
    /// (`Merge`, `LoopEntry`).
    pub const MERGE_LIKE: u8 = 1 << 0;
    /// Eligible for the threaded executor's worker-local two-input
    /// rendezvous fast path.
    pub const FAST_OK: u8 = 1 << 1;
    /// A duplicated token into this op is detectable by the
    /// waiting-matching store (true rendezvous, ≥ 2 live inputs).
    pub const DUP_OK: u8 = 1 << 2;
    /// A memory operation (split-phase latency in the simulator).
    pub const IS_MEMORY: u8 = 1 << 3;
    /// A hot arithmetic kind (`Unary`/`Binary`/`Macro`): the kinds the
    /// zero-per-firing-allocation guarantee is asserted for.
    pub const HOT: u8 = 1 << 4;
}

impl OpDesc {
    /// Merge-like deposit discipline?
    #[inline]
    pub fn merge_like(&self) -> bool {
        self.flags & flag::MERGE_LIKE != 0
    }

    /// Fast-path eligible two-input rendezvous?
    #[inline]
    pub fn fast_ok(&self) -> bool {
        self.flags & flag::FAST_OK != 0
    }

    /// Duplicate-detectable rendezvous?
    #[inline]
    pub fn dup_ok(&self) -> bool {
        self.flags & flag::DUP_OK != 0
    }

    /// Memory operation?
    #[inline]
    pub fn is_memory(&self) -> bool {
        self.flags & flag::IS_MEMORY != 0
    }

    /// Hot arithmetic kind (allocation-audited path)?
    #[inline]
    pub fn is_hot(&self) -> bool {
        self.flags & flag::HOT != 0
    }
}

/// Static footprint of a compiled graph, for `cf2df stats` and the
/// bench artifacts (schema v4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Footprint {
    /// Operator descriptors.
    pub ops: usize,
    /// Total output ports across all operators.
    pub out_ports: usize,
    /// Destination-port slots (arcs).
    pub dest_slots: usize,
    /// Immediate slots (total input ports).
    pub imm_slots: usize,
    /// Flattened macro micro-program steps.
    pub macro_steps: usize,
    /// Total size of the compiled tables, in bytes.
    pub bytes: usize,
}

/// An immutable, dense, backend-shared lowering of a [`Dfg`]. See the
/// module docs for the layout.
#[derive(Clone, Debug)]
pub struct CompiledGraph {
    descs: Vec<OpDesc>,
    /// CSR row starts: global out-port `p`'s destinations are
    /// `dests[port_start[p] .. port_start[p + 1]]`. Length = total out
    /// ports + 1.
    port_start: Vec<u32>,
    /// All destination ports, grouped by (op, out-port), in the builder
    /// graph's arc order within each group.
    dests: Vec<Port>,
    /// Flat immediates, `n_inputs` slots per op at `imm_base`.
    imms: Vec<Option<i64>>,
    /// Flat macro micro-programs.
    macro_steps: Vec<MacroStep>,
    start: OpId,
}

/// Pack a rendezvous key: dense operator index in the high half, tag in
/// the low half. Injective — both ids are 32-bit — so the packed word
/// can replace the `(OpId, TagId)` tuple everywhere tokens rendezvous.
#[inline]
pub fn key(op: OpId, tag: TagId) -> u64 {
    ((op.0 as u64) << 32) | tag.0 as u64
}

/// Unpack a rendezvous key (exact inverse of [`key`]).
#[inline]
pub fn unkey(k: u64) -> (OpId, TagId) {
    (OpId((k >> 32) as u32), TagId(k as u32))
}

/// Pack an invocation-multiplexed rendezvous key: the operator in the
/// high half, and the low half carrying the invocation slot alongside
/// the invocation-local tag under `split`'s reserved layout
/// ([`crate::tag::TagSplit::pack`]). With `TagSplit::NONE` this is
/// exactly [`key`]. Injective as long as the tag respects the split's
/// cap — which the per-invocation interners enforce — so tokens from
/// different inflight invocations of the same graph can never
/// rendezvous with each other.
#[inline]
pub fn key_inv(op: OpId, split: crate::tag::TagSplit, inv: u32, tag: TagId) -> u64 {
    ((op.0 as u64) << 32) | split.pack(inv, tag) as u64
}

/// Unpack an invocation-multiplexed rendezvous key (exact inverse of
/// [`key_inv`] for the same `split`).
#[inline]
pub fn unkey_inv(k: u64, split: crate::tag::TagSplit) -> (OpId, u32, TagId) {
    let (inv, tag) = split.unpack(k as u32);
    (OpId((k >> 32) as u32), inv, tag)
}

/// Lower a graph into its compiled form. Fails (like seeding used to)
/// when the graph has no unique `Start`.
pub fn compile(g: &Dfg) -> Result<CompiledGraph, MachineError> {
    let start = g.start().map_err(|e| MachineError::InvalidGraph {
        detail: e.to_string(),
    })?;
    let oversize = |what: &str| MachineError::InvalidGraph {
        detail: format!("{what} exceeds the compiled graph's 32-bit index space"),
    };

    let mut descs: Vec<OpDesc> = Vec::with_capacity(g.len());
    let mut imms: Vec<Option<i64>> = Vec::new();
    let mut macro_steps: Vec<MacroStep> = Vec::new();
    let mut total_out_ports: usize = 0;
    for op in g.op_ids() {
        let kind = g.kind(op);
        let n_inputs = kind.n_inputs();
        let n_outputs = kind.n_outputs();
        let op_imms = g.imms(op);
        debug_assert_eq!(op_imms.len(), n_inputs);
        let live = op_imms.iter().filter(|i| i.is_none()).count();
        let imm_base = u32::try_from(imms.len()).map_err(|_| oversize("immediate table"))?;
        imms.extend_from_slice(op_imms);
        let merge_like = matches!(kind, OpKind::Merge | OpKind::LoopEntry { .. });
        let ckind = match kind {
            OpKind::Start => CKind::Start,
            OpKind::End { .. } => CKind::End,
            OpKind::Unary { op } => CKind::Unary(*op),
            OpKind::Binary { op } => CKind::Binary(*op),
            OpKind::Switch => CKind::Switch,
            OpKind::CaseSwitch { arms } => CKind::CaseSwitch { arms: *arms },
            OpKind::Merge => CKind::Merge,
            OpKind::Synch { .. } => CKind::Synch,
            OpKind::Identity => CKind::Identity,
            OpKind::Gate => CKind::Gate,
            OpKind::Load { var } => CKind::Load(*var),
            OpKind::Store { var } => CKind::Store(*var),
            OpKind::LoadIdx { var } => CKind::LoadIdx(*var),
            OpKind::StoreIdx { var } => CKind::StoreIdx(*var),
            OpKind::IstLoad { var } => CKind::IstLoad(*var),
            OpKind::IstStore { var } => CKind::IstStore(*var),
            OpKind::LoopEntry { loop_id } => CKind::LoopEntry(*loop_id),
            OpKind::LoopExit { loop_id } => CKind::LoopExit(*loop_id),
            OpKind::PrevIter { loop_id } => CKind::PrevIter(*loop_id),
            OpKind::IterIndex { loop_id } => CKind::IterIndex(*loop_id),
            OpKind::LoopSwitch { loop_id } => CKind::LoopSwitch(*loop_id),
            OpKind::Macro { steps, .. } => {
                let range = StepRange {
                    start: u32::try_from(macro_steps.len())
                        .map_err(|_| oversize("macro-step table"))?,
                    len: u32::try_from(steps.len()).map_err(|_| oversize("macro-step table"))?,
                };
                macro_steps.extend_from_slice(steps);
                CKind::Macro { steps: range }
            }
        };
        let mut flags = 0u8;
        if merge_like {
            flags |= flag::MERGE_LIKE;
        }
        if !merge_like && n_inputs == 2 && live == 2 {
            flags |= flag::FAST_OK;
        }
        if !merge_like && live >= 2 {
            flags |= flag::DUP_OK;
        }
        if kind.is_memory() {
            flags |= flag::IS_MEMORY;
        }
        if matches!(
            kind,
            OpKind::Unary { .. } | OpKind::Binary { .. } | OpKind::Macro { .. }
        ) {
            flags |= flag::HOT;
        }
        descs.push(OpDesc {
            kind: ckind,
            n_inputs: n_inputs as u32,
            n_outputs: n_outputs as u32,
            live: live as u32,
            flags,
            imm_base,
            port_base: u32::try_from(total_out_ports).map_err(|_| oversize("out-port table"))?,
        });
        total_out_ports += n_outputs;
    }

    // CSR fill by counting sort over the arc list: two passes, and the
    // relative order of arcs within one (op, out-port) group is the arc
    // list's — exactly the order the builder-graph interpreters emitted
    // tokens in, which the simulator's bit-for-bit determinism (gated
    // `fired`/`makespan` baselines) depends on.
    let n_arcs = u32::try_from(g.arcs().len()).map_err(|_| oversize("destination table"))?;
    let mut port_start = vec![0u32; total_out_ports + 1];
    for a in g.arcs() {
        let gp = descs[a.from.op.index()].port_base as usize + a.from.port as usize;
        port_start[gp + 1] += 1;
    }
    for i in 1..port_start.len() {
        port_start[i] += port_start[i - 1];
    }
    let mut cursor: Vec<u32> = port_start[..total_out_ports].to_vec();
    let mut dests = vec![Port { op: start, port: 0 }; n_arcs as usize];
    for a in g.arcs() {
        let gp = descs[a.from.op.index()].port_base as usize + a.from.port as usize;
        dests[cursor[gp] as usize] = a.to;
        cursor[gp] += 1;
    }

    Ok(CompiledGraph {
        descs,
        port_start,
        dests,
        imms,
        macro_steps,
        start,
    })
}

impl CompiledGraph {
    /// Number of operators.
    #[inline]
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// True when the graph has no operators (never: it has a `Start`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// The unique `Start` operator.
    #[inline]
    pub fn start(&self) -> OpId {
        self.start
    }

    /// The descriptor of `op` (a 24-byte copy — no clone, no indirection).
    #[inline]
    pub fn desc(&self, op: OpId) -> OpDesc {
        self.descs[op.index()]
    }

    /// The destinations of `(op, out_port)`, in emission order.
    #[inline]
    pub fn dests(&self, op: OpId, out_port: usize) -> &[Port] {
        let gp = self.descs[op.index()].port_base as usize + out_port;
        &self.dests[self.port_start[gp] as usize..self.port_start[gp + 1] as usize]
    }

    /// The immediate on input port `port` of `op`, if any.
    #[inline]
    pub fn imm(&self, op: OpId, port: usize) -> Option<i64> {
        self.imms[self.descs[op.index()].imm_base as usize + port]
    }

    /// All immediate slots of `op` (`n_inputs` entries, `None` = arc-fed).
    #[inline]
    pub fn imms(&self, op: OpId) -> &[Option<i64>] {
        let d = &self.descs[op.index()];
        &self.imms[d.imm_base as usize..d.imm_base as usize + d.n_inputs as usize]
    }

    /// The macro micro-program a [`CKind::Macro`] range points at.
    #[inline]
    pub fn steps(&self, range: StepRange) -> &[MacroStep] {
        &self.macro_steps[range.start as usize..(range.start + range.len) as usize]
    }

    /// The display mnemonic of `op`, identical to
    /// [`OpKind::mnemonic`] on the builder graph (deadlock reports and
    /// tests match on these strings).
    pub fn mnemonic(&self, op: OpId) -> String {
        let d = &self.descs[op.index()];
        match d.kind {
            CKind::Start => "start".into(),
            CKind::End => "end".into(),
            CKind::Unary(u) => format!("un[{}]", u.symbol()),
            CKind::Binary(b) => format!("bin[{}]", b.symbol()),
            CKind::Switch => "switch".into(),
            CKind::CaseSwitch { arms } => format!("case{arms}"),
            CKind::Merge => "merge".into(),
            CKind::Synch => format!("synch{}", d.n_inputs),
            CKind::Identity => "id".into(),
            CKind::Gate => "gate".into(),
            CKind::Load(var) => format!("load {var:?}"),
            CKind::Store(var) => format!("store {var:?}"),
            CKind::LoadIdx(var) => format!("load {var:?}[·]"),
            CKind::StoreIdx(var) => format!("store {var:?}[·]"),
            CKind::IstLoad(var) => format!("ist-load {var:?}[·]"),
            CKind::IstStore(var) => format!("ist-store {var:?}[·]"),
            CKind::LoopEntry(l) => format!("loop-entry {l:?}"),
            CKind::LoopSwitch(l) => format!("loop-switch {l:?}"),
            CKind::LoopExit(l) => format!("loop-exit {l:?}"),
            CKind::PrevIter(l) => format!("prev-iter {l:?}"),
            CKind::IterIndex(l) => format!("iter-index {l:?}"),
            CKind::Macro { steps } => format!("macro{}x{}", d.n_inputs, steps.len()),
        }
    }

    /// Widest hot-kind (`Unary`/`Binary`/`Macro`) input arity in the
    /// graph — when this is ≤ [`INLINE_VALS`], no hot firing can touch
    /// a heap-spilled value buffer (the machine-laws allocation audit).
    pub fn max_hot_arity(&self) -> usize {
        self.descs
            .iter()
            .filter(|d| d.is_hot())
            .map(|d| d.n_inputs as usize)
            .max()
            .unwrap_or(0)
    }

    /// Static size of the compiled tables.
    pub fn footprint(&self) -> Footprint {
        let bytes = self.descs.len() * std::mem::size_of::<OpDesc>()
            + self.port_start.len() * std::mem::size_of::<u32>()
            + self.dests.len() * std::mem::size_of::<Port>()
            + self.imms.len() * std::mem::size_of::<Option<i64>>()
            + self.macro_steps.len() * std::mem::size_of::<MacroStep>();
        Footprint {
            ops: self.descs.len(),
            out_ports: self.port_start.len() - 1,
            dest_slots: self.dests.len(),
            imm_slots: self.imms.len(),
            macro_steps: self.macro_steps.len(),
            bytes,
        }
    }
}

// ---------------------------------------------------------------------
// Allocation audit
// ---------------------------------------------------------------------

/// The hot-path allocation audit: executors report every heap spill on
/// a hot-kind (`Unary`/`Binary`/`Macro`) firing path here, and the
/// machine-laws test asserts the counter never moves across the whole
/// corpus. Spills are architecturally possible only for arities beyond
/// [`INLINE_VALS`], which no translated graph produces.
pub mod audit {
    use std::sync::atomic::{AtomicU64, Ordering};

    static HOT_SPILLS: AtomicU64 = AtomicU64::new(0);

    /// Record one heap allocation on a hot-kind firing path.
    #[cold]
    pub fn note_hot_spill() {
        HOT_SPILLS.fetch_add(1, Ordering::Relaxed);
    }

    /// Total hot-path heap spills recorded by this process.
    pub fn hot_spills() -> u64 {
        HOT_SPILLS.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Inline rendezvous storage (shared by both backends)
// ---------------------------------------------------------------------

/// Value storage of one waiting-matching slot: inline up to
/// [`INLINE_VALS`] input ports, heap-spilled beyond (wide `End`/`Synch`
/// fan-ins only — spills on hot kinds are counted by [`audit`]).
///
/// Which ports hold a value is a bitmask, not an `Option` per port:
/// slots live *by value* inside the rendezvous hash maps, so their size
/// is the dominant term in the waiting-matching store's memory traffic
/// (a deep loop nest keeps tens of thousands of them live at once).
/// Mask + packed `[i64]` is half the footprint of
/// `[Option<i64>; INLINE_VALS]`.
#[derive(Debug)]
pub(crate) enum SlotVals {
    /// Inline storage for ≤ [`INLINE_VALS`] ports.
    Inline {
        n: u8,
        /// Bit `p` set ⇔ port `p` holds a value.
        filled: u16,
        vals: [i64; INLINE_VALS],
    },
    /// Heap storage for wider operators.
    Spill {
        filled: Box<[bool]>,
        vals: Box<[i64]>,
    },
}

/// The `filled` mask must cover every inline port.
const _: () = assert!(INLINE_VALS <= u16::BITS as usize);

impl SlotVals {
    /// A fresh slot pre-filled with the operator's immediates
    /// (`None` = arc-fed, waiting).
    pub(crate) fn new(init: &[Option<i64>], hot: bool) -> SlotVals {
        let n = init.len();
        if n <= INLINE_VALS {
            let mut vals = [0i64; INLINE_VALS];
            let mut filled = 0u16;
            for (p, im) in init.iter().enumerate() {
                if let Some(v) = im {
                    vals[p] = *v;
                    filled |= 1 << p;
                }
            }
            SlotVals::Inline { n: n as u8, filled, vals }
        } else {
            if hot {
                audit::note_hot_spill();
            }
            SlotVals::Spill {
                filled: init.iter().map(Option::is_some).collect(),
                vals: init.iter().map(|im| im.unwrap_or(0)).collect(),
            }
        }
    }

    /// An empty two-value slot (the fused loop-switch rendezvous).
    pub(crate) fn pair() -> SlotVals {
        SlotVals::new(&[None, None], false)
    }

    /// Whether input port `p` already holds a value (immediate or
    /// deposited token) — the token-collision check.
    #[inline]
    pub(crate) fn is_filled(&self, p: usize) -> bool {
        match self {
            SlotVals::Inline { filled, .. } => filled & (1 << p) != 0,
            SlotVals::Spill { filled, .. } => filled[p],
        }
    }

    /// Deposit a token's value on port `p` (callers check
    /// [`Self::is_filled`] first).
    #[inline]
    pub(crate) fn set(&mut self, p: usize, value: i64) {
        match self {
            SlotVals::Inline { filled, vals, .. } => {
                vals[p] = value;
                *filled |= 1 << p;
            }
            SlotVals::Spill { filled, vals } => {
                vals[p] = value;
                filled[p] = true;
            }
        }
    }

    /// Whether every input port holds a value.
    #[inline]
    pub(crate) fn is_complete(&self) -> bool {
        match self {
            SlotVals::Inline { n, filled, .. } => *filled == mask(*n as usize),
            SlotVals::Spill { filled, .. } => filled.iter().all(|&f| f),
        }
    }

    /// How many ports hold a value (leftover-token accounting).
    pub(crate) fn filled_count(&self) -> u64 {
        match self {
            SlotVals::Inline { filled, .. } => filled.count_ones() as u64,
            SlotVals::Spill { filled, .. } => filled.iter().filter(|&&f| f).count() as u64,
        }
    }

    /// The filled port indices, ascending (deadlock reports).
    pub(crate) fn filled_ports(&self) -> Vec<usize> {
        match self {
            SlotVals::Inline { n, filled, .. } => {
                (0..*n as usize).filter(|p| filled & (1 << p) != 0).collect()
            }
            SlotVals::Spill { filled, .. } => {
                filled.iter().enumerate().filter(|(_, &f)| f).map(|(p, _)| p).collect()
            }
        }
    }

    /// Consume a complete slot into firing values. Callers fire only
    /// after [`Self::is_complete`]; unfilled ports (impossible there)
    /// would read as the zeroed initial value.
    pub(crate) fn into_vals(self) -> FireVals {
        debug_assert!(self.is_complete());
        match self {
            SlotVals::Inline { n, vals, .. } => FireVals::Inline { n, vals },
            SlotVals::Spill { vals, .. } => FireVals::Spill(vals.into_vec()),
        }
    }
}

/// The low `n` bits set.
#[inline]
fn mask(n: usize) -> u16 {
    if n >= 16 { u16::MAX } else { (1u16 << n) - 1 }
}

/// A strict firing's assembled input values, inline wherever the slot
/// was inline.
#[derive(Debug)]
pub(crate) enum FireVals {
    /// Inline values for ≤ [`INLINE_VALS`] ports.
    Inline { n: u8, vals: [i64; INLINE_VALS] },
    /// Heap values for wider operators.
    Spill(Vec<i64>),
}

impl FireVals {
    /// Assemble the values of a single-live-input operator firing: the
    /// immediates with the one arriving token written over `port`.
    pub(crate) fn from_imms(imms: &[Option<i64>], port: usize, value: i64, hot: bool) -> FireVals {
        let n = imms.len();
        if n <= INLINE_VALS {
            let mut vals = [0i64; INLINE_VALS];
            for (v, im) in vals[..n].iter_mut().zip(imms) {
                *v = im.unwrap_or(0);
            }
            if n > 0 {
                vals[port] = value;
            }
            FireVals::Inline { n: n as u8, vals }
        } else {
            if hot {
                audit::note_hot_spill();
            }
            let mut vals: Vec<i64> = imms.iter().map(|im| im.unwrap_or(0)).collect();
            vals[port] = value;
            FireVals::Spill(vals)
        }
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[i64] {
        match self {
            FireVals::Inline { n, vals } => &vals[..*n as usize],
            FireVals::Spill(v) => v,
        }
    }
}

// ---------------------------------------------------------------------
// The shared firing kernel
// ---------------------------------------------------------------------

/// The input values of one firing.
#[derive(Clone, Copy, Debug)]
pub enum FireInputs<'a> {
    /// All input values, immediates filled in (strict operators).
    Full(&'a [i64]),
    /// One token on a merge-like operator.
    Single {
        /// The input port the token arrived on.
        port: usize,
        /// The token's value.
        value: i64,
    },
}

impl FireInputs<'_> {
    #[inline]
    fn full(&self, i: usize) -> i64 {
        match self {
            FireInputs::Full(v) => v[i],
            FireInputs::Single { .. } => unreachable!("strict operator fired with a single token"),
        }
    }
}

/// Backend effects the firing kernel is generic over. The simulator
/// implements this with time-stamped event-queue insertion; the
/// threaded executor with scheduler pushes and sharded shared state.
pub trait Engine {
    /// Deliver `value` to every destination of `(op, out_port)` under `tag`.
    fn emit(&mut self, op: OpId, out_port: usize, value: i64, tag: TagId);
    /// `End` fired: the run is complete.
    fn halt(&mut self);
    /// Intern the tag for `(parent, loop_id, iter)`.
    fn tag_child(
        &mut self,
        parent: TagId,
        loop_id: LoopId,
        iter: u32,
    ) -> Result<TagId, MachineError>;
    /// Decompose `tag` into `(parent, loop, iteration)`; `None` for root.
    fn tag_info(&self, tag: TagId) -> Option<(TagId, LoopId, u32)>;
    /// Read a scalar cell.
    fn read_scalar(&mut self, var: VarId) -> i64;
    /// Write a scalar cell.
    fn write_scalar(&mut self, var: VarId, value: i64);
    /// Read an array element (bounds-checked).
    fn read_element(&mut self, var: VarId, index: i64) -> Result<i64, MemError>;
    /// Write an array element (bounds-checked).
    fn write_element(&mut self, var: VarId, index: i64, value: i64) -> Result<(), MemError>;
    /// I-structure read; `Ok(None)` means deferred (the engine records
    /// the deferral and the releasing write will re-emit).
    fn ist_read(
        &mut self,
        var: VarId,
        index: i64,
        op: OpId,
        tag: TagId,
    ) -> Result<Option<i64>, MemError>;
    /// I-structure write; returns the deferred reads it released.
    fn ist_write(
        &mut self,
        var: VarId,
        index: i64,
        value: i64,
    ) -> Result<Vec<DeferredRead<(OpId, TagId)>>, MemError>;
    /// A compound (`Macro`/`LoopSwitch`) firing elided `elided` interior
    /// operator firings.
    fn macro_fired(&mut self, elided: u64);
}

/// Fire one operator: the single definition of every operator's
/// semantics, shared by both backends. The caller has already done the
/// backend-specific part (rendezvous/deposit, fuel, tracing, choosing
/// the emission timestamp); this function only computes and emits.
///
/// Allocation audit: the kernel itself performs no heap allocation on
/// any path except the error constructors (cold) and the deferred-read
/// release vector (I-structure writes only, never a hot kind).
pub fn fire_op<E: Engine>(
    cg: &CompiledGraph,
    op: OpId,
    tag: TagId,
    inputs: FireInputs<'_>,
    eng: &mut E,
) -> Result<(), MachineError> {
    let desc = cg.desc(op);
    match desc.kind {
        CKind::Start => unreachable!("Start never fires"),
        CKind::End => eng.halt(),
        CKind::Unary(u) => eng.emit(op, 0, u.eval(inputs.full(0)), tag),
        CKind::Binary(b) => eng.emit(op, 0, b.eval(inputs.full(0), inputs.full(1)), tag),
        CKind::Switch => {
            let out = if inputs.full(1) != 0 { 0 } else { 1 };
            eng.emit(op, out, inputs.full(0), tag);
        }
        CKind::CaseSwitch { arms } => {
            let sel = inputs.full(1);
            let out = if sel >= 0 && (sel as u64) < u64::from(arms) - 1 {
                sel as usize
            } else {
                arms as usize - 1
            };
            eng.emit(op, out, inputs.full(0), tag);
        }
        CKind::Merge => {
            let FireInputs::Single { value, .. } = inputs else {
                unreachable!("merge fires per token");
            };
            eng.emit(op, 0, value, tag);
        }
        CKind::Synch => eng.emit(op, 0, 0, tag),
        CKind::Identity | CKind::Gate => eng.emit(op, 0, inputs.full(0), tag),
        CKind::Macro { steps } => {
            // One firing evaluates the whole fused chain: interior
            // tokens, slots, and firings are all elided.
            let FireInputs::Full(vals) = inputs else {
                unreachable!("macro has strict ports");
            };
            eng.macro_fired(steps.len() as u64 - 1);
            eng.emit(op, 0, macro_eval(cg.steps(steps), vals), tag);
        }
        CKind::Load(var) => {
            let v = eng.read_scalar(var);
            eng.emit(op, 0, v, tag);
            eng.emit(op, 1, 0, tag);
        }
        CKind::Store(var) => {
            eng.write_scalar(var, inputs.full(0));
            eng.emit(op, 0, 0, tag);
        }
        CKind::LoadIdx(var) => {
            let v = eng.read_element(var, inputs.full(0))?;
            eng.emit(op, 0, v, tag);
            eng.emit(op, 1, 0, tag);
        }
        CKind::StoreIdx(var) => {
            eng.write_element(var, inputs.full(0), inputs.full(1))?;
            eng.emit(op, 0, 0, tag);
        }
        CKind::IstLoad(var) => {
            // A deferred read emits nothing now; the releasing write
            // re-emits from this op. The engine tallies the deferral.
            if let Some(v) = eng.ist_read(var, inputs.full(0), op, tag)? {
                eng.emit(op, 0, v, tag);
            }
        }
        CKind::IstStore(var) => {
            let value = inputs.full(1);
            let released = eng.ist_write(var, inputs.full(0), value)?;
            // Ack first, then the released reads, in deferral order —
            // both backends always emitted in this order.
            eng.emit(op, 0, 0, tag);
            for d in released {
                let (ld_op, ld_tag) = d.ctx;
                eng.emit(ld_op, 0, value, ld_tag);
            }
        }
        CKind::LoopEntry(loop_id) => {
            let FireInputs::Single { port, value } = inputs else {
                unreachable!("loop entry fires per token");
            };
            let new_tag = if port == 0 {
                eng.tag_child(tag, loop_id, 0)?
            } else {
                match eng.tag_info(tag) {
                    Some((p, l, i)) if l == loop_id => eng.tag_child(p, loop_id, i + 1)?,
                    other => {
                        return Err(MachineError::TagMismatch {
                            op,
                            detail: format!(
                                "backedge token tagged {other:?}, expected loop {loop_id:?}"
                            ),
                        })
                    }
                }
            };
            eng.emit(op, 0, value, new_tag);
        }
        CKind::LoopSwitch(_) => {
            // One compound firing replaces the fused loop-entry's
            // separate firing and output token: the data value was
            // retagged at deposit time, so steering is all that's left.
            eng.macro_fired(1);
            let out = if inputs.full(1) != 0 { 0 } else { 1 };
            eng.emit(op, out, inputs.full(0), tag);
        }
        CKind::LoopExit(loop_id) => match eng.tag_info(tag) {
            Some((p, l, _)) if l == loop_id => eng.emit(op, 0, inputs.full(0), p),
            other => {
                return Err(MachineError::TagMismatch {
                    op,
                    detail: format!("exit token tagged {other:?}, expected loop {loop_id:?}"),
                })
            }
        },
        CKind::PrevIter(loop_id) => match eng.tag_info(tag) {
            Some((p, l, i)) if l == loop_id && i > 0 => {
                let nt = eng.tag_child(p, loop_id, i - 1)?;
                eng.emit(op, 0, inputs.full(0), nt);
            }
            other => {
                return Err(MachineError::TagMismatch {
                    op,
                    detail: format!(
                        "prev-iter token tagged {other:?}, expected loop {loop_id:?} iter > 0"
                    ),
                })
            }
        },
        CKind::IterIndex(loop_id) => match eng.tag_info(tag) {
            Some((_, l, i)) if l == loop_id => eng.emit(op, 0, i as i64, tag),
            other => {
                return Err(MachineError::TagMismatch {
                    op,
                    detail: format!("iter-index token tagged {other:?}, expected loop {loop_id:?}"),
                })
            }
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_dfg::graph::ArcKind;
    use cf2df_dfg::MacroSrc;

    fn sample() -> Dfg {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 41);
        let st = g.add(OpKind::Store { var: VarId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(add, 0), ArcKind::Value);
        g.connect(Port::new(add, 0), Port::new(st, 0), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        g
    }

    #[test]
    fn csr_preserves_per_port_arc_order() {
        // One op fanning out to several destinations from one port and
        // a second port: the compiled slices must list destinations in
        // arc-insertion order within each port, ports independent.
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let a = g.add(OpKind::Identity);
        let b = g.add(OpKind::Identity);
        let c = g.add(OpKind::Identity);
        let e = g.add(OpKind::End { inputs: 3 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        // Interleave arcs of ld's two output ports.
        g.connect(Port::new(ld, 0), Port::new(b, 0), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(c, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(a, 0), ArcKind::Value);
        g.connect(Port::new(a, 0), Port::new(e, 0), ArcKind::Value);
        g.connect(Port::new(b, 0), Port::new(e, 1), ArcKind::Value);
        g.connect(Port::new(c, 0), Port::new(e, 2), ArcKind::Value);
        let cg = compile(&g).unwrap();
        assert_eq!(cg.dests(ld, 0), &[Port::new(b, 0), Port::new(a, 0)]);
        assert_eq!(cg.dests(ld, 1), &[Port::new(c, 0)]);
        assert_eq!(cg.dests(s, 0), &[Port::new(ld, 0)]);
        // Matches the builder graph's own adjacency exactly.
        let outs = g.out_arcs();
        for op in g.op_ids() {
            for p in 0..g.kind(op).n_outputs() {
                let want: Vec<Port> = outs[op.index()][p].iter().map(|&i| g.arcs()[i].to).collect();
                assert_eq!(cg.dests(op, p), &want[..], "{op:?} port {p}");
            }
        }
    }

    #[test]
    fn descriptors_carry_arity_live_and_flags() {
        let g = sample();
        let cg = compile(&g).unwrap();
        let add = OpId(2);
        let d = cg.desc(add);
        assert_eq!(d.n_inputs, 2);
        assert_eq!(d.live, 1, "one port is immediate");
        assert!(d.is_hot());
        assert!(!d.fast_ok(), "an immediate port disqualifies the fast path");
        assert!(!d.merge_like());
        assert_eq!(cg.imm(add, 1), Some(41));
        assert_eq!(cg.imm(add, 0), None);
        assert_eq!(cg.imms(add), &[None, Some(41)]);
        let ld = cg.desc(OpId(1));
        assert!(ld.is_memory());
        assert!(!ld.is_hot());
        assert_eq!(cg.start(), OpId(0));
        // Store: port 0 value, port 1 access — both live → fast-path + dup ok.
        let st = cg.desc(OpId(3));
        assert!(st.fast_ok());
        assert!(st.dup_ok());
    }

    #[test]
    fn macro_steps_are_flattened_and_shared() {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let steps = vec![
            MacroStep::Bin(BinOp::Add, MacroSrc::In(0), MacroSrc::Imm(5)),
            MacroStep::Bin(BinOp::Mul, MacroSrc::Chain, MacroSrc::Imm(2)),
        ];
        let m = g.add(OpKind::Macro { inputs: 1, steps: steps.clone() });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(m, 0), ArcKind::Value);
        g.connect(Port::new(m, 0), Port::new(e, 0), ArcKind::Value);
        let cg = compile(&g).unwrap();
        let CKind::Macro { steps: range } = cg.desc(m).kind else {
            panic!("macro survives lowering")
        };
        assert_eq!(cg.steps(range), &steps[..]);
        assert_eq!(range.len(), 2);
        assert_eq!(cg.mnemonic(m), "macro1x2");
        assert_eq!(cg.footprint().macro_steps, 2);
        assert_eq!(cg.max_hot_arity(), 1);
    }

    #[test]
    fn mnemonics_match_the_builder_graph() {
        let mut g = Dfg::new();
        g.add(OpKind::Start);
        for k in [
            OpKind::End { inputs: 4 },
            OpKind::Unary { op: UnOp::Neg },
            OpKind::Binary { op: BinOp::Lt },
            OpKind::Switch,
            OpKind::CaseSwitch { arms: 3 },
            OpKind::Merge,
            OpKind::Synch { inputs: 2 },
            OpKind::Identity,
            OpKind::Gate,
            OpKind::Load { var: VarId(1) },
            OpKind::Store { var: VarId(1) },
            OpKind::LoadIdx { var: VarId(2) },
            OpKind::StoreIdx { var: VarId(2) },
            OpKind::IstLoad { var: VarId(2) },
            OpKind::IstStore { var: VarId(2) },
            OpKind::LoopEntry { loop_id: LoopId(0) },
            OpKind::LoopExit { loop_id: LoopId(0) },
            OpKind::PrevIter { loop_id: LoopId(1) },
            OpKind::IterIndex { loop_id: LoopId(1) },
            OpKind::LoopSwitch { loop_id: LoopId(0) },
            OpKind::Macro { inputs: 2, steps: vec![MacroStep::Zero] },
        ] {
            g.add(k);
        }
        let cg = compile(&g).unwrap();
        for op in g.op_ids() {
            assert_eq!(cg.mnemonic(op), g.kind(op).mnemonic(), "{op:?}");
        }
    }

    /// The packed rendezvous key is injective and round-trips: the
    /// collision/determinism face of the hasher satellite.
    #[test]
    fn packed_key_roundtrips_and_never_collides() {
        let samples = [0u32, 1, 2, 7, 255, 4096, u32::MAX - 1, u32::MAX];
        let mut seen = std::collections::HashSet::new();
        for &o in &samples {
            for &t in &samples {
                let k = key(OpId(o), TagId(t));
                assert_eq!(unkey(k), (OpId(o), TagId(t)));
                assert!(seen.insert(k), "collision at op {o} tag {t}");
            }
        }
        // Determinism: the same key hashes identically in fresh maps.
        use std::hash::BuildHasher;
        let h1 = crate::hash::FxBuildHasher::default();
        let h2 = crate::hash::FxBuildHasher::default();
        for &k in &seen {
            assert_eq!(h1.hash_one(k), h2.hash_one(k));
        }
    }

    #[test]
    fn footprint_counts_every_table() {
        let g = sample();
        let cg = compile(&g).unwrap();
        let fp = cg.footprint();
        assert_eq!(fp.ops, 5);
        assert_eq!(fp.dest_slots, 5);
        assert_eq!(fp.out_ports, 1 + 2 + 1 + 1); // start, load, add, store; end has none
        assert_eq!(fp.imm_slots, 0 + 1 + 2 + 2 + 1);
        assert_eq!(fp.macro_steps, 0);
        assert!(fp.bytes > 0);
    }

    #[test]
    fn compile_rejects_startless_graphs() {
        let mut g = Dfg::new();
        g.add(OpKind::Identity);
        assert!(matches!(
            compile(&g),
            Err(MachineError::InvalidGraph { .. })
        ));
    }
}
