//! Concurrent multi-invocation execution: many independent runs of one
//! compiled graph multiplexed onto a single shared [`ExecutorPool`].
//!
//! The threaded executor ([`crate::parallel`]) runs *one* invocation at a
//! time: small graphs leave most of the pool idle between the seed
//! fan-out and the final drain, and back-to-back requests serialize on
//! the full start/stop latency of a run. This module exploits the
//! tagged-token machine's own answer to that problem. On a Monsoon-style
//! explicit-token-store machine, unrelated activations coexist in one
//! waiting-matching store because their tokens carry disjoint contexts —
//! the hardware never needs to know where one program ends and the next
//! begins. We reproduce that here by adding an *invocation* dimension to
//! the tag space: every rendezvous key packs a small invocation index
//! into the high bits of the tag word ([`TagSplit`],
//! [`crate::compiled::key_inv`]), so tokens of concurrent requests flow
//! through the *same* sharded slot table, the same run queues and the
//! same workers, yet can never match each other.
//!
//! Per-invocation state that genuinely must be private — memory, the
//! tag interner (each invocation gets its own reserved slice of the tag
//! space), fuel, metrics, failure — lives in an invocation slot; the
//! expensive shared machinery (worker threads, run queues, rendezvous
//! shards) is allocated once per serving session.
//!
//! Isolation invariants (pinned by the tests here and in
//! `tests/chaos.rs` / `tests/parallel_equivalence.rs`):
//!
//! * admission is bounded: at most `max_inflight` invocations hold
//!   slots; further [`ServeHandle::submit`] calls block (backpressure);
//! * one invocation's failure — operator panic, memory fault, fuel or
//!   tag exhaustion — fails *that request only*: its remaining tokens
//!   drain as tombstones, its slot is reclaimed, and neighbors and the
//!   pool are untouched;
//! * a request's result is bit-identical to a solo
//!   [`crate::parallel::run_threaded_compiled`] run of the same graph
//!   (equivalence tests check all of them against the deterministic
//!   simulator).
//!
//! Quiescence is detected per invocation with a live-token count: a
//! token is live from the moment it is queued until its processing (and
//! every emission that processing performs) has finished. The count
//! reaching zero therefore means no token of that invocation exists
//! anywhere — queued, stolen, or mid-fire — at which point the slot is
//! finalized: its leftover rendezvous entries are purged from the
//! shared table and the run is classified exactly like a solo run
//! (recorded error > injected drops > deadlock > success).

use crate::chaos::ChaosTallies;
use crate::compiled::{
    fire_op, key_inv, unkey_inv, CKind, CompiledGraph, Engine, FireInputs, FireVals, SlotVals,
};
use crate::exec::MachineError;
use crate::hash::{shard64, FxHashMap};
use crate::memory::{DeferredRead, MemError};
use crate::metrics::{ParMetrics, ServeStats};
use crate::parallel::{ChaosState, ExecutorPool, ParConfig, ParMemory, ParOutcome, ParTagTable};
use crate::scheduler::{Ctx, Scheduler};
use crate::tag::{TagId, TagSplit};
use cf2df_cfg::{LoopId, MemLayout, VarId};
use cf2df_dfg::{OpId, Port};
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Shards in the session's shared rendezvous-slot table (same count as
/// the solo executor's table; the invocation bits are mixed into the
/// shard hash so concurrent requests spread instead of stacking).
const SLOT_SHARDS: usize = 32;

/// Identifies one submitted request within a serving session. Sequential
/// from 0 in submission order; carried into per-invocation errors
/// (e.g. [`MachineError::TagSpaceExhausted`]) and returned by
/// [`ServeHandle::collect`] so out-of-order completions can be matched
/// to their submissions.
pub type ReqId = u64;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A token in flight, extended with the invocation index that scopes its
/// tag.
#[derive(Clone, Copy, Debug)]
struct MToken {
    to: Port,
    tag: TagId,
    inv: u32,
    value: i64,
}

/// The per-invocation private state: its memory image and its tag
/// interner (allocating only within the invocation's reserved slice of
/// the tag space).
struct InvCore {
    layout: MemLayout,
    mem: ParMemory,
    tags: ParTagTable,
}

/// One admission slot. The atomics are the invocation's always-on
/// counters; `core` is the heap state rebuilt on every admission.
struct InvSlot {
    /// Private state of the currently admitted request.
    ///
    /// SAFETY (for both `unsafe impl Sync` and every access): ownership
    /// of a slot is sequenced by the admission free-list under the
    /// session state mutex. `core` is written exclusively in
    /// [`ServeHandle::submit`] *after* popping the slot from the free
    /// list and *before* injecting any of its tokens (the scheduler's
    /// queue locks give the necessary happens-before edge to workers);
    /// workers only read it while processing a token of this invocation,
    /// which holds `live > 0`; finalization reads it only after `live`
    /// reached zero — i.e. after every such reader finished — and the
    /// slot returns to the free list only after finalization completes.
    core: UnsafeCell<Option<InvCore>>,
    /// Tokens of this invocation that exist anywhere (queued or being
    /// processed). Zero means quiescent — finalize.
    live: AtomicU64,
    /// The request id occupying this slot (valid while off the free
    /// list).
    req: AtomicU64,
    end_seen: AtomicBool,
    fired: AtomicU64,
    merged: AtomicU64,
    processed: AtomicU64,
    macro_fires: AtomicU64,
    ops_elided: AtomicU64,
    /// Chaos-injected token drops / duplicates charged to this
    /// invocation.
    drops: AtomicU64,
    dups: AtomicU64,
    /// First failure recorded for this invocation; `failed_flag` is the
    /// lock-free fast check that turns its remaining tokens into
    /// tombstones.
    failed: Mutex<Option<MachineError>>,
    failed_flag: AtomicBool,
}

// SAFETY: see the `core` field — all access to the UnsafeCell is
// sequenced by the free-list/live-count protocol documented there; every
// other field is a Sync primitive.
unsafe impl Sync for InvSlot {}

impl InvSlot {
    fn new() -> InvSlot {
        InvSlot {
            core: UnsafeCell::new(None),
            live: AtomicU64::new(0),
            req: AtomicU64::new(0),
            end_seen: AtomicBool::new(false),
            fired: AtomicU64::new(0),
            merged: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            macro_fires: AtomicU64::new(0),
            ops_elided: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            dups: AtomicU64::new(0),
            failed: Mutex::new(None),
            failed_flag: AtomicBool::new(false),
        }
    }

    /// The admitted request's private state.
    ///
    /// SAFETY: caller must hold one of the access rights documented on
    /// the `core` field (token of this invocation in hand, or exclusive
    /// ownership during admission/finalization).
    unsafe fn core(&self) -> &InvCore {
        (*self.core.get()).as_ref().expect("slot admitted")
    }
}

/// Bookkeeping of the admission window, guarded by one mutex.
struct ServeState {
    /// Slot indices available for admission.
    free: Vec<u32>,
    /// Finished requests awaiting [`ServeHandle::collect`].
    completed: VecDeque<(ReqId, Result<ParOutcome, MachineError>)>,
    /// Requests admitted and not yet finalized.
    inflight: usize,
    /// Next request id == requests submitted so far.
    submitted: u64,
    /// Requests collected so far.
    collected: u64,
    completed_ok: u64,
    completed_err: u64,
    peak_inflight: usize,
    /// Set when the session itself died (a worker panic that escaped an
    /// invocation, or the watchdog): every inflight request was failed,
    /// and every later submission completes immediately with this error.
    dead: Option<MachineError>,
}

/// Session-wide shared state: the compiled graph, the invocation-keyed
/// rendezvous table, the admission slots.
struct MultiShared<'g> {
    cg: &'g CompiledGraph,
    /// How the 32-bit tag word is split between invocation index (high
    /// bits) and per-invocation tag (low bits).
    split: TagSplit,
    /// Per-invocation tag cap: the smaller of the split's slice and the
    /// configured cap.
    tag_cap: u32,
    /// Per-invocation firing budget.
    fuel: u64,
    chaos: Option<Box<ChaosState>>,
    /// Rendezvous slots shared by all invocations, keyed by
    /// [`key_inv`]; sharded by the mixed hash ([`shard64`]) so the
    /// high invocation bits disperse.
    slots: Vec<Mutex<FxHashMap<u64, SlotVals>>>,
    slots_occupied: AtomicU64,
    slots_peak: AtomicU64,
    inv: Vec<InvSlot>,
    state: Mutex<ServeState>,
    /// Signaled when a slot frees (admission backpressure).
    submit_cv: Condvar,
    /// Signaled when a request completes (collect / teardown).
    done_cv: Condvar,
}

impl MultiShared<'_> {
    /// Record the first failure of invocation `inv` and tombstone its
    /// remaining tokens. Neighbors, the shared table and the pool are
    /// deliberately untouched: failure is a per-invocation event.
    fn fail_inv(&self, inv: u32, e: MachineError) {
        let slot = &self.inv[inv as usize];
        let mut f = lock(&slot.failed);
        if f.is_none() {
            *f = Some(e);
        }
        drop(f);
        slot.failed_flag.store(true, Ordering::SeqCst);
    }

    /// One token of `inv` finished processing (emissions included); if it
    /// was the last live token anywhere, the invocation is quiescent and
    /// this thread finalizes it.
    fn dec_live(&self, inv: u32) {
        if self.inv[inv as usize].live.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.finalize(inv);
        }
    }

    /// Purge every rendezvous entry of `inv` from the shared table,
    /// returning how many were parked and their rendered descriptions
    /// (sorted, truncated to 10 — the deadlock report). Safe only at
    /// quiescence: with `live == 0` no thread can be inserting for this
    /// invocation.
    fn purge(&self, inv: u32, core: &InvCore) -> (u64, Vec<String>) {
        let mut parked = 0u64;
        let mut pending: Vec<String> = Vec::new();
        for shard in &self.slots {
            let mut shard = lock(shard);
            shard.retain(|&k, vals| {
                let (op, k_inv, tag) = unkey_inv(k, self.split);
                if k_inv != inv {
                    return true;
                }
                parked += 1;
                if pending.len() < 32 {
                    pending.push(format!(
                        "{} {op:?} tag {} waiting (filled ports {:?})",
                        self.cg.mnemonic(op),
                        core.tags.render(tag),
                        vals.filled_ports(),
                    ));
                }
                false
            });
        }
        if parked > 0 {
            self.slots_occupied.fetch_sub(parked, Ordering::Relaxed);
        }
        pending.sort();
        pending.truncate(10);
        if pending.is_empty() {
            pending.push(
                "no partially-filled rendezvous slots: tokens drained without reaching End"
                    .to_owned(),
            );
        }
        (parked, pending)
    }

    /// Classify a quiescent invocation exactly like a solo run (recorded
    /// failure > injected drops > deadlock > success), push the result,
    /// and return its slot to the free list.
    fn finalize(&self, inv: u32) {
        let slot = &self.inv[inv as usize];
        // SAFETY: live == 0 — exclusive access per the slot protocol.
        let core = unsafe { slot.core() };
        let (parked, pending) = self.purge(inv, core);
        let drops = slot.drops.load(Ordering::Relaxed);
        let end_seen = slot.end_seen.load(Ordering::SeqCst);
        let failure = lock(&slot.failed).take();
        let result = if let Some(e) = failure {
            Err(e)
        } else if drops > 0 {
            Err(MachineError::TokenLeak {
                leftover: drops + parked,
            })
        } else if parked > 0 || !end_seen {
            Err(MachineError::Deadlock { pending })
        } else {
            let metrics = ParMetrics {
                // The workers are shared across invocations; their
                // scheduler counters live in the session's ServeStats.
                workers: Vec::new(),
                tokens_processed: slot.processed.load(Ordering::Relaxed),
                merged: slot.merged.load(Ordering::Relaxed),
                // The serving executor has no worker-local fast path.
                fast_path_fires: 0,
                max_pending_slots: 0,
                slot_shard_high_water: Vec::new(),
                tags_created: core.tags.created(),
                deferred_reads: core.mem.deferred_reads.load(Ordering::Relaxed),
                deferred_read_peak: core.mem.deferred_peak.load(Ordering::Relaxed),
                macro_fires: slot.macro_fires.load(Ordering::Relaxed),
                ops_elided: slot.ops_elided.load(Ordering::Relaxed),
                chaos: ChaosTallies {
                    drops,
                    dups: slot.dups.load(Ordering::Relaxed),
                    ..ChaosTallies::default()
                },
            };
            Ok(ParOutcome {
                memory: core.mem.cells_snapshot(),
                ist_memory: core.mem.ist_snapshot(),
                fired: slot.fired.load(Ordering::SeqCst),
                metrics,
            })
        };
        let req = slot.req.load(Ordering::SeqCst);
        let mut st = lock(&self.state);
        if result.is_ok() {
            st.completed_ok += 1;
        } else {
            st.completed_err += 1;
        }
        st.completed.push_back((req, result));
        st.free.push(inv);
        st.inflight -= 1;
        drop(st);
        self.submit_cv.notify_one();
        self.done_cv.notify_all();
    }

    /// The session itself died (escaped worker panic or watchdog): fail
    /// every inflight request with its own recorded error — or the
    /// session error — and poison future submissions. Slot cores are not
    /// touched (their tokens may still sit in dead queues), so no
    /// memory snapshot is attempted and the slots are not reused.
    fn session_death(&self, err: MachineError) {
        let mut st = lock(&self.state);
        st.dead = Some(err.clone());
        let busy: Vec<u32> =
            (0..self.inv.len() as u32).filter(|i| !st.free.contains(i)).collect();
        for inv in busy {
            let slot = &self.inv[inv as usize];
            let e = lock(&slot.failed).take().unwrap_or_else(|| err.clone());
            st.completed.push_back((slot.req.load(Ordering::SeqCst), Err(e)));
            st.completed_err += 1;
            st.inflight -= 1;
        }
        drop(st);
        self.submit_cv.notify_all();
        self.done_cv.notify_all();
    }
}

/// The submission side of a serving session, handed to the closure of
/// [`serve`]. Cloneable by shared reference across threads: `submit` and
/// `collect` are both `&self`.
pub struct ServeHandle<'a, 'g> {
    sh: &'a MultiShared<'g>,
    sched: &'a Scheduler<MToken>,
}

impl ServeHandle<'_, '_> {
    /// Admit one invocation of the session's graph over `layout`,
    /// blocking while the admission window (`max_inflight`) is full —
    /// the session's backpressure. Returns the request id; the result is
    /// retrieved with [`ServeHandle::collect`]. On a dead session the
    /// request completes immediately with the session's error.
    pub fn submit(&self, layout: &MemLayout) -> ReqId {
        let sh = self.sh;
        let mut st = lock(&sh.state);
        loop {
            if let Some(err) = st.dead.clone() {
                let req = st.submitted;
                st.submitted += 1;
                st.completed.push_back((req, Err(err)));
                st.completed_err += 1;
                drop(st);
                sh.done_cv.notify_all();
                return req;
            }
            if let Some(inv) = st.free.pop() {
                let req = st.submitted;
                st.submitted += 1;
                st.inflight += 1;
                st.peak_inflight = st.peak_inflight.max(st.inflight);
                sh.inv[inv as usize].req.store(req, Ordering::SeqCst);
                drop(st);
                self.admit(inv, req, layout);
                return req;
            }
            st = sh.submit_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Install the request's private state in its slot and seed its
    /// start tokens. The slot is exclusively ours between the free-list
    /// pop and the injection below.
    fn admit(&self, inv: u32, req: ReqId, layout: &MemLayout) {
        let sh = self.sh;
        let slot = &sh.inv[inv as usize];
        let core = InvCore {
            layout: layout.clone(),
            mem: ParMemory::new(layout),
            tags: ParTagTable::new_for(sh.tag_cap, Some(req)),
        };
        // SAFETY: exclusive slot ownership (popped from the free list,
        // no tokens injected yet); see the `core` field protocol.
        unsafe {
            *slot.core.get() = Some(core);
        }
        slot.end_seen.store(false, Ordering::SeqCst);
        slot.fired.store(0, Ordering::SeqCst);
        slot.merged.store(0, Ordering::SeqCst);
        slot.processed.store(0, Ordering::SeqCst);
        slot.macro_fires.store(0, Ordering::SeqCst);
        slot.ops_elided.store(0, Ordering::SeqCst);
        slot.drops.store(0, Ordering::SeqCst);
        slot.dups.store(0, Ordering::SeqCst);
        *lock(&slot.failed) = None;
        slot.failed_flag.store(false, Ordering::SeqCst);

        let seeds = sh.cg.dests(sh.cg.start(), 0);
        // Live count covers the seeds *before* they become visible to
        // workers, so a fast drain cannot underflow it.
        slot.live.store(seeds.len() as u64, Ordering::SeqCst);
        if seeds.is_empty() {
            // A graph whose start feeds nothing can never reach End;
            // classify immediately (same verdict a solo run reaches).
            return self.sh.finalize(inv);
        }
        self.sched.inject_batch(seeds.iter().map(|&to| MToken {
            to,
            tag: TagId::ROOT,
            inv,
            value: 0,
        }));
    }

    /// Wait for the next finished request (any invocation — completions
    /// are delivered in finish order, not submission order) and return
    /// its id and result.
    ///
    /// # Panics
    ///
    /// Panics if nothing is outstanding: every submitted request was
    /// already collected.
    pub fn collect(&self) -> (ReqId, Result<ParOutcome, MachineError>) {
        let sh = self.sh;
        let mut st = lock(&sh.state);
        loop {
            if let Some(done) = st.completed.pop_front() {
                st.collected += 1;
                return done;
            }
            assert!(
                st.submitted > st.collected,
                "collect called with no outstanding requests"
            );
            st = sh.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Requests submitted and not yet collected.
    pub fn outstanding(&self) -> usize {
        let st = lock(&self.sh.state);
        (st.submitted - st.collected) as usize
    }
}

// ---------------------------------------------------------------------
// Token processing (the multiplexed mirror of parallel.rs's pipeline)
// ---------------------------------------------------------------------

/// What a rendezvous deposit produced.
enum Deposit {
    /// The slot completed; fire with these values.
    Fire(FireVals),
    /// Parked as a partial slot.
    Wait,
    /// The port was already filled — a token collision.
    Collision,
}

fn deposit(
    sh: &MultiShared<'_>,
    inv: u32,
    k: u64,
    idx: usize,
    value: i64,
    mk: impl FnOnce() -> SlotVals,
) -> Deposit {
    let slot = &sh.inv[inv as usize];
    let shard_idx = shard64(k, SLOT_SHARDS);
    let mut shard = lock(&sh.slots[shard_idx]);
    let mut inserted = false;
    let entry = shard.entry(k).or_insert_with(|| {
        inserted = true;
        mk()
    });
    if entry.is_filled(idx) {
        return Deposit::Collision;
    }
    entry.set(idx, value);
    let complete = entry.is_complete();
    if inserted {
        let occupied = sh.slots_occupied.fetch_add(1, Ordering::Relaxed) + 1;
        sh.slots_peak.fetch_max(occupied, Ordering::Relaxed);
    }
    if complete {
        let vals = shard.remove(&k).expect("present").into_vals();
        drop(shard);
        sh.slots_occupied.fetch_sub(1, Ordering::Relaxed);
        Deposit::Fire(vals)
    } else {
        drop(shard);
        slot.merged.fetch_add(1, Ordering::Relaxed);
        Deposit::Wait
    }
}

fn process_one(sh: &MultiShared<'_>, ctx: &Ctx<'_, MToken>, t: MToken) {
    let inv = t.inv;
    let slot = &sh.inv[inv as usize];
    if slot.failed_flag.load(Ordering::SeqCst) {
        // Tombstone: the invocation already failed; its tokens drain
        // without firing so the slot can be reclaimed and reused.
        return;
    }
    // SAFETY: this token holds the invocation live (> 0) until the body
    // loop decrements after we return.
    let core = unsafe { slot.core() };
    let op = t.to.op;
    let port = t.to.port as usize;
    let cg = sh.cg;
    let desc = cg.desc(op);
    if let CKind::LoopSwitch(loop_id) = desc.kind {
        return deposit_loop_switch(sh, ctx, core, inv, op, port, t, loop_id);
    }
    if desc.merge_like() {
        return fire_inv(
            sh,
            ctx,
            core,
            inv,
            op,
            t.tag,
            FireInputs::Single {
                port,
                value: t.value,
            },
        );
    }
    if desc.live <= 1 {
        let vals = FireVals::from_imms(cg.imms(op), port, t.value, desc.is_hot());
        return fire_inv(sh, ctx, core, inv, op, t.tag, FireInputs::Full(vals.as_slice()));
    }
    let k = key_inv(op, sh.split, inv, t.tag);
    match deposit(sh, inv, k, port, t.value, || {
        SlotVals::new(cg.imms(op), desc.is_hot())
    }) {
        Deposit::Fire(vals) => fire_inv(sh, ctx, core, inv, op, t.tag, FireInputs::Full(vals.as_slice())),
        Deposit::Wait => {}
        Deposit::Collision => {
            let tag = core.tags.render(t.tag);
            sh.fail_inv(inv, MachineError::TokenCollision { op, port, tag });
        }
    }
}

/// The fused loop-entry/switch deposit, invocation-scoped: identical
/// retagging to [`crate::parallel`]'s, but tags come from the
/// invocation's own interner and the rendezvous key carries the
/// invocation bits.
#[allow(clippy::too_many_arguments)]
fn deposit_loop_switch(
    sh: &MultiShared<'_>,
    ctx: &Ctx<'_, MToken>,
    core: &InvCore,
    inv: u32,
    op: OpId,
    port: usize,
    t: MToken,
    loop_id: LoopId,
) {
    let (slot_tag, idx) = match port {
        0 => match core.tags.child(t.tag, loop_id, 0) {
            Ok(nt) => (nt, 0),
            Err(e) => return sh.fail_inv(inv, e),
        },
        1 => match core.tags.info(t.tag) {
            Some((p, l, i)) if l == loop_id => match core.tags.child(p, loop_id, i + 1) {
                Ok(nt) => (nt, 0),
                Err(e) => return sh.fail_inv(inv, e),
            },
            other => {
                return sh.fail_inv(
                    inv,
                    MachineError::TagMismatch {
                        op,
                        detail: format!(
                            "backedge token tagged {other:?}, expected loop {loop_id:?}"
                        ),
                    },
                )
            }
        },
        _ => (t.tag, 1),
    };
    let k = key_inv(op, sh.split, inv, slot_tag);
    match deposit(sh, inv, k, idx, t.value, SlotVals::pair) {
        Deposit::Fire(vals) => {
            fire_inv(sh, ctx, core, inv, op, slot_tag, FireInputs::Full(vals.as_slice()))
        }
        Deposit::Wait => {}
        Deposit::Collision => {
            let tag = core.tags.render(slot_tag);
            sh.fail_inv(inv, MachineError::TokenCollision { op, port, tag });
        }
    }
}

/// Send one output token to every destination of `(op, out_port)`. Every
/// pushed token raises the invocation's live count *before* it becomes
/// visible, so quiescence cannot be declared under it. There is no
/// worker-local fast path here: batches interleave tokens of many
/// invocations, so same-batch pairing would buy little and cost an
/// invocation-keyed flush on every batch boundary.
fn emit_inv(
    sh: &MultiShared<'_>,
    ctx: &Ctx<'_, MToken>,
    inv: u32,
    op: OpId,
    out_port: usize,
    value: i64,
    tag: TagId,
) {
    if sh.chaos.is_some() {
        return emit_inv_chaos(sh, ctx, inv, op, out_port, value, tag);
    }
    let slot = &sh.inv[inv as usize];
    for &to in sh.cg.dests(op, out_port) {
        slot.live.fetch_add(1, Ordering::SeqCst);
        ctx.push(MToken { to, tag, inv, value });
    }
}

/// [`emit_inv`] with per-destination fault injection; drops and dups are
/// charged to the emitting invocation (the drop will surface as *its*
/// [`MachineError::TokenLeak`], nobody else's).
#[cold]
#[inline(never)]
fn emit_inv_chaos(
    sh: &MultiShared<'_>,
    ctx: &Ctx<'_, MToken>,
    inv: u32,
    op: OpId,
    out_port: usize,
    value: i64,
    tag: TagId,
) {
    let ch = sh.chaos.as_deref().expect("checked by emit_inv");
    let slot = &sh.inv[inv as usize];
    for &to in sh.cg.dests(op, out_port) {
        {
            let mut rng = lock(&ch.rngs[ctx.worker()]);
            if ch.cfg.drop_prob > 0.0 && rng.chance(ch.cfg.drop_prob) {
                drop(rng);
                ch.drops.fetch_add(1, Ordering::Relaxed);
                slot.drops.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if ch.cfg.dup_prob > 0.0 && sh.cg.desc(to.op).dup_ok() && rng.chance(ch.cfg.dup_prob)
            {
                drop(rng);
                ch.dups.fetch_add(1, Ordering::Relaxed);
                slot.dups.fetch_add(1, Ordering::Relaxed);
                slot.live.fetch_add(1, Ordering::SeqCst);
                ctx.push(MToken { to, tag, inv, value });
            }
        }
        slot.live.fetch_add(1, Ordering::SeqCst);
        ctx.push(MToken { to, tag, inv, value });
    }
}

/// Admission hooks before the shared firing kernel: spend one unit of
/// the *invocation's* fuel, and under chaos maybe panic in the
/// operator's stead (the panic is caught per token and fails only this
/// invocation).
fn fire_admitted_inv(sh: &MultiShared<'_>, ctx: &Ctx<'_, MToken>, inv: u32, op: OpId) -> bool {
    let slot = &sh.inv[inv as usize];
    let prev = slot.fired.fetch_add(1, Ordering::Relaxed);
    if prev >= sh.fuel {
        sh.fail_inv(inv, MachineError::FuelExhausted);
        return false;
    }
    if let Some(ch) = &sh.chaos {
        if ch.cfg.panic_prob > 0.0 && lock(&ch.rngs[ctx.worker()]).chance(ch.cfg.panic_prob) {
            ch.panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected operator panic at {op:?}");
        }
    }
    true
}

/// The serving executor's side of the shared firing kernel: emission
/// raises the invocation's live count, memory and tags are the
/// invocation's own, halt marks only this invocation's End.
struct ServeEngine<'a, 'b, 'g> {
    sh: &'a MultiShared<'g>,
    ctx: &'a Ctx<'b, MToken>,
    core: &'a InvCore,
    inv: u32,
}

impl Engine for ServeEngine<'_, '_, '_> {
    fn emit(&mut self, op: OpId, out_port: usize, value: i64, tag: TagId) {
        emit_inv(self.sh, self.ctx, self.inv, op, out_port, value, tag);
    }

    fn halt(&mut self) {
        // End fired for *this* invocation; neighbors keep running and
        // the scheduler stays up for the whole session.
        self.sh.inv[self.inv as usize]
            .end_seen
            .store(true, Ordering::SeqCst);
    }

    fn tag_child(
        &mut self,
        parent: TagId,
        loop_id: LoopId,
        iter: u32,
    ) -> Result<TagId, MachineError> {
        self.core.tags.child(parent, loop_id, iter)
    }

    fn tag_info(&self, tag: TagId) -> Option<(TagId, LoopId, u32)> {
        self.core.tags.info(tag)
    }

    fn read_scalar(&mut self, var: VarId) -> i64 {
        self.core.mem.read_scalar(&self.core.layout, var)
    }

    fn write_scalar(&mut self, var: VarId, value: i64) {
        self.core.mem.write_scalar(&self.core.layout, var, value)
    }

    fn read_element(&mut self, var: VarId, index: i64) -> Result<i64, MemError> {
        self.core.mem.read_element(&self.core.layout, var, index)
    }

    fn write_element(&mut self, var: VarId, index: i64, value: i64) -> Result<(), MemError> {
        self.core.mem.write_element(&self.core.layout, var, index, value)
    }

    fn ist_read(
        &mut self,
        var: VarId,
        index: i64,
        op: OpId,
        tag: TagId,
    ) -> Result<Option<i64>, MemError> {
        self.core.mem.ist_read(&self.core.layout, var, index, (op, tag))
    }

    fn ist_write(
        &mut self,
        var: VarId,
        index: i64,
        value: i64,
    ) -> Result<Vec<DeferredRead<(OpId, TagId)>>, MemError> {
        self.core.mem.ist_write(&self.core.layout, var, index, value)
    }

    fn macro_fired(&mut self, elided: u64) {
        let slot = &self.sh.inv[self.inv as usize];
        slot.macro_fires.fetch_add(1, Ordering::Relaxed);
        slot.ops_elided.fetch_add(elided, Ordering::Relaxed);
    }
}

fn fire_inv(
    sh: &MultiShared<'_>,
    ctx: &Ctx<'_, MToken>,
    core: &InvCore,
    inv: u32,
    op: OpId,
    tag: TagId,
    inputs: FireInputs<'_>,
) {
    if !fire_admitted_inv(sh, ctx, inv, op) {
        return;
    }
    let mut eng = ServeEngine { sh, ctx, core, inv };
    if let Err(e) = fire_op(sh.cg, op, tag, inputs, &mut eng) {
        sh.fail_inv(inv, e);
    }
}

fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

// ---------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------

/// Run a serving session: up to `max_inflight` concurrent invocations of
/// `cg` multiplexed onto `pool`'s workers. The closure `f` drives the
/// session through its [`ServeHandle`] — submitting requests, collecting
/// results — from the calling thread (and may hand the handle to other
/// threads; both methods take `&self`). When `f` returns, the session
/// waits for every admitted request to finish, shuts the workers down,
/// and returns `f`'s value with the session-level [`ServeStats`].
///
/// `cfg` is applied *per invocation* — `fuel` and `tag_cap` bound each
/// request individually (the tag cap is additionally clamped to the
/// invocation's reserved slice of the tag space) — except `watchdog`,
/// which bounds the whole session, and `chaos`, which faults the shared
/// workers. `trace_capacity` is ignored: the trace ring is a solo-run
/// debugging aid.
///
/// `max_inflight` is clamped to `1..=65536`; the tag space is split as
/// `ceil(log2(max_inflight))` invocation bits, leaving each request
/// `2^(32-bits) - 1` tags ([`TagSplit::for_inflight`]).
pub fn serve<R>(
    cg: &CompiledGraph,
    pool: &ExecutorPool,
    max_inflight: usize,
    cfg: &ParConfig,
    f: impl FnOnce(&ServeHandle<'_, '_>) -> R,
) -> (R, ServeStats) {
    let max_inflight = max_inflight.clamp(1, 1 << 16);
    let n_workers = pool.workers();
    let split = TagSplit::for_inflight(max_inflight);
    let sh = MultiShared {
        cg,
        split,
        tag_cap: split.tag_cap().min(cfg.tag_cap),
        fuel: cfg.fuel,
        chaos: cfg.chaos.map(|c| Box::new(ChaosState::new(c, n_workers))),
        slots: std::iter::repeat_with(|| Mutex::new(FxHashMap::default()))
            .take(SLOT_SHARDS)
            .collect(),
        slots_occupied: AtomicU64::new(0),
        slots_peak: AtomicU64::new(0),
        inv: (0..max_inflight).map(|_| InvSlot::new()).collect(),
        state: Mutex::new(ServeState {
            free: (0..max_inflight as u32).rev().collect(),
            completed: VecDeque::new(),
            inflight: 0,
            submitted: 0,
            collected: 0,
            completed_ok: 0,
            completed_err: 0,
            peak_inflight: 0,
            dead: None,
        }),
        submit_cv: Condvar::new(),
        done_cv: Condvar::new(),
    };

    let sched: Scheduler<MToken> = Scheduler::new(n_workers).with_chaos(cfg.chaos);
    // Keep the scheduler's token population artificially nonzero for the
    // whole session: workers park between requests instead of exiting,
    // and the drain-to-zero shutdown only triggers at teardown's
    // `release`.
    sched.hold();

    let body = |ctx: &Ctx<'_, MToken>, batch: &mut Vec<MToken>| {
        for t in batch.drain(..) {
            let inv = t.inv;
            sh.inv[inv as usize].processed.fetch_add(1, Ordering::Relaxed);
            // Catch per token, not per batch: an operator panic fails
            // its own invocation and the batch (other invocations'
            // tokens included) continues.
            let r = catch_unwind(AssertUnwindSafe(|| process_one(&sh, ctx, t)));
            if let Err(payload) = r {
                sh.fail_inv(
                    inv,
                    MachineError::WorkerPanicked {
                        worker: ctx.worker(),
                        payload: render_panic(&*payload),
                    },
                );
            }
            sh.dec_live(inv);
        }
    };

    let fired_watchdog = AtomicBool::new(false);
    let done = Mutex::new(false);
    let done_cv = Condvar::new();
    let (ret, outcome) = std::thread::scope(|scope| {
        if let Some(bound) = cfg.watchdog {
            // Same exactly-one-of-{completed, timed-out} protocol as the
            // solo executor's watchdog.
            let (done, done_cv, fired_watchdog, sched) =
                (&done, &done_cv, &fired_watchdog, &sched);
            scope.spawn(move || {
                let guard = lock(done);
                let (guard, wait) = done_cv
                    .wait_timeout_while(guard, bound, |finished| !*finished)
                    .unwrap_or_else(|e| e.into_inner());
                if wait.timed_out() && !*guard {
                    fired_watchdog.store(true, Ordering::SeqCst);
                    drop(guard);
                    sched.halt_external();
                }
            });
        }
        let driver = scope.spawn(|| {
            let out = sched.run_in(&pool.pool, body);
            *lock(&done) = true;
            done_cv.notify_all();
            if out.halted {
                // The session died under live requests: an escaped
                // worker panic or the watchdog. Fail everything still
                // admitted.
                let err = if let Some((worker, payload)) = out.panicked.clone() {
                    MachineError::WorkerPanicked { worker, payload }
                } else {
                    MachineError::WatchdogTimeout {
                        millis: cfg.watchdog.map_or(0, |d| d.as_millis() as u64),
                    }
                };
                sh.session_death(err);
            }
            out
        });

        let handle = ServeHandle { sh: &sh, sched: &sched };
        let ret = catch_unwind(AssertUnwindSafe(|| f(&handle)));

        // Teardown: wait for every admitted request to finalize (a dead
        // session finalizes them all in `session_death`), then drop the
        // hold so the worker population drains to zero and the epoch
        // ends.
        {
            let mut st = lock(&sh.state);
            while st.inflight > 0 {
                st = sh.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        sched.release();
        let outcome = driver.join().expect("serve driver does not panic");
        match ret {
            Ok(ret) => (ret, outcome),
            Err(payload) => resume_unwind(payload),
        }
    });

    let st = lock(&sh.state);
    let stats = ServeStats {
        requests: st.submitted,
        completed_ok: st.completed_ok,
        failed: st.completed_err,
        peak_inflight: st.peak_inflight as u64,
        tokens_processed: outcome.processed,
        max_pending_slots: sh.slots_peak.load(Ordering::Relaxed),
        chaos: ChaosTallies {
            delays: outcome.workers.iter().map(|w| w.chaos_delays).sum(),
            forced_steals: outcome.workers.iter().map(|w| w.chaos_forced_steals).sum(),
            panics: sh.chaos.as_ref().map_or(0, |c| c.panics.load(Ordering::Relaxed)),
            drops: sh.chaos.as_ref().map_or(0, |c| c.drops.load(Ordering::Relaxed)),
            dups: sh.chaos.as_ref().map_or(0, |c| c.dups.load(Ordering::Relaxed)),
        },
        workers: outcome.workers,
    };
    drop(st);
    (ret, stats)
}

/// Submit `requests` invocations of `cg` over `layout` with at most
/// `max_inflight` concurrent, and return their results in submission
/// order plus the session stats. The convenience wrapper around
/// [`serve`] used by the CLI, the benches and the equivalence tests.
pub fn run_concurrent(
    cg: &CompiledGraph,
    layout: &MemLayout,
    pool: &ExecutorPool,
    max_inflight: usize,
    cfg: &ParConfig,
    requests: usize,
) -> (Vec<Result<ParOutcome, MachineError>>, ServeStats) {
    serve(cg, pool, max_inflight, cfg, |h| {
        let mut results: Vec<Option<Result<ParOutcome, MachineError>>> =
            (0..requests).map(|_| None).collect();
        for _ in 0..requests {
            h.submit(layout);
        }
        for _ in 0..requests {
            let (req, r) = h.collect();
            results[req as usize] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every request completes exactly once"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::compile;
    use crate::exec::{run, MachineConfig};
    use crate::parallel::run_threaded;
    use cf2df_cfg::{BinOp, VarTable};
    use cf2df_dfg::graph::ArcKind;
    use cf2df_dfg::{Dfg, OpKind};

    /// start → load x → (+41) → store x → end, with a two-input synch so
    /// the rendezvous table sees traffic.
    fn small_graph() -> (Dfg, MemLayout) {
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 41);
        let st = g.add(OpKind::Store { var: VarId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(add, 0), ArcKind::Value);
        g.connect(Port::new(add, 0), Port::new(st, 0), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        (g, layout)
    }

    /// A graph that deadlocks: a two-input synch fed on one port only.
    fn stuck_graph() -> (Dfg, MemLayout) {
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let sy = g.add(OpKind::Synch { inputs: 2 });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(sy, 0), ArcKind::Access);
        g.connect(Port::new(sy, 0), Port::new(e, 0), ArcKind::Access);
        (g, layout)
    }

    #[test]
    fn concurrent_requests_match_the_simulator() {
        let (g, layout) = small_graph();
        let sim = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let cg = compile(&g).unwrap();
        for workers in [1, 2, 4] {
            let pool = ExecutorPool::new(workers);
            for inflight in [1, 3, 8] {
                let (results, stats) =
                    run_concurrent(&cg, &layout, &pool, inflight, &ParConfig::default(), 8);
                assert_eq!(results.len(), 8);
                for (i, r) in results.iter().enumerate() {
                    let out = r.as_ref().unwrap_or_else(|e| {
                        panic!("request {i} failed (workers={workers} inflight={inflight}): {e:?}")
                    });
                    assert_eq!(out.memory, sim.memory, "request {i}");
                    assert_eq!(out.fired, sim.stats.fired, "request {i}");
                    let m = &out.metrics;
                    assert_eq!(
                        m.tokens_processed,
                        out.fired + m.merged,
                        "per-invocation accounting, request {i}"
                    );
                }
                assert_eq!(stats.requests, 8);
                assert_eq!(stats.completed_ok, 8);
                assert_eq!(stats.failed, 0);
                assert!(stats.peak_inflight as usize <= inflight.clamp(1, 1 << 16));
                assert_eq!(stats.workers.len(), workers);
            }
        }
    }

    #[test]
    fn backpressure_blocks_at_the_admission_window() {
        let (g, layout) = small_graph();
        let cg = compile(&g).unwrap();
        let pool = ExecutorPool::new(2);
        // Window of 1: 16 submissions must still all complete (each
        // submit blocks until the previous request finalizes).
        let (results, stats) =
            run_concurrent(&cg, &layout, &pool, 1, &ParConfig::default(), 16);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(stats.peak_inflight, 1);
    }

    #[test]
    fn a_failing_invocation_reports_and_the_session_continues() {
        // Every request of this graph deadlocks; the session must hand
        // back 6 typed errors, stay alive throughout, and leave the pool
        // reusable for a clean graph afterwards.
        let (g, layout) = stuck_graph();
        let cg = compile(&g).unwrap();
        let pool = ExecutorPool::new(2);
        let (results, stats) = run_concurrent(&cg, &layout, &pool, 4, &ParConfig::default(), 6);
        assert_eq!(stats.failed, 6);
        for r in &results {
            let Err(MachineError::Deadlock { pending }) = r else {
                panic!("expected per-request deadlock, got {r:?}");
            };
            assert!(pending[0].contains("synch2"), "{pending:?}");
        }
        // Same pool, different graph, clean serve session.
        let (g2, layout2) = small_graph();
        let cg2 = compile(&g2).unwrap();
        let sim = run(&g2, &layout2, MachineConfig::unbounded()).unwrap();
        let (results2, _) =
            run_concurrent(&cg2, &layout2, &pool, 4, &ParConfig::default(), 4);
        for r in results2 {
            assert_eq!(r.unwrap().memory, sim.memory);
        }
    }

    #[test]
    fn per_invocation_fuel_names_no_neighbor() {
        let (g, layout) = small_graph();
        let cg = compile(&g).unwrap();
        let solo = run_threaded(&g, &layout, 1).unwrap();
        let pool = ExecutorPool::new(2);
        // Fuel one below the graph's firing count: every request runs
        // out individually; the session survives all of them.
        let cfg = ParConfig {
            fuel: solo.fired - 1,
            ..ParConfig::default()
        };
        let (results, stats) = run_concurrent(&cg, &layout, &pool, 4, &cfg, 5);
        assert_eq!(stats.failed, 5);
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(MachineError::FuelExhausted))));
        // And with exact fuel, all succeed.
        let cfg = ParConfig {
            fuel: solo.fired,
            ..ParConfig::default()
        };
        let (results, _) = run_concurrent(&cg, &layout, &pool, 4, &cfg, 5);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn collect_panics_with_nothing_outstanding() {
        let (g, layout) = small_graph();
        let cg = compile(&g).unwrap();
        let pool = ExecutorPool::new(1);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            serve(&cg, &pool, 2, &ParConfig::default(), |h| {
                let id = h.submit(&layout);
                let (rid, r) = h.collect();
                assert_eq!(rid, id);
                r.unwrap();
                assert_eq!(h.outstanding(), 0);
                let _ = h.collect(); // nothing outstanding: must panic
            })
        }));
        assert!(caught.is_err(), "second collect must panic");
    }

    #[test]
    fn results_are_delivered_in_finish_order_with_request_ids() {
        let (g, layout) = small_graph();
        let cg = compile(&g).unwrap();
        let pool = ExecutorPool::new(4);
        let ((), stats) = serve(&cg, &pool, 8, &ParConfig::default(), |h| {
            let ids: Vec<ReqId> = (0..8).map(|_| h.submit(&layout)).collect();
            assert_eq!(ids, (0..8).collect::<Vec<_>>(), "sequential request ids");
            let mut seen: Vec<ReqId> = (0..8).map(|_| h.collect().0).collect();
            seen.sort_unstable();
            assert_eq!(seen, ids, "every id exactly once, any order");
        });
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.completed_ok, 8);
    }
}
