//! Execution traces: a per-firing event log with a text timeline renderer.
//!
//! Tracing is opt-in ([`crate::exec::run_traced`]) and has no cost on
//! ordinary runs.

use cf2df_dfg::{Dfg, OpId};

/// One operator firing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issue time.
    pub time: u64,
    /// The operator.
    pub op: OpId,
    /// The iteration tag, rendered (e.g. `root.L0[3]`).
    pub tag: String,
}

/// A full execution trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in issue order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing fired.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events grouped by time step.
    pub fn by_step(&self) -> Vec<(u64, Vec<&TraceEvent>)> {
        let mut out: Vec<(u64, Vec<&TraceEvent>)> = Vec::new();
        for e in &self.events {
            match out.last_mut() {
                Some((t, v)) if *t == e.time => v.push(e),
                _ => out.push((e.time, vec![e])),
            }
        }
        out
    }

    /// Render a compact text timeline: one line per time step listing the
    /// operators issued.
    pub fn timeline(&self, g: &Dfg) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (t, events) in self.by_step() {
            let ops: Vec<String> = events
                .iter()
                .map(|e| {
                    let label = g.label(e.op);
                    if label.is_empty() {
                        g.kind(e.op).mnemonic().to_string()
                    } else {
                        format!("{}[{}]", g.kind(e.op).mnemonic(), label)
                    }
                })
                .collect();
            let _ = writeln!(s, "t={t:<6} | {}", ops.join("  "));
        }
        s
    }

    /// Firings of a particular operator, as `(time, tag)` pairs — the
    /// per-instruction activity a hardware pipeline view would show.
    pub fn activity_of(&self, op: OpId) -> Vec<(u64, &str)> {
        self.events
            .iter()
            .filter(|e| e.op == op)
            .map(|e| (e.time, e.tag.as_str()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_traced, MachineConfig};
    use cf2df_cfg::{MemLayout, VarId, VarTable};
    use cf2df_dfg::graph::ArcKind;
    use cf2df_dfg::{OpKind, Port};

    fn tiny() -> (Dfg, MemLayout) {
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add_labeled(OpKind::Load { var: VarId(0) }, "x");
        let st = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(st, 0, 3);
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        g.connect(Port::new(ld, 1), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        (g, layout)
    }

    #[test]
    fn trace_records_every_firing() {
        let (g, layout) = tiny();
        let (out, trace) = run_traced(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(trace.len() as u64, out.stats.fired);
        // load at t=0, store at t=1, end at t=2.
        assert_eq!(trace.events[0].time, 0);
        assert_eq!(trace.events.last().unwrap().time, out.stats.makespan);
        assert!(trace.events.iter().all(|e| e.tag == "root"));
    }

    #[test]
    fn timeline_renders_one_line_per_step() {
        let (g, layout) = tiny();
        let (_, trace) = run_traced(&g, &layout, MachineConfig::unbounded()).unwrap();
        let tl = trace.timeline(&g);
        assert_eq!(tl.lines().count(), trace.by_step().len());
        assert!(tl.contains("load"));
        assert!(tl.contains("[x]"), "labels shown: {tl}");
    }

    #[test]
    fn activity_filters_by_op() {
        let (g, layout) = tiny();
        let (_, trace) = run_traced(&g, &layout, MachineConfig::unbounded()).unwrap();
        let ld = g
            .op_ids()
            .find(|&o| matches!(g.kind(o), OpKind::Load { .. }))
            .unwrap();
        assert_eq!(trace.activity_of(ld).len(), 1);
    }
}
