//! Iteration tags (activation contexts).
//!
//! Each loop iteration gets a distinct tag, standing in for the activation
//! frame Monsoon would allocate per iteration (§2.2). Tags form a tree:
//! the root tag is the outermost activation, and entering loop `l` at
//! iteration `i` under tag `t` produces the child tag `(t, l, i)`. Tokens
//! rendezvous only with tokens carrying the *same* tag, so different
//! iterations — and different loops — never interfere.

use crate::hash::FxHashMap;
use cf2df_cfg::LoopId;

/// A dense index identifying an iteration context.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u32);

impl TagId {
    /// The root (outermost) tag.
    pub const ROOT: TagId = TagId(0);

    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for TagId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[derive(Clone, Copy, Debug)]
struct Ctx {
    parent: TagId,
    loop_id: LoopId,
    iter: u32,
}

/// Interning table for iteration contexts. Interning guarantees that every
/// token line entering the same iteration of the same loop under the same
/// parent context receives the *same* tag, so their tokens rendezvous.
#[derive(Debug)]
pub struct TagTable {
    ctxs: Vec<Option<Ctx>>,
    /// Interner on the vendored integer hasher ([`crate::hash`]): the
    /// `(parent, loop, iter)` keys are small dense integers from the
    /// program itself, so SipHash's DoS resistance buys nothing here.
    intern: FxHashMap<(TagId, LoopId, u32), TagId>,
}

impl Default for TagTable {
    fn default() -> Self {
        Self::new()
    }
}

impl TagTable {
    /// A table containing only the root tag.
    pub fn new() -> TagTable {
        TagTable {
            ctxs: vec![None],
            intern: FxHashMap::default(),
        }
    }

    /// The tag for iteration `iter` of loop `loop_id` under `parent`, or
    /// `None` if the tag space (`u32` ids) is exhausted — the caller
    /// surfaces that as [`crate::exec::MachineError::TagSpaceExhausted`]
    /// rather than panicking mid-run.
    pub fn child(&mut self, parent: TagId, loop_id: LoopId, iter: u32) -> Option<TagId> {
        if let Some(&t) = self.intern.get(&(parent, loop_id, iter)) {
            return Some(t);
        }
        let t = TagId(u32::try_from(self.ctxs.len()).ok()?);
        self.ctxs.push(Some(Ctx {
            parent,
            loop_id,
            iter,
        }));
        self.intern.insert((parent, loop_id, iter), t);
        Some(t)
    }

    /// Decompose a tag into `(parent, loop, iteration)`; `None` for the
    /// root.
    pub fn info(&self, tag: TagId) -> Option<(TagId, LoopId, u32)> {
        self.ctxs[tag.index()].map(|c| (c.parent, c.loop_id, c.iter))
    }

    /// Nesting depth of a tag (root = 0).
    pub fn depth(&self, tag: TagId) -> u32 {
        let mut d = 0;
        let mut t = tag;
        while let Some((p, _, _)) = self.info(t) {
            d += 1;
            t = p;
        }
        d
    }

    /// Number of distinct tags created (including the root).
    pub fn len(&self) -> usize {
        self.ctxs.len()
    }

    /// Always false: the root tag always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Human-readable rendering, e.g. `root.L0[3].L1[0]`.
    pub fn render(&self, tag: TagId) -> String {
        match self.info(tag) {
            None => "root".to_owned(),
            Some((p, l, i)) => format!("{}.{:?}[{}]", self.render(p), l, i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_info() {
        let t = TagTable::new();
        assert_eq!(t.info(TagId::ROOT), None);
        assert_eq!(t.depth(TagId::ROOT), 0);
        assert_eq!(t.render(TagId::ROOT), "root");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn children_are_interned() {
        let mut t = TagTable::new();
        let a = t.child(TagId::ROOT, LoopId(0), 3).unwrap();
        let b = t.child(TagId::ROOT, LoopId(0), 3).unwrap();
        assert_eq!(a, b, "same (parent, loop, iter) must intern to same tag");
        let c = t.child(TagId::ROOT, LoopId(0), 4).unwrap();
        assert_ne!(a, c);
        let d = t.child(TagId::ROOT, LoopId(1), 3).unwrap();
        assert_ne!(a, d);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn nesting_and_render() {
        let mut t = TagTable::new();
        let outer = t.child(TagId::ROOT, LoopId(1), 2).unwrap();
        let inner = t.child(outer, LoopId(0), 0).unwrap();
        assert_eq!(t.depth(inner), 2);
        assert_eq!(t.info(inner), Some((outer, LoopId(0), 0)));
        assert_eq!(t.render(inner), "root.L1[2].L0[0]");
    }
}
