//! Iteration tags (activation contexts).
//!
//! Each loop iteration gets a distinct tag, standing in for the activation
//! frame Monsoon would allocate per iteration (§2.2). Tags form a tree:
//! the root tag is the outermost activation, and entering loop `l` at
//! iteration `i` under tag `t` produces the child tag `(t, l, i)`. Tokens
//! rendezvous only with tokens carrying the *same* tag, so different
//! iterations — and different loops — never interfere.

use crate::hash::FxHashMap;
use cf2df_cfg::LoopId;

/// A dense index identifying an iteration context.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u32);

impl TagId {
    /// The root (outermost) tag.
    pub const ROOT: TagId = TagId(0);

    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for TagId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The invocation/tag split of the 32-bit tag word, for executors that
/// multiplex several concurrent invocations of one graph onto a shared
/// worker pool ([`crate::serve`]). The high `inv_bits` of the packed
/// word name the invocation slot; the remaining low bits carry the
/// invocation-local [`TagId`]. The split is an *explicit reservation*:
/// each inflight invocation owns a disjoint slice of the packed space,
/// so one invocation's deep loop nest can exhaust only its own slice —
/// surfaced as a per-invocation
/// [`crate::exec::MachineError::TagSpaceExhausted`] — and rendezvous
/// keys from different invocations can never collide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagSplit {
    /// High bits of the packed word reserved for the invocation slot.
    inv_bits: u32,
}

impl TagSplit {
    /// The trivial split: no invocation bits, the whole word is the tag
    /// (single-invocation executors).
    pub const NONE: TagSplit = TagSplit { inv_bits: 0 };

    /// The narrowest split whose invocation field can name
    /// `max_inflight` concurrent slots (`ceil(log2(max_inflight))`
    /// bits). At least 1 bit is reserved whenever `max_inflight > 1`.
    pub fn for_inflight(max_inflight: usize) -> TagSplit {
        let n = max_inflight.clamp(1, 1 << 16) as u32;
        TagSplit {
            inv_bits: 32 - (n - 1).leading_zeros(),
        }
    }

    /// Number of invocation slots the split can name.
    pub fn slots(self) -> u32 {
        1 << self.inv_bits
    }

    /// Largest tag id representable in the per-invocation slice: packing
    /// a tag at or below this cap can never spill into the invocation
    /// field. The single-invocation split keeps the type's full range.
    pub fn tag_cap(self) -> u32 {
        if self.inv_bits == 0 {
            u32::MAX
        } else {
            (1u32 << (32 - self.inv_bits)) - 1
        }
    }

    /// Pack an invocation slot and an invocation-local tag into one
    /// word. Callers keep `tag.0 <= tag_cap()` (the interner cap) and
    /// `inv < slots()`; debug builds assert it.
    #[inline]
    pub fn pack(self, inv: u32, tag: TagId) -> u32 {
        debug_assert!(inv < self.slots());
        debug_assert!(tag.0 <= self.tag_cap());
        if self.inv_bits == 0 {
            tag.0
        } else {
            (inv << (32 - self.inv_bits)) | tag.0
        }
    }

    /// Unpack a word into `(invocation slot, local tag)` — the exact
    /// inverse of [`TagSplit::pack`].
    #[inline]
    pub fn unpack(self, packed: u32) -> (u32, TagId) {
        if self.inv_bits == 0 {
            (0, TagId(packed))
        } else {
            (packed >> (32 - self.inv_bits), TagId(packed & self.tag_cap()))
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Ctx {
    parent: TagId,
    loop_id: LoopId,
    iter: u32,
}

/// Interning table for iteration contexts. Interning guarantees that every
/// token line entering the same iteration of the same loop under the same
/// parent context receives the *same* tag, so their tokens rendezvous.
#[derive(Debug)]
pub struct TagTable {
    ctxs: Vec<Option<Ctx>>,
    /// Interner on the vendored integer hasher ([`crate::hash`]): the
    /// `(parent, loop, iter)` keys are small dense integers from the
    /// program itself, so SipHash's DoS resistance buys nothing here.
    intern: FxHashMap<(TagId, LoopId, u32), TagId>,
}

impl Default for TagTable {
    fn default() -> Self {
        Self::new()
    }
}

impl TagTable {
    /// A table containing only the root tag.
    pub fn new() -> TagTable {
        TagTable {
            ctxs: vec![None],
            intern: FxHashMap::default(),
        }
    }

    /// The tag for iteration `iter` of loop `loop_id` under `parent`, or
    /// `None` if the tag space (`u32` ids) is exhausted — the caller
    /// surfaces that as [`crate::exec::MachineError::TagSpaceExhausted`]
    /// rather than panicking mid-run.
    pub fn child(&mut self, parent: TagId, loop_id: LoopId, iter: u32) -> Option<TagId> {
        if let Some(&t) = self.intern.get(&(parent, loop_id, iter)) {
            return Some(t);
        }
        let t = TagId(u32::try_from(self.ctxs.len()).ok()?);
        self.ctxs.push(Some(Ctx {
            parent,
            loop_id,
            iter,
        }));
        self.intern.insert((parent, loop_id, iter), t);
        Some(t)
    }

    /// Decompose a tag into `(parent, loop, iteration)`; `None` for the
    /// root.
    pub fn info(&self, tag: TagId) -> Option<(TagId, LoopId, u32)> {
        self.ctxs[tag.index()].map(|c| (c.parent, c.loop_id, c.iter))
    }

    /// Nesting depth of a tag (root = 0).
    pub fn depth(&self, tag: TagId) -> u32 {
        let mut d = 0;
        let mut t = tag;
        while let Some((p, _, _)) = self.info(t) {
            d += 1;
            t = p;
        }
        d
    }

    /// Number of distinct tags created (including the root).
    pub fn len(&self) -> usize {
        self.ctxs.len()
    }

    /// Always false: the root tag always exists.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Human-readable rendering, e.g. `root.L0[3].L1[0]`.
    pub fn render(&self, tag: TagId) -> String {
        match self.info(tag) {
            None => "root".to_owned(),
            Some((p, l, i)) => format!("{}.{:?}[{}]", self.render(p), l, i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_info() {
        let t = TagTable::new();
        assert_eq!(t.info(TagId::ROOT), None);
        assert_eq!(t.depth(TagId::ROOT), 0);
        assert_eq!(t.render(TagId::ROOT), "root");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn children_are_interned() {
        let mut t = TagTable::new();
        let a = t.child(TagId::ROOT, LoopId(0), 3).unwrap();
        let b = t.child(TagId::ROOT, LoopId(0), 3).unwrap();
        assert_eq!(a, b, "same (parent, loop, iter) must intern to same tag");
        let c = t.child(TagId::ROOT, LoopId(0), 4).unwrap();
        assert_ne!(a, c);
        let d = t.child(TagId::ROOT, LoopId(1), 3).unwrap();
        assert_ne!(a, d);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn tag_split_reserves_disjoint_slices() {
        // Trivial split: the whole word is the tag.
        assert_eq!(TagSplit::NONE.slots(), 1);
        assert_eq!(TagSplit::NONE.tag_cap(), u32::MAX);
        assert_eq!(TagSplit::NONE.pack(0, TagId(7)), 7);
        assert_eq!(TagSplit::NONE.unpack(7), (0, TagId(7)));
        // for_inflight rounds up to the next power of two.
        assert_eq!(TagSplit::for_inflight(1), TagSplit::NONE);
        assert_eq!(TagSplit::for_inflight(2).slots(), 2);
        assert_eq!(TagSplit::for_inflight(3).slots(), 4);
        assert_eq!(TagSplit::for_inflight(4).slots(), 4);
        assert_eq!(TagSplit::for_inflight(16).slots(), 16);
        let s = TagSplit::for_inflight(4);
        assert_eq!(s.tag_cap(), (1 << 30) - 1);
        // Round-trip, and distinct invocations never collide even on
        // the same local tag.
        for inv in 0..s.slots() {
            for tag in [0u32, 1, 42, s.tag_cap()] {
                let packed = s.pack(inv, TagId(tag));
                assert_eq!(s.unpack(packed), (inv, TagId(tag)));
            }
        }
        assert_ne!(s.pack(0, TagId(5)), s.pack(1, TagId(5)));
        // The reserved slices partition the word: an invocation's slice
        // ends exactly where the next one begins.
        assert_eq!(s.pack(0, TagId(s.tag_cap())) + 1, s.pack(1, TagId(0)));
    }

    #[test]
    fn nesting_and_render() {
        let mut t = TagTable::new();
        let outer = t.child(TagId::ROOT, LoopId(1), 2).unwrap();
        let inner = t.child(outer, LoopId(0), 0).unwrap();
        assert_eq!(t.depth(inner), 2);
        assert_eq!(t.info(inner), Some((outer, LoopId(0), 0)));
        assert_eq!(t.render(inner), "root.L1[2].L0[0]");
    }
}
