//! The sequential baseline: a program-counter interpreter of control-flow
//! graphs.
//!
//! This is the execution model the paper contrasts with — "a simulation of
//! von Neumann instruction sequencing" — used both as the semantic oracle
//! (every translation schema must compute the same final memory) and as the
//! parallelism-1 baseline in the experiments. Its cost model mirrors the
//! dataflow translation's operation counts: one load per distinct scalar
//! read per statement, one load per array-element read, one ALU operation
//! per expression operator, one store per assignment, one decision per
//! fork.

use crate::exec::MachineConfig;
use crate::memory::{MemError, Memory};
use crate::metrics::ExecStats;
use cf2df_cfg::{Cfg, Expr, LValue, MemLayout, NodeId, Stmt};

/// Sequential execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VnError {
    /// Memory fault.
    Memory(MemError),
    /// Statement budget exhausted (non-terminating program).
    FuelExhausted,
}

impl std::fmt::Display for VnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VnError::Memory(e) => write!(f, "memory fault: {e}"),
            VnError::FuelExhausted => write!(f, "fuel exhausted"),
        }
    }
}

impl std::error::Error for VnError {}

impl From<MemError> for VnError {
    fn from(e: MemError) -> Self {
        VnError::Memory(e)
    }
}

/// Result of a sequential run.
#[derive(Clone, Debug)]
pub struct VnOutcome {
    /// Final memory, indexed by absolute cell address.
    pub memory: Vec<i64>,
    /// Metrics under the same cost model as the dataflow machine
    /// (`makespan` = total sequential time; parallelism ≈ 1).
    pub stats: ExecStats,
    /// Statements executed.
    pub statements: u64,
}

struct Interp<'a> {
    cfg: &'a Cfg,
    layout: &'a MemLayout,
    mem: Memory<()>,
    /// Element loads performed in the current statement.
    element_loads: u64,
    /// ALU operations performed in the current statement.
    alu_ops: u64,
}

impl<'a> Interp<'a> {
    fn eval(&mut self, e: &Expr) -> Result<i64, VnError> {
        Ok(match e {
            Expr::Const(c) => *c,
            Expr::Var(v) => self.mem.read_scalar(self.layout, *v),
            Expr::Index(v, idx) => {
                let i = self.eval(idx)?;
                self.element_loads += 1;
                self.mem.read_element(self.layout, *v, i)?
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner)?;
                self.alu_ops += 1;
                op.eval(v)
            }
            Expr::Binary(op, l, r) => {
                let lv = self.eval(l)?;
                let rv = self.eval(r)?;
                self.alu_ops += 1;
                op.eval(lv, rv)
            }
        })
    }
}

/// Interpret the CFG sequentially. `config` supplies the cost model
/// (latencies) and fuel; `processors` is ignored.
pub fn interpret(
    cfg: &Cfg,
    layout: &MemLayout,
    config: &MachineConfig,
) -> Result<VnOutcome, VnError> {
    let mut it = Interp {
        cfg,
        layout,
        mem: Memory::new(layout),
        element_loads: 0,
        alu_ops: 0,
    };
    let mut stats = ExecStats::default();
    let mut statements = 0u64;
    let mut time = 0u64;
    let mut pc: NodeId = cfg.entry();
    let end = cfg.end();

    while pc != end {
        statements += 1;
        if statements > config.fuel {
            return Err(VnError::FuelExhausted);
        }
        it.element_loads = 0;
        it.alu_ops = 0;
        let next = match it.cfg.stmt(pc) {
            Stmt::Start => cfg.entry(),
            Stmt::End => unreachable!("loop guard"),
            Stmt::Join | Stmt::LoopEntry { .. } | Stmt::LoopExit { .. } => cfg.succs(pc)[0],
            Stmt::Assign { lhs, rhs } => {
                // Distinct scalar reads cost one load each (the dataflow
                // read block loads each referenced variable once).
                let scalar_reads = rhs
                    .vars()
                    .iter()
                    .chain(lhs.read_vars().iter())
                    .filter(|v| {
                        matches!(it.cfg.vars.kind(**v), cf2df_cfg::VarKind::Scalar)
                    })
                    .collect::<std::collections::BTreeSet<_>>()
                    .len() as u64;
                let value = it.eval(rhs)?;
                match lhs {
                    LValue::Var(v) => it.mem.write_scalar(layout, *v, value),
                    LValue::Index(v, idx) => {
                        let i = it.eval(idx)?;
                        it.mem.write_element(layout, *v, i, value)?;
                    }
                }
                let loads = scalar_reads + it.element_loads;
                stats.fired += loads + it.alu_ops + 1; // +1 store
                time += config.mem_latency * (loads + 1) + config.op_latency * it.alu_ops;
                cfg.succs(pc)[0]
            }
            Stmt::Branch { pred } => {
                let scalar_reads = pred
                    .vars()
                    .iter()
                    .filter(|v| {
                        matches!(it.cfg.vars.kind(**v), cf2df_cfg::VarKind::Scalar)
                    })
                    .count() as u64;
                let taken = it.eval(pred)? != 0;
                let loads = scalar_reads + it.element_loads;
                stats.fired += loads + it.alu_ops + 1; // +1 branch decision
                time += config.mem_latency * loads + config.op_latency * (it.alu_ops + 1);
                if taken {
                    cfg.succs(pc)[0]
                } else {
                    cfg.succs(pc)[1]
                }
            }
            Stmt::Case { selector } => {
                let scalar_reads = selector
                    .vars()
                    .iter()
                    .filter(|v| {
                        matches!(it.cfg.vars.kind(**v), cf2df_cfg::VarKind::Scalar)
                    })
                    .count() as u64;
                let sel = it.eval(selector)?;
                let loads = scalar_reads + it.element_loads;
                stats.fired += loads + it.alu_ops + 1;
                time += config.mem_latency * loads + config.op_latency * (it.alu_ops + 1);
                let k = cfg.succs(pc).len();
                let idx = if sel >= 0 && (sel as usize) < k - 1 {
                    sel as usize
                } else {
                    k - 1
                };
                cfg.succs(pc)[idx]
            }
        };
        pc = next;
    }

    stats.makespan = time;
    stats.mem_reads = it.mem.reads();
    stats.mem_writes = it.mem.writes();
    stats.max_parallelism = 1;
    Ok(VnOutcome {
        memory: it.mem.cells().to_vec(),
        stats,
        statements,
    })
}

/// Evaluate an expression against a memory snapshot (testing helper).
pub fn eval_in(
    cfg: &Cfg,
    layout: &MemLayout,
    memory: &[i64],
    e: &Expr,
) -> Result<i64, VnError> {
    let mut mem: Memory<()> = Memory::new(layout);
    mem.copy_cells_from(memory);
    let mut it = Interp {
        cfg,
        layout,
        mem,
        element_loads: 0,
        alu_ops: 0,
    };
    it.eval(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_lang::parse_to_cfg;

    fn run_src(src: &str) -> (cf2df_cfg::Cfg, MemLayout, VnOutcome) {
        let parsed = parse_to_cfg(src).unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let out = interpret(&parsed.cfg, &layout, &MachineConfig::default()).unwrap();
        (parsed.cfg, layout, out)
    }

    fn var(cfg: &cf2df_cfg::Cfg, layout: &MemLayout, out: &VnOutcome, name: &str) -> i64 {
        out.memory[layout.base(cfg.vars.lookup(name).unwrap()) as usize]
    }

    #[test]
    fn straight_line_arithmetic() {
        let (cfg, layout, out) = run_src("x := 3; y := x * x + 1;");
        assert_eq!(var(&cfg, &layout, &out, "x"), 3);
        assert_eq!(var(&cfg, &layout, &out, "y"), 10);
        assert_eq!(out.statements, 2);
    }

    #[test]
    fn running_example_terminates_with_x5_y5() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::RUNNING_EXAMPLE);
        // x: 0→1→2→3→4→5 (loop while x<5); y set to x+1 before each incr.
        assert_eq!(var(&cfg, &layout, &out, "x"), 5);
        assert_eq!(var(&cfg, &layout, &out, "y"), 5);
    }

    #[test]
    fn gcd_and_fib() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::GCD);
        assert_eq!(var(&cfg, &layout, &out, "a"), 21); // gcd(252, 105)
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::FIB);
        assert_eq!(var(&cfg, &layout, &out, "b"), 987); // fib(16)
    }

    #[test]
    fn arrays_and_reduction() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::REDUCTION);
        // sum of squares 0..15 = 1240.
        assert_eq!(var(&cfg, &layout, &out, "s"), 1240);
    }

    #[test]
    fn array_loop_stores_each_element() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::ARRAY_LOOP);
        let x = cfg.vars.lookup("x").unwrap();
        for i in 1..=10 {
            assert_eq!(out.memory[layout.element(x, i).unwrap() as usize], 1);
        }
        assert_eq!(out.memory[layout.element(x, 0).unwrap() as usize], 0);
    }

    #[test]
    fn collatz_steps() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::COLLATZ);
        assert_eq!(var(&cfg, &layout, &out, "steps"), 111); // collatz(27)
        assert_eq!(var(&cfg, &layout, &out, "n"), 1);
    }

    #[test]
    fn bubble_sort_sorts() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::BUBBLE_SORT);
        let v = cfg.vars.lookup("v").unwrap();
        let sorted: Vec<i64> = (0..8)
            .map(|i| out.memory[layout.element(v, i).unwrap() as usize])
            .collect();
        assert_eq!(sorted, vec![0, 1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn matmul_computes_products() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::MATMUL);
        let mc = cfg.vars.lookup("mc").unwrap();
        // ma = [[1,2,3],[4,5,6],[7,8,9]], mb = [[9,8,7],[6,5,4],[3,2,1]].
        // (ma*mb)[0][0] = 1*9 + 2*6 + 3*3 = 30.
        assert_eq!(out.memory[layout.element(mc, 0).unwrap() as usize], 30);
        // (ma*mb)[2][2] = 7*7 + 8*4 + 9*1 = 90.
        assert_eq!(out.memory[layout.element(mc, 8).unwrap() as usize], 90);
    }

    #[test]
    fn sieve_counts_primes_below_20() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::SIEVE);
        // 2, 3, 5, 7, 11, 13, 17, 19.
        assert_eq!(var(&cfg, &layout, &out, "primes"), 8);
    }

    #[test]
    fn quicksort_sorts() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::QUICKSORT);
        let v = cfg.vars.lookup("v").unwrap();
        let got: Vec<i64> = (0..12)
            .map(|i| out.memory[layout.element(v, i).unwrap() as usize])
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 7, 8, 9, 11, 13, 14]);
    }

    #[test]
    fn vm_dispatch_interprets_bytecode() {
        // ((0 + 5) * 3 - 4 + 9) * 2 = 40.
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::VM_DISPATCH);
        assert_eq!(var(&cfg, &layout, &out, "acc"), 40);
        assert_eq!(var(&cfg, &layout, &out, "pc"), 5);
    }

    #[test]
    fn binsearch_finds_target() {
        let (cfg, layout, out) = run_src(cf2df_lang::corpus::BINSEARCH);
        assert_eq!(var(&cfg, &layout, &out, "found"), 11); // v[11] = 33
    }

    #[test]
    fn fuel_stops_runaway() {
        let parsed = parse_to_cfg("x := 0; while x < 100 do { x := x + 1; }").unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let cfgc = MachineConfig {
            fuel: 10,
            ..MachineConfig::default()
        };
        assert_eq!(
            interpret(&parsed.cfg, &layout, &cfgc).unwrap_err(),
            VnError::FuelExhausted
        );
    }

    #[test]
    fn out_of_bounds_faults() {
        let parsed = parse_to_cfg("array a[2]; a[5] := 1;").unwrap();
        let layout = MemLayout::distinct(&parsed.cfg.vars);
        let err = interpret(&parsed.cfg, &layout, &MachineConfig::default()).unwrap_err();
        assert!(matches!(err, VnError::Memory(MemError::OutOfBounds { .. })));
    }

    #[test]
    fn aliased_layout_changes_result() {
        let src = "alias p ~ q; p := 1; q := 2; r := p;";
        let parsed = parse_to_cfg(src).unwrap();
        let p = parsed.cfg.vars.lookup("p").unwrap();
        let q = parsed.cfg.vars.lookup("q").unwrap();
        let r = parsed.cfg.vars.lookup("r").unwrap();

        let distinct = MemLayout::distinct(&parsed.cfg.vars);
        let out1 = interpret(&parsed.cfg, &distinct, &MachineConfig::default()).unwrap();
        assert_eq!(out1.memory[distinct.base(r) as usize], 1);

        let shared = MemLayout::with_binding(&parsed.cfg.vars, &[vec![p, q]]);
        let out2 = interpret(&parsed.cfg, &shared, &MachineConfig::default()).unwrap();
        assert_eq!(out2.memory[shared.base(r) as usize], 2, "p and q share a cell");
    }

    #[test]
    fn cost_model_counts_work() {
        let (_, _, out) = run_src("x := 1; y := x + x;");
        // stmt1: 0 loads, 0 alu, 1 store = 1 op.
        // stmt2: 1 distinct load (x), 1 alu, 1 store = 3 ops.
        assert_eq!(out.stats.fired, 4);
        assert_eq!(out.stats.max_parallelism, 1);
        // time: stmt1 = 1 store; stmt2 = 1 load + 1 alu + 1 store = 3.
        assert_eq!(out.stats.makespan, 4);
    }
}
