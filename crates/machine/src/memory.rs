//! The machine's data memory.
//!
//! Ordinary cells are a *multiply-written* store (the paper's §2.2
//! extension of the dataflow memory model): locations may be written any
//! number of times, and the dataflow graph's access tokens are responsible
//! for ordering. I-structure cells (§6.3) are write-once with deferred
//! reads.

use cf2df_cfg::{MemLayout, VarId};

/// A pending I-structure read, recorded while the cell is empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeferredRead<T> {
    /// Caller-supplied continuation data (e.g. which operator to resume).
    pub ctx: T,
}

/// One I-structure cell.
#[derive(Clone, Debug, Default)]
enum IstCell<T> {
    #[default]
    Empty,
    Full(i64),
    /// Empty with readers waiting.
    Deferred(Vec<DeferredRead<T>>),
}

/// Machine memory: ordinary cells plus an I-structure overlay.
///
/// The type parameter `T` is the continuation payload stored with deferred
/// I-structure reads (the simulator uses `(OpId, TagId)`).
#[derive(Clone, Debug)]
pub struct Memory<T> {
    cells: Vec<i64>,
    ist: Vec<IstCell<T>>,
    reads: u64,
    writes: u64,
}

/// Failure modes of memory operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Array index outside the variable's extent.
    OutOfBounds {
        /// The variable accessed.
        var: VarId,
        /// The offending index.
        index: i64,
    },
    /// An I-structure cell written twice.
    IStructureRewrite {
        /// The absolute cell address.
        addr: u32,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfBounds { var, index } => {
                write!(f, "index {index} out of bounds for {var:?}")
            }
            MemError::IStructureRewrite { addr } => {
                write!(f, "I-structure cell {addr} written twice")
            }
        }
    }
}

impl std::error::Error for MemError {}

impl<T> Memory<T> {
    /// Zero-initialized memory sized for a layout.
    pub fn new(layout: &MemLayout) -> Memory<T> {
        let n = layout.total_cells() as usize;
        Memory {
            cells: vec![0; n],
            ist: std::iter::repeat_with(IstCell::default).take(n).collect(),
            reads: 0,
            writes: 0,
        }
    }

    /// Read a scalar variable.
    pub fn read_scalar(&mut self, layout: &MemLayout, var: VarId) -> i64 {
        self.reads += 1;
        self.cells[layout.base(var) as usize]
    }

    /// Write a scalar variable.
    pub fn write_scalar(&mut self, layout: &MemLayout, var: VarId, value: i64) {
        self.writes += 1;
        self.cells[layout.base(var) as usize] = value;
    }

    /// Read an array element (bounds-checked against the variable's extent).
    pub fn read_element(
        &mut self,
        layout: &MemLayout,
        var: VarId,
        index: i64,
    ) -> Result<i64, MemError> {
        let addr = layout
            .element(var, index)
            .ok_or(MemError::OutOfBounds { var, index })?;
        self.reads += 1;
        Ok(self.cells[addr as usize])
    }

    /// Write an array element.
    pub fn write_element(
        &mut self,
        layout: &MemLayout,
        var: VarId,
        index: i64,
        value: i64,
    ) -> Result<(), MemError> {
        let addr = layout
            .element(var, index)
            .ok_or(MemError::OutOfBounds { var, index })?;
        self.writes += 1;
        self.cells[addr as usize] = value;
        Ok(())
    }

    /// I-structure read: returns the value if the cell is full, otherwise
    /// records the continuation and returns `None` (the read is deferred
    /// until the matching write).
    pub fn ist_read(
        &mut self,
        layout: &MemLayout,
        var: VarId,
        index: i64,
        ctx: T,
    ) -> Result<Option<i64>, MemError> {
        let addr = layout
            .element(var, index)
            .ok_or(MemError::OutOfBounds { var, index })? as usize;
        self.reads += 1;
        match &mut self.ist[addr] {
            IstCell::Full(v) => Ok(Some(*v)),
            IstCell::Empty => {
                self.ist[addr] = IstCell::Deferred(vec![DeferredRead { ctx }]);
                Ok(None)
            }
            IstCell::Deferred(q) => {
                q.push(DeferredRead { ctx });
                Ok(None)
            }
        }
    }

    /// I-structure write: fills the cell and returns any deferred readers
    /// (with the stored value). Writing a full cell is an error.
    pub fn ist_write(
        &mut self,
        layout: &MemLayout,
        var: VarId,
        index: i64,
        value: i64,
    ) -> Result<Vec<DeferredRead<T>>, MemError> {
        let addr = layout
            .element(var, index)
            .ok_or(MemError::OutOfBounds { var, index })? as usize;
        self.writes += 1;
        match std::mem::take(&mut self.ist[addr]) {
            IstCell::Full(_) => Err(MemError::IStructureRewrite { addr: addr as u32 }),
            IstCell::Empty => {
                self.ist[addr] = IstCell::Full(value);
                Ok(Vec::new())
            }
            IstCell::Deferred(q) => {
                self.ist[addr] = IstCell::Full(value);
                Ok(q)
            }
        }
    }

    /// Count of I-structure cells still empty or deferred.
    pub fn ist_unfilled(&self) -> usize {
        self.ist
            .iter()
            .filter(|c| !matches!(c, IstCell::Full(_)))
            .count()
    }

    /// Snapshot of ordinary memory.
    pub fn cells(&self) -> &[i64] {
        &self.cells
    }

    /// Overwrite ordinary cells from a snapshot (testing helper; does not
    /// count as writes).
    pub fn copy_cells_from(&mut self, snapshot: &[i64]) {
        let n = self.cells.len().min(snapshot.len());
        self.cells[..n].copy_from_slice(&snapshot[..n]);
    }

    /// Snapshot of I-structure memory (empty cells read as 0).
    pub fn ist_cells(&self) -> Vec<i64> {
        self.ist
            .iter()
            .map(|c| match c {
                IstCell::Full(v) => *v,
                _ => 0,
            })
            .collect()
    }

    /// Total reads issued (ordinary + I-structure).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::VarTable;

    fn setup() -> (MemLayout, VarId, VarId) {
        let mut t = VarTable::new();
        let x = t.scalar("x");
        let a = t.array("a", 4);
        (MemLayout::distinct(&t), x, a)
    }

    #[test]
    fn scalar_read_write() {
        let (l, x, _) = setup();
        let mut m: Memory<()> = Memory::new(&l);
        assert_eq!(m.read_scalar(&l, x), 0);
        m.write_scalar(&l, x, 7);
        assert_eq!(m.read_scalar(&l, x), 7);
        assert_eq!(m.reads(), 2);
        assert_eq!(m.writes(), 1);
    }

    #[test]
    fn element_bounds_checked() {
        let (l, _, a) = setup();
        let mut m: Memory<()> = Memory::new(&l);
        m.write_element(&l, a, 3, 9).unwrap();
        assert_eq!(m.read_element(&l, a, 3).unwrap(), 9);
        assert_eq!(
            m.read_element(&l, a, 4),
            Err(MemError::OutOfBounds { var: a, index: 4 })
        );
        assert!(m.write_element(&l, a, -1, 0).is_err());
    }

    #[test]
    fn istructure_defers_early_reads() {
        let (l, _, a) = setup();
        let mut m: Memory<u32> = Memory::new(&l);
        // Read before write: deferred.
        assert_eq!(m.ist_read(&l, a, 2, 11).unwrap(), None);
        assert_eq!(m.ist_read(&l, a, 2, 22).unwrap(), None);
        assert_eq!(m.ist_unfilled(), l.total_cells() as usize);
        // Write releases both deferred readers.
        let released = m.ist_write(&l, a, 2, 5).unwrap();
        assert_eq!(released.len(), 2);
        assert_eq!(released[0].ctx, 11);
        assert_eq!(released[1].ctx, 22);
        // Subsequent reads see the value immediately.
        assert_eq!(m.ist_read(&l, a, 2, 33).unwrap(), Some(5));
        // Rewrite is an error.
        assert!(matches!(
            m.ist_write(&l, a, 2, 6),
            Err(MemError::IStructureRewrite { .. })
        ));
    }

    #[test]
    fn ist_snapshot_reads_empty_as_zero() {
        let (l, _, a) = setup();
        let mut m: Memory<()> = Memory::new(&l);
        m.ist_write(&l, a, 1, 42).unwrap();
        let snap = m.ist_cells();
        assert_eq!(snap[l.element(a, 1).unwrap() as usize], 42);
        assert_eq!(snap[l.element(a, 0).unwrap() as usize], 0);
    }
}
