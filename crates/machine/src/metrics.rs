//! Execution metrics: the quantities the paper's parallelism claims are
//! about.
//!
//! With unbounded processors and unit latencies, `makespan` is the dataflow
//! graph's *critical path* and `avg_parallelism = fired / makespan` is the
//! parallelism the graph exposes — the paper's central measure of how much
//! a translation schema "exploits fine-grain parallelism across
//! statements".

/// Metrics gathered over one execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Operators fired.
    pub fired: u64,
    /// Memory reads issued (ordinary + I-structure).
    pub mem_reads: u64,
    /// Memory writes issued.
    pub mem_writes: u64,
    /// Time at which `End` fired (the makespan; with unbounded processors,
    /// the critical path).
    pub makespan: u64,
    /// Operators issued per time step, up to a configurable cap.
    pub profile: Vec<u32>,
    /// Maximum operators issued in any single step.
    pub max_parallelism: u32,
    /// Token collisions observed (only nonzero when collisions are
    /// configured non-fatal).
    pub collisions: u64,
    /// Tokens still pending (in rendezvous slots or in flight) when `End`
    /// fired. A clean translation drains to zero.
    pub leftover_tokens: u64,
    /// I-structure reads that had to be deferred.
    pub deferred_reads: u64,
    /// Distinct iteration tags created.
    pub tags_created: u64,
    /// High-water mark of occupied rendezvous slots — the machine's
    /// waiting-matching (frame memory) pressure, a first-order hardware
    /// cost on explicit-token-store machines like Monsoon.
    pub max_pending_slots: u64,
}

impl ExecStats {
    /// Average parallelism: operators fired per time step.
    pub fn avg_parallelism(&self) -> f64 {
        if self.makespan == 0 {
            self.fired as f64
        } else {
            self.fired as f64 / self.makespan as f64
        }
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "fired={} makespan={} avg_par={:.2} max_par={} reads={} writes={} leftover={}",
            self.fired,
            self.makespan,
            self.avg_parallelism(),
            self.max_parallelism,
            self.mem_reads,
            self.mem_writes,
            self.leftover_tokens
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_parallelism_guards_zero_makespan() {
        let s = ExecStats {
            fired: 5,
            makespan: 0,
            ..Default::default()
        };
        assert_eq!(s.avg_parallelism(), 5.0);
        let s2 = ExecStats {
            fired: 10,
            makespan: 4,
            ..Default::default()
        };
        assert_eq!(s2.avg_parallelism(), 2.5);
        assert!(s2.summary().contains("avg_par=2.50"));
    }
}
