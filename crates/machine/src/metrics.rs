//! Execution metrics: the quantities the paper's parallelism claims are
//! about.
//!
//! With unbounded processors and unit latencies, `makespan` is the dataflow
//! graph's *critical path* and `avg_parallelism = fired / makespan` is the
//! parallelism the graph exposes — the paper's central measure of how much
//! a translation schema "exploits fine-grain parallelism across
//! statements".

/// Metrics gathered over one execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Operators fired.
    pub fired: u64,
    /// Memory reads issued (ordinary + I-structure).
    pub mem_reads: u64,
    /// Memory writes issued.
    pub mem_writes: u64,
    /// Time at which `End` fired (the makespan; with unbounded processors,
    /// the critical path).
    pub makespan: u64,
    /// Operators issued per time step, up to a configurable cap.
    pub profile: Vec<u32>,
    /// Maximum operators issued in any single step.
    pub max_parallelism: u32,
    /// Token collisions observed (only nonzero when collisions are
    /// configured non-fatal).
    pub collisions: u64,
    /// Tokens still pending (in rendezvous slots or in flight) when `End`
    /// fired. A clean translation drains to zero.
    pub leftover_tokens: u64,
    /// I-structure reads that had to be deferred.
    pub deferred_reads: u64,
    /// Distinct iteration tags created.
    pub tags_created: u64,
    /// High-water mark of occupied rendezvous slots — the machine's
    /// waiting-matching (frame memory) pressure, a first-order hardware
    /// cost on explicit-token-store machines like Monsoon.
    pub max_pending_slots: u64,
    /// Compound `Macro` operator firings (each counts once in `fired`).
    pub macro_fires: u64,
    /// Operators whose individual firings were elided by macro-op fusion:
    /// each macro firing of an n-step micro-program adds n−1. Adding this
    /// back to `fired` recovers the unfused firing count.
    pub ops_elided: u64,
}

impl ExecStats {
    /// Average parallelism: operators fired per time step.
    pub fn avg_parallelism(&self) -> f64 {
        if self.makespan == 0 {
            self.fired as f64
        } else {
            self.fired as f64 / self.makespan as f64
        }
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "fired={} makespan={} avg_par={:.2} max_par={} reads={} writes={} leftover={} macro={}/{}",
            self.fired,
            self.makespan,
            self.avg_parallelism(),
            self.max_parallelism,
            self.mem_reads,
            self.mem_writes,
            self.leftover_tokens,
            self.macro_fires,
            self.ops_elided
        )
    }
}

/// Per-worker scheduler counters, collected by [`crate::scheduler`] with
/// plain (thread-local) arithmetic — always on, no atomics on the hot
/// path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker fully processed. For the threaded executor this
    /// includes tokens consumed by the worker-local rendezvous fast path
    /// (two per [`WorkerStats::fast_path`] join), which never transit a
    /// run queue.
    pub processed: u64,
    /// Pops from the worker's own run queue (the fast path).
    pub local_pops: u64,
    /// Tasks taken from the global injector.
    pub injector_hits: u64,
    /// Tasks stolen from a sibling's queue (tasks, not steal operations —
    /// a single steal-half grabs many).
    pub steals: u64,
    /// Idle episodes in which the worker blocked on the condvar.
    pub parks: u64,
    /// Parked episodes that ended because work appeared (as opposed to
    /// shutdown).
    pub unparks: u64,
    /// Batches of tasks taken from the queues (each batch is one
    /// synchronization, covering up to the scheduler's batch size in
    /// tasks).
    pub batches: u64,
    /// Two-input operator firings completed through the worker-local
    /// same-batch rendezvous fast path, bypassing the sharded global
    /// slot table. Filled in by the executor, not the scheduler.
    pub fast_path: u64,
    /// Fault-injected worker-local delays slept ([`crate::chaos`]);
    /// zero on ordinary runs.
    pub chaos_delays: u64,
    /// Batches for which fault injection forced this worker onto the
    /// injector/steal path ahead of its own queue; zero on ordinary
    /// runs.
    pub chaos_forced_steals: u64,
}

/// Metrics of one threaded-executor run ([`crate::parallel::run_threaded`]),
/// surfaced in [`crate::parallel::ParOutcome`]. All counters are cheap
/// relaxed atomics or thread-local tallies — they are always on.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParMetrics {
    /// Per-worker scheduler counters, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Total tokens processed (sum of the per-worker `processed`).
    pub tokens_processed: u64,
    /// Tokens that rendezvoused into a partially-filled slot without
    /// completing it — in the sharded global table or in a worker-local
    /// fast-path pair (one per fast-path join). On a clean run,
    /// `tokens_processed == fired + merged`.
    pub merged: u64,
    /// Two-input operator firings completed entirely inside one worker's
    /// batch: both input tokens were produced by the same worker in the
    /// same batch and were joined locally, never touching a run queue or
    /// the sharded rendezvous table. Each such join counts two tokens
    /// into [`ParMetrics::tokens_processed`] and one into
    /// [`ParMetrics::merged`], so the accounting invariant holds.
    pub fast_path_fires: u64,
    /// High-water mark of simultaneously occupied rendezvous slots across
    /// the whole table — the waiting-matching (frame memory) pressure,
    /// the parallel analogue of [`ExecStats::max_pending_slots`].
    pub max_pending_slots: u64,
    /// Per-shard high-water marks of the rendezvous-slot table.
    pub slot_shard_high_water: Vec<u64>,
    /// Distinct iteration tags interned (tag-interner occupancy).
    pub tags_created: u64,
    /// I-structure reads that arrived before their write and were
    /// deferred.
    pub deferred_reads: u64,
    /// Peak number of simultaneously outstanding deferred reads.
    pub deferred_read_peak: u64,
    /// Compound `Macro` operator firings across all workers.
    pub macro_fires: u64,
    /// Operator firings elided by macro-op fusion (n−1 per firing of an
    /// n-step macro); `fired + ops_elided` recovers the unfused count.
    pub ops_elided: u64,
    /// Faults actually injected by the chaos plan (all zero on
    /// ordinary runs — asserted by the bench harness).
    pub chaos: crate::chaos::ChaosTallies,
}

impl ParMetrics {
    /// One-line summary.
    pub fn summary(&self) -> String {
        let steals: u64 = self.workers.iter().map(|w| w.steals).sum();
        let parks: u64 = self.workers.iter().map(|w| w.parks).sum();
        format!(
            "processed={} merged={} fastpath={} macro={}/{} steals={} parks={} max_slots={} tags={} deferred={}",
            self.tokens_processed,
            self.merged,
            self.fast_path_fires,
            self.macro_fires,
            self.ops_elided,
            steals,
            parks,
            self.max_pending_slots,
            self.tags_created,
            self.deferred_reads
        )
    }
}

/// Session-level metrics of one multiplexed serving run
/// ([`crate::serve::serve`]): what the *shared pool* did across every
/// admitted invocation. Per-invocation quantities (fired, merged, tags,
/// deferred reads) live in each request's own
/// [`crate::parallel::ParOutcome::metrics`]; the per-worker scheduler
/// counters only exist here, because the workers are shared and their
/// batches freely interleave tokens of different invocations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Requests admitted (every `submit`, including ones that later
    /// failed).
    pub requests: u64,
    /// Requests that completed with an `Ok` outcome.
    pub completed_ok: u64,
    /// Requests that completed with a typed `MachineError`.
    pub failed: u64,
    /// Highest number of simultaneously inflight invocations observed —
    /// at most the session's admission window (`max_inflight`).
    pub peak_inflight: u64,
    /// Per-worker scheduler counters for the whole session, indexed by
    /// worker.
    pub workers: Vec<WorkerStats>,
    /// Tokens processed across all invocations (sum of the per-worker
    /// `processed`).
    pub tokens_processed: u64,
    /// High-water mark of occupied rendezvous slots across the shared
    /// (invocation-keyed) table — the session's waiting-matching
    /// pressure, the multiplexed analogue of
    /// [`ParMetrics::max_pending_slots`].
    pub max_pending_slots: u64,
    /// Faults injected by the chaos plan over the whole session (all
    /// zero on ordinary runs).
    pub chaos: crate::chaos::ChaosTallies,
}

impl ServeStats {
    /// One-line summary.
    pub fn summary(&self) -> String {
        let steals: u64 = self.workers.iter().map(|w| w.steals).sum();
        let parks: u64 = self.workers.iter().map(|w| w.parks).sum();
        format!(
            "requests={} ok={} failed={} peak_inflight={} processed={} steals={} parks={} max_slots={}",
            self.requests,
            self.completed_ok,
            self.failed,
            self.peak_inflight,
            self.tokens_processed,
            steals,
            parks,
            self.max_pending_slots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_metrics_summary_sums_workers() {
        let m = ParMetrics {
            workers: vec![
                WorkerStats { steals: 2, parks: 1, ..Default::default() },
                WorkerStats { steals: 3, parks: 4, ..Default::default() },
            ],
            tokens_processed: 10,
            merged: 4,
            ..Default::default()
        };
        let s = m.summary();
        assert!(s.contains("steals=5"), "{s}");
        assert!(s.contains("parks=5"), "{s}");
        assert!(s.contains("processed=10"), "{s}");
    }

    #[test]
    fn avg_parallelism_guards_zero_makespan() {
        let s = ExecStats {
            fired: 5,
            makespan: 0,
            ..Default::default()
        };
        assert_eq!(s.avg_parallelism(), 5.0);
        let s2 = ExecStats {
            fired: 10,
            makespan: 4,
            ..Default::default()
        };
        assert_eq!(s2.avg_parallelism(), 2.5);
        assert!(s2.summary().contains("avg_par=2.50"));
    }
}
