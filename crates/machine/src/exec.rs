//! The explicit-token-store simulator.
//!
//! Execution is a discrete-event simulation over integer time. Tokens are
//! delivered to input ports; when an operator's rendezvous slot for a tag
//! fills, the operator becomes *ready*; each time step issues up to `P`
//! ready operators (unbounded by default), whose outputs are delivered
//! after the operator's latency. With unbounded processors and unit
//! latencies the makespan is the graph's critical path.
//!
//! The simulation is fully deterministic: events are processed in time
//! order, ready operators in FIFO order.
//!
//! The simulator runs the [`crate::compiled`] form: [`run`] lowers the
//! graph with [`crate::compiled::compile`] and calls [`run_compiled`];
//! callers that execute one graph many times compile once and reuse.
//! Operator semantics live in the shared kernel
//! [`crate::compiled::fire_op`] — the simulator only supplies the
//! [`Engine`] effects (timestamped event-queue delivery, tag interning,
//! the split-phase memory).

use crate::compiled::{
    compile, fire_op, key, unkey, CompiledGraph, Engine, FireInputs, FireVals, SlotVals,
};
use crate::hash::FxHashMap;
use crate::memory::{DeferredRead, MemError, Memory};
use crate::metrics::ExecStats;
use crate::tag::{TagId, TagTable};
use cf2df_cfg::{LoopId, MemLayout, VarId};
use cf2df_dfg::{Dfg, OpId, Port};
use std::collections::{BTreeMap, VecDeque};

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processors; `None` = unbounded (idealized dataflow).
    pub processors: Option<usize>,
    /// Latency of non-memory operators (≥ 1).
    pub op_latency: u64,
    /// Split-phase memory latency (≥ 1): time from issuing a load/store to
    /// its outputs appearing.
    pub mem_latency: u64,
    /// Maximum operator firings before aborting.
    pub fuel: u64,
    /// Whether a token collision (two tokens on one arc/slot under the same
    /// tag — the failure of Schema 2 without loop control) aborts execution
    /// (`true`) or is recorded and the token dropped (`false`).
    pub collisions_fatal: bool,
    /// Cap on the recorded parallelism profile length.
    pub profile_cap: usize,
    /// Issue the ready queue LIFO (newest-first) instead of FIFO — a
    /// scheduling-policy ablation. Both policies are greedy, so Brent's
    /// bound holds for either; they differ in which tokens wait when
    /// processors are scarce.
    pub lifo: bool,
    /// Capacity of the waiting-matching store: the maximum number of
    /// simultaneously occupied rendezvous slots (Monsoon's frame memory).
    /// `None` = unlimited. A token that would allocate a slot beyond the
    /// capacity is *throttled* until a slot frees — the machine's
    /// back-pressure. Undersized stores can reach a genuine frame
    /// deadlock, reported as [`MachineError::Deadlock`].
    pub frame_capacity: Option<usize>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            processors: None,
            op_latency: 1,
            mem_latency: 1,
            fuel: 50_000_000,
            collisions_fatal: true,
            profile_cap: 1 << 16,
            lifo: false,
            frame_capacity: None,
        }
    }
}

impl MachineConfig {
    /// Unbounded processors, unit latencies: measures the critical path.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Finite machine with `p` processors.
    pub fn with_processors(p: usize) -> Self {
        MachineConfig {
            processors: Some(p.max(1)),
            ..Self::default()
        }
    }

    /// Set the split-phase memory latency.
    pub fn mem_latency(mut self, l: u64) -> Self {
        self.mem_latency = l.max(1);
        self
    }

    /// Set the non-memory operator latency.
    pub fn op_latency(mut self, l: u64) -> Self {
        self.op_latency = l.max(1);
        self
    }

    /// Record collisions instead of aborting.
    pub fn tolerate_collisions(mut self) -> Self {
        self.collisions_fatal = false;
        self
    }

    /// Issue ready operators newest-first (LIFO ablation).
    pub fn lifo(mut self) -> Self {
        self.lifo = true;
        self
    }

    /// Limit the waiting-matching store to `slots` rendezvous slots.
    pub fn frame_capacity(mut self, slots: usize) -> Self {
        self.frame_capacity = Some(slots);
        self
    }
}

/// Execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// Tokens are pending but nothing can fire and nothing is in flight.
    Deadlock {
        /// Human-readable description of (up to 10) blocked slots.
        pending: Vec<String>,
    },
    /// The firing budget was exhausted (runaway graph).
    FuelExhausted,
    /// Two tokens arrived at the same (operator, port, tag): the static
    /// one-token-per-arc discipline was violated. This is exactly what goes
    /// wrong when Schema 2 is applied to a cyclic graph without loop
    /// control (§3, discussion of Fig 8).
    TokenCollision {
        /// The operator.
        op: OpId,
        /// The input port.
        port: usize,
        /// Rendered tag.
        tag: String,
    },
    /// A loop-control operator received a token whose tag does not belong
    /// to its loop (translation bug).
    TagMismatch {
        /// The operator.
        op: OpId,
        /// What was wrong.
        detail: String,
    },
    /// A memory fault (bounds, I-structure rewrite).
    Memory(MemError),
    /// The run finished with tokens unprocessed but no failure recorded —
    /// an executor invariant violation. Debug builds assert before this
    /// can be returned; release builds report it instead of silently
    /// dropping tokens.
    TokenLeak {
        /// Tokens left in run queues when the workers exited.
        leftover: u64,
    },
    /// A worker thread panicked mid-run (an operator implementation — or
    /// an injected fault, see [`crate::chaos`] — unwound). The pool is
    /// halted and drained before this is returned; the host process never
    /// aborts and the pool stays usable.
    WorkerPanicked {
        /// Index of the panicking worker, or `usize::MAX` if the panic
        /// escaped the worker body and was only caught at the pool
        /// boundary.
        worker: usize,
        /// The panic payload, rendered (non-string payloads are
        /// summarized).
        payload: String,
    },
    /// The tag (iteration-context) interner is full: a loop nest created
    /// more distinct iteration contexts than the tag space can name.
    TagSpaceExhausted {
        /// Maximum representable tag id of the interner that overflowed.
        cap: u32,
        /// The multiplexed invocation (request id) whose reserved tag
        /// slice overflowed, when the run was admitted through
        /// [`crate::serve`]; `None` for single-invocation runs, whose
        /// interner owns the whole tag space.
        invocation: Option<u64>,
    },
    /// The wall-clock watchdog expired before the run completed or
    /// failed: the executor exceeded its time bound without reaching a
    /// verdict.
    WatchdogTimeout {
        /// The configured bound, in milliseconds.
        millis: u64,
    },
    /// The graph is not executable (e.g. it has no unique `Start`): the
    /// executor refused to seed it. Graphs from the translators always
    /// pass [`cf2df_dfg::validate`]; this arises only for hand-built or
    /// externally loaded graphs.
    InvalidGraph {
        /// What structural property failed.
        detail: String,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Deadlock { pending } => {
                write!(f, "deadlock; blocked: {}", pending.join(", "))
            }
            MachineError::FuelExhausted => write!(f, "fuel exhausted"),
            MachineError::TokenCollision { op, port, tag } => {
                write!(f, "token collision at {op:?} port {port} tag {tag}")
            }
            MachineError::TagMismatch { op, detail } => {
                write!(f, "tag mismatch at {op:?}: {detail}")
            }
            MachineError::Memory(e) => write!(f, "memory fault: {e}"),
            MachineError::TokenLeak { leftover } => write!(
                f,
                "executor invariant violation: {leftover} tokens left unprocessed \
                 without a recorded error"
            ),
            MachineError::WorkerPanicked { worker, payload } => {
                if *worker == usize::MAX {
                    write!(f, "worker panicked: {payload}")
                } else {
                    write!(f, "worker {worker} panicked: {payload}")
                }
            }
            MachineError::TagSpaceExhausted { cap, invocation } => match invocation {
                Some(req) => write!(f, "tag space exhausted (cap {cap}) in invocation {req}"),
                None => write!(f, "tag space exhausted (cap {cap})"),
            },
            MachineError::WatchdogTimeout { millis } => {
                write!(f, "watchdog expired after {millis} ms")
            }
            MachineError::InvalidGraph { detail } => {
                write!(f, "graph is not executable: {detail}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<MemError> for MachineError {
    fn from(e: MemError) -> Self {
        MachineError::Memory(e)
    }
}

/// The result of a successful run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Final ordinary memory, indexed by absolute cell address.
    pub memory: Vec<i64>,
    /// Final I-structure memory (empty cells read as 0).
    pub ist_memory: Vec<i64>,
    /// Execution metrics.
    pub stats: ExecStats,
}

#[derive(Clone, Copy, Debug)]
struct Token {
    to: Port,
    tag: TagId,
    value: i64,
}

/// Input values of a queued firing. Operators with at most
/// [`crate::compiled::INLINE_VALS`] ports (every fixed-arity kind, and
/// every hot kind the allocation audit covers) stay inline; wide
/// `End`/`Synch` fan-ins spill to the heap.
#[derive(Debug)]
enum Inputs {
    /// All input values (immediates filled in), strict firing.
    Vals(FireVals),
    /// A single token on a merge-like operator.
    Single { port: usize, value: i64 },
}

impl Inputs {
    #[inline]
    fn as_fire(&self) -> FireInputs<'_> {
        match self {
            Inputs::Vals(v) => FireInputs::Full(v.as_slice()),
            Inputs::Single { port, value } => FireInputs::Single {
                port: *port,
                value: *value,
            },
        }
    }
}

#[derive(Debug)]
struct Firing {
    op: OpId,
    tag: TagId,
    inputs: Inputs,
}

/// A rendezvous slot: shared inline value storage plus the simulator's
/// countdown of still-unfilled live ports (the threaded executor scans
/// instead, to keep its sharded slots a single word-keyed value).
#[derive(Debug)]
struct Slot {
    vals: SlotVals,
    remaining: u32,
}

/// Compile-time switch for firing-trace collection. `run` instantiates
/// the simulator with [`NoTrace`] (a zero-sized no-op), `run_traced` with
/// a real [`crate::trace::Trace`]; the type system guarantees a traced
/// run always has its trace — there is no `Option` to unwrap and no
/// "tracing enabled" invariant to assert at runtime.
trait TraceSink {
    /// Whether events are recorded; `false` lets untraced runs skip even
    /// rendering the tag string.
    const ENABLED: bool;
    /// Record one firing.
    fn record(&mut self, time: u64, op: OpId, tag: String);
}

/// The sink for untraced runs: records nothing, costs nothing.
struct NoTrace;

impl TraceSink for NoTrace {
    const ENABLED: bool = false;
    #[inline]
    fn record(&mut self, _time: u64, _op: OpId, _tag: String) {}
}

impl TraceSink for crate::trace::Trace {
    const ENABLED: bool = true;
    fn record(&mut self, time: u64, op: OpId, tag: String) {
        self.events.push(crate::trace::TraceEvent { time, op, tag });
    }
}

struct Sim<'g, S: TraceSink> {
    cg: &'g CompiledGraph,
    layout: &'g MemLayout,
    cfgc: MachineConfig,
    events: BTreeMap<u64, Vec<Token>>,
    ready: VecDeque<Firing>,
    /// The waiting-matching store, keyed by the packed (op, tag) word
    /// through the vendored integer hasher.
    rendezvous: FxHashMap<u64, Slot>,
    /// Tokens waiting for a free rendezvous slot (finite frame capacity).
    throttled: VecDeque<Token>,
    tags: TagTable,
    mem: Memory<(OpId, TagId)>,
    stats: ExecStats,
    halted: bool,
    /// Timestamp the current firing's outputs are delivered at — set by
    /// [`Sim::fire`] before entering the shared kernel, read by
    /// [`Engine::emit`].
    emit_at: u64,
    trace: S,
}

/// Execute a dataflow graph to completion (compiling it first; callers
/// that run one graph repeatedly should [`compile`] once and use
/// [`run_compiled`]).
pub fn run(g: &Dfg, layout: &MemLayout, config: MachineConfig) -> Result<Outcome, MachineError> {
    let cg = compile(g)?;
    run_compiled(&cg, layout, config)
}

/// Execute an already-compiled dataflow graph to completion.
pub fn run_compiled(
    cg: &CompiledGraph,
    layout: &MemLayout,
    config: MachineConfig,
) -> Result<Outcome, MachineError> {
    let mut sim = Sim::new(cg, layout, config, NoTrace);
    sim.seed();
    sim.main_loop()?;
    Ok(sim.finish().0)
}

/// As [`run`], additionally recording a [`crate::trace::Trace`] of every
/// firing.
pub fn run_traced(
    g: &Dfg,
    layout: &MemLayout,
    config: MachineConfig,
) -> Result<(Outcome, crate::trace::Trace), MachineError> {
    let cg = compile(g)?;
    run_traced_compiled(&cg, layout, config)
}

/// As [`run_compiled`], additionally recording a trace of every firing.
pub fn run_traced_compiled(
    cg: &CompiledGraph,
    layout: &MemLayout,
    config: MachineConfig,
) -> Result<(Outcome, crate::trace::Trace), MachineError> {
    let mut sim = Sim::new(cg, layout, config, crate::trace::Trace::default());
    sim.seed();
    sim.main_loop()?;
    Ok(sim.finish())
}

impl<'g, S: TraceSink> Sim<'g, S> {
    fn new(cg: &'g CompiledGraph, layout: &'g MemLayout, config: MachineConfig, sink: S) -> Sim<'g, S> {
        Sim {
            cg,
            layout,
            events: BTreeMap::new(),
            ready: VecDeque::new(),
            rendezvous: FxHashMap::default(),
            throttled: VecDeque::new(),
            tags: TagTable::new(),
            mem: Memory::new(layout),
            stats: ExecStats::default(),
            cfgc: config,
            halted: false,
            emit_at: 0,
            trace: sink,
        }
    }

    fn seed(&mut self) {
        // clone() audit: the seed fan-out used to clone the Start op's
        // destination vector; the compiled CSR slice is borrowed directly.
        let cg = self.cg;
        let initial = self.events.entry(0).or_default();
        for &to in cg.dests(cg.start(), 0) {
            initial.push(Token {
                to,
                tag: TagId::ROOT,
                value: 0,
            });
        }
    }

    fn main_loop(&mut self) -> Result<(), MachineError> {
        let mut now = 0u64;
        loop {
            if let Some(tokens) = self.events.remove(&now) {
                for t in tokens {
                    self.deposit(t)?;
                }
            }
            // Retry throttled tokens: completed slots may have freed
            // capacity. (Re-depositing may throttle them again.)
            if !self.throttled.is_empty() {
                let parked: Vec<Token> = self.throttled.drain(..).collect();
                for t in parked {
                    self.deposit(t)?;
                }
            }
            let budget = self.cfgc.processors.unwrap_or(usize::MAX);
            let n = self.ready.len().min(budget);
            for _ in 0..n {
                // `n` was counted from `ready` above and firing only ever
                // pushes, but pop defensively rather than unwrap: an
                // early-empty queue ends the step instead of aborting.
                let popped = if self.cfgc.lifo {
                    self.ready.pop_back()
                } else {
                    self.ready.pop_front()
                };
                let Some(f) = popped else { break };
                self.fire(f, now)?;
                if self.halted {
                    break;
                }
            }
            if (now as usize) < self.cfgc.profile_cap {
                let idx = now as usize;
                if self.stats.profile.len() <= idx {
                    self.stats.profile.resize(idx + 1, 0);
                }
                self.stats.profile[idx] = n as u32;
            }
            self.stats.max_parallelism = self.stats.max_parallelism.max(n as u32);
            if self.halted {
                self.stats.makespan = now;
                return Ok(());
            }
            if self.stats.fired > self.cfgc.fuel {
                return Err(MachineError::FuelExhausted);
            }
            if !self.ready.is_empty() {
                now += 1;
            } else if let Some(&t) = self.events.keys().next() {
                debug_assert!(t > now);
                now = t;
            } else {
                let mut pending = self.describe_pending();
                if !self.throttled.is_empty() {
                    pending.insert(
                        0,
                        format!(
                            "frame-store deadlock: {} tokens throttled at capacity {:?}",
                            self.throttled.len(),
                            self.cfgc.frame_capacity
                        ),
                    );
                }
                return Err(MachineError::Deadlock { pending });
            }
        }
    }

    fn describe_pending(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .rendezvous
            .iter()
            .map(|(&k, slot)| {
                let (op, tag) = unkey(k);
                let filled = slot.vals.filled_ports();
                format!(
                    "{} {op:?} tag {} waiting (filled ports {filled:?})",
                    self.cg.mnemonic(op),
                    self.tags.render(tag),
                )
            })
            .collect();
        out.sort();
        out.truncate(10);
        out
    }

    /// Deposit for a fused loop-entry/switch pair: ports 0/1 retag the
    /// data token exactly as the loop-entry would (outside → iteration 0,
    /// backedge → next iteration), then wait for the predicate in a
    /// two-value slot keyed by the *iteration* tag; the predicate (port
    /// 2) already carries that tag and fills the other half.
    fn deposit_loop_switch(
        &mut self,
        op: OpId,
        port: usize,
        t: Token,
        loop_id: LoopId,
    ) -> Result<(), MachineError> {
        let (slot_tag, idx) = match port {
            0 => (self.child_tag(t.tag, loop_id, 0)?, 0),
            1 => match self.tags.info(t.tag) {
                Some((p, l, i)) if l == loop_id => (self.child_tag(p, loop_id, i + 1)?, 0),
                other => {
                    return Err(MachineError::TagMismatch {
                        op,
                        detail: format!(
                            "backedge token tagged {other:?}, expected loop {loop_id:?}"
                        ),
                    })
                }
            },
            _ => (t.tag, 1),
        };
        let k = key(op, slot_tag);
        if let Some(cap) = self.cfgc.frame_capacity {
            if !self.rendezvous.contains_key(&k) && self.rendezvous.len() >= cap {
                // Park the original token: re-depositing re-runs the
                // (deterministic) retag.
                self.throttled.push_back(t);
                return Ok(());
            }
        }
        let slot = self.rendezvous.entry(k).or_insert(Slot {
            vals: SlotVals::pair(),
            remaining: 2,
        });
        if slot.vals.is_filled(idx) {
            if self.cfgc.collisions_fatal {
                return Err(MachineError::TokenCollision {
                    op,
                    port,
                    tag: self.tags.render(slot_tag),
                });
            }
            self.stats.collisions += 1;
            return Ok(());
        }
        slot.vals.set(idx, t.value);
        slot.remaining -= 1;
        let complete = slot.remaining == 0;
        let pending = self.rendezvous.len() as u64;
        self.stats.max_pending_slots = self.stats.max_pending_slots.max(pending);
        if complete {
            let slot = self.rendezvous.remove(&k).expect("slot inserted above");
            self.ready.push_back(Firing {
                op,
                tag: slot_tag,
                inputs: Inputs::Vals(slot.vals.into_vals()),
            });
        }
        Ok(())
    }

    fn deposit(&mut self, t: Token) -> Result<(), MachineError> {
        let cg = self.cg;
        let op = t.to.op;
        let port = t.to.port as usize;
        let desc = cg.desc(op);
        if let crate::compiled::CKind::LoopSwitch(loop_id) = desc.kind {
            return self.deposit_loop_switch(op, port, t, loop_id);
        }
        if desc.merge_like() {
            self.ready.push_back(Firing {
                op,
                tag: t.tag,
                inputs: Inputs::Single {
                    port,
                    value: t.value,
                },
            });
            return Ok(());
        }
        if desc.live <= 1 {
            // Single live input: fires immediately.
            // clone() audit: values are assembled in an inline stack
            // buffer for every fixed-arity operator; only >INLINE_VALS
            // fan-ins (never a hot kind) heap-allocate, and those are
            // counted by the spill audit.
            self.ready.push_back(Firing {
                op,
                tag: t.tag,
                inputs: Inputs::Vals(FireVals::from_imms(
                    cg.imms(op),
                    port,
                    t.value,
                    desc.is_hot(),
                )),
            });
            return Ok(());
        }
        let k = key(op, t.tag);
        if let Some(cap) = self.cfgc.frame_capacity {
            if !self.rendezvous.contains_key(&k) && self.rendezvous.len() >= cap {
                // Back-pressure: park the token until a slot frees.
                self.throttled.push_back(t);
                return Ok(());
            }
        }
        let slot = self.rendezvous.entry(k).or_insert_with(|| Slot {
            vals: SlotVals::new(cg.imms(op), desc.is_hot()),
            remaining: desc.live,
        });
        if slot.vals.is_filled(port) {
            if self.cfgc.collisions_fatal {
                return Err(MachineError::TokenCollision {
                    op,
                    port,
                    tag: self.tags.render(t.tag),
                });
            }
            self.stats.collisions += 1;
            return Ok(());
        }
        slot.vals.set(port, t.value);
        slot.remaining -= 1;
        let complete = slot.remaining == 0;
        let pending = self.rendezvous.len() as u64;
        self.stats.max_pending_slots = self.stats.max_pending_slots.max(pending);
        if complete {
            // Unreachable expect, audited: the slot was obtained from
            // this map via `entry` a few lines up and nothing in between
            // can remove it (single-threaded, exclusive `&mut self`).
            let slot = self.rendezvous.remove(&k).expect("slot inserted above");
            self.ready.push_back(Firing {
                op,
                tag: t.tag,
                inputs: Inputs::Vals(slot.vals.into_vals()),
            });
        }
        Ok(())
    }

    fn fire(&mut self, f: Firing, now: u64) -> Result<(), MachineError> {
        self.stats.fired += 1;
        if S::ENABLED {
            let tag = self.tags.render(f.tag);
            self.trace.record(now, f.op, tag);
        }
        // clone() audit: the per-firing `g.kind(op).clone()` is gone —
        // the descriptor is a 24-byte Copy and the semantics live in the
        // shared kernel.
        let cg = self.cg;
        let desc = cg.desc(f.op);
        let lat = if desc.is_memory() {
            self.cfgc.mem_latency
        } else {
            self.cfgc.op_latency
        };
        self.emit_at = now + lat;
        fire_op(cg, f.op, f.tag, f.inputs.as_fire(), self)
    }

    /// Intern the child tag, surfacing interner overflow as the typed
    /// [`MachineError::TagSpaceExhausted`] instead of a panic.
    fn child_tag(
        &mut self,
        parent: TagId,
        loop_id: LoopId,
        iter: u32,
    ) -> Result<TagId, MachineError> {
        self.tags
            .child(parent, loop_id, iter)
            .ok_or(MachineError::TagSpaceExhausted {
                cap: u32::MAX,
                invocation: None,
            })
    }

    fn finish(mut self) -> (Outcome, S) {
        let in_flight: u64 = self.events.values().map(|v| v.len() as u64).sum();
        let in_slots: u64 = self
            .rendezvous
            .values()
            .map(|s| s.vals.filled_count())
            .sum();
        self.stats.leftover_tokens =
            in_flight + in_slots + self.ready.len() as u64 + self.throttled.len() as u64;
        self.stats.mem_reads = self.mem.reads();
        self.stats.mem_writes = self.mem.writes();
        self.stats.tags_created = self.tags.len() as u64 - 1;
        (
            Outcome {
                memory: self.mem.cells().to_vec(),
                ist_memory: self.mem.ist_cells(),
                stats: self.stats,
            },
            self.trace,
        )
    }
}

/// The simulator's backend effects for the shared firing kernel: token
/// emission is timestamped event-queue insertion at
/// [`Sim::emit_at`].
impl<S: TraceSink> Engine for Sim<'_, S> {
    #[inline]
    fn emit(&mut self, op: OpId, out_port: usize, value: i64, tag: TagId) {
        let cg = self.cg;
        let at = self.emit_at;
        let bucket = self.events.entry(at).or_default();
        for &to in cg.dests(op, out_port) {
            bucket.push(Token { to, tag, value });
        }
    }

    #[inline]
    fn halt(&mut self) {
        self.halted = true;
    }

    fn tag_child(
        &mut self,
        parent: TagId,
        loop_id: LoopId,
        iter: u32,
    ) -> Result<TagId, MachineError> {
        self.child_tag(parent, loop_id, iter)
    }

    fn tag_info(&self, tag: TagId) -> Option<(TagId, LoopId, u32)> {
        self.tags.info(tag)
    }

    fn read_scalar(&mut self, var: VarId) -> i64 {
        self.mem.read_scalar(self.layout, var)
    }

    fn write_scalar(&mut self, var: VarId, value: i64) {
        self.mem.write_scalar(self.layout, var, value)
    }

    fn read_element(&mut self, var: VarId, index: i64) -> Result<i64, MemError> {
        self.mem.read_element(self.layout, var, index)
    }

    fn write_element(&mut self, var: VarId, index: i64, value: i64) -> Result<(), MemError> {
        self.mem.write_element(self.layout, var, index, value)
    }

    fn ist_read(
        &mut self,
        var: VarId,
        index: i64,
        op: OpId,
        tag: TagId,
    ) -> Result<Option<i64>, MemError> {
        match self.mem.ist_read(self.layout, var, index, (op, tag))? {
            Some(v) => Ok(Some(v)),
            None => {
                self.stats.deferred_reads += 1;
                Ok(None)
            }
        }
    }

    fn ist_write(
        &mut self,
        var: VarId,
        index: i64,
        value: i64,
    ) -> Result<Vec<DeferredRead<(OpId, TagId)>>, MemError> {
        self.mem.ist_write(self.layout, var, index, value)
    }

    fn macro_fired(&mut self, elided: u64) {
        self.stats.macro_fires += 1;
        self.stats.ops_elided += elided;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{BinOp, LoopId, VarId, VarTable};
    use cf2df_dfg::graph::ArcKind;
    use cf2df_dfg::OpKind;

    fn layout_xy() -> MemLayout {
        let mut t = VarTable::new();
        t.scalar("x");
        t.scalar("y");
        MemLayout::distinct(&t)
    }

    /// start → load x → +1 → store x → end.
    fn increment_graph() -> Dfg {
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 1);
        let st = g.add(OpKind::Store { var: VarId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(add, 0), ArcKind::Value);
        g.connect(Port::new(add, 0), Port::new(st, 0), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        g
    }

    #[test]
    fn straight_line_executes() {
        let layout = layout_xy();
        let g = increment_graph();
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(out.memory[0], 1);
        // load, add, store, end
        assert_eq!(out.stats.fired, 4);
        assert_eq!(out.stats.mem_reads, 1);
        assert_eq!(out.stats.mem_writes, 1);
        assert_eq!(out.stats.leftover_tokens, 0);
        // load(t0, resp t1) → add issues t1 → t2 → store t2..t3 → end t3.
        assert_eq!(out.stats.makespan, 3);
    }

    #[test]
    fn compiled_graph_is_reusable_across_runs() {
        let layout = layout_xy();
        let g = increment_graph();
        let cg = compile(&g).unwrap();
        let a = run_compiled(&cg, &layout, MachineConfig::unbounded()).unwrap();
        let b = run_compiled(&cg, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.stats.fired, b.stats.fired);
        assert_eq!(a.stats.makespan, b.stats.makespan);
    }

    #[test]
    fn memory_latency_stretches_makespan() {
        let layout = layout_xy();
        let g = increment_graph();
        let out = run(&g, &layout, MachineConfig::unbounded().mem_latency(10)).unwrap();
        // load 10 + add 1 + store 10 = 21; end fires at 21.
        assert_eq!(out.stats.makespan, 21);
    }

    #[test]
    fn switch_routes_by_predicate() {
        // start token → switch (pred imm 0) → false side stores 7 to y.
        let layout = layout_xy();
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let sw = g.add(OpKind::Switch);
        g.set_imm(sw, 1, 0);
        let st_t = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(st_t, 0, 5);
        let st_f = g.add(OpKind::Store { var: VarId(1) });
        g.set_imm(st_f, 0, 7);
        let m = g.add(OpKind::Merge);
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(sw, 0), ArcKind::Access);
        g.connect(Port::new(sw, 0), Port::new(st_t, 1), ArcKind::Access);
        g.connect(Port::new(sw, 1), Port::new(st_f, 1), ArcKind::Access);
        g.connect(Port::new(st_t, 0), Port::new(m, 0), ArcKind::Access);
        g.connect(Port::new(st_f, 0), Port::new(m, 0), ArcKind::Access);
        g.connect(Port::new(m, 0), Port::new(e, 0), ArcKind::Access);
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(out.memory, vec![0, 7], "only the false arm ran");
    }

    #[test]
    fn synch_waits_for_all_inputs() {
        let layout = layout_xy();
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let slow = g.add(OpKind::Store { var: VarId(0) }); // mem op: slower
        g.set_imm(slow, 0, 1);
        let sy = g.add(OpKind::Synch { inputs: 2 });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(slow, 1), ArcKind::Access);
        g.connect(Port::new(s, 0), Port::new(sy, 0), ArcKind::Access);
        g.connect(Port::new(slow, 0), Port::new(sy, 1), ArcKind::Access);
        g.connect(Port::new(sy, 0), Port::new(e, 0), ArcKind::Access);
        let out = run(&g, &layout, MachineConfig::unbounded().mem_latency(7)).unwrap();
        // synch fires when the store's 7-cycle response arrives; End
        // receives the synch output one op-latency later.
        assert_eq!(out.stats.makespan, 7 + 1);
    }

    #[test]
    fn finite_processors_serialize() {
        // Two independent chains of one store each: unbounded finishes in
        // one memory round; P=1 needs two issue slots.
        let layout = layout_xy();
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let st1 = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(st1, 0, 1);
        let st2 = g.add(OpKind::Store { var: VarId(1) });
        g.set_imm(st2, 0, 2);
        let e = g.add(OpKind::End { inputs: 2 });
        g.connect(Port::new(s, 0), Port::new(st1, 1), ArcKind::Access);
        g.connect(Port::new(s, 0), Port::new(st2, 1), ArcKind::Access);
        g.connect(Port::new(st1, 0), Port::new(e, 0), ArcKind::Access);
        g.connect(Port::new(st2, 0), Port::new(e, 1), ArcKind::Access);

        let wide = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        let narrow = run(&g, &layout, MachineConfig::with_processors(1)).unwrap();
        assert_eq!(wide.memory, narrow.memory);
        assert!(narrow.stats.makespan > wide.stats.makespan);
        assert_eq!(wide.stats.max_parallelism, 2);
        assert_eq!(narrow.stats.max_parallelism, 1);
    }

    #[test]
    fn collision_detected_and_fatal() {
        // Two tokens race to the same port of a 2-input synch under the
        // same tag.
        let layout = layout_xy();
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let id1 = g.add(OpKind::Identity);
        let id2 = g.add(OpKind::Identity);
        let sy = g.add(OpKind::Synch { inputs: 2 });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(id1, 0), ArcKind::Access);
        g.connect(Port::new(s, 0), Port::new(id2, 0), ArcKind::Access);
        // Both identities feed synch port 0 (port 1 never fed): collision.
        g.connect(Port::new(id1, 0), Port::new(sy, 0), ArcKind::Access);
        g.connect(Port::new(id2, 0), Port::new(sy, 0), ArcKind::Access);
        g.connect(Port::new(sy, 0), Port::new(e, 0), ArcKind::Access);
        let err = run(&g, &layout, MachineConfig::unbounded()).unwrap_err();
        assert!(matches!(err, MachineError::TokenCollision { port: 0, .. }));

        // Non-fatal mode records and continues to deadlock (port 1 unfed).
        let err2 = run(
            &g,
            &layout,
            MachineConfig::unbounded().tolerate_collisions(),
        )
        .unwrap_err();
        assert!(matches!(err2, MachineError::Deadlock { .. }));
    }

    #[test]
    fn deadlock_reports_pending_slots() {
        let layout = layout_xy();
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let sy = g.add(OpKind::Synch { inputs: 2 });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(sy, 0), ArcKind::Access);
        // synch port 1 never receives: deadlock.
        g.connect(Port::new(sy, 0), Port::new(e, 0), ArcKind::Access);
        let err = run(&g, &layout, MachineConfig::unbounded()).unwrap_err();
        let MachineError::Deadlock { pending } = err else {
            panic!("expected deadlock")
        };
        assert_eq!(pending.len(), 1);
        assert!(pending[0].contains("synch2"));
    }

    #[test]
    fn loop_entry_and_exit_manage_tags() {
        // start → LE →(body: add imm)→ switch(pred: IterIndex < 3)
        //   true → back to LE; false → LX → store → end.
        // The body increments a value carried on the token: 3 iterations.
        let layout = layout_xy();
        let l0 = LoopId(0);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let le = g.add(OpKind::LoopEntry { loop_id: l0 });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 1);
        let ix = g.add(OpKind::IterIndex { loop_id: l0 });
        let lt = g.add(OpKind::Binary { op: BinOp::Lt });
        g.set_imm(lt, 1, 3);
        let sw = g.add(OpKind::Switch);
        let lx = g.add(OpKind::LoopExit { loop_id: l0 });
        let st = g.add(OpKind::Store { var: VarId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(le, 0), ArcKind::Value);
        g.connect(Port::new(le, 0), Port::new(add, 0), ArcKind::Value);
        g.connect(Port::new(le, 0), Port::new(ix, 0), ArcKind::Value);
        g.connect(Port::new(ix, 0), Port::new(lt, 0), ArcKind::Value);
        g.connect(Port::new(add, 0), Port::new(sw, 0), ArcKind::Value);
        g.connect(Port::new(lt, 0), Port::new(sw, 1), ArcKind::Value);
        g.connect(Port::new(sw, 0), Port::new(le, 1), ArcKind::Value);
        g.connect(Port::new(sw, 1), Port::new(lx, 0), ArcKind::Value);
        g.connect(Port::new(lx, 0), Port::new(st, 0), ArcKind::Value);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        // Store needs its access token too: reuse start.
        g.connect(Port::new(s, 0), Port::new(st, 1), ArcKind::Access);
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        // Iterations 0,1,2 loop back (index<3), iteration 3 exits: value
        // incremented 4 times.
        assert_eq!(out.memory[0], 4);
        assert_eq!(out.stats.tags_created, 4);
        assert_eq!(out.stats.leftover_tokens, 0);
    }

    #[test]
    fn istructure_deferred_then_released() {
        let mut t = VarTable::new();
        let a = t.array("a", 2);
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        // ist-load a[0] triggered by start (index = token value 0).
        let rd = g.add(OpKind::IstLoad { var: a });
        // ist-store a[0] := 99 after a 2-identity delay chain.
        let d1 = g.add(OpKind::Identity);
        let d2 = g.add(OpKind::Identity);
        let wr = g.add(OpKind::IstStore { var: a });
        g.set_imm(wr, 1, 99);
        // The loaded value lands in x (scalar var would be needed; store to
        // a's base via a 1-element view is fine: use StoreIdx a[1]).
        let st = g.add(OpKind::StoreIdx { var: a });
        g.set_imm(st, 0, 1);
        let e = g.add(OpKind::End { inputs: 2 });
        g.connect(Port::new(s, 0), Port::new(rd, 0), ArcKind::Value);
        g.connect(Port::new(s, 0), Port::new(d1, 0), ArcKind::Value);
        g.connect(Port::new(d1, 0), Port::new(d2, 0), ArcKind::Value);
        g.connect(Port::new(d2, 0), Port::new(wr, 0), ArcKind::Value);
        g.connect(Port::new(rd, 0), Port::new(st, 1), ArcKind::Value);
        g.connect(Port::new(s, 0), Port::new(st, 2), ArcKind::Access);
        g.connect(Port::new(wr, 0), Port::new(e, 0), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 1), ArcKind::Access);
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(out.stats.deferred_reads, 1, "read arrived before write");
        assert_eq!(out.ist_memory[0], 99);
        assert_eq!(out.memory[1], 99, "deferred read's value was delivered");
    }

    #[test]
    fn fuel_exhaustion_detected() {
        // An unbounded generator: identity loop through a merge.
        let layout = layout_xy();
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let m = g.add(OpKind::Merge);
        let id = g.add(OpKind::Identity);
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(m, 0), ArcKind::Value);
        g.connect(Port::new(m, 0), Port::new(id, 0), ArcKind::Value);
        g.connect(Port::new(id, 0), Port::new(m, 0), ArcKind::Value);
        // End fed from a second start arc would halt; starve it instead.
        let id2 = g.add(OpKind::Identity);
        g.connect(Port::new(id2, 0), Port::new(e, 0), ArcKind::Value);
        let mut cfgc = MachineConfig::unbounded();
        cfgc.fuel = 1000;
        let err = run(&g, &layout, cfgc).unwrap_err();
        assert_eq!(err, MachineError::FuelExhausted);
    }

    #[test]
    fn prev_iter_retags_backwards() {
        // Enter a loop at iteration 0 and 1; a token from iteration 1 is
        // retagged to iteration 0 and rendezvouses with iteration 0's token.
        let layout = layout_xy();
        let l0 = LoopId(0);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let le = g.add(OpKind::LoopEntry { loop_id: l0 });
        let ix = g.add(OpKind::IterIndex { loop_id: l0 });
        let lt = g.add(OpKind::Binary { op: BinOp::Lt });
        g.set_imm(lt, 1, 1);
        let sw = g.add(OpKind::Switch);
        let pi = g.add(OpKind::PrevIter { loop_id: l0 });
        let sy = g.add(OpKind::Synch { inputs: 2 });
        let lx = g.add(OpKind::LoopExit { loop_id: l0 });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(le, 0), ArcKind::Value);
        g.connect(Port::new(le, 0), Port::new(ix, 0), ArcKind::Value);
        g.connect(Port::new(ix, 0), Port::new(lt, 0), ArcKind::Value);
        g.connect(Port::new(ix, 0), Port::new(sw, 0), ArcKind::Value);
        g.connect(Port::new(lt, 0), Port::new(sw, 1), ArcKind::Value);
        // iter 0: lt true → back into loop as iter 1.
        g.connect(Port::new(sw, 0), Port::new(le, 1), ArcKind::Value);
        // iter 1: lt false → retag to iter 0 via prev-iter.
        g.connect(Port::new(sw, 1), Port::new(pi, 0), ArcKind::Value);
        // iter 0's second token line: the index value also goes to sy.0;
        // prev-iter's output (tagged iter 0) joins at sy.1.
        g.connect(Port::new(le, 0), Port::new(sy, 0), ArcKind::Value);
        g.connect(Port::new(pi, 0), Port::new(sy, 1), ArcKind::Value);
        g.connect(Port::new(sy, 0), Port::new(lx, 0), ArcKind::Value);
        g.connect(Port::new(lx, 0), Port::new(e, 0), ArcKind::Value);
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        // sy fired for iteration 0 (its port 1 fed by prev-iter from iter 1);
        // iteration 1's sy slot still holds one token → leftover 1.
        assert_eq!(out.stats.leftover_tokens, 1);
    }

    #[test]
    fn tag_mismatch_is_reported() {
        let layout = layout_xy();
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let lx = g.add(OpKind::LoopExit { loop_id: LoopId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(lx, 0), ArcKind::Value);
        g.connect(Port::new(lx, 0), Port::new(e, 0), ArcKind::Value);
        // Root-tagged token hits loop-exit: mismatch.
        let err = run(&g, &layout, MachineConfig::unbounded()).unwrap_err();
        assert!(matches!(err, MachineError::TagMismatch { .. }));
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut t = VarTable::new();
        let a = t.array("a", 2);
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let st = g.add(OpKind::StoreIdx { var: a });
        g.set_imm(st, 0, 5); // index 5 out of bounds
        g.set_imm(st, 1, 1);
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(st, 2), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
        let err = run(&g, &layout, MachineConfig::unbounded()).unwrap_err();
        assert!(matches!(
            err,
            MachineError::Memory(MemError::OutOfBounds { index: 5, .. })
        ));
    }

    #[test]
    fn frame_capacity_limits_concurrent_rendezvous() {
        // Two independent 2-input synchs whose inputs arrive staggered:
        // with capacity 1 the second slot overflows; with 2 it runs.
        let layout = layout_xy();
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let slow1 = g.add(OpKind::Store { var: VarId(0) });
        g.set_imm(slow1, 0, 1);
        let slow2 = g.add(OpKind::Store { var: VarId(1) });
        g.set_imm(slow2, 0, 2);
        let sy1 = g.add(OpKind::Synch { inputs: 2 });
        let sy2 = g.add(OpKind::Synch { inputs: 2 });
        let e = g.add(OpKind::End { inputs: 2 });
        g.connect(Port::new(s, 0), Port::new(sy1, 0), ArcKind::Access);
        g.connect(Port::new(s, 0), Port::new(sy2, 0), ArcKind::Access);
        g.connect(Port::new(s, 0), Port::new(slow1, 1), ArcKind::Access);
        g.connect(Port::new(s, 0), Port::new(slow2, 1), ArcKind::Access);
        g.connect(Port::new(slow1, 0), Port::new(sy1, 1), ArcKind::Access);
        g.connect(Port::new(slow2, 0), Port::new(sy2, 1), ArcKind::Access);
        g.connect(Port::new(sy1, 0), Port::new(e, 0), ArcKind::Access);
        g.connect(Port::new(sy2, 0), Port::new(e, 1), ArcKind::Access);

        let wide = run(&g, &layout, MachineConfig::unbounded().mem_latency(5)).unwrap();
        assert!(wide.stats.max_pending_slots >= 2);
        // Throttled to one slot at a time: still completes (slots drain in
        // turn), but the high-water mark respects the capacity.
        let narrow = run(
            &g,
            &layout,
            MachineConfig::unbounded().mem_latency(5).frame_capacity(1),
        )
        .unwrap();
        assert_eq!(narrow.memory, wide.memory);
        assert!(narrow.stats.max_pending_slots <= 1);
        assert!(narrow.stats.makespan >= wide.stats.makespan);
    }

    #[test]
    fn profile_records_issue_widths() {
        let layout = layout_xy();
        let g = increment_graph();
        let out = run(&g, &layout, MachineConfig::unbounded()).unwrap();
        assert_eq!(out.stats.profile.iter().map(|&x| x as u64).sum::<u64>(), 4);
        assert!(out.stats.max_parallelism >= 1);
    }
}
