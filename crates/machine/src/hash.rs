//! A vendored integer hasher for the machine's hot-path maps.
//!
//! The rendezvous tables, the worker-local pair maps, and the tag
//! interners are all keyed by small dense integers (packed
//! `(operator, tag)` words, `(parent, loop, iter)` triples). The
//! standard library's default hasher is SipHash-1-3 — a keyed,
//! DoS-resistant hash that costs tens of cycles per lookup, none of
//! which buys anything here: the keys come from the program graph, not
//! from untrusted input. This module vendors the Fx multiply-rotate
//! hash (the rustc-internal `FxHasher` design) as a `std`-only drop-in
//! `BuildHasher`, in keeping with the workspace's offline
//! zero-external-dependency policy.
//!
//! The hasher lives in `cf2df-machine` (not `cf2df-bench`/`cf2df-core`)
//! because the dependency graph only points the other way: `bench`
//! depends on `machine`, and `core` only dev-depends on it, so a hasher
//! in either crate would be unreachable from the executors that need it
//! most. Downstream crates reach it through the re-export on
//! [`crate`](crate#reexports).
//!
//! Properties the executors rely on (pinned by the tests below):
//!
//! * **deterministic** — no per-process random state, so a hash (and
//!   therefore map iteration order, shard choice, etc.) is identical
//!   across runs and across threads;
//! * **cheap** — one rotate, one xor, one multiply per 8-byte word;
//! * **dispersive enough** — the multiply constant spreads consecutive
//!   integers (dense `OpId`/`TagId` spaces) across the whole `u64`
//!   range, so power-of-two-capacity hash maps do not degenerate.

use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply-rotate constant (64-bit golden-ratio mix, forced odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher for integer-shaped
/// keys. Not DoS-resistant — never use it for attacker-controlled keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Integer keys go through the typed methods below; this path only
        // sees stray byte payloads (e.g. a `str` mixed into a key), which
        // it folds 8 bytes at a time.
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add(v as usize as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s; stateless, so every map built
/// with it hashes identically.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` on the integer hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Mix a single `u64` through one Fx round — for callers that need a
/// well-dispersed value (shard selection) without a full `Hasher` dance.
#[inline]
pub fn mix64(word: u64) -> u64 {
    word.rotate_left(5).wrapping_mul(SEED)
}

/// Shard index for a packed key: one Fx round, then reduce modulo the
/// shard count. Used by the sharded rendezvous tables — including the
/// invocation-multiplexed one, where the invocation bits sit in the
/// *high* half of the low word and a plain `key % n` would map every
/// invocation's root-tag traffic onto the same few shards.
#[inline]
pub fn shard64(word: u64, n_shards: usize) -> usize {
    (mix64(word) % n_shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(hash_of(&key), hash_of(&key));
        }
        let triple = (7u32, 3u32, 999u32);
        assert_eq!(hash_of(&triple), hash_of(&triple));
    }

    #[test]
    fn dense_integers_disperse() {
        // Consecutive keys (the dense OpId/TagId space) must not land in
        // the same high-order region: with 16× more keys than buckets, a
        // well-mixed top byte covers essentially all 256 values.
        let tops: std::collections::HashSet<u8> =
            (0u64..4096).map(|k| (hash_of(&k) >> 56) as u8).collect();
        assert!(tops.len() > 250, "only {} distinct top bytes", tops.len());
    }

    #[test]
    fn byte_path_matches_itself_and_differs_by_length() {
        let mut a = FxHasher::default();
        a.write(b"hello world, this is 20+");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is 20+");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn shard64_disperses_high_bit_keys() {
        // Keys differing only in their top invocation bits (the serve
        // key layout) must still spread across shards.
        let shards: std::collections::HashSet<usize> = (0..16u64)
            .map(|inv| shard64((inv << 60) | 3, 32))
            .collect();
        assert!(shards.len() > 8, "only {} shards hit", shards.len());
        assert_eq!(shard64(7, 0), 0, "degenerate shard count is clamped");
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
    }
}
