//! Seeded fault injection ("chaos") for the threaded executor.
//!
//! The tagged-token machine only deserves the name if every token is
//! accounted for *even when an operator misbehaves*. This module defines
//! the deterministic fault model the executor is hardened against:
//!
//! * **worker-local delays** — a worker sleeps a few microseconds before
//!   taking a batch, perturbing the schedule so rendezvous races and
//!   park/wake windows are actually explored;
//! * **forced steals** — a worker skips its own queue and goes straight
//!   to the injector/steal path, migrating serial chains adversarially;
//! * **operator panics** — a firing panics mid-flight; the scheduler must
//!   contain it ([`crate::exec::MachineError::WorkerPanicked`]), not take
//!   the host process down;
//! * **token drops** — an emitted token silently vanishes; the run must
//!   surface [`crate::exec::MachineError::TokenLeak`], never hang;
//! * **token duplications** — an emitted token is sent twice on an arc
//!   into a rendezvous operator; the waiting-matching store (the ETS
//!   machine's architectural point of duplicate detection) must report
//!   [`crate::exec::MachineError::TokenCollision`].
//!
//! All randomness is a seeded xorshift64* stream, split per worker, so a
//! `(seed, worker)` pair draws the same decisions on every run. The
//! *interleaving* of workers is still the OS scheduler's, which is
//! exactly the point: results (or typed errors) must be stable under any
//! interleaving the fault plan permits.
//!
//! The chaos layer is `Option`-gated everywhere: an ordinary run pays
//! one `Option::is_none` branch per batch and per emitted token, which
//! the `check-bench --compare` gate confirms is free.

/// Seeded per-worker random stream for fault decisions.
///
/// A trimmed copy of the workspace PRNG (`cf2df-bench`'s xorshift64*
/// behind a splitmix64 disperser). Duplicated here because the machine
/// crate sits *below* the bench crate in the dependency graph and the
/// workspace builds offline with zero external crates.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator from a 64-bit seed; any seed is valid, including 0.
    pub fn seed_from_u64(seed: u64) -> ChaosRng {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        ChaosRng {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// The stream for worker `w` under campaign seed `seed`: dispersed
    /// so per-worker streams are uncorrelated.
    pub fn for_worker(seed: u64, w: usize) -> ChaosRng {
        ChaosRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0xa076_1d64_78bd_642f))
    }

    /// Next 64 uniform bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// A deterministic fault-injection plan for one threaded run.
///
/// All probabilities are per *decision point*: `delay`/`force_steal` per
/// scheduler batch, `panic` per operator firing, `drop`/`duplicate` per
/// emitted token. Zero probabilities make the corresponding fault
/// impossible; [`ChaosConfig::off`] disables everything (and is what an
/// absent config means).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault streams (split per worker).
    pub seed: u64,
    /// Probability a worker sleeps before taking a batch.
    pub delay_prob: f64,
    /// Length of an injected delay, in microseconds.
    pub delay_us: u64,
    /// Probability a worker skips its own queue and tries the
    /// injector/steal path first (falling back to its own queue, so work
    /// is never stranded).
    pub force_steal_prob: f64,
    /// Probability an operator firing panics.
    pub panic_prob: f64,
    /// Probability an emitted token is dropped.
    pub drop_prob: f64,
    /// Probability an emitted token into a rendezvous operator is sent
    /// twice.
    pub dup_prob: f64,
}

impl ChaosConfig {
    /// No faults at all (the identity plan).
    pub fn off(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_prob: 0.0,
            delay_us: 0,
            force_steal_prob: 0.0,
            panic_prob: 0.0,
            drop_prob: 0.0,
            dup_prob: 0.0,
        }
    }

    /// Benign schedule perturbation: delays + forced steals only. A run
    /// under this plan must still match the simulator bit-for-bit.
    pub fn perturb(seed: u64) -> ChaosConfig {
        ChaosConfig {
            delay_prob: 0.05,
            delay_us: 20,
            force_steal_prob: 0.25,
            ..ChaosConfig::off(seed)
        }
    }

    /// Operator panics (plus mild perturbation).
    pub fn panics(seed: u64) -> ChaosConfig {
        ChaosConfig {
            panic_prob: 0.02,
            force_steal_prob: 0.1,
            ..ChaosConfig::off(seed)
        }
    }

    /// Token drops (plus mild perturbation).
    pub fn drops(seed: u64) -> ChaosConfig {
        ChaosConfig {
            drop_prob: 0.02,
            force_steal_prob: 0.1,
            ..ChaosConfig::off(seed)
        }
    }

    /// Token duplications (plus mild perturbation).
    pub fn dups(seed: u64) -> ChaosConfig {
        ChaosConfig {
            dup_prob: 0.05,
            force_steal_prob: 0.1,
            ..ChaosConfig::off(seed)
        }
    }

    /// Everything at once, at half strength.
    pub fn mixed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            delay_prob: 0.02,
            delay_us: 10,
            force_steal_prob: 0.1,
            panic_prob: 0.01,
            drop_prob: 0.01,
            dup_prob: 0.02,
        }
    }

    /// True when the plan can corrupt execution (as opposed to merely
    /// perturbing the schedule): such runs are allowed — required, when a
    /// fault actually fires — to end in a typed [`crate::exec::MachineError`].
    pub fn is_destructive(&self) -> bool {
        self.panic_prob > 0.0 || self.drop_prob > 0.0 || self.dup_prob > 0.0
    }
}

/// Tallies of the faults a chaos plan actually injected, surfaced in
/// [`crate::metrics::ParMetrics::chaos`]. All zero on ordinary runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosTallies {
    /// Worker-local delays slept.
    pub delays: u64,
    /// Batches for which a worker was forced onto the steal path.
    pub forced_steals: u64,
    /// Operator firings that were made to panic.
    pub panics: u64,
    /// Emitted tokens that were dropped.
    pub drops: u64,
    /// Emitted tokens that were duplicated.
    pub dups: u64,
}

impl ChaosTallies {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.delays + self.forced_steals + self.panics + self.drops + self.dups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_distinct_workers_distinct() {
        let mut a = ChaosRng::for_worker(7, 0);
        let mut b = ChaosRng::for_worker(7, 0);
        let mut c = ChaosRng::for_worker(7, 1);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = ChaosRng::seed_from_u64(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "0.25 wildly off: {hits}");
    }

    #[test]
    fn profiles_classify_destructiveness() {
        assert!(!ChaosConfig::off(1).is_destructive());
        assert!(!ChaosConfig::perturb(1).is_destructive());
        assert!(ChaosConfig::panics(1).is_destructive());
        assert!(ChaosConfig::drops(1).is_destructive());
        assert!(ChaosConfig::dups(1).is_destructive());
        assert!(ChaosConfig::mixed(1).is_destructive());
    }

    #[test]
    fn tallies_sum() {
        let t = ChaosTallies {
            delays: 1,
            forced_steals: 2,
            panics: 3,
            drops: 4,
            dups: 5,
        };
        assert_eq!(t.total(), 15);
    }
}
