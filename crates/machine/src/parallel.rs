//! A multi-threaded token-pushing executor.
//!
//! Where [`crate::exec`] is a deterministic discrete-event *simulator*
//! measuring idealized parallelism, this module actually executes a
//! dataflow graph on OS threads: worker threads pull tokens from
//! work-stealing run queues ([`crate::scheduler`]), rendezvous them in
//! sharded slot tables, fire operators, and push result tokens back. It
//! demonstrates the paper's point that the translated graphs are
//! genuinely parallel programs — any interleaving the token dependences
//! permit yields the same final memory, which the tests check against
//! the deterministic simulator.
//!
//! Everything here is std-only (offline/no-deps build policy), and the
//! shared state is engineered so independent memory operations really do
//! proceed in parallel, as Schema 2 promises:
//!
//! * ordinary memory cells are `AtomicI64`s — loads and stores never take
//!   a lock (the dataflow graph's access tokens are what order them);
//! * I-structure cells are lock-striped by address;
//! * the tag (iteration-context) interner is sharded by
//!   `(parent, loop, iteration)`, each shard allocating `TagId`s from a
//!   disjoint arithmetic progression;
//! * rendezvous slots are sharded by `(operator, tag)` hash, as before;
//! * two-input operators whose partner token is produced by the *same
//!   worker in the same batch* rendezvous in a worker-local pair map and
//!   never touch the sharded table at all (the fast path, visible as
//!   [`ParMetrics::fast_path_fires`]); unpaired entries are flushed back
//!   to the ordinary queue at the end of every batch, so the global
//!   table remains the single point of truth between batches.
//!
//! Shutdown is explicit: a sent token is never dropped. Workers drain
//! until the token population hits zero (clean completion after `End`,
//! or quiescence without `End` — reported as deadlock) or a recorded
//! [`MachineError`] halts the run. The scheduler's debug assertion and
//! [`tests::no_token_is_dropped_without_a_recorded_error`] pin this down.
//!
//! Timing metrics are not meaningful here (wall-clock benches live in
//! `cf2df-bench/benches/executor.rs`); the executor reports
//! fired-operator and memory-op counts.

use crate::chaos::{ChaosConfig, ChaosRng, ChaosTallies};
use crate::compiled::{
    compile, fire_op, key, unkey, CKind, CompiledGraph, Engine, FireInputs, FireVals, SlotVals,
};
use crate::exec::MachineError;
use crate::hash::FxHashMap;
use crate::memory::{DeferredRead, MemError};
use crate::metrics::ParMetrics;
use crate::scheduler::{Ctx, Scheduler, WorkerPool};
use crate::tag::TagId;
use cf2df_cfg::{LoopId, MemLayout, VarId};
use cf2df_dfg::{Dfg, OpId, Port};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Execution limits and fault injection for a threaded run. The
/// defaults ([`ParConfig::default`]) reproduce the plain entry points:
/// unlimited fuel, no watchdog, no trace, no chaos, full tag space.
#[derive(Clone, Debug)]
pub struct ParConfig {
    /// Firing budget (the threaded analogue of
    /// [`crate::exec::MachineConfig::fuel`]): a run that fires more
    /// operators returns [`MachineError::FuelExhausted`] instead of
    /// spinning forever on a runaway cyclic graph. `u64::MAX` means
    /// unlimited.
    pub fuel: u64,
    /// Wall-clock bound: a monitor thread halts the scheduler when the
    /// run exceeds it, and the run returns
    /// [`MachineError::WatchdogTimeout`]. `None` means no watchdog.
    pub watchdog: Option<Duration>,
    /// Capacity of the bounded fire-event ring ([`FireEvent`]); `None`
    /// disables tracing entirely (zero allocation).
    pub trace_capacity: Option<usize>,
    /// Fault-injection plan (see [`crate::chaos`]); `None` on ordinary
    /// runs.
    pub chaos: Option<ChaosConfig>,
    /// Largest admissible tag id. Interning beyond it returns
    /// [`MachineError::TagSpaceExhausted`] through the halt path instead
    /// of panicking. The default (`u32::MAX`) is the type's full range —
    /// the error every deep-enough loop nest would eventually hit.
    pub tag_cap: u32,
}

impl Default for ParConfig {
    fn default() -> ParConfig {
        ParConfig {
            fuel: u64::MAX,
            watchdog: None,
            trace_capacity: None,
            chaos: None,
            tag_cap: u32::MAX,
        }
    }
}

/// Result of a threaded run.
#[derive(Clone, Debug)]
pub struct ParOutcome {
    /// Final ordinary memory.
    pub memory: Vec<i64>,
    /// Final I-structure memory.
    pub ist_memory: Vec<i64>,
    /// Operators fired.
    pub fired: u64,
    /// Executor metrics: per-worker scheduler counters, rendezvous
    /// pressure, tag occupancy, deferred-read peaks. Always collected —
    /// the counters are relaxed atomics and thread-local tallies.
    pub metrics: ParMetrics,
}

/// One operator firing captured by the optional trace ring
/// ([`run_threaded_traced`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FireEvent {
    /// Global firing sequence number (total order across workers).
    pub seq: u64,
    /// Worker that fired the operator.
    pub worker: usize,
    /// The operator.
    pub op: OpId,
    /// The iteration tag, rendered (e.g. `root.L0[3]`).
    pub tag: String,
}

/// Bounded ring of fire events for post-mortem debugging of deadlocks
/// and tag mismatches. Keeps the *last* `cap` firings. Absent (and
/// therefore allocation-free) on ordinary [`run_threaded`] runs.
struct TraceRing {
    cap: usize,
    seq: AtomicU64,
    buf: Mutex<VecDeque<(u64, usize, OpId, TagId)>>,
}

impl TraceRing {
    fn new(cap: usize) -> TraceRing {
        let cap = cap.max(1);
        TraceRing {
            cap,
            seq: AtomicU64::new(0),
            // Preallocation is bounded: callers may ask for an effectively
            // unbounded ring (cap = usize::MAX) and let it grow on demand.
            buf: Mutex::new(VecDeque::with_capacity(cap.min(4096))),
        }
    }

    fn push(&self, worker: usize, op: OpId, tag: TagId) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut buf = lock(&self.buf);
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back((seq, worker, op, tag));
    }
}

#[derive(Clone, Copy, Debug)]
struct Token {
    to: Port,
    tag: TagId,
    value: i64,
}

/// Shards in the rendezvous-slot table.
pub(crate) const SLOT_SHARDS: usize = 32;
/// Stripes in the I-structure store.
const IST_STRIPES: usize = 16;
/// Shards in the tag interner.
const TAG_SHARDS: usize = 16;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One shard of the rendezvous-slot table, keyed by the packed
/// `(operator, tag)` word ([`crate::compiled::key`]) on the vendored
/// integer hasher — one 64-bit hash per probe instead of SipHash over a
/// two-field tuple.
pub(crate) type SlotShard = Mutex<FxHashMap<u64, SlotVals>>;

// ---------------------------------------------------------------------
// Sharded memory
// ---------------------------------------------------------------------

/// One I-structure cell (write-once, deferred reads).
#[derive(Debug, Default)]
enum IstSlot {
    #[default]
    Empty,
    Full(i64),
    Deferred(Vec<DeferredRead<(OpId, TagId)>>),
}

/// Concurrent machine memory: atomic ordinary cells plus a lock-striped
/// I-structure overlay. The dataflow graph's access tokens are
/// responsible for ordering, exactly as in the sequential [`crate::memory::Memory`];
/// the cells only have to be individually race-free. Crate-visible:
/// [`crate::serve`] instantiates one per inflight invocation.
pub(crate) struct ParMemory {
    cells: Vec<AtomicI64>,
    /// Stripe `s` holds the cells of every address `a ≡ s (mod IST_STRIPES)`,
    /// at index `a / IST_STRIPES`.
    ist: Vec<Mutex<Vec<IstSlot>>>,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Total I-structure reads deferred (arrived before their write).
    pub(crate) deferred_reads: AtomicU64,
    /// Currently outstanding deferred reads, and the observed peak.
    deferred_now: AtomicU64,
    pub(crate) deferred_peak: AtomicU64,
}

impl ParMemory {
    pub(crate) fn new(layout: &MemLayout) -> ParMemory {
        let n = layout.total_cells() as usize;
        let per_stripe = n.div_ceil(IST_STRIPES);
        ParMemory {
            cells: (0..n).map(|_| AtomicI64::new(0)).collect(),
            ist: (0..IST_STRIPES)
                .map(|_| {
                    Mutex::new(
                        std::iter::repeat_with(IstSlot::default)
                            .take(per_stripe)
                            .collect(),
                    )
                })
                .collect(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            deferred_reads: AtomicU64::new(0),
            deferred_now: AtomicU64::new(0),
            deferred_peak: AtomicU64::new(0),
        }
    }

    /// Record `n` newly deferred reads and update the peak.
    fn note_deferred(&self, n: u64) {
        self.deferred_reads.fetch_add(n, Ordering::Relaxed);
        let now = self.deferred_now.fetch_add(n, Ordering::Relaxed) + n;
        self.deferred_peak.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn read_scalar(&self, layout: &MemLayout, var: VarId) -> i64 {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.cells[layout.base(var) as usize].load(Ordering::SeqCst)
    }

    pub(crate) fn write_scalar(&self, layout: &MemLayout, var: VarId, value: i64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.cells[layout.base(var) as usize].store(value, Ordering::SeqCst);
    }

    pub(crate) fn read_element(&self, layout: &MemLayout, var: VarId, index: i64) -> Result<i64, MemError> {
        let addr = layout
            .element(var, index)
            .ok_or(MemError::OutOfBounds { var, index })?;
        self.reads.fetch_add(1, Ordering::Relaxed);
        Ok(self.cells[addr as usize].load(Ordering::SeqCst))
    }

    pub(crate) fn write_element(
        &self,
        layout: &MemLayout,
        var: VarId,
        index: i64,
        value: i64,
    ) -> Result<(), MemError> {
        let addr = layout
            .element(var, index)
            .ok_or(MemError::OutOfBounds { var, index })?;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.cells[addr as usize].store(value, Ordering::SeqCst);
        Ok(())
    }

    pub(crate) fn ist_read(
        &self,
        layout: &MemLayout,
        var: VarId,
        index: i64,
        ctx: (OpId, TagId),
    ) -> Result<Option<i64>, MemError> {
        let addr = layout
            .element(var, index)
            .ok_or(MemError::OutOfBounds { var, index })? as usize;
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut stripe = lock(&self.ist[addr % IST_STRIPES]);
        let slot = &mut stripe[addr / IST_STRIPES];
        match slot {
            IstSlot::Full(v) => Ok(Some(*v)),
            IstSlot::Empty => {
                *slot = IstSlot::Deferred(vec![DeferredRead { ctx }]);
                drop(stripe);
                self.note_deferred(1);
                Ok(None)
            }
            IstSlot::Deferred(q) => {
                q.push(DeferredRead { ctx });
                drop(stripe);
                self.note_deferred(1);
                Ok(None)
            }
        }
    }

    pub(crate) fn ist_write(
        &self,
        layout: &MemLayout,
        var: VarId,
        index: i64,
        value: i64,
    ) -> Result<Vec<DeferredRead<(OpId, TagId)>>, MemError> {
        let addr = layout
            .element(var, index)
            .ok_or(MemError::OutOfBounds { var, index })? as usize;
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut stripe = lock(&self.ist[addr % IST_STRIPES]);
        let slot = &mut stripe[addr / IST_STRIPES];
        match std::mem::take(slot) {
            IstSlot::Full(_) => Err(MemError::IStructureRewrite { addr: addr as u32 }),
            IstSlot::Empty => {
                *slot = IstSlot::Full(value);
                Ok(Vec::new())
            }
            IstSlot::Deferred(q) => {
                *slot = IstSlot::Full(value);
                drop(stripe);
                self.deferred_now
                    .fetch_sub(q.len() as u64, Ordering::Relaxed);
                Ok(q)
            }
        }
    }

    pub(crate) fn cells_snapshot(&self) -> Vec<i64> {
        self.cells.iter().map(|c| c.load(Ordering::SeqCst)).collect()
    }

    /// I-structure snapshot in address order (empty cells read as 0).
    pub(crate) fn ist_snapshot(&self) -> Vec<i64> {
        let stripes: Vec<MutexGuard<'_, Vec<IstSlot>>> = self.ist.iter().map(lock).collect();
        (0..self.cells.len())
            .map(|a| match &stripes[a % IST_STRIPES][a / IST_STRIPES] {
                IstSlot::Full(v) => *v,
                _ => 0,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Sharded tag interner
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct TagCtx {
    parent: TagId,
    loop_id: LoopId,
    iter: u32,
}

#[derive(Default)]
struct TagShard {
    /// Interner on the vendored integer hasher ([`crate::hash`]): the
    /// keys are small dense integers from the program, so SipHash's DoS
    /// resistance buys nothing here.
    intern: FxHashMap<(TagId, LoopId, u32), TagId>,
    /// `ctxs[k]` is the context of `TagId(k * TAG_SHARDS + shard_index)`;
    /// `None` only for the root slot in shard 0.
    ctxs: Vec<Option<TagCtx>>,
}

/// Concurrent interning table for iteration contexts (the parallel
/// analogue of [`crate::tag::TagTable`]). Shard `s` allocates the ids
/// `{ k * TAG_SHARDS + s }`, so allocation never contends across shards,
/// and a tag's shard is recoverable from its id for lock-local `info`
/// lookups. Interning still guarantees that every token line entering
/// the same iteration of the same loop under the same parent receives
/// the *same* tag, because one shard owns each `(parent, loop, iter)` key.
/// Crate-visible: [`crate::serve`] gives every inflight invocation its
/// own table over its reserved slice of the tag space.
pub(crate) struct ParTagTable {
    shards: Vec<Mutex<TagShard>>,
    /// Largest admissible tag id; interning past it is a
    /// [`MachineError::TagSpaceExhausted`], not a panic.
    cap: u32,
    /// Request id carried into [`MachineError::TagSpaceExhausted`] when
    /// this interner serves one multiplexed invocation; `None` for
    /// whole-run interners.
    invocation: Option<u64>,
}

impl ParTagTable {
    fn new(cap: u32) -> ParTagTable {
        Self::new_for(cap, None)
    }

    /// An interner whose exhaustion error names the multiplexed
    /// invocation (request) it belongs to.
    pub(crate) fn new_for(cap: u32, invocation: Option<u64>) -> ParTagTable {
        let mut shards: Vec<Mutex<TagShard>> = (0..TAG_SHARDS)
            .map(|_| Mutex::new(TagShard::default()))
            .collect();
        // Reserve id 0 (= slot 0 of shard 0) for the root tag.
        shards[0].get_mut().unwrap().ctxs.push(None);
        ParTagTable {
            shards,
            cap,
            invocation,
        }
    }

    fn shard_of(parent: TagId, loop_id: LoopId, iter: u32) -> usize {
        let h = (parent.0 as usize)
            .wrapping_mul(0x9e37_79b1)
            .wrapping_add((loop_id.0 as usize).wrapping_mul(31))
            .wrapping_add(iter as usize);
        h % TAG_SHARDS
    }

    /// The tag for iteration `iter` of loop `loop_id` under `parent`.
    /// Fails with [`MachineError::TagSpaceExhausted`] — routed through
    /// the halt path by the callers — once the shard's arithmetic
    /// progression would pass the cap (or overflow the id type).
    pub(crate) fn child(
        &self,
        parent: TagId,
        loop_id: LoopId,
        iter: u32,
    ) -> Result<TagId, MachineError> {
        let s = Self::shard_of(parent, loop_id, iter);
        let mut shard = lock(&self.shards[s]);
        if let Some(&t) = shard.intern.get(&(parent, loop_id, iter)) {
            return Ok(t);
        }
        let k = shard.ctxs.len();
        let t = match u32::try_from(k * TAG_SHARDS + s) {
            Ok(id) if id <= self.cap => TagId(id),
            _ => {
                return Err(MachineError::TagSpaceExhausted {
                    cap: self.cap,
                    invocation: self.invocation,
                })
            }
        };
        shard.ctxs.push(Some(TagCtx { parent, loop_id, iter }));
        shard.intern.insert((parent, loop_id, iter), t);
        Ok(t)
    }

    /// Decompose a tag into `(parent, loop, iteration)`; `None` for the
    /// root.
    pub(crate) fn info(&self, tag: TagId) -> Option<(TagId, LoopId, u32)> {
        let s = tag.index() % TAG_SHARDS;
        let k = tag.index() / TAG_SHARDS;
        let shard = lock(&self.shards[s]);
        shard
            .ctxs
            .get(k)
            .copied()
            .flatten()
            .map(|c| (c.parent, c.loop_id, c.iter))
    }

    /// Human-readable rendering for error messages.
    pub(crate) fn render(&self, tag: TagId) -> String {
        match self.info(tag) {
            None => "root".to_owned(),
            Some((p, l, i)) => format!("{}.{:?}[{}]", self.render(p), l, i),
        }
    }

    /// Interner occupancy: distinct tags created, excluding the root.
    pub(crate) fn created(&self) -> u64 {
        let total: u64 = self.shards.iter().map(|s| lock(s).ctxs.len() as u64).sum();
        total - 1
    }
}

// ---------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------

/// Per-worker rendezvous state for the same-batch fast path. Only ever
/// locked by its owning worker (and once more at the end of the run to
/// collect counters), so the mutex is effectively uncontended.
#[derive(Default)]
struct WorkerLocal {
    /// Half-filled two-input rendezvous, keyed like the global table
    /// (packed `(op, tag)` word, integer hasher). Drained back to the
    /// run queue at the end of every batch.
    pairs: FxHashMap<u64, [Option<i64>; 2]>,
    /// Locally completed joins awaiting firing, drained after each
    /// token (firing can complete further joins).
    ready: Vec<(u64, [i64; 2])>,
    /// Joins completed through this fast path.
    fast_path: u64,
}

/// Executor-level fault injection state: per-worker fault streams (a
/// *different* stream family than the scheduler's delay/steal faults,
/// so the two layers draw uncorrelated decisions from one campaign
/// seed) plus tallies of the destructive faults actually fired.
pub(crate) struct ChaosState {
    pub(crate) cfg: ChaosConfig,
    /// Per-worker streams; each mutex is only ever taken by its owning
    /// worker, so it is uncontended.
    pub(crate) rngs: Vec<Mutex<ChaosRng>>,
    pub(crate) panics: AtomicU64,
    pub(crate) drops: AtomicU64,
    pub(crate) dups: AtomicU64,
}

impl ChaosState {
    pub(crate) fn new(cfg: ChaosConfig, n_workers: usize) -> ChaosState {
        ChaosState {
            cfg,
            rngs: (0..n_workers)
                // Offset the seed so the executor's panic/drop/dup
                // stream differs from the scheduler's delay/steal
                // stream for the same (seed, worker).
                .map(|w| Mutex::new(ChaosRng::for_worker(cfg.seed ^ 0x517c_c1b7_2722_0a95, w)))
                .collect(),
            panics: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            dups: AtomicU64::new(0),
        }
    }
}

struct Shared<'g> {
    /// The dense lowered graph: CSR destination slices, Copy operator
    /// descriptors, flattened immediates and macro steps. What used to
    /// be per-run `dests`/`live`/`fast_ok`/`dup_ok` side tables is
    /// computed once in [`compile`] and carried in [`crate::compiled::OpDesc`]
    /// flags (see there for the `dup_ok` detectability argument).
    cg: &'g CompiledGraph,
    layout: MemLayout,
    /// Firing budget; `u64::MAX` means unlimited.
    fuel: u64,
    /// Fault injection for panics/drops/dups. Boxed so an ordinary run
    /// pays one null check per firing / per [`emit`] call and the chaos
    /// machinery stays off the `Shared` hot cache lines.
    chaos: Option<Box<ChaosState>>,
    /// Worker-local fast-path state, indexed by worker.
    locals: Vec<Mutex<WorkerLocal>>,
    /// Rendezvous slots, sharded by (op, tag) hash.
    slots: Vec<SlotShard>,
    tags: ParTagTable,
    mem: ParMemory,
    end_seen: AtomicBool,
    failed: Mutex<Option<MachineError>>,
    fired: AtomicU64,
    /// Tokens that rendezvoused into a slot without completing it.
    merged: AtomicU64,
    /// Compound `Macro` firings and the operator firings they elided.
    macro_fires: AtomicU64,
    ops_elided: AtomicU64,
    /// Currently occupied rendezvous slots (whole table) and the peak.
    slots_occupied: AtomicU64,
    slots_peak: AtomicU64,
    /// Per-shard high-water marks of the slot table.
    slot_high: Vec<AtomicU64>,
    /// Optional bounded fire-event ring; `None` (zero allocation, one
    /// branch per firing) on ordinary runs.
    trace: Option<TraceRing>,
}

impl Shared<'_> {
    fn shard(&self, op: OpId, tag: TagId) -> usize {
        (op.0 as usize)
            .wrapping_mul(0x9e37_79b1)
            .wrapping_add(tag.0 as usize)
            % SLOT_SHARDS
    }

    /// Record the first failure and halt the run. Tokens still queued are
    /// abandoned *only* on this path — with an error recorded — which is
    /// what makes a silently dropped token impossible.
    fn fail(&self, ctx: &Ctx<'_, Token>, e: MachineError) {
        let mut f = lock(&self.failed);
        if f.is_none() {
            *f = Some(e);
        }
        drop(f);
        ctx.halt();
    }

    /// Describe every partially-filled rendezvous slot — operator, tag,
    /// and which input ports are filled — mirroring the simulator's
    /// deadlock report. Sorted for determinism, truncated to 10.
    fn describe_pending(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for shard in &self.slots {
            for (&k, vals) in lock(shard).iter() {
                let (op, tag) = unkey(k);
                let filled = vals.filled_ports();
                out.push(format!(
                    "{} {op:?} tag {} waiting (filled ports {filled:?})",
                    self.cg.mnemonic(op),
                    self.tags.render(tag),
                ));
            }
        }
        out.sort();
        out.truncate(10);
        if out.is_empty() {
            out.push(
                "no partially-filled rendezvous slots: tokens drained without reaching End"
                    .to_owned(),
            );
        }
        out
    }
}

/// A persistent set of executor worker threads, reusable across
/// [`run_threaded_pooled`] calls. Spawning OS threads costs tens of
/// microseconds — comparable to an entire corpus-program execution — so
/// repeated runs (benchmarks, servers) should spawn a pool once and
/// park it between runs rather than pay that price inside every run.
pub struct ExecutorPool {
    pub(crate) pool: WorkerPool,
}

impl ExecutorPool {
    /// Spawn a pool of `n_threads` executor workers (`n_threads >= 1`).
    pub fn new(n_threads: usize) -> ExecutorPool {
        ExecutorPool {
            pool: WorkerPool::new(n_threads),
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }
}

/// Execute a dataflow graph on `n_threads` worker threads. Compiles the
/// graph internally; callers running the same graph repeatedly should
/// [`compile`] once and use [`run_threaded_compiled`].
pub fn run_threaded(
    g: &Dfg,
    layout: &MemLayout,
    n_threads: usize,
) -> Result<ParOutcome, MachineError> {
    let cg = compile(g)?;
    run_inner(&cg, layout, n_threads, None, &ParConfig::default()).0
}

/// As [`run_threaded`], but on an already-[`compile`]d graph: the
/// lowering cost is paid once and the dense tables are reused across
/// runs.
pub fn run_threaded_compiled(
    cg: &CompiledGraph,
    layout: &MemLayout,
    n_threads: usize,
) -> Result<ParOutcome, MachineError> {
    run_inner(cg, layout, n_threads, None, &ParConfig::default()).0
}

/// As [`run_threaded`], but on a pre-spawned [`ExecutorPool`] — the
/// worker count is the pool's width and no threads are created or torn
/// down inside the call.
pub fn run_threaded_pooled(
    g: &Dfg,
    layout: &MemLayout,
    pool: &ExecutorPool,
) -> Result<ParOutcome, MachineError> {
    let cg = compile(g)?;
    run_inner(&cg, layout, pool.workers(), Some(pool), &ParConfig::default()).0
}

/// As [`run_threaded`], additionally capturing the last `capacity` fire
/// events in a bounded ring for post-mortem analysis. The trace is
/// returned on *both* the success and the failure path — the failure
/// path (deadlock, tag mismatch) is what it is for.
pub fn run_threaded_traced(
    g: &Dfg,
    layout: &MemLayout,
    n_threads: usize,
    capacity: usize,
) -> (Result<ParOutcome, MachineError>, Vec<FireEvent>) {
    let cfg = ParConfig {
        trace_capacity: Some(capacity),
        ..ParConfig::default()
    };
    let cg = match compile(g) {
        Ok(cg) => cg,
        Err(e) => return (Err(e), Vec::new()),
    };
    let (result, _metrics, trace) = run_inner(&cg, layout, n_threads, None, &cfg);
    (result, trace)
}

/// The fully-configurable entry point: limits and fault injection from
/// `cfg`, metrics returned on *every* path. On success the returned
/// [`ParMetrics`] equals `outcome.metrics`; on failure it is the
/// partial metrics gathered up to the halt — which is how a
/// [`MachineError::WorkerPanicked`] run still reports what its workers
/// did, including the injected-fault tallies.
pub fn run_threaded_with(
    g: &Dfg,
    layout: &MemLayout,
    n_threads: usize,
    cfg: &ParConfig,
) -> (Result<ParOutcome, MachineError>, ParMetrics, Vec<FireEvent>) {
    let cg = match compile(g) {
        Ok(cg) => cg,
        Err(e) => return (Err(e), ParMetrics::default(), Vec::new()),
    };
    run_inner(&cg, layout, n_threads, None, cfg)
}

/// As [`run_threaded_with`], on a pre-spawned [`ExecutorPool`]. The
/// pool survives contained worker panics and stays usable for
/// subsequent runs.
pub fn run_threaded_pooled_with(
    g: &Dfg,
    layout: &MemLayout,
    pool: &ExecutorPool,
    cfg: &ParConfig,
) -> (Result<ParOutcome, MachineError>, ParMetrics, Vec<FireEvent>) {
    let cg = match compile(g) {
        Ok(cg) => cg,
        Err(e) => return (Err(e), ParMetrics::default(), Vec::new()),
    };
    run_inner(&cg, layout, pool.workers(), Some(pool), cfg)
}

/// As [`run_threaded_pooled_with`], on an already-[`compile`]d graph —
/// the zero-recompile entry point for benchmarks and pooled servers.
pub fn run_threaded_compiled_pooled_with(
    cg: &CompiledGraph,
    layout: &MemLayout,
    pool: &ExecutorPool,
    cfg: &ParConfig,
) -> (Result<ParOutcome, MachineError>, ParMetrics, Vec<FireEvent>) {
    run_inner(cg, layout, pool.workers(), Some(pool), cfg)
}

fn run_inner(
    cg: &CompiledGraph,
    layout: &MemLayout,
    n_threads: usize,
    pool: Option<&ExecutorPool>,
    cfg: &ParConfig,
) -> (Result<ParOutcome, MachineError>, ParMetrics, Vec<FireEvent>) {
    let n_threads = n_threads.max(1);
    // clone() audit: the per-run `dests`/`live`/`fast_ok`/`dup_ok`
    // rebuild (four graph walks and a nest of Vecs) is gone — all of it
    // lives in the [`CompiledGraph`], built once per compile.
    let shared = Shared {
        cg,
        layout: layout.clone(),
        fuel: cfg.fuel,
        chaos: cfg.chaos.map(|c| Box::new(ChaosState::new(c, n_threads))),
        locals: (0..n_threads)
            .map(|_| Mutex::new(WorkerLocal::default()))
            .collect(),
        slots: std::iter::repeat_with(|| Mutex::new(FxHashMap::default()))
            .take(SLOT_SHARDS)
            .collect(),
        tags: ParTagTable::new(cfg.tag_cap),
        mem: ParMemory::new(layout),
        end_seen: AtomicBool::new(false),
        failed: Mutex::new(None),
        fired: AtomicU64::new(0),
        merged: AtomicU64::new(0),
        macro_fires: AtomicU64::new(0),
        ops_elided: AtomicU64::new(0),
        slots_occupied: AtomicU64::new(0),
        slots_peak: AtomicU64::new(0),
        slot_high: (0..SLOT_SHARDS).map(|_| AtomicU64::new(0)).collect(),
        trace: cfg.trace_capacity.map(TraceRing::new),
    };

    let sched: Scheduler<Token> = Scheduler::new(n_threads).with_chaos(cfg.chaos);
    // Seed initial tokens by *operator locality*, not round-robin: the
    // start fan-out frequently feeds both halves of two-input joins, and
    // spreading those halves across workers defeats the worker-local
    // rendezvous fast path before the run even begins. Blocking the
    // operator-id space over the workers keeps join halves together
    // (destination ports of one op are adjacent ids) while still giving
    // every worker a contiguous share of the graph to start on.
    // clone() audit: seeding borrows the CSR destination slice directly
    // (it used to clone the start op's dest vector).
    let start = cg.start();
    let n_ops = cg.len().max(1);
    sched.seed_with(
        cg.dests(start, 0).iter().map(|&to| Token {
            to,
            tag: TagId::ROOT,
            value: 0,
        }),
        |t: &Token| t.to.op.index() * n_threads / n_ops,
    );

    let body = |ctx: &Ctx<'_, Token>, batch: &mut Vec<Token>| {
        let local = &shared.locals[ctx.worker()];
        for t in batch.drain(..) {
            process(&shared, ctx, t);
            drain_ready(&shared, local, ctx);
        }
        // End of batch: the fast-path window closes. Unpaired halves go
        // back through the ordinary queue (and, from there, the global
        // rendezvous table), so nothing is held across a park.
        flush_local_pairs(local, ctx);
    };
    let run_sched = || match pool {
        Some(p) => sched.run_in(&p.pool, body),
        None => sched.run(body),
    };
    // With a watchdog, a monitor thread converts a wedged run into an
    // explicit halt: it waits on a condvar with a deadline, and the run
    // thread flips `done` under the same lock on completion, so exactly
    // one of {completed, timed out} wins — a timeout can never be
    // recorded after a successful finish races past it.
    let mut timed_out = false;
    let outcome = match cfg.watchdog {
        None => run_sched(),
        Some(bound) => {
            let done = Mutex::new(false);
            let done_cv = Condvar::new();
            let fired_watchdog = AtomicBool::new(false);
            let out = std::thread::scope(|scope| {
                scope.spawn(|| {
                    let guard = lock(&done);
                    let (guard, wait) = done_cv
                        .wait_timeout_while(guard, bound, |finished| !*finished)
                        .unwrap_or_else(|e| e.into_inner());
                    if wait.timed_out() && !*guard {
                        fired_watchdog.store(true, Ordering::SeqCst);
                        drop(guard);
                        sched.halt_external();
                    }
                });
                let out = run_sched();
                *lock(&done) = true;
                done_cv.notify_all();
                out
            });
            timed_out = fired_watchdog.load(Ordering::SeqCst);
            out
        }
    };

    // Fold the fast-path joins into the per-worker and global tallies:
    // each join consumed two tokens that never transited a run queue
    // (2 × processed), fired one operator and merged one half-pair, so
    // `tokens_processed == fired + merged` keeps holding.
    let mut workers = outcome.workers;
    let mut total_fast = 0u64;
    for (w, local) in shared.locals.iter().enumerate() {
        let l = lock(local);
        // On a halted run (error, panic, watchdog) a batch may have been
        // cut short with unpaired fast-path halves still parked here.
        debug_assert!(outcome.halted || (l.pairs.is_empty() && l.ready.is_empty()));
        workers[w].fast_path = l.fast_path;
        workers[w].processed += 2 * l.fast_path;
        total_fast += l.fast_path;
    }

    let chaos_tallies = ChaosTallies {
        delays: workers.iter().map(|w| w.chaos_delays).sum(),
        forced_steals: workers.iter().map(|w| w.chaos_forced_steals).sum(),
        panics: shared
            .chaos
            .as_ref()
            .map_or(0, |c| c.panics.load(Ordering::Relaxed)),
        drops: shared
            .chaos
            .as_ref()
            .map_or(0, |c| c.drops.load(Ordering::Relaxed)),
        dups: shared
            .chaos
            .as_ref()
            .map_or(0, |c| c.dups.load(Ordering::Relaxed)),
    };
    let metrics = ParMetrics {
        workers,
        tokens_processed: outcome.processed + 2 * total_fast,
        merged: shared.merged.load(Ordering::Relaxed),
        fast_path_fires: total_fast,
        max_pending_slots: shared.slots_peak.load(Ordering::Relaxed),
        slot_shard_high_water: shared
            .slot_high
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .collect(),
        tags_created: shared.tags.created(),
        deferred_reads: shared.mem.deferred_reads.load(Ordering::Relaxed),
        deferred_read_peak: shared.mem.deferred_peak.load(Ordering::Relaxed),
        macro_fires: shared.macro_fires.load(Ordering::Relaxed),
        ops_elided: shared.ops_elided.load(Ordering::Relaxed),
        chaos: chaos_tallies,
    };
    let trace: Vec<FireEvent> = match &shared.trace {
        None => Vec::new(),
        Some(ring) => lock(&ring.buf)
            .iter()
            .map(|&(seq, worker, op, tag)| FireEvent {
                seq,
                worker,
                op,
                tag: shared.tags.render(tag),
            })
            .collect(),
    };

    // Classify the run. Precedence matters:
    //
    //  1. a recorded `MachineError` (collision, tag fault, memory fault,
    //     fuel, tag exhaustion) is the root cause — it is what halted
    //     the run;
    //  2. a contained worker panic;
    //  3. injected token drops — deterministically a `TokenLeak`,
    //     whether the missing tokens stranded rendezvous partners
    //     (would-be deadlock) or queue residue: a vanished token must
    //     never masquerade as anything else, and never hang;
    //  4. a watchdog halt that interrupted an unfinished run;
    //  5. the ordinary no-chaos invariants: queue residue without a
    //     recorded error is a leak, quiescence without `End` a deadlock.
    //
    // A spurious watchdog firing at the completion instant (the halt
    // raced the last batch) falls through to `Ok`: the run *did* finish.
    let end_seen = shared.end_seen.load(Ordering::SeqCst);
    let chaos_drops = metrics.chaos.drops;
    let result = if let Some(e) = lock(&shared.failed).take() {
        Err(e)
    } else if let Some((worker, payload)) = outcome.panicked {
        Err(MachineError::WorkerPanicked { worker, payload })
    } else if chaos_drops > 0 {
        Err(MachineError::TokenLeak {
            leftover: chaos_drops + outcome.leftover,
        })
    } else if timed_out && outcome.halted && !(end_seen && outcome.leftover == 0) {
        Err(MachineError::WatchdogTimeout {
            millis: cfg.watchdog.map_or(0, |d| d.as_millis() as u64),
        })
    } else if outcome.leftover != 0 {
        // No failure recorded, yet tokens were left in queues: an
        // executor invariant violation. Report it as a hard error —
        // never let a dropped token pass silently, in release builds
        // included.
        Err(MachineError::TokenLeak {
            leftover: outcome.leftover,
        })
    } else if !end_seen {
        Err(MachineError::Deadlock {
            pending: shared.describe_pending(),
        })
    } else {
        Ok(ParOutcome {
            memory: shared.mem.cells_snapshot(),
            ist_memory: shared.mem.ist_snapshot(),
            fired: shared.fired.load(Ordering::SeqCst),
            metrics: metrics.clone(),
        })
    };
    (result, metrics, trace)
}

fn process(sh: &Shared<'_>, ctx: &Ctx<'_, Token>, t: Token) {
    let op = t.to.op;
    let port = t.to.port as usize;
    let cg = sh.cg;
    let desc = cg.desc(op);
    if let CKind::LoopSwitch(loop_id) = desc.kind {
        return deposit_loop_switch(sh, ctx, op, port, t, loop_id);
    }
    if desc.merge_like() {
        return fire(
            sh,
            ctx,
            op,
            t.tag,
            FireInputs::Single {
                port,
                value: t.value,
            },
        );
    }
    if desc.live <= 1 {
        // Single live input: fires immediately.
        // clone() audit: the per-firing `Vec::with_capacity(n_in)` is
        // gone — values assemble in an inline stack buffer (only
        // >INLINE_VALS fan-ins spill, counted by the audit).
        let vals = FireVals::from_imms(cg.imms(op), port, t.value, desc.is_hot());
        return fire(sh, ctx, op, t.tag, FireInputs::Full(vals.as_slice()));
    }
    let k = key(op, t.tag);
    let complete = {
        let shard_idx = sh.shard(op, t.tag);
        let mut shard = lock(&sh.slots[shard_idx]);
        let mut inserted = false;
        let slot = shard.entry(k).or_insert_with(|| {
            inserted = true;
            SlotVals::new(cg.imms(op), desc.is_hot())
        });
        if slot.is_filled(port) {
            drop(shard);
            let tag = sh.tags.render(t.tag);
            sh.fail(ctx, MachineError::TokenCollision { op, port, tag });
            return;
        }
        slot.set(port, t.value);
        let complete = slot.is_complete();
        if inserted {
            // Waiting-matching pressure: whole-table peak plus a
            // per-shard high-water mark (the shard length is
            // exact under its lock).
            let occupied = sh.slots_occupied.fetch_add(1, Ordering::Relaxed) + 1;
            sh.slots_peak.fetch_max(occupied, Ordering::Relaxed);
            sh.slot_high[shard_idx].fetch_max(shard.len() as u64, Ordering::Relaxed);
        }
        if complete {
            let vals = shard.remove(&k).expect("present").into_vals();
            drop(shard);
            sh.slots_occupied.fetch_sub(1, Ordering::Relaxed);
            Some(vals)
        } else {
            drop(shard);
            sh.merged.fetch_add(1, Ordering::Relaxed);
            None
        }
    };
    if let Some(vals) = complete {
        fire(sh, ctx, op, t.tag, FireInputs::Full(vals.as_slice()));
    }
}

/// Deposit for a fused loop-entry/switch pair: a token on port 0 or 1 is
/// retagged exactly as the fused loop-entry would retag it (outside →
/// iteration 0, backedge → next iteration), then joins the predicate in a
/// two-value slot keyed by the *iteration* tag. The predicate (port 2)
/// already carries that tag and fills the other half. The incomplete
/// deposit counts as `merged` — the same wait the unfused switch's
/// rendezvous recorded — so fused and unfused runs agree on `merged`
/// while the loop-entry's separate firing and output token are elided.
fn deposit_loop_switch(
    sh: &Shared<'_>,
    ctx: &Ctx<'_, Token>,
    op: OpId,
    port: usize,
    t: Token,
    loop_id: cf2df_cfg::LoopId,
) {
    let (slot_tag, idx) = match port {
        0 => match sh.tags.child(t.tag, loop_id, 0) {
            Ok(nt) => (nt, 0),
            Err(e) => return sh.fail(ctx, e),
        },
        1 => match sh.tags.info(t.tag) {
            Some((p, l, i)) if l == loop_id => match sh.tags.child(p, loop_id, i + 1) {
                Ok(nt) => (nt, 0),
                Err(e) => return sh.fail(ctx, e),
            },
            other => {
                return sh.fail(
                    ctx,
                    MachineError::TagMismatch {
                        op,
                        detail: format!(
                            "backedge token tagged {other:?}, expected loop {loop_id:?}"
                        ),
                    },
                )
            }
        },
        _ => (t.tag, 1),
    };
    let k = key(op, slot_tag);
    let complete = {
        let shard_idx = sh.shard(op, slot_tag);
        let mut shard = lock(&sh.slots[shard_idx]);
        let mut inserted = false;
        let slot = shard.entry(k).or_insert_with(|| {
            inserted = true;
            SlotVals::pair()
        });
        if slot.is_filled(idx) {
            drop(shard);
            let tag = sh.tags.render(slot_tag);
            sh.fail(ctx, MachineError::TokenCollision { op, port, tag });
            return;
        }
        slot.set(idx, t.value);
        let complete = slot.is_complete();
        if inserted {
            let occupied = sh.slots_occupied.fetch_add(1, Ordering::Relaxed) + 1;
            sh.slots_peak.fetch_max(occupied, Ordering::Relaxed);
            sh.slot_high[shard_idx].fetch_max(shard.len() as u64, Ordering::Relaxed);
        }
        if complete {
            let vals = shard.remove(&k).expect("present").into_vals();
            drop(shard);
            sh.slots_occupied.fetch_sub(1, Ordering::Relaxed);
            Some(vals)
        } else {
            drop(shard);
            sh.merged.fetch_add(1, Ordering::Relaxed);
            None
        }
    };
    if let Some(vals) = complete {
        fire(sh, ctx, op, slot_tag, FireInputs::Full(vals.as_slice()));
    }
}

/// Send an output token to every destination of `(op, out_port)`.
///
/// Destinations that are plain two-input rendezvous go through the
/// *worker-local* pair map first: if this worker produced the partner
/// token earlier in the same batch, the two join right here — no run
/// queue, no sharded table, no cross-worker synchronization — and the
/// completed firing is parked on the worker's ready stack. Unpaired
/// halves wait in the map until the end of the batch, then rejoin the
/// ordinary path.
fn emit(sh: &Shared<'_>, ctx: &Ctx<'_, Token>, op: OpId, out_port: usize, value: i64, tag: TagId) {
    // One null check per emit call; the per-destination fault draws live
    // in the out-of-line chaos variant so ordinary runs keep a clean
    // inner loop.
    if sh.chaos.is_some() {
        return emit_chaos(sh, ctx, op, out_port, value, tag);
    }
    for &to in sh.cg.dests(op, out_port) {
        send(sh, ctx, to, value, tag);
    }
}

/// [`emit`] with per-destination fault injection: each outgoing token may
/// be dropped (vanishes — surfaced as [`MachineError::TokenLeak`]) or
/// duplicated. Duplicates are only injected toward ops where the
/// waiting-matching store can detect them (see `dup_ok`), and the copy
/// goes through the ordinary queue — not the worker-local fast path — so
/// it rendezvouses in the global table like a genuinely mis-sent token
/// would.
#[cold]
#[inline(never)]
fn emit_chaos(
    sh: &Shared<'_>,
    ctx: &Ctx<'_, Token>,
    op: OpId,
    out_port: usize,
    value: i64,
    tag: TagId,
) {
    let ch = sh.chaos.as_deref().expect("checked by emit");
    for &to in sh.cg.dests(op, out_port) {
        let dst = to.op;
        {
            let mut rng = lock(&ch.rngs[ctx.worker()]);
            if ch.cfg.drop_prob > 0.0 && rng.chance(ch.cfg.drop_prob) {
                drop(rng);
                ch.drops.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if ch.cfg.dup_prob > 0.0
                && sh.cg.desc(dst).dup_ok()
                && rng.chance(ch.cfg.dup_prob)
            {
                drop(rng);
                ch.dups.fetch_add(1, Ordering::Relaxed);
                ctx.push(Token { to, tag, value });
            }
        }
        send(sh, ctx, to, value, tag);
    }
}

/// Route one token to `to`: through the worker-local pair map when the
/// destination is fast-path eligible, otherwise onto the run queue.
#[inline]
fn send(sh: &Shared<'_>, ctx: &Ctx<'_, Token>, to: Port, value: i64, tag: TagId) {
    let dst = to.op;
    if sh.cg.desc(dst).fast_ok() {
        let port = to.port as usize;
        let k = key(dst, tag);
        let mut l = lock(&sh.locals[ctx.worker()]);
        let slot = l.pairs.entry(k).or_insert([None, None]);
        if slot[port].is_some() {
            drop(l);
            let tag = sh.tags.render(tag);
            sh.fail(ctx, MachineError::TokenCollision { op: dst, port, tag });
            return;
        }
        slot[port] = Some(value);
        if let [Some(a), Some(b)] = *slot {
            l.pairs.remove(&k);
            l.ready.push((k, [a, b]));
            l.fast_path += 1;
            drop(l);
            sh.merged.fetch_add(1, Ordering::Relaxed);
        }
        return;
    }
    ctx.push(Token { to, tag, value });
}

/// Fire every locally-completed join on worker's ready stack; firing can
/// complete further joins, so loop until the stack is empty. The lock is
/// released around each firing (firing re-enters [`emit`]).
fn drain_ready(sh: &Shared<'_>, local: &Mutex<WorkerLocal>, ctx: &Ctx<'_, Token>) {
    loop {
        let next = lock(local).ready.pop();
        match next {
            Some((k, [a, b])) => {
                // clone() audit: fast-path joins fire off a stack pair —
                // the old per-firing `vec![a, b]` is gone.
                let (op, tag) = unkey(k);
                fire(sh, ctx, op, tag, FireInputs::Full(&[a, b]));
            }
            None => return,
        }
    }
}

/// End-of-batch: push every unpaired fast-path half back onto the run
/// queue as an ordinary token. It will rendezvous in the sharded global
/// table like any cross-worker token — the fast path is only ever a
/// same-batch shortcut, never a place where a token can be stranded.
fn flush_local_pairs(local: &Mutex<WorkerLocal>, ctx: &Ctx<'_, Token>) {
    let leftovers: Vec<(u64, [Option<i64>; 2])> = {
        let mut l = lock(local);
        debug_assert!(l.ready.is_empty(), "ready drained after every token");
        l.pairs.drain().collect()
    };
    for (k, slot) in leftovers {
        let (op, tag) = unkey(k);
        for (port, v) in slot.into_iter().enumerate() {
            if let Some(value) = v {
                ctx.push(Token {
                    to: Port::new(op, port),
                    tag,
                    value,
                });
            }
        }
    }
}

/// Pre-firing hooks run by [`fire`] before the shared kernel: spend
/// one unit of fuel (recording [`MachineError::FuelExhausted`] and
/// skipping the firing once the budget is gone) and, under chaos, maybe
/// panic in the operator's stead. Returns `false` when the firing must
/// not proceed.
fn fire_admitted(sh: &Shared<'_>, ctx: &Ctx<'_, Token>, op: OpId, tag: TagId) -> bool {
    let prev = sh.fired.fetch_add(1, Ordering::Relaxed);
    if prev >= sh.fuel {
        sh.fail(ctx, MachineError::FuelExhausted);
        return false;
    }
    if let Some(ch) = &sh.chaos {
        if ch.cfg.panic_prob > 0.0 && lock(&ch.rngs[ctx.worker()]).chance(ch.cfg.panic_prob) {
            ch.panics.fetch_add(1, Ordering::Relaxed);
            panic!("chaos: injected operator panic at {op:?}");
        }
    }
    if let Some(ring) = &sh.trace {
        ring.push(ctx.worker(), op, tag);
    }
    true
}

/// The threaded executor's side of the shared firing kernel
/// ([`fire_op`]): operator semantics live in the kernel, once, for both
/// backends; this engine supplies the concurrent effects — CSR-sliced
/// emission with the fast-path pair map, atomic/striped memory, sharded
/// tag interning, halt-by-flag.
struct ParEngine<'a, 'b, 'g> {
    sh: &'a Shared<'g>,
    ctx: &'a Ctx<'b, Token>,
}

impl Engine for ParEngine<'_, '_, '_> {
    fn emit(&mut self, op: OpId, out_port: usize, value: i64, tag: TagId) {
        emit(self.sh, self.ctx, op, out_port, value, tag);
    }

    fn halt(&mut self) {
        // Mark completion but keep draining: workers exit when the
        // token population reaches zero, so nothing is dropped.
        self.sh.end_seen.store(true, Ordering::SeqCst);
    }

    fn tag_child(
        &mut self,
        parent: TagId,
        loop_id: LoopId,
        iter: u32,
    ) -> Result<TagId, MachineError> {
        self.sh.tags.child(parent, loop_id, iter)
    }

    fn tag_info(&self, tag: TagId) -> Option<(TagId, LoopId, u32)> {
        self.sh.tags.info(tag)
    }

    fn read_scalar(&mut self, var: VarId) -> i64 {
        self.sh.mem.read_scalar(&self.sh.layout, var)
    }

    fn write_scalar(&mut self, var: VarId, value: i64) {
        self.sh.mem.write_scalar(&self.sh.layout, var, value)
    }

    fn read_element(&mut self, var: VarId, index: i64) -> Result<i64, MemError> {
        self.sh.mem.read_element(&self.sh.layout, var, index)
    }

    fn write_element(&mut self, var: VarId, index: i64, value: i64) -> Result<(), MemError> {
        self.sh.mem.write_element(&self.sh.layout, var, index, value)
    }

    fn ist_read(
        &mut self,
        var: VarId,
        index: i64,
        op: OpId,
        tag: TagId,
    ) -> Result<Option<i64>, MemError> {
        // Deferral accounting happens inside ParMemory (note_deferred).
        self.sh.mem.ist_read(&self.sh.layout, var, index, (op, tag))
    }

    fn ist_write(
        &mut self,
        var: VarId,
        index: i64,
        value: i64,
    ) -> Result<Vec<DeferredRead<(OpId, TagId)>>, MemError> {
        self.sh.mem.ist_write(&self.sh.layout, var, index, value)
    }

    fn macro_fired(&mut self, elided: u64) {
        self.sh.macro_fires.fetch_add(1, Ordering::Relaxed);
        self.sh.ops_elided.fetch_add(elided, Ordering::Relaxed);
    }
}

/// Fire one operator through the shared kernel: admission (fuel, chaos
/// panic, trace ring) first, then [`fire_op`] with this executor's
/// engine; a kernel error becomes the run's recorded failure.
fn fire(sh: &Shared<'_>, ctx: &Ctx<'_, Token>, op: OpId, tag: TagId, inputs: FireInputs<'_>) {
    if !fire_admitted(sh, ctx, op, tag) {
        return;
    }
    // clone() audit: the per-firing `g.kind(op).clone()` is gone — the
    // kernel reads a 24-byte Copy descriptor from the compiled table.
    let mut eng = ParEngine { sh, ctx };
    if let Err(e) = fire_op(sh.cg, op, tag, inputs, &mut eng) {
        sh.fail(ctx, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{BinOp, VarTable};
    use cf2df_dfg::graph::ArcKind;
    use cf2df_dfg::OpKind;

    #[test]
    fn threaded_matches_simulator_on_straight_line() {
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 41);
        let st = g.add(OpKind::Store { var: VarId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(add, 0), ArcKind::Value);
        g.connect(Port::new(add, 0), Port::new(st, 0), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);

        let sim = crate::exec::run(&g, &layout, crate::exec::MachineConfig::unbounded()).unwrap();
        for threads in [1, 2, 4] {
            let par = run_threaded(&g, &layout, threads).unwrap();
            assert_eq!(par.memory, sim.memory, "threads={threads}");
            assert_eq!(par.fired, sim.stats.fired);
            // Metrics self-consistency: every processed token either
            // fired an operator or merged into a rendezvous slot, and
            // each worker accounts for its own tokens.
            let m = &par.metrics;
            assert_eq!(m.workers.len(), threads);
            let per_worker: u64 = m.workers.iter().map(|w| w.processed).sum();
            assert_eq!(per_worker, m.tokens_processed);
            assert_eq!(m.tokens_processed, par.fired + m.merged, "threads={threads}");
            let shard_max = m.slot_shard_high_water.iter().copied().max().unwrap_or(0);
            let shard_sum: u64 = m.slot_shard_high_water.iter().sum();
            assert!(m.max_pending_slots >= shard_max);
            assert!(m.max_pending_slots <= shard_sum.max(shard_max));
        }
    }

    /// The deadlock report must name the partially-filled slot: which
    /// operator, which tag, which ports are filled — not a fixed string.
    #[test]
    fn threaded_detects_deadlock_and_names_pending_slots() {
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let sy = g.add(OpKind::Synch { inputs: 2 });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(sy, 0), ArcKind::Access);
        g.connect(Port::new(sy, 0), Port::new(e, 0), ArcKind::Access);
        let err = run_threaded(&g, &layout, 2).unwrap_err();
        let MachineError::Deadlock { pending } = err else {
            panic!("expected deadlock")
        };
        assert_eq!(pending.len(), 1, "{pending:?}");
        assert!(pending[0].contains("synch2"), "{pending:?}");
        assert!(pending[0].contains("root"), "{pending:?}");
        assert!(pending[0].contains("filled ports [0]"), "{pending:?}");
    }

    /// The trace ring is bounded, keeps the most recent firings, and is
    /// returned on the failure path too (its whole purpose).
    #[test]
    fn trace_ring_captures_recent_firings() {
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 1);
        let st = g.add(OpKind::Store { var: VarId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(add, 0), ArcKind::Value);
        g.connect(Port::new(add, 0), Port::new(st, 0), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);

        // Full capacity: one event per firing, in sequence order.
        let (out, trace) = run_threaded_traced(&g, &layout, 1, 64);
        let out = out.unwrap();
        assert_eq!(trace.len() as u64, out.fired);
        for (i, ev) in trace.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.tag, "root");
        }
        // Bounded: capacity 2 keeps only the last two firings.
        let (out, tail) = run_threaded_traced(&g, &layout, 1, 2);
        let out = out.unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.last().unwrap().seq, out.fired - 1);

        // Failure path: a deadlocked graph still yields its trace.
        let mut g2 = Dfg::new();
        let s2 = g2.add(OpKind::Start);
        let id = g2.add(OpKind::Identity);
        let sy = g2.add(OpKind::Synch { inputs: 2 });
        let e2 = g2.add(OpKind::End { inputs: 1 });
        g2.connect(Port::new(s2, 0), Port::new(id, 0), ArcKind::Access);
        g2.connect(Port::new(id, 0), Port::new(sy, 0), ArcKind::Access);
        g2.connect(Port::new(sy, 0), Port::new(e2, 0), ArcKind::Access);
        let (res, trace) = run_threaded_traced(&g2, &layout, 2, 8);
        assert!(matches!(res, Err(MachineError::Deadlock { .. })));
        assert_eq!(trace.len(), 1, "the identity fired before the stall");
        assert_eq!(trace[0].op, id);
    }

    /// The satellite invariant: a token can only go unprocessed when a
    /// `MachineError` was recorded for the run. An out-of-bounds store
    /// halts mid-flight — the run must surface that error (not hang, not
    /// quietly finish), and a clean run of the same shape must drain.
    #[test]
    fn no_token_is_dropped_without_a_recorded_error() {
        let mut t = VarTable::new();
        t.array("a", 4);
        let layout = MemLayout::distinct(&t);
        // start → (+ idx) → store a[idx] := 7 → end. The start token
        // (value 0) triggers the add, whose output is the store index.
        let build = |idx: i64| {
            let mut g = Dfg::new();
            let s = g.add(OpKind::Start);
            let add = g.add(OpKind::Binary { op: BinOp::Add });
            g.set_imm(add, 1, idx);
            let st = g.add(OpKind::StoreIdx { var: VarId(0) });
            g.set_imm(st, 1, 7);
            g.set_imm(st, 2, 0); // access trigger satisfied immediately
            let e = g.add(OpKind::End { inputs: 1 });
            g.connect(Port::new(s, 0), Port::new(add, 0), ArcKind::Value);
            g.connect(Port::new(add, 0), Port::new(st, 0), ArcKind::Value);
            g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);
            g
        };
        // Failing run: index 9 is out of bounds.
        let g_bad = build(9);
        let err = run_threaded(&g_bad, &layout, 4).unwrap_err();
        assert!(
            matches!(err, MachineError::Memory(MemError::OutOfBounds { .. })),
            "expected OutOfBounds, got {err:?}"
        );
        // Clean run: same graph with a legal index drains fully.
        let g_ok = build(2);
        let out = run_threaded(&g_ok, &layout, 4).unwrap();
        assert_eq!(out.memory[layout.element(VarId(0), 2).unwrap() as usize], 7);
    }

    #[test]
    fn sharded_tags_intern_consistently() {
        let tags = ParTagTable::new(u32::MAX);
        assert_eq!(tags.info(TagId::ROOT), None);
        assert_eq!(tags.render(TagId::ROOT), "root");
        let a = tags.child(TagId::ROOT, LoopId(0), 3).unwrap();
        let b = tags.child(TagId::ROOT, LoopId(0), 3).unwrap();
        assert_eq!(a, b, "same key must intern to the same tag");
        let c = tags.child(TagId::ROOT, LoopId(0), 4).unwrap();
        assert_ne!(a, c);
        let inner = tags.child(a, LoopId(1), 0).unwrap();
        assert_eq!(tags.info(inner), Some((a, LoopId(1), 0)));
        assert_eq!(tags.render(inner), "root.L0[3].L1[0]");
    }

    /// A capped interner reports exhaustion as a typed error — the unit
    /// face of the `TagSpaceExhausted` satellite (the end-to-end deep
    /// loop nest lives in `tests/chaos.rs`) — and an already-interned
    /// key keeps resolving after the cap is hit.
    #[test]
    fn capped_tag_interner_errors_instead_of_panicking() {
        let tags = ParTagTable::new(2 * TAG_SHARDS as u32);
        let mut made = Vec::new();
        let mut exhausted = false;
        for i in 0..200u32 {
            match tags.child(TagId::ROOT, LoopId(0), i) {
                Ok(t) => made.push((i, t)),
                Err(MachineError::TagSpaceExhausted { cap, invocation }) => {
                    assert_eq!(cap, 2 * TAG_SHARDS as u32);
                    assert_eq!(invocation, None, "whole-run interner names no invocation");
                    exhausted = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
        assert!(exhausted, "200 iterations must blow a ~2-per-shard cap");
        assert!(!made.is_empty(), "some tags fit under the cap");
        for (i, t) in &made {
            assert_eq!(tags.child(TagId::ROOT, LoopId(0), *i).unwrap(), *t);
        }
    }

    #[test]
    fn sharded_tags_safe_under_contention() {
        let tags = ParTagTable::new(u32::MAX);
        let ids: Vec<TagId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let tags = &tags;
                    scope.spawn(move || {
                        (0..100u32)
                            .map(|i| tags.child(TagId::ROOT, LoopId(0), i).unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut all: Vec<Vec<TagId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let first = all.pop().unwrap();
            for other in &all {
                assert_eq!(&first, other, "interning must agree across threads");
            }
            first
        });
        // All distinct iterations got distinct tags.
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn par_memory_striping_is_addressable() {
        let mut t = VarTable::new();
        t.scalar("x");
        let a = t.array("a", 40); // spans several stripes
        let layout = MemLayout::distinct(&t);
        let m = ParMemory::new(&layout);
        for i in 0..40 {
            m.ist_write(&layout, a, i, i * 10).unwrap();
        }
        let snap = m.ist_snapshot();
        for i in 0..40 {
            assert_eq!(snap[layout.element(a, i).unwrap() as usize], i * 10);
        }
        // Deferred read released by the matching write.
        let m2 = ParMemory::new(&layout);
        assert_eq!(
            m2.ist_read(&layout, a, 3, (OpId(1), TagId::ROOT)).unwrap(),
            None
        );
        let released = m2.ist_write(&layout, a, 3, 5).unwrap();
        assert_eq!(released.len(), 1);
        assert!(m2.ist_write(&layout, a, 3, 6).is_err(), "rewrite detected");
    }
}
