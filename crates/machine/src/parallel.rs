//! A multi-threaded token-pushing executor.
//!
//! Where [`crate::exec`] is a deterministic discrete-event *simulator*
//! measuring idealized parallelism, this module actually executes a
//! dataflow graph on OS threads: worker threads pull tokens from a shared
//! channel, rendezvous them in sharded slot tables, fire operators, and
//! push result tokens back. It demonstrates the paper's point that the
//! translated graphs are genuinely parallel programs — any interleaving
//! the token dependences permit yields the same final memory, which the
//! tests check against the deterministic simulator.
//!
//! Timing metrics are not meaningful here (wall-clock benches use
//! Criterion); the executor reports fired-operator and memory-op counts.

use crate::exec::MachineError;
use crate::memory::Memory;
use crate::tag::{TagId, TagTable};
use cf2df_cfg::MemLayout;
use cf2df_dfg::{Dfg, OpId, OpKind, Port};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Result of a threaded run.
#[derive(Clone, Debug)]
pub struct ParOutcome {
    /// Final ordinary memory.
    pub memory: Vec<i64>,
    /// Final I-structure memory.
    pub ist_memory: Vec<i64>,
    /// Operators fired.
    pub fired: u64,
}

#[derive(Clone, Copy, Debug)]
struct Token {
    to: Port,
    tag: TagId,
    value: i64,
}

const SHARDS: usize = 16;

/// One shard of the rendezvous-slot table.
type SlotShard = Mutex<std::collections::HashMap<(OpId, TagId), Vec<Option<i64>>>>;

struct Shared {
    layout: MemLayout,
    dests: Vec<Vec<Vec<Port>>>,
    live: Vec<usize>,
    /// Rendezvous slots, sharded by (op, tag) hash.
    slots: Vec<SlotShard>,
    tags: Mutex<TagTable>,
    mem: Mutex<Memory<(OpId, TagId)>>,
    pending: AtomicUsize,
    halted: AtomicBool,
    failed: Mutex<Option<MachineError>>,
    fired: AtomicU64,
    tx: Sender<Token>,
}

impl Shared {
    fn shard(&self, op: OpId, tag: TagId) -> usize {
        (op.0 as usize).wrapping_mul(31).wrapping_add(tag.0 as usize) % SHARDS
    }

    fn send(&self, t: Token) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Send failure means the channel closed during shutdown; the token
        // is dropped, which is fine once halted/failed is set.
        if self.tx.send(t).is_err() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn fail(&self, e: MachineError) {
        let mut f = self.failed.lock();
        if f.is_none() {
            *f = Some(e);
        }
        self.halted.store(true, Ordering::SeqCst);
    }
}

/// Execute a dataflow graph on `n_threads` worker threads.
pub fn run_threaded(
    g: &Dfg,
    layout: &MemLayout,
    n_threads: usize,
) -> Result<ParOutcome, MachineError> {
    let n_threads = n_threads.max(1);
    let mut dests: Vec<Vec<Vec<Port>>> = g
        .op_ids()
        .map(|o| vec![Vec::new(); g.kind(o).n_outputs()])
        .collect();
    for a in g.arcs() {
        dests[a.from.op.index()][a.from.port as usize].push(a.to);
    }
    let live: Vec<usize> = g
        .op_ids()
        .map(|o| {
            (0..g.kind(o).n_inputs())
                .filter(|&p| g.imm(o, p).is_none())
                .count()
        })
        .collect();

    let (tx, rx): (Sender<Token>, Receiver<Token>) = unbounded();
    let shared = Arc::new(Shared {
        layout: layout.clone(),
        dests,
        live,
        slots: std::iter::repeat_with(|| Mutex::new(std::collections::HashMap::new()))
            .take(SHARDS)
            .collect(),
        tags: Mutex::new(TagTable::new()),
        mem: Mutex::new(Memory::new(layout)),
        pending: AtomicUsize::new(0),
        halted: AtomicBool::new(false),
        failed: Mutex::new(None),
        fired: AtomicU64::new(0),
        tx,
    });

    // Seed initial tokens.
    let start = g.start();
    for &to in &shared.dests[start.index()][0].clone() {
        shared.send(Token {
            to,
            tag: TagId::ROOT,
            value: 0,
        });
    }

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            let shared = Arc::clone(&shared);
            let rx = rx.clone();
            let g = &*g;
            scope.spawn(move || worker(g, &shared, &rx));
        }
    });

    let failed = shared.failed.lock().take();
    if let Some(e) = failed {
        return Err(e);
    }
    if !shared.halted.load(Ordering::SeqCst) {
        return Err(MachineError::Deadlock {
            pending: vec!["threaded executor quiesced without End".into()],
        });
    }
    let mem = shared.mem.lock();
    Ok(ParOutcome {
        memory: mem.cells().to_vec(),
        ist_memory: mem.ist_cells(),
        fired: shared.fired.load(Ordering::SeqCst),
    })
}

fn worker(g: &Dfg, sh: &Shared, rx: &Receiver<Token>) {
    loop {
        if sh.halted.load(Ordering::SeqCst) {
            return;
        }
        let Ok(t) = rx.recv_timeout(std::time::Duration::from_millis(5)) else {
            // Queue empty: if nothing is pending anywhere, we are done
            // (either End fired, a failure was recorded, or the graph
            // quiesced — the caller distinguishes).
            if sh.pending.load(Ordering::SeqCst) == 0 {
                if !sh.halted.load(Ordering::SeqCst) && sh.failed.lock().is_none() {
                    // Genuine quiescence without End: deadlock.
                    sh.fail(MachineError::Deadlock {
                        pending: vec!["no tokens in flight".into()],
                    });
                }
                return;
            }
            continue;
        };
        process(g, sh, t);
        sh.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

fn process(g: &Dfg, sh: &Shared, t: Token) {
    let op = t.to.op;
    let port = t.to.port as usize;
    let kind = g.kind(op);
    match kind {
        OpKind::Merge | OpKind::LoopEntry { .. } => {
            fire_single(g, sh, op, t.tag, port, t.value);
        }
        _ => {
            let n_in = kind.n_inputs();
            if sh.live[op.index()] <= 1 {
                let mut vals = Vec::with_capacity(n_in);
                for p in 0..n_in {
                    vals.push(g.imm(op, p).unwrap_or(0));
                }
                if n_in > 0 {
                    vals[port] = t.value;
                }
                fire_full(g, sh, op, t.tag, vals);
                return;
            }
            let complete = {
                let mut shard = sh.slots[sh.shard(op, t.tag)].lock();
                let slot = shard.entry((op, t.tag)).or_insert_with(|| {
                    (0..n_in).map(|p| g.imm(op, p)).collect::<Vec<_>>()
                });
                if slot[port].is_some() {
                    let tag = sh.tags.lock().render(t.tag);
                    drop(shard);
                    sh.fail(MachineError::TokenCollision { op, port, tag });
                    return;
                }
                slot[port] = Some(t.value);
                if slot.iter().all(|v| v.is_some()) {
                    let vals = shard
                        .remove(&(op, t.tag))
                        .expect("present")
                        .into_iter()
                        .map(|v| v.expect("full"))
                        .collect::<Vec<_>>();
                    Some(vals)
                } else {
                    None
                }
            };
            if let Some(vals) = complete {
                fire_full(g, sh, op, t.tag, vals);
            }
        }
    }
}

fn emit(sh: &Shared, op: OpId, out_port: usize, value: i64, tag: TagId) {
    for &to in &sh.dests[op.index()][out_port] {
        sh.send(Token { to, tag, value });
    }
}

fn fire_single(g: &Dfg, sh: &Shared, op: OpId, tag: TagId, port: usize, value: i64) {
    sh.fired.fetch_add(1, Ordering::Relaxed);
    match g.kind(op) {
        OpKind::Merge => emit(sh, op, 0, value, tag),
        OpKind::LoopEntry { loop_id } => {
            let new_tag = if port == 0 {
                sh.tags.lock().child(tag, *loop_id, 0)
            } else {
                let mut tags = sh.tags.lock();
                match tags.info(tag) {
                    Some((p, l, i)) if l == *loop_id => tags.child(p, *loop_id, i + 1),
                    other => {
                        drop(tags);
                        sh.fail(MachineError::TagMismatch {
                            op,
                            detail: format!("backedge token tagged {other:?}"),
                        });
                        return;
                    }
                }
            };
            emit(sh, op, 0, value, new_tag);
        }
        _ => unreachable!("fire_single only for merge-like ops"),
    }
}

fn fire_full(g: &Dfg, sh: &Shared, op: OpId, tag: TagId, vals: Vec<i64>) {
    sh.fired.fetch_add(1, Ordering::Relaxed);
    match g.kind(op) {
        OpKind::Start => unreachable!("Start never fires"),
        OpKind::End { .. } => {
            sh.halted.store(true, Ordering::SeqCst);
        }
        OpKind::Unary { op: u } => emit(sh, op, 0, u.eval(vals[0]), tag),
        OpKind::Binary { op: b } => emit(sh, op, 0, b.eval(vals[0], vals[1]), tag),
        OpKind::Switch => {
            let out = if vals[1] != 0 { 0 } else { 1 };
            emit(sh, op, out, vals[0], tag);
        }
        OpKind::CaseSwitch { arms } => {
            let sel = vals[1];
            let out = if sel >= 0 && (sel as u64) < u64::from(*arms) - 1 {
                sel as usize
            } else {
                *arms as usize - 1
            };
            emit(sh, op, out, vals[0], tag);
        }
        OpKind::Synch { .. } => emit(sh, op, 0, 0, tag),
        OpKind::Identity | OpKind::Gate => emit(sh, op, 0, vals[0], tag),
        OpKind::Merge | OpKind::LoopEntry { .. } => unreachable!("merge-like"),
        OpKind::Load { var } => {
            let v = sh.mem.lock().read_scalar(&sh.layout, *var);
            emit(sh, op, 0, v, tag);
            emit(sh, op, 1, 0, tag);
        }
        OpKind::Store { var } => {
            sh.mem.lock().write_scalar(&sh.layout, *var, vals[0]);
            emit(sh, op, 0, 0, tag);
        }
        OpKind::LoadIdx { var } => {
            let r = sh.mem.lock().read_element(&sh.layout, *var, vals[0]);
            match r {
                Ok(v) => {
                    emit(sh, op, 0, v, tag);
                    emit(sh, op, 1, 0, tag);
                }
                Err(e) => sh.fail(e.into()),
            }
        }
        OpKind::StoreIdx { var } => {
            let r = sh
                .mem
                .lock()
                .write_element(&sh.layout, *var, vals[0], vals[1]);
            match r {
                Ok(()) => emit(sh, op, 0, 0, tag),
                Err(e) => sh.fail(e.into()),
            }
        }
        OpKind::IstLoad { var } => {
            let r = sh.mem.lock().ist_read(&sh.layout, *var, vals[0], (op, tag));
            match r {
                Ok(Some(v)) => emit(sh, op, 0, v, tag),
                Ok(None) => {} // deferred; released by the write
                Err(e) => sh.fail(e.into()),
            }
        }
        OpKind::IstStore { var } => {
            let value = vals[1];
            let r = sh.mem.lock().ist_write(&sh.layout, *var, vals[0], value);
            match r {
                Ok(released) => {
                    emit(sh, op, 0, 0, tag);
                    for d in released {
                        let (ld_op, ld_tag) = d.ctx;
                        emit(sh, ld_op, 0, value, ld_tag);
                    }
                }
                Err(e) => sh.fail(e.into()),
            }
        }
        OpKind::LoopExit { loop_id } => {
            let info = sh.tags.lock().info(tag);
            match info {
                Some((p, l, _)) if l == *loop_id => emit(sh, op, 0, vals[0], p),
                other => sh.fail(MachineError::TagMismatch {
                    op,
                    detail: format!("exit token tagged {other:?}"),
                }),
            }
        }
        OpKind::PrevIter { loop_id } => {
            let mut tags = sh.tags.lock();
            match tags.info(tag) {
                Some((p, l, i)) if l == *loop_id && i > 0 => {
                    let nt = tags.child(p, *loop_id, i - 1);
                    drop(tags);
                    emit(sh, op, 0, vals[0], nt);
                }
                other => {
                    drop(tags);
                    sh.fail(MachineError::TagMismatch {
                        op,
                        detail: format!("prev-iter token tagged {other:?}"),
                    });
                }
            }
        }
        OpKind::IterIndex { loop_id } => {
            let info = sh.tags.lock().info(tag);
            match info {
                Some((_, l, i)) if l == *loop_id => emit(sh, op, 0, i as i64, tag),
                other => sh.fail(MachineError::TagMismatch {
                    op,
                    detail: format!("iter-index token tagged {other:?}"),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf2df_cfg::{BinOp, VarId, VarTable};
    use cf2df_dfg::graph::ArcKind;

    #[test]
    fn threaded_matches_simulator_on_straight_line() {
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let ld = g.add(OpKind::Load { var: VarId(0) });
        let add = g.add(OpKind::Binary { op: BinOp::Add });
        g.set_imm(add, 1, 41);
        let st = g.add(OpKind::Store { var: VarId(0) });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(ld, 0), ArcKind::Access);
        g.connect(Port::new(ld, 0), Port::new(add, 0), ArcKind::Value);
        g.connect(Port::new(add, 0), Port::new(st, 0), ArcKind::Value);
        g.connect(Port::new(ld, 1), Port::new(st, 1), ArcKind::Access);
        g.connect(Port::new(st, 0), Port::new(e, 0), ArcKind::Access);

        let sim = crate::exec::run(&g, &layout, crate::exec::MachineConfig::unbounded()).unwrap();
        for threads in [1, 2, 4] {
            let par = run_threaded(&g, &layout, threads).unwrap();
            assert_eq!(par.memory, sim.memory, "threads={threads}");
            assert_eq!(par.fired, sim.stats.fired);
        }
    }

    #[test]
    fn threaded_detects_deadlock() {
        let mut t = VarTable::new();
        t.scalar("x");
        let layout = MemLayout::distinct(&t);
        let mut g = Dfg::new();
        let s = g.add(OpKind::Start);
        let sy = g.add(OpKind::Synch { inputs: 2 });
        let e = g.add(OpKind::End { inputs: 1 });
        g.connect(Port::new(s, 0), Port::new(sy, 0), ArcKind::Access);
        g.connect(Port::new(sy, 0), Port::new(e, 0), ArcKind::Access);
        let err = run_threaded(&g, &layout, 2).unwrap_err();
        assert!(matches!(err, MachineError::Deadlock { .. }));
    }
}
