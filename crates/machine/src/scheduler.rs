//! A std-only work-stealing task scheduler.
//!
//! This is the execution core under [`crate::parallel`]: the previous
//! design funneled every token through one multi-producer channel
//! (`crossbeam::channel`), making the channel the serialization point for
//! the whole machine. Here each worker owns a run queue; a worker pushes
//! the tasks it creates onto its own queue (no cross-thread traffic on
//! the fast path), pops locally in LIFO order for cache locality, and
//! steals the *oldest* task from a sibling only when its own queue runs
//! dry. Idle workers park on a `Condvar` instead of spinning on a
//! receive timeout.
//!
//! Shutdown is **explicit** — the property the old executor lacked
//! (`Shared::send` silently dropped tokens once the channel closed):
//!
//! * a task pushed onto a queue is never dropped: it is either processed,
//!   or still countable in a queue when [`Scheduler::run`] returns after
//!   an explicit [`Ctx::halt`] (the caller sees the count in
//!   [`Outcome::leftover`]);
//! * with no halt requested, workers only exit when the in-flight count
//!   reaches zero, so `run` returning with `leftover == 0` is a
//!   *guarantee*, checked by a debug assertion, not a race.
//!
//! The scheduler knows nothing about dataflow; it moves opaque `T`s. The
//! machine semantics (rendezvous, firing, memory) live in
//! [`crate::parallel`].

use crate::metrics::WorkerStats;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Lock, recovering the guard if a panicking worker poisoned it (the
/// panic itself still propagates through the scope join).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// What `run` observed by the time every worker exited.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Tasks fully processed.
    pub processed: u64,
    /// Tasks still sitting in run queues when the workers exited. Zero
    /// unless [`Ctx::halt`] cut execution short.
    pub leftover: u64,
    /// Whether [`Ctx::halt`] was called.
    pub halted: bool,
    /// Per-worker counters (pops, steals, parks, …), indexed by worker.
    /// Tallied thread-locally — the counters cost nothing on the shared
    /// structures.
    pub workers: Vec<WorkerStats>,
}

struct Park {
    /// Guarded by `park_lock`; counts workers inside the wait loop.
    sleepers: Mutex<usize>,
    cvar: Condvar,
}

/// Work-stealing scheduler over tasks of type `T`.
pub struct Scheduler<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Global injector for tasks pushed from outside a worker (seeding).
    inject: Mutex<VecDeque<T>>,
    /// Tasks pushed but not yet fully processed (includes the one a
    /// worker is currently running). Zero means no task exists and none
    /// can ever appear — the quiescence/termination signal.
    pending: AtomicUsize,
    /// Tasks currently resting in some queue, awaiting pickup.
    queued: AtomicUsize,
    stop: AtomicBool,
    processed: AtomicU64,
    park: Park,
}

/// Handle given to the task body: push follow-up work, request shutdown.
pub struct Ctx<'s, T> {
    sched: &'s Scheduler<T>,
    /// Index of the worker running this task; its queue takes the pushes.
    worker: usize,
}

impl<T: Send> Scheduler<T> {
    /// A scheduler with `n` worker queues (`n >= 1`).
    pub fn new(n_workers: usize) -> Scheduler<T> {
        let n = n_workers.max(1);
        Scheduler {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            inject: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            processed: AtomicU64::new(0),
            park: Park {
                sleepers: Mutex::new(0),
                cvar: Condvar::new(),
            },
        }
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Seed a task from outside the worker pool (before or during `run`).
    pub fn inject(&self, t: T) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        lock(&self.inject).push_back(t);
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.wake_one();
    }

    fn wake_one(&self) {
        // Dekker-style pairing with `park`: the pusher writes `queued`
        // then reads `sleepers`; the sleeper registers in `sleepers` then
        // re-reads `queued`. SeqCst on both means at least one side sees
        // the other, so a wakeup cannot be lost.
        if *lock(&self.park.sleepers) > 0 {
            self.park.cvar.notify_one();
        }
    }

    fn wake_all(&self) {
        let _guard = lock(&self.park.sleepers);
        self.park.cvar.notify_all();
    }

    /// Pop for worker `w`: own queue first (newest — LIFO, the tokens it
    /// just produced are hottest), then the injector, then steal the
    /// oldest task of each sibling. Tallies which source supplied the
    /// task into `stats`.
    fn find_task(&self, w: usize, stats: &mut WorkerStats) -> Option<T> {
        if let Some(t) = lock(&self.queues[w]).pop_back() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            stats.local_pops += 1;
            return Some(t);
        }
        if let Some(t) = lock(&self.inject).pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            stats.injector_hits += 1;
            return Some(t);
        }
        let n = self.queues.len();
        for i in 1..n {
            let victim = (w + i) % n;
            if let Some(t) = lock(&self.queues[victim]).pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                stats.steals += 1;
                return Some(t);
            }
        }
        None
    }

    /// Run `body` over every task until the system drains or halts.
    ///
    /// `body` receives a [`Ctx`] for pushing follow-up tasks and a task.
    /// Workers exit when (a) `Ctx::halt` was called, or (b) `pending`
    /// reaches zero — every pushed task was processed and none can ever
    /// appear again.
    pub fn run<F>(&self, body: F) -> Outcome
    where
        F: Fn(&Ctx<'_, T>, T) + Sync,
        T: Send,
    {
        let body = &body;
        let workers: Vec<WorkerStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.queues.len())
                .map(|w| {
                    let sched = &*self;
                    scope.spawn(move || sched.worker_loop(w, body))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let leftover = self.drain_count();
        let halted = self.stop.load(Ordering::SeqCst);
        debug_assert!(
            halted || leftover == 0,
            "scheduler quiesced with {leftover} unprocessed tasks — \
             a task was lost without an explicit halt"
        );
        Outcome {
            processed: self.processed.load(Ordering::SeqCst),
            leftover,
            halted,
            workers,
        }
    }

    fn worker_loop<F>(&self, w: usize, body: &F) -> WorkerStats
    where
        F: Fn(&Ctx<'_, T>, T) + Sync,
    {
        let ctx = Ctx { sched: self, worker: w };
        let mut stats = WorkerStats::default();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return stats;
            }
            if let Some(t) = self.find_task(w, &mut stats) {
                body(&ctx, t);
                stats.processed += 1;
                self.processed.fetch_add(1, Ordering::SeqCst);
                if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // Last in-flight task: nothing can create work any
                    // more. Wake everyone so they observe pending == 0.
                    self.wake_all();
                }
                continue;
            }
            // Found nothing. Either the system is done, or another worker
            // is still running a task that may push more — park.
            let mut sleepers = lock(&self.park.sleepers);
            *sleepers += 1;
            let mut blocked = false;
            loop {
                if self.stop.load(Ordering::SeqCst)
                    || self.pending.load(Ordering::SeqCst) == 0
                {
                    *sleepers -= 1;
                    return stats;
                }
                if self.queued.load(Ordering::SeqCst) > 0 {
                    *sleepers -= 1;
                    if blocked {
                        stats.unparks += 1;
                    }
                    break; // work appeared — go take it
                }
                if !blocked {
                    blocked = true;
                    stats.parks += 1;
                }
                sleepers = self
                    .park
                    .cvar
                    .wait(sleepers)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Remaining tasks across all queues (meaningful after `run`).
    fn drain_count(&self) -> u64 {
        let mut n = lock(&self.inject).len() as u64;
        for q in &self.queues {
            n += lock(q).len() as u64;
        }
        n
    }
}

impl<T: Send> Ctx<'_, T> {
    /// Push a follow-up task onto the current worker's queue. Never
    /// fails, never drops: the task is processed unless the whole run is
    /// explicitly halted first.
    pub fn push(&self, t: T) {
        let s = self.sched;
        s.pending.fetch_add(1, Ordering::SeqCst);
        lock(&s.queues[self.worker]).push_back(t);
        s.queued.fetch_add(1, Ordering::SeqCst);
        s.wake_one();
    }

    /// Request an immediate stop: all workers exit as soon as they
    /// observe the flag; queued tasks are left in place and reported in
    /// [`Outcome::leftover`].
    pub fn halt(&self) {
        self.sched.stop.store(true, Ordering::SeqCst);
        self.sched.wake_all();
    }

    /// Index of the worker running the current task.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Fan out a binary tree of tasks and sum the leaves: exercises
    /// pushes from inside workers, stealing, and clean quiescence.
    fn tree_sum(workers: usize, depth: u32) -> (u64, Outcome) {
        let sched: Scheduler<(u32, u64)> = Scheduler::new(workers);
        let total = AtomicU64::new(0);
        sched.inject((depth, 1));
        let out = sched.run(|ctx, (d, v)| {
            if d == 0 {
                total.fetch_add(v, Ordering::Relaxed);
            } else {
                ctx.push((d - 1, v * 2));
                ctx.push((d - 1, v * 2 + 1));
            }
        });
        (total.load(Ordering::Relaxed), out)
    }

    #[test]
    fn drains_cleanly_at_every_width() {
        // Leaves of the value tree starting at 1: values 2^d .. 2^(d+1)-1.
        let d = 10u32;
        let expect: u64 = (1u64 << d..1u64 << (d + 1)).sum();
        for workers in [1, 2, 4, 8] {
            let (sum, out) = tree_sum(workers, d);
            assert_eq!(sum, expect, "workers={workers}");
            assert_eq!(out.leftover, 0);
            assert!(!out.halted);
            // Internal nodes + leaves of a depth-d binary tree.
            assert_eq!(out.processed, (1 << (d + 1)) - 1);
        }
    }

    #[test]
    fn injected_tasks_are_all_processed() {
        let sched: Scheduler<u64> = Scheduler::new(4);
        let total = AtomicU64::new(0);
        for i in 0..1000 {
            sched.inject(i);
        }
        let out = sched.run(|_, v| {
            total.fetch_add(v, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 499_500);
        assert_eq!(out.processed, 1000);
        assert_eq!(out.leftover, 0);
    }

    #[test]
    fn halt_stops_early_and_accounts_for_leftovers() {
        let sched: Scheduler<u64> = Scheduler::new(2);
        for i in 0..100 {
            sched.inject(i);
        }
        let out = sched.run(|ctx, v| {
            if v == 0 {
                ctx.halt();
            }
        });
        assert!(out.halted);
        // Every injected task is accounted for: processed or leftover.
        assert_eq!(out.processed + out.leftover, 100);
    }

    #[test]
    fn no_work_at_all_returns_immediately() {
        let sched: Scheduler<()> = Scheduler::new(4);
        let out = sched.run(|_, ()| {});
        assert_eq!(out.processed, 0);
        assert_eq!(out.leftover, 0);
        assert!(!out.halted);
        assert_eq!(out.workers.len(), 4);
    }

    #[test]
    fn worker_stats_account_for_every_task() {
        for workers in [1, 2, 4] {
            let (_, out) = tree_sum(workers, 8);
            assert_eq!(out.workers.len(), workers);
            let by_worker: u64 = out.workers.iter().map(|w| w.processed).sum();
            assert_eq!(by_worker, out.processed, "workers={workers}");
            // Every processed task came from exactly one source.
            let sourced: u64 = out
                .workers
                .iter()
                .map(|w| w.local_pops + w.injector_hits + w.steals)
                .sum();
            assert_eq!(sourced, out.processed, "workers={workers}");
            // The single injected seed was an injector hit.
            let injected: u64 = out.workers.iter().map(|w| w.injector_hits).sum();
            assert!(injected >= 1);
            // Every park that ended with work is an unpark.
            for w in &out.workers {
                assert!(w.unparks <= w.parks);
            }
        }
    }

    #[test]
    fn single_worker_is_depth_first() {
        // With one worker and LIFO pops, a chain of pushes runs to
        // completion like a recursion — queue depth stays bounded.
        let sched: Scheduler<u32> = Scheduler::new(1);
        let count = AtomicU64::new(0);
        sched.inject(10_000);
        let out = sched.run(|ctx, n| {
            count.fetch_add(1, Ordering::Relaxed);
            if n > 0 {
                ctx.push(n - 1);
            }
        });
        assert_eq!(out.processed, 10_001);
        assert_eq!(count.load(Ordering::Relaxed), 10_001);
    }
}
