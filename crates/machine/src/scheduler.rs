//! A std-only work-stealing task scheduler with batched queues and a
//! reusable worker pool.
//!
//! This is the execution core under [`crate::parallel`]. Each worker
//! owns a run queue; a worker pushes the tasks it creates onto its own
//! queue and pops them back LIFO for cache locality. The hot paths are
//! *batched*: a worker takes up to [`BATCH`] tasks in one queue
//! synchronization, runs the whole batch, and flushes every task the
//! batch produced back onto its queue in a single push — one lock
//! acquisition and one pair of counter updates per batch instead of per
//! task. A dry worker drains the global injector, then steals *half* of
//! a sibling's queue — but only from queues at least [`STEAL_MIN`]
//! deep. Shallow queues mark a narrow, mostly serial task chain;
//! robbing them migrates the chain between workers (trashing locality
//! and the executor's same-batch rendezvous fast path) without buying
//! any parallelism. A queue holding fewer tasks than the floor keeps
//! them for its owner, which is what lets round-robin seeding guarantee
//! that every seeded worker processes its own seed.
//!
//! Narrow graphs never fill queues past the steal floor, so extra
//! workers would otherwise sleep through the whole run. The *donation*
//! path fixes start-up distribution explicitly: while some worker has
//! never been given work (not seeded, not donated to, never ran a
//! batch), each flush hands one produced task directly into that
//! worker's queue and wakes it. Each worker is donated to at most once,
//! and a single counter load in the flush fast path prices the
//! steady state — when seeding already reaches every queue, donations
//! cost nothing at all.
//!
//! Idle workers spin briefly, then park on a `Condvar` behind an
//! *event count*: a would-be sleeper snapshots `wake_epoch`, re-checks
//! the queues, and only blocks while the epoch is unchanged. Producers
//! bump the epoch when a flush leaves their queue at or above
//! [`WAKE_THRESHOLD`] (so sub-threshold dribbles of work never pay a
//! syscall — the owner will run them), on external injection, and on
//! halt/quiescence. A missed sub-threshold wakeup is therefore
//! harmless by construction: the only worker that can observe it is
//! parked, and the task's owner is awake and will process it.
//!
//! Shutdown is **explicit**:
//!
//! * a task pushed onto a queue is never dropped: it is either processed,
//!   or still countable in a queue when [`Scheduler::run`] returns after
//!   an explicit [`Ctx::halt`] (the caller sees the count in
//!   [`Outcome::leftover`]);
//! * with no halt requested, workers only exit when the in-flight count
//!   reaches zero, so `run` returning with `leftover == 0` is a
//!   *guarantee*, checked by a debug assertion, not a race.
//!
//! [`WorkerPool`] keeps the OS threads alive across runs: spawning a
//! thread costs tens of microseconds, which dominates sub-millisecond
//! graph executions and is exactly the overhead that made adding
//! workers *slow the executor down*. A pool is created once, parks its
//! threads between runs, and executes one [`Scheduler::run_in`] per
//! job.
//!
//! The scheduler knows nothing about dataflow; it moves opaque `T`s. The
//! machine semantics (rendezvous, firing, memory) live in
//! [`crate::parallel`].

use crate::chaos::{ChaosConfig, ChaosRng};
use crate::metrics::WorkerStats;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Maximum tasks taken (and bodies run) per queue synchronization.
pub const BATCH: usize = 32;
/// A flush that leaves the worker's queue at or above this length bumps
/// the wake epoch so parked siblings come steal.
pub const WAKE_THRESHOLD: usize = 16;
/// Bounded spin iterations before a dry worker parks.
const SPIN_TRIES: u32 = 64;
/// Minimum victim queue depth for stealing. Shallow queues are the
/// signature of a narrow (mostly serial) task chain: stealing one or
/// two tasks from them migrates the chain between workers — destroying
/// the producer's locality (and the executor's same-batch rendezvous
/// fast path) — without creating any real parallelism.
pub const STEAL_MIN: usize = 4;

/// Lock, recovering the guard if a panicking worker poisoned it (the
/// panic itself still propagates through the scope join).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// What `run` observed by the time every worker exited.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Tasks fully processed.
    pub processed: u64,
    /// Tasks still sitting in run queues when the workers exited. Zero
    /// unless [`Ctx::halt`] cut execution short.
    pub leftover: u64,
    /// Whether [`Ctx::halt`] was called (including the implicit halt a
    /// contained panic performs).
    pub halted: bool,
    /// The first worker panic contained this run: `(worker index,
    /// rendered payload)`. A panicking batch halts the whole scheduler,
    /// so `halted` is always true alongside this. `None` on clean runs.
    pub panicked: Option<(usize, String)>,
    /// Per-worker counters (pops, steals, parks, …), indexed by worker.
    /// Tallied thread-locally — the counters cost nothing on the shared
    /// structures.
    pub workers: Vec<WorkerStats>,
}

struct Park {
    /// Guarded by this lock; counts workers inside the wait loop.
    sleepers: Mutex<usize>,
    cvar: Condvar,
}

/// Work-stealing scheduler over tasks of type `T`.
pub struct Scheduler<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Global injector for tasks pushed from outside a worker
    /// (mid-run external injection; initial seeds go through
    /// [`Scheduler::seed`] instead).
    inject: Mutex<VecDeque<T>>,
    /// Tasks pushed but not yet fully processed (includes the ones a
    /// worker is currently running). Zero means no task exists and none
    /// can ever appear — the quiescence/termination signal.
    pending: AtomicUsize,
    /// Tasks currently resting in some queue, awaiting pickup.
    queued: AtomicUsize,
    /// Event count for parking: bumped whenever meaningful new work
    /// appears (threshold flush, injection, halt, quiescence). A sleeper
    /// snapshots it before its last look at the queues and only blocks
    /// while it is unchanged.
    wake_epoch: AtomicU64,
    /// Mirror of the sleeper count, readable without the park lock, so
    /// the flush fast path skips the lock entirely while nobody sleeps.
    sleeper_count: AtomicUsize,
    /// Per-worker "has ever been given work" flags: set by seeding, by a
    /// donation, or by the worker's own first processed batch. While any
    /// worker is unfed, flushes *donate* one produced task straight into
    /// its (empty) queue and wake it — a bounded start-up hand-off that
    /// guarantees work distribution even on narrow graphs whose queues
    /// never reach [`WAKE_THRESHOLD`]. A donated singleton sits below
    /// the steal floor, so the recipient itself must process it before
    /// the system can quiesce — "every worker runs" is deterministic.
    fed: Vec<AtomicBool>,
    /// How many `fed` flags are still unset; the flush fast path reads
    /// this single counter (zero from the start whenever seeding reaches
    /// every worker) to skip the donation scan entirely.
    unfed: AtomicUsize,
    stop: AtomicBool,
    processed: AtomicU64,
    /// First contained worker panic: `(worker, rendered payload)`.
    /// Recording a panic also raises `stop`, so later workers exit
    /// instead of processing a poisoned run further.
    panic: Mutex<Option<(usize, String)>>,
    /// Optional fault-injection plan (see [`crate::chaos`]); absent on
    /// ordinary runs, costing one branch per batch.
    chaos: Option<ChaosConfig>,
    park: Park,
}

/// Handle given to the task body: push follow-up work, request shutdown.
/// Produced tasks are buffered and flushed to the worker's queue once
/// per batch.
pub struct Ctx<'s, T> {
    sched: &'s Scheduler<T>,
    /// Index of the worker running this batch; its queue takes the
    /// flushes.
    worker: usize,
    /// Tasks produced by the current batch, flushed in one push.
    buf: RefCell<Vec<T>>,
}

impl<T: Send> Scheduler<T> {
    /// A scheduler with `n` worker queues (`n >= 1`).
    pub fn new(n_workers: usize) -> Scheduler<T> {
        let n = n_workers.max(1);
        Scheduler {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            inject: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            wake_epoch: AtomicU64::new(0),
            sleeper_count: AtomicUsize::new(0),
            fed: (0..n).map(|_| AtomicBool::new(false)).collect(),
            unfed: AtomicUsize::new(n),
            stop: AtomicBool::new(false),
            processed: AtomicU64::new(0),
            panic: Mutex::new(None),
            chaos: None,
            park: Park {
                sleepers: Mutex::new(0),
                cvar: Condvar::new(),
            },
        }
    }

    /// Attach a fault-injection plan: before each batch a worker may
    /// sleep (`delay_prob`) or be forced onto the injector/steal path
    /// (`force_steal_prob`). Faults are drawn from per-worker streams
    /// seeded by `chaos.seed`, so a given plan is reproducible.
    pub fn with_chaos(mut self, chaos: Option<ChaosConfig>) -> Scheduler<T> {
        self.chaos = chaos;
        self
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Seed initial tasks round-robin across the worker queues (before
    /// `run`). Every seeded worker is guaranteed to process at least one
    /// of its own seeds: a worker always drains its own queue before
    /// looking elsewhere, and thieves never take the last task of a
    /// queue.
    pub fn seed<I: IntoIterator<Item = T>>(&self, tasks: I) {
        let n = self.queues.len();
        let mut count = 0usize;
        for (i, t) in tasks.into_iter().enumerate() {
            lock(&self.queues[i % n]).push_back(t);
            self.mark_fed(i % n);
            count += 1;
        }
        self.pending.fetch_add(count, Ordering::SeqCst);
        self.queued.fetch_add(count, Ordering::SeqCst);
    }

    /// Seed initial tasks onto the queues chosen by `place` (clamped to
    /// the worker count by modulus). Unlike the round-robin [`seed`],
    /// this lets the caller co-locate tasks that will rendezvous — e.g.
    /// both halves of a two-input join — so the worker-local fast path
    /// is not defeated by the seeding pattern.
    ///
    /// [`seed`]: Scheduler::seed
    pub fn seed_with<I, F>(&self, tasks: I, place: F)
    where
        I: IntoIterator<Item = T>,
        F: Fn(&T) -> usize,
    {
        let n = self.queues.len();
        let mut count = 0usize;
        for t in tasks {
            let w = place(&t) % n;
            lock(&self.queues[w]).push_back(t);
            self.mark_fed(w);
            count += 1;
        }
        self.pending.fetch_add(count, Ordering::SeqCst);
        self.queued.fetch_add(count, Ordering::SeqCst);
    }

    /// Record that worker `w` has been given work (seed, donation, or
    /// its own first batch), retiring it as a donation target.
    fn mark_fed(&self, w: usize) {
        if !self.fed[w].swap(true, Ordering::SeqCst) {
            self.unfed.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Inject a task from outside the worker pool (before or during
    /// `run`). Mid-run injection always wakes a sleeper.
    pub fn inject(&self, t: T) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        lock(&self.inject).push_back(t);
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.wake(false);
    }

    /// Inject a group of tasks from outside the worker pool in one
    /// synchronization (one injector lock, one pair of counter updates,
    /// one wake) — the admission path for multiplexed request execution
    /// ([`crate::serve`]), where every request seeds several tokens at
    /// once. All sleepers are woken: a batch is exactly the situation
    /// where several parked workers can be put to use at once. Returns
    /// how many tasks were injected.
    pub fn inject_batch<I: IntoIterator<Item = T>>(&self, tasks: I) -> usize {
        let mut buf: Vec<T> = tasks.into_iter().collect();
        let m = buf.len();
        if m == 0 {
            return 0;
        }
        // `pending` rises before the tasks become visible, mirroring
        // [`Scheduler::inject`]: a worker that grabs a task and finishes
        // it must never drive `pending` below the true in-flight count.
        self.pending.fetch_add(m, Ordering::SeqCst);
        lock(&self.inject).extend(buf.drain(..));
        self.queued.fetch_add(m, Ordering::SeqCst);
        self.wake(true);
        m
    }

    /// Hold the scheduler open: raise `pending` by one without
    /// supplying a task, so the system does not quiesce (workers park
    /// instead of exiting) while an external driver still intends to
    /// [`Scheduler::inject_batch`] more work — the idle state of a
    /// serving loop between requests. Balance with
    /// [`Scheduler::release`].
    pub fn hold(&self) {
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Release a [`Scheduler::hold`]. When the hold was the last thing
    /// keeping the system alive, the workers are woken to observe
    /// quiescence and exit.
    pub fn release(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.wake(true);
        }
    }

    /// Bump the wake epoch and notify parked workers. `all` notifies
    /// every sleeper (halt/quiescence); otherwise one is enough.
    fn wake(&self, all: bool) {
        let guard = lock(&self.park.sleepers);
        self.wake_epoch.fetch_add(1, Ordering::SeqCst);
        if *guard > 0 {
            if all {
                self.park.cvar.notify_all();
            } else {
                self.park.cvar.notify_one();
            }
        }
    }

    /// Take up to [`BATCH`] tasks for worker `w` in one synchronization:
    /// own queue (newest — LIFO), then the injector, then *half* of the
    /// first sibling queue holding at least [`STEAL_MIN`] tasks. Returns
    /// how many tasks landed in `batch`; tallies the source into
    /// `stats`.
    ///
    /// With `force_steal` (fault injection), the order is inverted —
    /// injector, then steal, then the worker's *own* queue as the
    /// fallback — so the schedule is perturbed adversarially but a
    /// worker holding the only remaining work can never come up empty
    /// and park on it.
    fn fill_batch(
        &self,
        w: usize,
        batch: &mut Vec<T>,
        stats: &mut WorkerStats,
        force_steal: bool,
    ) -> usize {
        debug_assert!(batch.is_empty());
        if !force_steal {
            let k = self.pop_own(w, batch, stats);
            if k > 0 {
                return k;
            }
        }
        {
            let mut inj = lock(&self.inject);
            let k = inj.len().min(BATCH);
            for _ in 0..k {
                batch.push(inj.pop_front().expect("len checked"));
            }
            if k > 0 {
                drop(inj);
                self.queued.fetch_sub(k, Ordering::SeqCst);
                stats.injector_hits += k as u64;
                if force_steal {
                    stats.chaos_forced_steals += 1;
                }
                return k;
            }
        }
        let n = self.queues.len();
        for i in 1..n {
            let victim = (w + i) % n;
            let mut stolen: VecDeque<T> = {
                let mut q = lock(&self.queues[victim]);
                if q.len() < STEAL_MIN {
                    continue;
                }
                let half = q.len() / 2;
                // The *oldest* half — the classic split that keeps
                // stolen work coarse and leaves the victim its hot tail.
                let rest = q.split_off(half);
                std::mem::replace(&mut *q, rest)
            };
            let total = stolen.len();
            stats.steals += total as u64;
            let k = total.min(BATCH);
            for _ in 0..k {
                batch.push(stolen.pop_front().expect("len checked"));
            }
            // Surplus beyond one batch moves to our own queue; it stays
            // queued (only the batch leaves the resting count).
            if !stolen.is_empty() {
                lock(&self.queues[w]).extend(stolen);
            }
            self.queued.fetch_sub(k, Ordering::SeqCst);
            if force_steal {
                stats.chaos_forced_steals += 1;
            }
            return k;
        }
        if force_steal {
            // Nothing anywhere else: fall back to our own queue so the
            // injected fault cannot strand the last runnable work.
            self.pop_own(w, batch, stats)
        } else {
            0
        }
    }

    /// Pop up to [`BATCH`] newest tasks from worker `w`'s own queue.
    fn pop_own(&self, w: usize, batch: &mut Vec<T>, stats: &mut WorkerStats) -> usize {
        let mut q = lock(&self.queues[w]);
        let k = q.len().min(BATCH);
        for _ in 0..k {
            batch.push(q.pop_back().expect("len checked"));
        }
        if k > 0 {
            drop(q);
            self.queued.fetch_sub(k, Ordering::SeqCst);
            stats.local_pops += k as u64;
        }
        k
    }

    /// Flush the batch's produced tasks onto worker `w`'s queue in one
    /// push; bump the wake epoch when the queue crosses the wake
    /// threshold and somebody is parked. While some worker has never run
    /// a batch, one task is donated straight to it instead (see
    /// `virgin`).
    fn flush(&self, ctx: &Ctx<'_, T>) {
        let mut buf = ctx.buf.borrow_mut();
        let m = buf.len();
        if m == 0 {
            return;
        }
        self.pending.fetch_add(m, Ordering::SeqCst);
        let donated = self.unfed.load(Ordering::SeqCst) > 0 && self.donate(ctx, &mut buf);
        let qlen = {
            let mut q = lock(&self.queues[ctx.worker]);
            q.extend(buf.drain(..));
            q.len()
        };
        self.queued.fetch_add(m, Ordering::SeqCst);
        if donated {
            self.wake(true);
        } else if qlen >= WAKE_THRESHOLD && self.sleeper_count.load(Ordering::SeqCst) > 0 {
            self.wake(false);
        }
    }

    /// Hand one freshly produced task to the first worker that has never
    /// been given any (not seeded, not donated to, never ran a batch).
    /// Bounded: each worker is donated to at most once, and the single
    /// `unfed` counter load in [`Scheduler::flush`] short-circuits the
    /// whole path — including this scan of plain atomic flags, which
    /// touches no queue locks — the moment every worker is fed. When
    /// seeding reaches every queue, that is before the run even starts.
    fn donate(&self, ctx: &Ctx<'_, T>, buf: &mut Vec<T>) -> bool {
        for (v, flag) in self.fed.iter().enumerate() {
            if v == ctx.worker || flag.load(Ordering::SeqCst) {
                continue;
            }
            lock(&self.queues[v]).push_back(buf.pop().expect("flush checked buf is non-empty"));
            self.mark_fed(v);
            return true;
        }
        false
    }

    /// Run `body` over every task until the system drains or halts,
    /// spawning one scoped thread per queue.
    ///
    /// `body` receives a [`Ctx`] (for pushing follow-up tasks and
    /// requesting a halt) and a batch of tasks, which it must fully
    /// drain. Workers exit when (a) `Ctx::halt` was called, or (b)
    /// `pending` reaches zero — every pushed task was processed and none
    /// can ever appear again.
    pub fn run<F>(&self, body: F) -> Outcome
    where
        F: Fn(&Ctx<'_, T>, &mut Vec<T>) + Sync,
        T: Send,
    {
        let body = &body;
        let workers: Vec<WorkerStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.queues.len())
                .map(|w| {
                    let sched = &*self;
                    scope.spawn(move || sched.worker_loop(w, body))
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(w, h)| {
                    // Body panics are contained inside `worker_loop`; a
                    // panic escaping the loop itself is a scheduler bug,
                    // but even then the run must report, not abort.
                    h.join().unwrap_or_else(|payload| {
                        self.record_panic(w, &payload);
                        WorkerStats::default()
                    })
                })
                .collect()
        });
        self.finish(workers)
    }

    /// As [`Scheduler::run`], but on a pre-spawned [`WorkerPool`]
    /// (whose width must match) instead of freshly spawned threads.
    pub fn run_in<F>(&self, pool: &WorkerPool, body: F) -> Outcome
    where
        F: Fn(&Ctx<'_, T>, &mut Vec<T>) + Sync,
        T: Send,
    {
        assert_eq!(
            pool.workers(),
            self.queues.len(),
            "pool width must match the scheduler's queue count"
        );
        let body = &body;
        let slots: Vec<Mutex<Option<WorkerStats>>> =
            (0..self.queues.len()).map(|_| Mutex::new(None)).collect();
        let escaped = pool.run(&|w| {
            let stats = self.worker_loop(w, body);
            *lock(&slots[w]) = Some(stats);
        });
        if escaped {
            // A panic escaped `worker_loop` itself (body panics are
            // contained inside it): record a generic report so the run
            // still returns a typed failure. The pool thread survives —
            // `pool_worker` catches the unwind — so the pool stays
            // usable for subsequent runs.
            let mut slot = lock(&self.panic);
            if slot.is_none() {
                *slot = Some((usize::MAX, "worker loop panicked".to_string()));
            }
            drop(slot);
            self.halt_external();
        }
        // A panicked worker deposits no stats; report empty counters
        // for it rather than aborting the caller.
        let workers = slots
            .into_iter()
            .map(|s| lock(&s).take().unwrap_or_default())
            .collect();
        self.finish(workers)
    }

    fn finish(&self, workers: Vec<WorkerStats>) -> Outcome {
        let leftover = self.drain_count();
        let halted = self.stop.load(Ordering::SeqCst);
        let panicked = lock(&self.panic).take();
        debug_assert!(
            halted || leftover == 0,
            "scheduler quiesced with {leftover} unprocessed tasks — \
             a task was lost without an explicit halt"
        );
        Outcome {
            processed: self.processed.load(Ordering::SeqCst),
            leftover,
            halted,
            panicked,
            workers,
        }
    }

    /// Record the first contained panic and halt the run: later workers
    /// observe `stop` and exit, sleepers are woken, and `finish` surfaces
    /// the report in [`Outcome::panicked`].
    fn record_panic(&self, w: usize, payload: &(dyn std::any::Any + Send)) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some((w, msg));
        }
        drop(slot);
        self.halt_external();
    }

    /// Request a stop from outside any worker (watchdog expiry, external
    /// cancellation): the same semantics as [`Ctx::halt`], without
    /// needing a `Ctx`. Queued tasks stay in place and are reported in
    /// [`Outcome::leftover`].
    pub fn halt_external(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.wake(true);
    }

    fn worker_loop<F>(&self, w: usize, body: &F) -> WorkerStats
    where
        F: Fn(&Ctx<'_, T>, &mut Vec<T>) + Sync,
    {
        let ctx = Ctx {
            sched: self,
            worker: w,
            buf: RefCell::new(Vec::new()),
        };
        let mut stats = WorkerStats::default();
        let mut batch: Vec<T> = Vec::with_capacity(BATCH);
        let mut first_batch = true;
        let mut chaos = self
            .chaos
            .map(|c| (c, ChaosRng::for_worker(c.seed, w)));
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return stats;
            }
            // Snapshot the epoch *before* the last look at the queues:
            // if work arrives after the look, the producer's bump makes
            // the snapshot stale and the park below refuses to block.
            let epoch = self.wake_epoch.load(Ordering::SeqCst);
            let mut force_steal = false;
            if let Some((c, rng)) = chaos.as_mut() {
                if c.delay_prob > 0.0 && rng.chance(c.delay_prob) {
                    stats.chaos_delays += 1;
                    std::thread::sleep(std::time::Duration::from_micros(c.delay_us));
                }
                force_steal = c.force_steal_prob > 0.0 && rng.chance(c.force_steal_prob);
            }
            let k = self.fill_batch(w, &mut batch, &mut stats, force_steal);
            if k > 0 {
                if first_batch {
                    // A worker that found work on its own (e.g. via the
                    // injector) needs no donation; the guard is a local
                    // bool, so the steady state pays nothing.
                    first_batch = false;
                    self.mark_fed(w);
                }
                stats.batches += 1;
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    body(&ctx, &mut batch)
                }));
                // Shared accounting must be settled on both exits: the
                // batch's tasks leave `pending` (on the panic path the
                // unrun remainder is gone — `Vec::drain`'s drop already
                // emptied the vector — and counting them "processed"
                // keeps processed + leftover covering every task), and
                // everything the body produced *before* the fault is
                // flushed so it shows up as queue leftover, not a leak.
                debug_assert!(
                    run.is_err() || batch.is_empty(),
                    "body must drain its batch"
                );
                batch.clear(); // release-build safety: never reprocess
                self.flush(&ctx);
                stats.processed += k as u64;
                self.processed.fetch_add(k as u64, Ordering::SeqCst);
                if self.pending.fetch_sub(k, Ordering::SeqCst) == k {
                    // Last in-flight tasks: nothing can create work any
                    // more. Wake everyone so they observe pending == 0.
                    self.wake(true);
                }
                if let Err(payload) = run {
                    // Contain the panic: record it, halt the run, and
                    // exit this worker with its stats intact.
                    self.record_panic(w, &*payload);
                    return stats;
                }
                continue;
            }
            // Found nothing. Spin briefly — another worker may be about
            // to flush — then park on the epoch snapshot.
            let mut spun = 0u32;
            while spun < SPIN_TRIES {
                if self.stop.load(Ordering::SeqCst)
                    || self.pending.load(Ordering::SeqCst) == 0
                    || self.wake_epoch.load(Ordering::SeqCst) != epoch
                {
                    break;
                }
                std::hint::spin_loop();
                spun += 1;
            }
            let mut sleepers = lock(&self.park.sleepers);
            if self.wake_epoch.load(Ordering::SeqCst) != epoch {
                continue; // missed signal — retake a look at the queues
            }
            *sleepers += 1;
            self.sleeper_count.store(*sleepers, Ordering::SeqCst);
            stats.parks += 1;
            loop {
                if self.stop.load(Ordering::SeqCst)
                    || self.pending.load(Ordering::SeqCst) == 0
                {
                    *sleepers -= 1;
                    self.sleeper_count.store(*sleepers, Ordering::SeqCst);
                    return stats;
                }
                if self.wake_epoch.load(Ordering::SeqCst) != epoch {
                    *sleepers -= 1;
                    self.sleeper_count.store(*sleepers, Ordering::SeqCst);
                    stats.unparks += 1;
                    break; // work appeared — go take it
                }
                sleepers = self
                    .park
                    .cvar
                    .wait(sleepers)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Remaining tasks across all queues (meaningful after `run`).
    fn drain_count(&self) -> u64 {
        let mut n = lock(&self.inject).len() as u64;
        for q in &self.queues {
            n += lock(q).len() as u64;
        }
        n
    }
}

impl<T: Send> Ctx<'_, T> {
    /// Push a follow-up task. It is buffered and lands on the current
    /// worker's queue at the end of the batch, in one synchronization
    /// with everything else the batch produced. Never fails, never
    /// drops: the task is processed unless the whole run is explicitly
    /// halted first.
    pub fn push(&self, t: T) {
        self.buf.borrow_mut().push(t);
    }

    /// Request an immediate stop: all workers exit as soon as they
    /// observe the flag; queued tasks are left in place and reported in
    /// [`Outcome::leftover`].
    pub fn halt(&self) {
        self.sched.stop.store(true, Ordering::SeqCst);
        self.sched.wake(true);
    }

    /// Index of the worker running the current batch.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

// ---------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------

/// A job handed to the pool: called once per worker with the worker
/// index. The pointer is type- and lifetime-erased so the pool threads
/// (spawned once, `'static`) can run borrowing closures; see the safety
/// argument on [`WorkerPool::run`].
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (asserted by the type) and the pointer
// is only dereferenced between job dispatch and completion, while the
// caller of `run` keeps the referent alive (it blocks until
// `remaining == 0`).
unsafe impl Send for Job {}

struct PoolState {
    /// Incremented per dispatched job; workers run each epoch once.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// A worker's job panicked this epoch.
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for the next epoch.
    start: Condvar,
    /// `run` waits here for `remaining == 0`.
    done: Condvar,
}

/// A fixed set of OS threads that parks between jobs, so repeated
/// executor runs pay for thread spawning once instead of per run. Used
/// through [`Scheduler::run_in`] / `parallel::ExecutorPool`.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `n` workers (`n >= 1`); they park immediately.
    pub fn new(n_workers: usize) -> WorkerPool {
        let n = n_workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..n)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cf2df-pool-{w}"))
                    .spawn(move || pool_worker(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `job(w)` once on every pool worker `w`, blocking until all
    /// have finished. Returns whether any worker's job panicked (the
    /// panic is contained by the pool thread, which survives for the
    /// next job; the caller decides how to surface the failure).
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) -> bool {
        // SAFETY: we erase the borrow's lifetime to hand the pointer to
        // the long-lived pool threads. The pointer is dereferenced only
        // by workers executing this epoch, and this function does not
        // return (so the borrow stays live) until every worker has
        // finished the epoch (`remaining == 0`); the slot is cleared
        // before returning.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        let mut st = lock(&self.shared.state);
        debug_assert_eq!(st.remaining, 0, "pool jobs never overlap");
        st.epoch += 1;
        st.job = Some(Job(erased as *const _));
        st.remaining = self.handles.len();
        self.shared.start.notify_all();
        while st.remaining > 0 {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        std::mem::take(&mut st.panicked)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn pool_worker(shared: &PoolShared, w: usize) {
    let mut seen = 0u64;
    loop {
        let job: Job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(Job(ptr)) = st.job {
                        seen = st.epoch;
                        break Job(ptr);
                    }
                }
                st = shared
                    .start
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: see `WorkerPool::run` — the referent outlives the
        // epoch, and we signal completion only after the call returns.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (*job.0)(w)
        }));
        let mut st = lock(&shared.state);
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    fn for_each<T: Send>(
        body: impl Fn(&Ctx<'_, T>, T) + Sync,
    ) -> impl Fn(&Ctx<'_, T>, &mut Vec<T>) + Sync {
        move |ctx, batch| {
            for t in batch.drain(..) {
                body(ctx, t);
            }
        }
    }

    /// Fan out a binary tree of tasks and sum the leaves: exercises
    /// pushes from inside workers, stealing, and clean quiescence.
    fn tree_sum(workers: usize, depth: u32) -> (u64, Outcome) {
        let sched: Scheduler<(u32, u64)> = Scheduler::new(workers);
        let total = AtomicU64::new(0);
        sched.inject((depth, 1));
        let out = sched.run(for_each(|ctx, (d, v)| {
            if d == 0 {
                total.fetch_add(v, Ordering::Relaxed);
            } else {
                ctx.push((d - 1, v * 2));
                ctx.push((d - 1, v * 2 + 1));
            }
        }));
        (total.load(Ordering::Relaxed), out)
    }

    #[test]
    fn drains_cleanly_at_every_width() {
        // Leaves of the value tree starting at 1: values 2^d .. 2^(d+1)-1.
        let d = 10u32;
        let expect: u64 = (1u64 << d..1u64 << (d + 1)).sum();
        for workers in [1, 2, 4, 8] {
            let (sum, out) = tree_sum(workers, d);
            assert_eq!(sum, expect, "workers={workers}");
            assert_eq!(out.leftover, 0);
            assert!(!out.halted);
            // Internal nodes + leaves of a depth-d binary tree.
            assert_eq!(out.processed, (1 << (d + 1)) - 1);
        }
    }

    #[test]
    fn injected_tasks_are_all_processed() {
        let sched: Scheduler<u64> = Scheduler::new(4);
        let total = AtomicU64::new(0);
        for i in 0..1000 {
            sched.inject(i);
        }
        let out = sched.run(for_each(|_, v| {
            total.fetch_add(v, Ordering::Relaxed);
        }));
        assert_eq!(total.load(Ordering::Relaxed), 499_500);
        assert_eq!(out.processed, 1000);
        assert_eq!(out.leftover, 0);
    }

    #[test]
    fn seeds_distribute_round_robin_and_all_process() {
        let sched: Scheduler<u64> = Scheduler::new(4);
        sched.seed(0..8u64);
        // Each queue received exactly two seeds.
        for q in &sched.queues {
            assert_eq!(lock(q).len(), 2);
        }
        let total = AtomicU64::new(0);
        let out = sched.run(for_each(|_, v| {
            total.fetch_add(v, Ordering::Relaxed);
        }));
        assert_eq!(total.load(Ordering::Relaxed), 28);
        assert_eq!(out.processed, 8);
        // Every worker processed at least one of its own seeds: a
        // worker drains its own queue first and thieves never take the
        // last task of a queue, so the run cannot finish without every
        // seeded worker having run.
        for (i, w) in out.workers.iter().enumerate() {
            assert!(w.processed > 0, "worker {i} processed nothing: {out:?}");
        }
    }

    #[test]
    fn halt_stops_early_and_accounts_for_leftovers() {
        let sched: Scheduler<u64> = Scheduler::new(2);
        for i in 0..100 {
            sched.inject(i);
        }
        let out = sched.run(for_each(|ctx, v| {
            if v == 0 {
                ctx.halt();
            }
        }));
        assert!(out.halted);
        // Every injected task is accounted for: processed or leftover.
        assert_eq!(out.processed + out.leftover, 100);
    }

    #[test]
    fn no_work_at_all_returns_immediately() {
        let sched: Scheduler<()> = Scheduler::new(4);
        let out = sched.run(for_each(|_, ()| {}));
        assert_eq!(out.processed, 0);
        assert_eq!(out.leftover, 0);
        assert!(!out.halted);
        assert_eq!(out.workers.len(), 4);
    }

    #[test]
    fn worker_stats_account_for_every_task() {
        for workers in [1, 2, 4] {
            let (_, out) = tree_sum(workers, 8);
            assert_eq!(out.workers.len(), workers);
            let by_worker: u64 = out.workers.iter().map(|w| w.processed).sum();
            assert_eq!(by_worker, out.processed, "workers={workers}");
            // Every processed task came from exactly one source.
            let sourced: u64 = out
                .workers
                .iter()
                .map(|w| w.local_pops + w.injector_hits + w.steals)
                .sum();
            assert_eq!(sourced, out.processed, "workers={workers}");
            // The single injected seed was an injector hit.
            let injected: u64 = out.workers.iter().map(|w| w.injector_hits).sum();
            assert!(injected >= 1);
            // Batches are at least as coarse as tasks, never coarser
            // than the batch cap allows.
            for w in &out.workers {
                assert!(w.unparks <= w.parks);
                assert!(w.batches <= w.processed.max(1));
                assert!(w.processed <= w.batches * BATCH as u64);
            }
        }
    }

    #[test]
    fn single_worker_is_depth_first() {
        // With one worker and LIFO batch pops, a chain of pushes runs to
        // completion like a recursion — queue depth stays bounded.
        let sched: Scheduler<u32> = Scheduler::new(1);
        let count = AtomicU64::new(0);
        sched.inject(10_000);
        let out = sched.run(for_each(|ctx, n| {
            count.fetch_add(1, Ordering::Relaxed);
            if n > 0 {
                ctx.push(n - 1);
            }
        }));
        assert_eq!(out.processed, 10_001);
        assert_eq!(count.load(Ordering::Relaxed), 10_001);
    }

    /// Forced contention: one slow producer fans work out while hungry
    /// consumers start empty. The sleeps force the producer off the CPU
    /// (this also holds on a single-core host), so consumers must be
    /// woken through the threshold path and must steal to make
    /// progress.
    #[test]
    fn forced_contention_exercises_steal_and_park() {
        let workers = 4;
        let sched: Scheduler<u32> = Scheduler::new(workers);
        // Seed one producer task in worker 0's queue only.
        sched.seed([u32::MAX]);
        let done = AtomicU64::new(0);
        let out = sched.run(for_each(|ctx, v| {
            if v == u32::MAX {
                // The producer: fan out well past the wake threshold,
                // slowly, so siblings park before work exists and get
                // woken by the threshold flush afterwards.
                for i in 0..(WAKE_THRESHOLD as u32 * 8) {
                    ctx.push(i);
                }
                std::thread::sleep(Duration::from_millis(5));
            } else {
                // Consumers burn a little time so the queue stays
                // contended while everyone is awake.
                std::thread::sleep(Duration::from_micros(50));
                done.fetch_add(1, Ordering::Relaxed);
            }
        }));
        assert_eq!(out.processed, 1 + WAKE_THRESHOLD as u64 * 8);
        assert_eq!(done.load(Ordering::Relaxed), WAKE_THRESHOLD as u64 * 8);
        let steals: u64 = out.workers.iter().map(|w| w.steals).sum();
        let parks: u64 = out.workers.iter().map(|w| w.parks).sum();
        let unparks: u64 = out.workers.iter().map(|w| w.unparks).sum();
        assert!(steals > 0, "siblings must steal from the producer: {out:?}");
        assert!(parks > 0, "empty-handed workers must park: {out:?}");
        assert!(unparks > 0, "the threshold flush must wake a sleeper: {out:?}");
    }

    /// Steal-half: a thief takes half of the victim's queue in one
    /// steal, and a queue holding a single task is never robbed.
    #[test]
    fn steal_takes_half_but_never_the_last_task() {
        let sched: Scheduler<u32> = Scheduler::new(2);
        // 100 tasks, all in worker 0's queue.
        {
            let mut q = lock(&sched.queues[0]);
            q.extend(0..100u32);
        }
        sched.pending.fetch_add(100, Ordering::SeqCst);
        sched.queued.fetch_add(100, Ordering::SeqCst);
        let mut stats = WorkerStats::default();
        let mut batch = Vec::new();
        let k = sched.fill_batch(1, &mut batch, &mut stats, false);
        // Worker 1 stole half the queue (50): one batch in hand, the
        // surplus relocated to its own queue.
        assert_eq!(stats.steals, 50);
        assert_eq!(k, BATCH.min(50));
        assert_eq!(lock(&sched.queues[0]).len(), 50);
        assert_eq!(lock(&sched.queues[1]).len(), 50 - k);
        // The oldest tasks were taken, in order.
        assert_eq!(batch[0], 0);

        // A singleton queue is not a steal target.
        let lone: Scheduler<u32> = Scheduler::new(2);
        lock(&lone.queues[0]).push_back(7);
        lone.pending.fetch_add(1, Ordering::SeqCst);
        lone.queued.fetch_add(1, Ordering::SeqCst);
        let mut batch = Vec::new();
        let k = lone.fill_batch(1, &mut batch, &mut stats, false);
        assert_eq!(k, 0, "the last task belongs to its owner");
        assert_eq!(lock(&lone.queues[0]).len(), 1);
    }

    /// Park/unpark under a slow drip: consumers park repeatedly while an
    /// injector thread drips tasks in with pauses, and every drip wakes
    /// somebody (mid-run injection always bumps the epoch).
    #[test]
    fn slow_drip_parks_and_wakes_repeatedly() {
        let sched: Scheduler<u32> = Scheduler::new(3);
        let sched = &sched;
        let seen = AtomicU64::new(0);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..5u32 {
                    std::thread::sleep(Duration::from_millis(3));
                    sched.inject(i);
                }
            });
            // Hold the run open until all five drips arrived.
            sched.inject(u32::MAX);
            let out = sched.run(for_each(|_ctx, v| {
                if v == u32::MAX {
                    while seen.load(Ordering::Relaxed) < 5 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                } else {
                    seen.fetch_add(1, Ordering::Relaxed);
                }
            }));
            assert_eq!(out.processed, 6);
            let parks: u64 = out.workers.iter().map(|w| w.parks).sum();
            assert!(parks > 0, "drip-fed workers must have parked: {out:?}");
        });
    }

    /// A narrow serial chain (one task in flight at a time) never fills
    /// any queue past the steal floor, so without donations every
    /// unseeded worker would park at start-up and sleep through the
    /// whole run. The donation path must feed each of them at least one
    /// task — and a donated singleton cannot be stolen, so "every worker
    /// processed something" is deterministic, not probabilistic.
    #[test]
    fn starving_workers_are_fed_by_donation() {
        let workers = 8;
        let sched: Scheduler<u32> = Scheduler::new(workers);
        sched.seed([10_000u32]);
        let out = sched.run(for_each(|ctx, n| {
            if n > 0 {
                ctx.push(n - 1);
            }
        }));
        assert_eq!(out.processed, 10_001);
        assert_eq!(out.leftover, 0);
        for (w, s) in out.workers.iter().enumerate() {
            assert!(
                s.processed > 0,
                "worker {w} was never fed on a narrow chain: {out:?}"
            );
        }
    }

    /// A held scheduler idles (workers park, nothing exits) across gaps
    /// between injected batches, drains everything injected while held,
    /// and only quiesces after the release — the serving-loop protocol.
    #[test]
    fn hold_keeps_the_scheduler_open_across_injection_gaps() {
        let sched: Scheduler<u64> = Scheduler::new(3);
        let sched = &sched;
        let total = AtomicU64::new(0);
        sched.hold();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for round in 0..4u64 {
                    // The gap: with no tasks anywhere, only the hold
                    // keeps the workers from exiting.
                    std::thread::sleep(Duration::from_millis(2));
                    let n = sched.inject_batch((0..10).map(|i| round * 10 + i));
                    assert_eq!(n, 10);
                }
                assert_eq!(sched.inject_batch(std::iter::empty()), 0);
                std::thread::sleep(Duration::from_millis(2));
                sched.release();
            });
            let out = sched.run(for_each(|_, v: u64| {
                total.fetch_add(v, Ordering::Relaxed);
            }));
            assert_eq!(out.processed, 40);
            assert_eq!(out.leftover, 0);
            assert!(!out.halted);
            assert_eq!(total.load(Ordering::Relaxed), (0..40u64).sum::<u64>());
        });
    }

    #[test]
    fn pool_runs_jobs_and_is_reusable() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        for round in 0..3 {
            let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
            let panicked = pool.run(&|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            assert!(!panicked);
            for (w, h) in hits.iter().enumerate() {
                assert_eq!(
                    h.load(Ordering::Relaxed),
                    1,
                    "round {round}: worker {w} ran exactly once"
                );
            }
        }
    }

    /// A panicking job is contained: `run` reports it instead of
    /// aborting, and the same pool threads run the next job cleanly.
    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = WorkerPool::new(4);
        let panicked = pool.run(&|w| {
            if w == 2 {
                panic!("injected");
            }
        });
        assert!(panicked, "the panic must be reported");
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        let panicked = pool.run(&|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        assert!(!panicked);
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1, "pool still runs every worker");
        }
    }

    /// A panicking task body halts the run and surfaces the worker and
    /// payload in the outcome — at every width, without taking the
    /// process down.
    #[test]
    fn body_panic_is_contained_and_reported() {
        for workers in [1, 2, 4, 8] {
            let sched: Scheduler<u64> = Scheduler::new(workers);
            for i in 0..200 {
                sched.inject(i);
            }
            let out = sched.run(for_each(|_, v: u64| {
                if v == 100 {
                    panic!("task exploded");
                }
            }));
            let (_, msg) = out.panicked.as_ref().unwrap_or_else(|| {
                panic!("workers={workers}: panic not reported: {out:?}")
            });
            assert_eq!(msg, "task exploded", "workers={workers}");
            assert!(out.halted, "a contained panic halts the run");
            // Every task is still accounted for: processed (the batch
            // containing the panic counts as consumed) or leftover.
            assert_eq!(out.processed + out.leftover, 200, "workers={workers}");
        }
    }

    /// Forced steals must never strand work: even with every batch
    /// forced onto the steal path, a lone worker falls back to its own
    /// queue and the system drains.
    #[test]
    fn forced_steal_falls_back_to_own_queue() {
        for workers in [1, 4] {
            let sched: Scheduler<(u32, u64)> =
                Scheduler::new(workers).with_chaos(Some(ChaosConfig {
                    force_steal_prob: 1.0,
                    ..ChaosConfig::off(42)
                }));
            let total = AtomicU64::new(0);
            sched.inject((10, 1));
            let out = sched.run(for_each(|ctx, (d, v): (u32, u64)| {
                if d == 0 {
                    total.fetch_add(v, Ordering::Relaxed);
                } else {
                    ctx.push((d - 1, v * 2));
                    ctx.push((d - 1, v * 2 + 1));
                }
            }));
            let expect: u64 = (1u64 << 10..1u64 << 11).sum();
            assert_eq!(total.load(Ordering::Relaxed), expect, "workers={workers}");
            assert_eq!(out.leftover, 0, "workers={workers}: no stranded work");
            assert!(!out.halted);
        }
    }

    /// Chaos delays are drawn from the per-worker seeded stream: the
    /// run completes, and the delay tally is nonzero at probability 1.
    #[test]
    fn chaos_delays_are_injected_and_tallied() {
        let sched: Scheduler<u64> = Scheduler::new(2).with_chaos(Some(ChaosConfig {
            delay_prob: 1.0,
            delay_us: 1,
            ..ChaosConfig::off(7)
        }));
        for i in 0..50 {
            sched.inject(i);
        }
        let out = sched.run(for_each(|_, _v: u64| {}));
        assert_eq!(out.processed, 50);
        let delays: u64 = out.workers.iter().map(|w| w.chaos_delays).sum();
        assert!(delays > 0, "p=1 delays must be tallied: {out:?}");
    }

    #[test]
    fn scheduler_runs_identically_in_a_pool() {
        let pool = WorkerPool::new(4);
        let d = 9u32;
        let expect: u64 = (1u64 << d..1u64 << (d + 1)).sum();
        for round in 0..3 {
            let sched: Scheduler<(u32, u64)> = Scheduler::new(4);
            let total = AtomicU64::new(0);
            sched.inject((d, 1));
            let out = sched.run_in(
                &pool,
                for_each(|ctx, (dd, v): (u32, u64)| {
                    if dd == 0 {
                        total.fetch_add(v, Ordering::Relaxed);
                    } else {
                        ctx.push((dd - 1, v * 2));
                        ctx.push((dd - 1, v * 2 + 1));
                    }
                }),
            );
            assert_eq!(total.load(Ordering::Relaxed), expect, "round {round}");
            assert_eq!(out.processed, (1 << (d + 1)) - 1);
            assert_eq!(out.leftover, 0);
            assert_eq!(out.workers.len(), 4);
        }
    }
}
