//! The function context: one CFG plus a revision-stamped analysis cache.
//!
//! Translation needs the same handful of analyses — dominators,
//! postdominators, control dependence, the loop forest, a topological
//! order, predecessor lists — at several points in the pipeline, and the
//! CFG is mutated in between (irreducible-region splitting, loop-control
//! insertion). [`FunctionContext`] owns the CFG behind a **monotone
//! revision stamp**: every cached analysis records the revision it was
//! computed at, mutations bump the revision and clear exactly the slots
//! they can have invalidated, and accessors recompute on demand. A slot
//! whose stamp disagrees with the current revision can only mean the
//! invalidation mask was wrong, so that state panics in debug builds
//! rather than silently serving a stale analysis.
//!
//! Results are handed out as [`Rc`] clones: the context stays usable
//! (and mutably borrowable) while callers hold onto analysis results,
//! and repeated accesses are pointer copies, not recomputations.

use std::rc::Rc;

use crate::alias::{AliasStructure, Cover, CoverStrategy};
use crate::control_dep::ControlDeps;
use crate::graph::{Cfg, CfgError, NodeId};
use crate::intervals::{Irreducible, LoopForest};
use crate::postdom::DomTree;
use crate::reach::topo_order_ignoring_backedges;

/// The analyses the cache tracks, used to index [`CacheStats`] counters
/// and to build [`Preserved`] masks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum AnalysisKind {
    /// Forward dominator tree ([`DomTree::dominators`]).
    Dominators = 0,
    /// Postdominator tree ([`DomTree::postdominators`]).
    Postdominators,
    /// Control dependence ([`ControlDeps`]), derived from postdominators.
    ControlDeps,
    /// Natural-loop forest / interval decomposition ([`LoopForest`]).
    LoopForest,
    /// Topological order of the CFG ignoring backedges.
    TopoOrder,
    /// Predecessor lists ([`Cfg::preds`]).
    Preds,
    /// Structural validity ([`Cfg::validate`]).
    Validity,
    /// Alias covers ([`Cover::build`]); keyed by strategy, derived from
    /// the alias structure only — never invalidated by CFG mutation.
    Cover,
}

/// Number of [`AnalysisKind`] variants (array sizes below).
pub const N_ANALYSES: usize = 8;

impl AnalysisKind {
    /// Every kind, in counter order.
    pub const ALL: [AnalysisKind; N_ANALYSES] = [
        AnalysisKind::Dominators,
        AnalysisKind::Postdominators,
        AnalysisKind::ControlDeps,
        AnalysisKind::LoopForest,
        AnalysisKind::TopoOrder,
        AnalysisKind::Preds,
        AnalysisKind::Validity,
        AnalysisKind::Cover,
    ];

    /// Stable display name (used by `--time-passes` and bench artifacts).
    pub fn name(self) -> &'static str {
        match self {
            AnalysisKind::Dominators => "dominators",
            AnalysisKind::Postdominators => "postdominators",
            AnalysisKind::ControlDeps => "control-deps",
            AnalysisKind::LoopForest => "loop-forest",
            AnalysisKind::TopoOrder => "topo-order",
            AnalysisKind::Preds => "preds",
            AnalysisKind::Validity => "validity",
            AnalysisKind::Cover => "cover",
        }
    }
}

/// Computed-vs-hit counters, one pair per [`AnalysisKind`].
///
/// Counters are cumulative over the context's lifetime; use
/// [`CacheStats::since`] for a per-pass delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// How many times each analysis was actually computed.
    pub computed: [u64; N_ANALYSES],
    /// How many times a cached result was served.
    pub hits: [u64; N_ANALYSES],
}

impl CacheStats {
    /// Total computations across all analysis kinds.
    pub fn total_computed(&self) -> u64 {
        self.computed.iter().sum()
    }

    /// Total cache hits across all analysis kinds.
    pub fn total_hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Counter deltas since an earlier snapshot of the same context.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        let mut d = CacheStats::default();
        for i in 0..N_ANALYSES {
            d.computed[i] = self.computed[i] - earlier.computed[i];
            d.hits[i] = self.hits[i] - earlier.hits[i];
        }
        d
    }

    /// Computed count for one kind.
    pub fn computed_of(&self, k: AnalysisKind) -> u64 {
        self.computed[k as usize]
    }

    /// Hit count for one kind.
    pub fn hits_of(&self, k: AnalysisKind) -> u64 {
        self.hits[k as usize]
    }
}

/// Which analyses a mutation promises to keep valid.
///
/// Passed to [`FunctionContext::mutate`] / [`FunctionContext::replace_cfg`];
/// preserved slots survive the revision bump (their stamp is advanced),
/// everything else is cleared and recomputed on next access. Covers are
/// derived from the alias structure, not the graph, and always survive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Preserved(u16);

impl Preserved {
    /// Nothing survives: every CFG-derived analysis is invalidated.
    pub const NONE: Preserved = Preserved(0);
    /// The mutation maintains structural validity (all our mutating
    /// transforms do: splitting and loop-control insertion keep the
    /// graph well-formed by construction).
    pub const VALIDITY: Preserved = Preserved(1 << AnalysisKind::Validity as u16);

    /// Does the mask contain `k`?
    pub fn contains(self, k: AnalysisKind) -> bool {
        self.0 & (1 << k as u16) != 0
    }

    /// The mask extended with `k`.
    pub fn with(self, k: AnalysisKind) -> Preserved {
        Preserved(self.0 | (1 << k as u16))
    }
}

/// One cache slot: the revision the value was computed at, plus the value.
#[derive(Clone, Debug)]
struct Slot<T> {
    v: Option<(u64, T)>,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot { v: None }
    }
}

impl<T: Clone> Slot<T> {
    /// Serve the cached value if its stamp matches `revision`, else
    /// recompute. A populated slot with a *mismatched* stamp means an
    /// invalidation mask lied; that panics in debug builds.
    fn get(
        &mut self,
        revision: u64,
        kind: AnalysisKind,
        stats: &mut CacheStats,
        compute: impl FnOnce() -> T,
    ) -> T {
        if let Some((stamp, v)) = &self.v {
            if *stamp == revision {
                stats.hits[kind as usize] += 1;
                return v.clone();
            }
            debug_assert!(
                false,
                "stale {} analysis survived invalidation (stamp {stamp}, revision {revision})",
                kind.name()
            );
        }
        stats.computed[kind as usize] += 1;
        let v = compute();
        self.v = Some((revision, v.clone()));
        v
    }

    fn invalidate(&mut self, revision: u64, preserved: bool) {
        match &mut self.v {
            Some((stamp, _)) if preserved => *stamp = revision,
            _ => self.v = None,
        }
    }
}

/// The memoized analyses of one [`FunctionContext`].
#[derive(Default)]
struct AnalysisCache {
    doms: Slot<Rc<DomTree>>,
    postdoms: Slot<Rc<DomTree>>,
    control_deps: Slot<Rc<ControlDeps>>,
    forest: Slot<Result<Rc<LoopForest>, Irreducible>>,
    topo: Slot<Result<Rc<Vec<NodeId>>, Irreducible>>,
    preds: Slot<Rc<Vec<Vec<(NodeId, usize)>>>>,
    validity: Slot<Result<(), Vec<CfgError>>>,
    /// Alias covers are keyed by strategy, not revision: they depend on
    /// the alias structure alone, which is fixed for the context's life.
    covers: Vec<(CoverStrategy, Rc<Cover>)>,
    stats: CacheStats,
}

/// A CFG, its alias structure, and a compute-once analysis cache keyed
/// by a monotone revision stamp. See the module docs for the protocol.
pub struct FunctionContext {
    cfg: Cfg,
    alias: AliasStructure,
    revision: u64,
    cache: AnalysisCache,
}

impl FunctionContext {
    /// Take ownership of a CFG and its alias structure.
    pub fn new(cfg: Cfg, alias: AliasStructure) -> FunctionContext {
        FunctionContext { cfg, alias, revision: 0, cache: AnalysisCache::default() }
    }

    /// A context with the identity alias structure (no aliasing).
    pub fn for_cfg(cfg: Cfg) -> FunctionContext {
        let alias = AliasStructure::for_table(&cfg.vars);
        FunctionContext::new(cfg, alias)
    }

    /// The current graph (read-only; mutate through [`Self::mutate`]).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The alias structure the context was built with.
    pub fn alias(&self) -> &AliasStructure {
        &self.alias
    }

    /// The current revision. Starts at 0; each mutation adds 1.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Snapshot of the computed/hit counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Consume the context, keeping the (possibly mutated) graph.
    pub fn into_cfg(self) -> Cfg {
        self.cfg
    }

    /// Mutate the CFG in place. Bumps the revision and invalidates every
    /// cached analysis not named in `preserved` (covers always survive —
    /// they are alias-derived). Returns whatever the closure returns.
    pub fn mutate<R>(&mut self, preserved: Preserved, f: impl FnOnce(&mut Cfg) -> R) -> R {
        let r = f(&mut self.cfg);
        self.bump(preserved);
        r
    }

    /// Replace the CFG wholesale (e.g. with its split-irreducible
    /// counterpart). Same invalidation protocol as [`Self::mutate`].
    pub fn replace_cfg(&mut self, cfg: Cfg, preserved: Preserved) {
        self.cfg = cfg;
        self.bump(preserved);
    }

    fn bump(&mut self, preserved: Preserved) {
        self.revision += 1;
        let r = self.revision;
        let c = &mut self.cache;
        c.doms.invalidate(r, preserved.contains(AnalysisKind::Dominators));
        c.postdoms.invalidate(r, preserved.contains(AnalysisKind::Postdominators));
        c.control_deps.invalidate(r, preserved.contains(AnalysisKind::ControlDeps));
        c.forest.invalidate(r, preserved.contains(AnalysisKind::LoopForest));
        c.topo.invalidate(r, preserved.contains(AnalysisKind::TopoOrder));
        c.preds.invalidate(r, preserved.contains(AnalysisKind::Preds));
        c.validity.invalidate(r, preserved.contains(AnalysisKind::Validity));
        // covers: alias-derived, untouched by design.
    }

    /// Structural validity of the current graph, memoized.
    pub fn validate(&mut self) -> Result<(), Vec<CfgError>> {
        let (cfg, rev) = (&self.cfg, self.revision);
        self.cache.validity.get(rev, AnalysisKind::Validity, &mut self.cache.stats, || {
            cfg.validate()
        })
    }

    /// Forward dominator tree, memoized.
    pub fn dominators(&mut self) -> Rc<DomTree> {
        let (cfg, rev) = (&self.cfg, self.revision);
        self.cache.doms.get(rev, AnalysisKind::Dominators, &mut self.cache.stats, || {
            Rc::new(DomTree::dominators(cfg))
        })
    }

    /// Postdominator tree, memoized.
    pub fn postdominators(&mut self) -> Rc<DomTree> {
        let (cfg, rev) = (&self.cfg, self.revision);
        self.cache.postdoms.get(rev, AnalysisKind::Postdominators, &mut self.cache.stats, || {
            Rc::new(DomTree::postdominators(cfg))
        })
    }

    /// Control dependence, memoized; pulls postdominators through the
    /// cache first (one shared computation, counted once).
    pub fn control_deps(&mut self) -> Rc<ControlDeps> {
        let pd = self.postdominators();
        let (cfg, rev) = (&self.cfg, self.revision);
        self.cache.control_deps.get(rev, AnalysisKind::ControlDeps, &mut self.cache.stats, || {
            Rc::new(ControlDeps::compute(cfg, &pd))
        })
    }

    /// Natural-loop forest, memoized — including the `Err(Irreducible)`
    /// outcome, so a reducibility *test* and a later *use* share one
    /// computation. Dominators are pulled through the cache first.
    pub fn loop_forest(&mut self) -> Result<Rc<LoopForest>, Irreducible> {
        let dom = self.dominators();
        let (cfg, rev) = (&self.cfg, self.revision);
        self.cache.forest.get(rev, AnalysisKind::LoopForest, &mut self.cache.stats, || {
            LoopForest::compute_with_dominators(cfg, &dom).map(Rc::new)
        })
    }

    /// Topological order ignoring backedges, memoized. Needs the loop
    /// forest (for backedge indices), so shares the reducibility outcome.
    pub fn topo_order(&mut self) -> Result<Rc<Vec<NodeId>>, Irreducible> {
        let forest = self.loop_forest()?;
        let (cfg, rev) = (&self.cfg, self.revision);
        self.cache.topo.get(rev, AnalysisKind::TopoOrder, &mut self.cache.stats, || {
            let backedges = forest.backedge_indices(cfg);
            Ok(Rc::new(topo_order_ignoring_backedges(cfg, &backedges)))
        })
    }

    /// Predecessor lists, memoized.
    pub fn preds(&mut self) -> Rc<Vec<Vec<(NodeId, usize)>>> {
        let (cfg, rev) = (&self.cfg, self.revision);
        self.cache.preds.get(rev, AnalysisKind::Preds, &mut self.cache.stats, || {
            Rc::new(cfg.preds())
        })
    }

    /// The alias cover for `strategy`, memoized per strategy. Covers
    /// depend only on the alias structure, so CFG mutations never
    /// invalidate them.
    pub fn cover(&mut self, strategy: &CoverStrategy) -> Rc<Cover> {
        if let Some((_, c)) = self.cache.covers.iter().find(|(s, _)| s == strategy) {
            self.cache.stats.hits[AnalysisKind::Cover as usize] += 1;
            return Rc::clone(c);
        }
        self.cache.stats.computed[AnalysisKind::Cover as usize] += 1;
        let c = Rc::new(Cover::build(strategy, &self.alias));
        self.cache.covers.push((strategy.clone(), Rc::clone(&c)));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::stmt::{LValue, Stmt};
    use crate::var::VarTable;

    /// start -> join -> body -> br -> (join | end): one natural loop.
    fn looped_cfg() -> Cfg {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let body = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, body);
        cfg.add_edge(body, br);
        cfg.add_edge(br, join);
        cfg.add_edge(br, cfg.end());
        cfg
    }

    #[test]
    fn second_access_is_a_hit_not_a_recompute() {
        let mut fc = FunctionContext::for_cfg(looped_cfg());
        let a = fc.postdominators();
        let b = fc.postdominators();
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(fc.stats().computed_of(AnalysisKind::Postdominators), 1);
        assert_eq!(fc.stats().hits_of(AnalysisKind::Postdominators), 1);
    }

    #[test]
    fn derived_analyses_share_their_inputs_through_the_cache() {
        let mut fc = FunctionContext::for_cfg(looped_cfg());
        fc.control_deps(); // computes postdoms + control deps
        fc.control_deps(); // pure hits
        assert_eq!(fc.stats().computed_of(AnalysisKind::Postdominators), 1);
        assert_eq!(fc.stats().computed_of(AnalysisKind::ControlDeps), 1);
        fc.topo_order().unwrap(); // computes doms + forest + topo
        fc.topo_order().unwrap();
        assert_eq!(fc.stats().computed_of(AnalysisKind::Dominators), 1);
        assert_eq!(fc.stats().computed_of(AnalysisKind::LoopForest), 1);
        assert_eq!(fc.stats().computed_of(AnalysisKind::TopoOrder), 1);
    }

    #[test]
    fn mutation_invalidates_everything_not_preserved() {
        let mut fc = FunctionContext::for_cfg(looped_cfg());
        fc.validate().unwrap();
        fc.control_deps();
        fc.loop_forest().unwrap();
        let before = fc.stats();
        // A no-op mutation still bumps the revision and invalidates.
        fc.mutate(Preserved::VALIDITY, |_| ());
        assert_eq!(fc.revision(), 1);
        fc.validate().unwrap(); // preserved: a hit
        fc.control_deps(); // invalidated: recomputed
        fc.loop_forest().unwrap();
        let d = fc.stats().since(&before);
        assert_eq!(d.hits_of(AnalysisKind::Validity), 1);
        assert_eq!(d.computed_of(AnalysisKind::Validity), 0);
        assert_eq!(d.computed_of(AnalysisKind::Postdominators), 1);
        assert_eq!(d.computed_of(AnalysisKind::ControlDeps), 1);
        assert_eq!(d.computed_of(AnalysisKind::LoopForest), 1);
    }

    #[test]
    fn covers_are_keyed_by_strategy_and_survive_mutation() {
        let mut fc = FunctionContext::for_cfg(looped_cfg());
        let a = fc.cover(&CoverStrategy::Singletons);
        let b = fc.cover(&CoverStrategy::SingleToken);
        let a2 = fc.cover(&CoverStrategy::Singletons);
        assert!(Rc::ptr_eq(&a, &a2));
        assert!(!Rc::ptr_eq(&a, &b));
        fc.mutate(Preserved::NONE, |_| ());
        let a3 = fc.cover(&CoverStrategy::Singletons);
        assert!(Rc::ptr_eq(&a, &a3), "covers are alias-derived, not graph-derived");
        assert_eq!(fc.stats().computed_of(AnalysisKind::Cover), 2);
        assert_eq!(fc.stats().hits_of(AnalysisKind::Cover), 2);
    }

    #[test]
    fn irreducibility_is_memoized_too() {
        // Two-entry loop: start forks into a and b, a -> b -> a.
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let fork = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        let a = cfg.add_node(Stmt::Assign { lhs: LValue::Var(x), rhs: Expr::Var(x) });
        let b = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        cfg.set_entry(fork);
        cfg.add_edge(fork, a);
        cfg.add_edge(fork, b);
        cfg.add_edge(a, b);
        cfg.add_edge(b, a);
        cfg.add_edge(b, cfg.end());
        let mut fc = FunctionContext::for_cfg(cfg);
        assert!(fc.loop_forest().is_err());
        assert!(fc.loop_forest().is_err());
        assert!(fc.topo_order().is_err());
        assert_eq!(fc.stats().computed_of(AnalysisKind::LoopForest), 1);
        assert_eq!(fc.stats().hits_of(AnalysisKind::LoopForest), 2);
        // The failed topo never computed (its input failed).
        assert_eq!(fc.stats().computed_of(AnalysisKind::TopoOrder), 0);
    }
}
