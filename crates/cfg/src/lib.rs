#![warn(missing_docs)]

//! Control-flow graphs and the analyses required to translate them to
//! dataflow graphs, following Beck, Johnson & Pingali, *From Control Flow to
//! Dataflow* (Cornell TR 89-1050, ICPP 1990).
//!
//! This crate provides:
//!
//! * the statement-level program representation of §2.1: variables
//!   ([`var`]), expressions ([`expr`]), statements ([`stmt`]) and the
//!   control-flow graph itself ([`graph`]);
//! * postdominator and dominator trees ([`postdom`]);
//! * control dependence and iterated control dependence ([`control_dep`]),
//!   the machinery behind the paper's Theorem 1;
//! * interval (loop) decomposition and loop-control insertion
//!   ([`intervals`], [`loop_control`]) required by translation Schema 2 (§3);
//! * alias structures and covers ([`alias`]) required by Schema 3 (§5);
//! * a per-function [`context::FunctionContext`] owning the CFG behind a
//!   revision-stamped, compute-once [`context`] analysis cache — the
//!   substrate of the translation pass manager;
//! * memory layouts binding variable names to locations ([`layout`]),
//!   including layouts that realize a particular aliasing;
//! * graph utilities ([`reach`]) and DOT export ([`dot`]).

pub mod alias;
pub mod context;
pub mod control_dep;
pub mod dot;
pub mod expr;
pub mod graph;
pub mod intervals;
pub mod layout;
pub mod loop_control;
pub mod postdom;
pub mod reach;
pub mod stmt;
pub mod var;

pub use alias::{AliasStructure, Cover, CoverStrategy};
pub use context::{AnalysisKind, CacheStats, FunctionContext, Preserved};
pub use control_dep::{between, ControlDeps};
pub use expr::{BinOp, Expr, UnOp};
pub use graph::{Cfg, CfgError, EdgeRef, NodeId, OutDir};
pub use intervals::{LoopForest, LoopId, LoopInfo};
pub use layout::MemLayout;
pub use postdom::DomTree;
pub use stmt::{LValue, Stmt};
pub use var::{VarId, VarKind, VarTable};
