//! Control dependence and iterated control dependence (§4.1).
//!
//! Definition 4 of the paper: `N` is control dependent on `F` iff there is a
//! non-null path `F ⇒ N` such that `N` postdominates every node after `F` on
//! the path, and `N` does not strictly postdominate `F`.
//!
//! Control dependences are computed from the postdominator tree with the
//! standard Ferrante–Ottenstein–Warren edge walk: for every edge `A → B`,
//! every node on the postdominator-tree path from `B` up to (but excluding)
//! `ipostdom(A)` is control dependent on `A`.
//!
//! Theorem 1 states that `N` is *between* `F` and `ipostdom(F)`
//! (Definition 1) iff `F ∈ CD⁺(N)`, the iterated control dependence set.
//! [`between`] implements Definition 1 directly by path search so the
//! theorem can be checked differentially.

use crate::graph::{Cfg, NodeId};
use crate::postdom::DomTree;

/// The control-dependence relation of a CFG.
#[derive(Clone, Debug)]
pub struct ControlDeps {
    /// `deps[n]` = the set of nodes `F` such that `n` is control dependent
    /// on `F` (i.e. `CD(n)` of Definition 4), deduplicated.
    deps: Vec<Vec<NodeId>>,
}

impl ControlDeps {
    /// Compute control dependences from the CFG and its postdominator tree.
    pub fn compute(cfg: &Cfg, pd: &DomTree) -> ControlDeps {
        let n = cfg.len();
        let mut deps: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (a, _, b) in cfg.edges() {
            // Nodes on the postdominator-tree path [b, ipostdom(a)) are
            // control dependent on a.
            let stop = pd.idom(a);
            let mut runner = Some(b);
            while runner != stop {
                let r = runner.expect("walked past the postdominator root");
                if !deps[r.index()].contains(&a) {
                    deps[r.index()].push(a);
                }
                runner = pd.idom(r);
            }
        }
        ControlDeps { deps }
    }

    /// `CD(n)`: the nodes on which `n` is control dependent.
    pub fn deps_of(&self, n: NodeId) -> &[NodeId] {
        &self.deps[n.index()]
    }

    /// `CD⁺` of a *set* of seed nodes (Definition 5 extended to sets, as the
    /// switch-placement algorithm of Fig 10 uses it): the least set `S`
    /// containing `CD(seed)` for every seed and closed under `CD`.
    ///
    /// Returns a boolean mask over nodes: `mask[f]` iff `f ∈ CD⁺(seeds)`.
    pub fn iterated(&self, seeds: &[NodeId]) -> Vec<bool> {
        let mut marked = vec![false; self.deps.len()];
        let mut on_worklist = vec![false; self.deps.len()];
        let mut worklist: Vec<NodeId> = Vec::new();
        for &s in seeds {
            if !on_worklist[s.index()] {
                on_worklist[s.index()] = true;
                worklist.push(s);
            }
        }
        while let Some(n) = worklist.pop() {
            for &f in self.deps_of(n) {
                if !marked[f.index()] {
                    marked[f.index()] = true;
                }
                if !on_worklist[f.index()] {
                    on_worklist[f.index()] = true;
                    worklist.push(f);
                }
            }
        }
        marked
    }

    /// `CD⁺(n)` for a single node.
    pub fn iterated_single(&self, n: NodeId) -> Vec<bool> {
        self.iterated(&[n])
    }
}

/// Definition 1, implemented directly by path search: `n` is *between* `f`
/// and its immediate postdominator `p` iff there exists a non-null path
/// `f ⇒ n` that does not pass through `p`.
///
/// This is the brute-force side of Theorem 1, used for differential testing
/// against [`ControlDeps::iterated`].
pub fn between(cfg: &Cfg, pd: &DomTree, f: NodeId, n: NodeId) -> bool {
    let Some(p) = pd.idom(f) else {
        return false; // f is `end`; nothing is between end and anything
    };
    if n == p {
        return false;
    }
    // DFS from the successors of f, never visiting p.
    let mut seen = vec![false; cfg.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in cfg.succs(f) {
        if s != p && !seen[s.index()] {
            seen[s.index()] = true;
            stack.push(s);
        }
    }
    while let Some(v) = stack.pop() {
        if v == n {
            return true;
        }
        for &s in cfg.succs(v) {
            if s != p && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::stmt::{LValue, Stmt};
    use crate::var::VarTable;

    fn diamond() -> (Cfg, NodeId, NodeId, NodeId, NodeId) {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let br = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        let a = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(1),
        });
        let b = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(2),
        });
        let join = cfg.add_node(Stmt::Join);
        cfg.set_entry(br);
        cfg.add_edge(br, a);
        cfg.add_edge(br, b);
        cfg.add_edge(a, join);
        cfg.add_edge(b, join);
        cfg.add_edge(join, cfg.end());
        (cfg, br, a, b, join)
    }

    fn running_example() -> (Cfg, NodeId, NodeId, NodeId, NodeId) {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let y = vars.scalar("y");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let s1 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(y),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let s2 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, s1);
        cfg.add_edge(s1, s2);
        cfg.add_edge(s2, br);
        cfg.add_edge(br, join);
        cfg.add_edge(br, cfg.end());
        (cfg, join, s1, s2, br)
    }

    #[test]
    fn diamond_control_deps() {
        let (cfg, br, a, b, join) = diamond();
        let pd = DomTree::postdominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pd);
        // The two arms are control dependent on the branch.
        assert_eq!(cd.deps_of(a), &[br]);
        assert_eq!(cd.deps_of(b), &[br]);
        // The join postdominates the branch: not control dependent on it.
        assert!(!cd.deps_of(join).contains(&br));
        // Everything on the main path is control dependent on start (the
        // conventional start→end edge makes start a fork).
        assert!(cd.deps_of(br).contains(&cfg.start()));
        assert!(cd.deps_of(join).contains(&cfg.start()));
    }

    #[test]
    fn loop_body_control_dependent_on_branch() {
        let (cfg, join, s1, s2, br) = running_example();
        let pd = DomTree::postdominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pd);
        // Every node in the loop body is control dependent on the loop
        // branch (the backedge br → join makes the body re-executable).
        for n in [join, s1, s2, br] {
            assert!(
                cd.deps_of(n).contains(&br),
                "{n:?} should be control dependent on the loop branch"
            );
        }
        // end is not control dependent on br (it postdominates it).
        assert!(!cd.deps_of(cfg.end()).contains(&br));
    }

    #[test]
    fn self_loop_is_self_dependent() {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::Var(x),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, br);
        cfg.add_edge(br, join); // true: loop
        cfg.add_edge(br, cfg.end()); // false: exit
        cfg.validate().unwrap();
        let pd = DomTree::postdominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pd);
        assert!(cd.deps_of(br).contains(&br));
        assert!(cd.deps_of(join).contains(&br));
    }

    #[test]
    fn iterated_closure_reaches_outer_fork() {
        // Nested diamonds: outer branch around an inner branch around `a`.
        // CD(a) = {inner}; CD(inner) = {outer}; CD⁺(a) ⊇ {inner, outer}.
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let outer = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        let inner = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        let a = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(1),
        });
        let ijoin = cfg.add_node(Stmt::Join);
        let ojoin = cfg.add_node(Stmt::Join);
        cfg.set_entry(outer);
        cfg.add_edge(outer, inner); // true
        cfg.add_edge(outer, ojoin); // false
        cfg.add_edge(inner, a); // true
        cfg.add_edge(inner, ijoin); // false
        cfg.add_edge(a, ijoin);
        cfg.add_edge(ijoin, ojoin);
        cfg.add_edge(ojoin, cfg.end());
        cfg.validate().unwrap();

        let pd = DomTree::postdominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pd);
        assert_eq!(cd.deps_of(a), &[inner]);
        let closure = cd.iterated_single(a);
        assert!(closure[inner.index()]);
        assert!(closure[outer.index()], "CD⁺ must include the outer fork");
        assert!(closure[cfg.start().index()]);
        assert!(!closure[a.index()], "a itself is not in CD⁺(a) here");
    }

    #[test]
    fn theorem1_on_diamond() {
        // F needs a switch for N iff F ∈ CD⁺(N) — check against the
        // brute-force path-based Definition 1 on the diamond.
        let (cfg, ..) = diamond();
        check_theorem1(&cfg);
    }

    #[test]
    fn theorem1_on_running_example() {
        let (cfg, ..) = running_example();
        check_theorem1(&cfg);
    }

    fn check_theorem1(cfg: &Cfg) {
        let pd = DomTree::postdominators(cfg);
        let cd = ControlDeps::compute(cfg, &pd);
        for n in cfg.node_ids() {
            let closure = cd.iterated_single(n);
            for f in cfg.node_ids() {
                assert_eq!(
                    between(cfg, &pd, f, n),
                    closure[f.index()],
                    "Theorem 1 violated for F={f:?}, N={n:?}"
                );
            }
        }
    }

    #[test]
    fn between_excludes_postdominator() {
        let (cfg, br, a, _, join) = diamond();
        let pd = DomTree::postdominators(&cfg);
        // a is between br and join; join is not between br and join.
        assert!(between(&cfg, &pd, br, a));
        assert!(!between(&cfg, &pd, br, join));
        // end has no postdominator: nothing is between it and anything.
        assert!(!between(&cfg, &pd, cfg.end(), a));
    }

    #[test]
    fn iterated_of_set_unions_closures() {
        let (cfg, br, a, b, _) = diamond();
        let pd = DomTree::postdominators(&cfg);
        let cd = ControlDeps::compute(&cfg, &pd);
        let both = cd.iterated(&[a, b]);
        let ca = cd.iterated_single(a);
        let cb = cd.iterated_single(b);
        for n in cfg.node_ids() {
            assert_eq!(both[n.index()], ca[n.index()] || cb[n.index()]);
        }
        assert!(both[br.index()]);
    }
}
