//! Interval (loop) decomposition (§3).
//!
//! The paper identifies cycles by decomposing the control-flow graph into
//! nested intervals: "an interval is a maximal, single entry subgraph having
//! a unique node called the header which is the only entry node and in which
//! all cyclic paths contain the header".
//!
//! For the loop-control transformation, what matters is each interval's
//! *cyclic part*: the header plus every node that can reach the header
//! inside the interval. For reducible graphs this is exactly the natural
//! loop of the header's backedges (natural loops with the same header
//! merged), which is what we compute. Irreducible graphs — where some cycle
//! has two entries — are reported as an error; the paper handles them by
//! code copying, which [`crate::loop_control::split_irreducible`] applies.

use crate::graph::{Cfg, NodeId};
use crate::postdom::DomTree;
use std::fmt;

/// A dense index identifying a loop in the [`LoopForest`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

impl LoopId {
    /// The index as a `usize`, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One cyclic interval.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// The interval header — the unique entry of the cyclic part.
    pub header: NodeId,
    /// Nodes of the cyclic part (including the header), sorted by id.
    pub body: Vec<NodeId>,
    /// Backedges `(from, out-index)` — edges from inside the body to the
    /// header.
    pub backedges: Vec<(NodeId, usize)>,
    /// The innermost strictly-containing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth (outermost = 0).
    pub depth: u32,
}

impl LoopInfo {
    /// True if `n` is in the loop body.
    pub fn contains(&self, n: NodeId) -> bool {
        self.body.binary_search(&n).is_ok()
    }

    /// Exit edges: edges `(from, idx, to)` with `from` in the body and `to`
    /// outside it. These are exactly the edges "exiting the cyclic part of
    /// the interval" on which §3 places loop-exit statements.
    pub fn exit_edges(&self, cfg: &Cfg) -> Vec<(NodeId, usize, NodeId)> {
        let mut out = Vec::new();
        for &n in &self.body {
            for (i, &s) in cfg.succs(n).iter().enumerate() {
                if !self.contains(s) {
                    out.push((n, i, s));
                }
            }
        }
        out
    }

    /// Entry edges: edges into the header from outside the body.
    pub fn entry_edges(&self, cfg: &Cfg) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        for (from, idx, to) in cfg.edges() {
            if to == self.header && !self.contains(from) {
                out.push((from, idx));
            }
        }
        out
    }
}

/// Error returned when the CFG is irreducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Irreducible {
    /// Nodes participating in a cycle with multiple entries.
    pub witnesses: Vec<NodeId>,
}

impl fmt::Display for Irreducible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "control-flow graph is irreducible (cycle with multiple entries through {:?}); \
             apply node splitting first",
            self.witnesses
        )
    }
}

impl std::error::Error for Irreducible {}

/// The nested-loop decomposition of a CFG.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<LoopInfo>,
    /// Innermost loop containing each node (`None` if the node is in no
    /// loop).
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Compute the loop forest of a valid, reducible CFG.
    pub fn compute(cfg: &Cfg) -> Result<LoopForest, Irreducible> {
        let dom = DomTree::dominators(cfg);
        Self::compute_with_dominators(cfg, &dom)
    }

    /// As [`LoopForest::compute`], reusing a dominator tree.
    pub fn compute_with_dominators(cfg: &Cfg, dom: &DomTree) -> Result<LoopForest, Irreducible> {
        let n = cfg.len();
        // Backedges: a → h where h dominates a.
        let mut backedges_by_header: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];
        let mut is_backedge = vec![Vec::new(); n]; // per node: out-indices
        for (a, idx, h) in cfg.edges() {
            if dom.dominates(h, a) {
                backedges_by_header[h.index()].push((a, idx));
                is_backedge[a.index()].push(idx);
            }
        }

        // Reducibility: removing the backedges must yield a DAG.
        check_acyclic_without_backedges(cfg, &is_backedge)?;

        let preds = cfg.preds();
        let mut loops = Vec::new();
        for h in cfg.node_ids() {
            let backedges = std::mem::take(&mut backedges_by_header[h.index()]);
            if backedges.is_empty() {
                continue;
            }
            // Natural loop: nodes that reach a backedge source without
            // passing through h.
            let mut in_body = vec![false; n];
            in_body[h.index()] = true;
            let mut stack: Vec<NodeId> = Vec::new();
            for &(src, _) in &backedges {
                if !in_body[src.index()] {
                    in_body[src.index()] = true;
                    stack.push(src);
                }
            }
            while let Some(v) = stack.pop() {
                for &(p, _) in &preds[v.index()] {
                    if !in_body[p.index()] {
                        in_body[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let body: Vec<NodeId> = cfg.node_ids().filter(|v| in_body[v.index()]).collect();
            loops.push(LoopInfo {
                header: h,
                body,
                backedges,
                parent: None,
                depth: 0,
            });
        }

        // Nesting: sort by body size ascending; the parent of a loop is the
        // smallest strictly-larger loop containing its header.
        let mut order: Vec<usize> = (0..loops.len()).collect();
        order.sort_by_key(|&i| loops[i].body.len());
        let mut remap = vec![0usize; loops.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = new;
        }
        let mut sorted: Vec<LoopInfo> = order.iter().map(|&i| loops[i].clone()).collect();
        for i in 0..sorted.len() {
            for j in (i + 1)..sorted.len() {
                if sorted[j].contains(sorted[i].header) && sorted[j].header != sorted[i].header {
                    sorted[i].parent = Some(LoopId(j as u32));
                    break;
                }
            }
        }
        // Depths.
        for i in 0..sorted.len() {
            let mut d = 0;
            let mut p = sorted[i].parent;
            while let Some(pid) = p {
                d += 1;
                p = sorted[pid.index()].parent;
            }
            sorted[i].depth = d;
        }
        // Innermost loop per node: loops are sorted smallest-first, so the
        // first loop containing a node is its innermost.
        let mut innermost = vec![None; n];
        for v in cfg.node_ids() {
            for (i, l) in sorted.iter().enumerate() {
                if l.contains(v) {
                    innermost[v.index()] = Some(LoopId(i as u32));
                    break;
                }
            }
        }

        Ok(LoopForest {
            loops: sorted,
            innermost,
        })
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the CFG is loop-free.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Loop info by id.
    pub fn info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.index()]
    }

    /// Iterate over `(id, info)` pairs, innermost loops first.
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &LoopInfo)> {
        self.loops
            .iter()
            .enumerate()
            .map(|(i, l)| (LoopId(i as u32), l))
    }

    /// The innermost loop containing `n`, if any.
    pub fn innermost(&self, n: NodeId) -> Option<LoopId> {
        self.innermost[n.index()]
    }

    /// Backedge out-indices per node: `result[n]` lists the out-edge indices
    /// of `n` that are loop backedges.
    pub fn backedge_indices(&self, cfg: &Cfg) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); cfg.len()];
        for l in &self.loops {
            for &(src, idx) in &l.backedges {
                if !out[src.index()].contains(&idx) {
                    out[src.index()].push(idx);
                }
            }
        }
        out
    }
}

/// Verify that removing the identified backedges leaves a DAG; otherwise
/// the graph is irreducible.
fn check_acyclic_without_backedges(
    cfg: &Cfg,
    is_backedge: &[Vec<usize>],
) -> Result<(), Irreducible> {
    let n = cfg.len();
    let mut indeg = vec![0usize; n];
    for (a, idx, b) in cfg.edges() {
        if !is_backedge[a.index()].contains(&idx) {
            indeg[b.index()] += 1;
        }
    }
    let mut queue: Vec<NodeId> = cfg.node_ids().filter(|v| indeg[v.index()] == 0).collect();
    let mut removed = 0usize;
    while let Some(v) = queue.pop() {
        removed += 1;
        for (i, &s) in cfg.succs(v).iter().enumerate() {
            if !is_backedge[v.index()].contains(&i) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
    }
    if removed == n {
        return Ok(());
    }
    // Nodes surviving the forward pruning include everything *downstream*
    // of a cycle; prune from the other side too so the witnesses are
    // exactly the nodes on residual cycles (node splitting must only ever
    // copy those).
    let alive: Vec<bool> = (0..n).map(|i| indeg[i] > 0).collect();
    let mut outdeg = vec![0usize; n];
    for (a, idx, b) in cfg.edges() {
        if !is_backedge[a.index()].contains(&idx) && alive[a.index()] && alive[b.index()] {
            outdeg[a.index()] += 1;
        }
    }
    let mut preds_alive: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (a, idx, b) in cfg.edges() {
        if !is_backedge[a.index()].contains(&idx) && alive[a.index()] && alive[b.index()] {
            preds_alive[b.index()].push(a);
        }
    }
    let mut dead_queue: Vec<NodeId> = cfg
        .node_ids()
        .filter(|v| alive[v.index()] && outdeg[v.index()] == 0)
        .collect();
    let mut on_cycle = alive;
    while let Some(v) = dead_queue.pop() {
        on_cycle[v.index()] = false;
        for &p in &preds_alive[v.index()] {
            if on_cycle[p.index()] {
                outdeg[p.index()] -= 1;
                if outdeg[p.index()] == 0 {
                    dead_queue.push(p);
                }
            }
        }
    }
    let witnesses = cfg.node_ids().filter(|v| on_cycle[v.index()]).collect();
    Err(Irreducible { witnesses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::stmt::{LValue, Stmt};
    use crate::var::VarTable;

    fn running_example() -> (Cfg, NodeId, NodeId) {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let y = vars.scalar("y");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let s1 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(y),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let s2 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, s1);
        cfg.add_edge(s1, s2);
        cfg.add_edge(s2, br);
        cfg.add_edge(br, join);
        cfg.add_edge(br, cfg.end());
        (cfg, join, br)
    }

    #[test]
    fn single_loop_detected() {
        let (cfg, join, br) = running_example();
        let forest = LoopForest::compute(&cfg).unwrap();
        assert_eq!(forest.len(), 1);
        let (id, l) = forest.iter().next().unwrap();
        assert_eq!(l.header, join);
        assert_eq!(l.body.len(), 4); // join, s1, s2, br
        assert_eq!(l.backedges, vec![(br, 0)]);
        assert_eq!(l.depth, 0);
        assert_eq!(forest.innermost(join), Some(id));
        assert_eq!(forest.innermost(cfg.start()), None);
        assert_eq!(forest.innermost(cfg.end()), None);
    }

    #[test]
    fn exit_and_entry_edges() {
        let (cfg, join, br) = running_example();
        let forest = LoopForest::compute(&cfg).unwrap();
        let (_, l) = forest.iter().next().unwrap();
        assert_eq!(l.exit_edges(&cfg), vec![(br, 1, cfg.end())]);
        assert_eq!(l.entry_edges(&cfg), vec![(cfg.start(), 0)]);
        assert_eq!(l.entry_edges(&cfg)[0].0, cfg.start());
        let _ = join;
    }

    #[test]
    fn loop_free_graph_has_empty_forest() {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let s = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(1),
        });
        cfg.set_entry(s);
        cfg.add_edge(s, cfg.end());
        let forest = LoopForest::compute(&cfg).unwrap();
        assert!(forest.is_empty());
    }

    #[test]
    fn nested_loops_ordered_inner_first() {
        // outer: join_o; inner: join_i … br_i → join_i; br_o → join_o.
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let join_o = cfg.add_node(Stmt::Join);
        let join_i = cfg.add_node(Stmt::Join);
        let body = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let br_i = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(3)),
        });
        let br_o = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(9)),
        });
        cfg.set_entry(join_o);
        cfg.add_edge(join_o, join_i);
        cfg.add_edge(join_i, body);
        cfg.add_edge(body, br_i);
        cfg.add_edge(br_i, join_i); // inner backedge
        cfg.add_edge(br_i, br_o);
        cfg.add_edge(br_o, join_o); // outer backedge
        cfg.add_edge(br_o, cfg.end());
        cfg.validate().unwrap();

        let forest = LoopForest::compute(&cfg).unwrap();
        assert_eq!(forest.len(), 2);
        let loops: Vec<_> = forest.iter().collect();
        let (inner_id, inner) = loops[0];
        let (outer_id, outer) = loops[1];
        assert_eq!(inner.header, join_i);
        assert_eq!(outer.header, join_o);
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert!(outer.contains(join_i));
        assert!(!inner.contains(br_o));
        assert_eq!(forest.innermost(body), Some(inner_id));
        assert_eq!(forest.innermost(br_o), Some(outer_id));
    }

    #[test]
    fn irreducible_graph_rejected() {
        // Two joins that jump into each other's "loop": the classic
        // two-entry cycle.
        //   start → br; br→j1 (t), br→j2 (f); j1→j2; j2→br2; br2→j1 (t),
        //   br2→end (f). Cycle j1→j2→br2→j1 has entries j1 (from br2,br)
        //   and j2 (from br): irreducible.
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let br = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        let j1 = cfg.add_node(Stmt::Join);
        let j2 = cfg.add_node(Stmt::Join);
        let br2 = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        cfg.set_entry(br);
        cfg.add_edge(br, j1);
        cfg.add_edge(br, j2);
        cfg.add_edge(j1, j2);
        cfg.add_edge(j2, br2);
        cfg.add_edge(br2, j1);
        cfg.add_edge(br2, cfg.end());
        cfg.validate().unwrap();
        let err = LoopForest::compute(&cfg).unwrap_err();
        assert!(!err.witnesses.is_empty());
    }

    #[test]
    fn self_loop_forms_singleton_body() {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        // A join that is also the branch target forms a 2-node loop; the
        // minimal self-cycle in our node discipline is join ↔ branch.
        let j = cfg.add_node(Stmt::Join);
        let br = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        cfg.set_entry(j);
        cfg.add_edge(j, br);
        cfg.add_edge(br, j);
        cfg.add_edge(br, cfg.end());
        let forest = LoopForest::compute(&cfg).unwrap();
        assert_eq!(forest.len(), 1);
        let (_, l) = forest.iter().next().unwrap();
        assert_eq!(l.body, vec![j, br]);
    }

    #[test]
    fn backedge_indices_marks_only_backedges() {
        let (cfg, _, br) = running_example();
        let forest = LoopForest::compute(&cfg).unwrap();
        let be = forest.backedge_indices(&cfg);
        assert_eq!(be[br.index()], vec![0]); // true-edge is the backedge
        assert!(be[cfg.start().index()].is_empty());
    }
}

/// One Allen–Cocke interval: a maximal single-entry region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// The interval's unique entry node.
    pub header: NodeId,
    /// Members in addition order (header first).
    pub members: Vec<NodeId>,
}

impl Interval {
    /// True if `n` belongs to the interval.
    pub fn contains(&self, n: NodeId) -> bool {
        self.members.contains(&n)
    }
}

/// The classical Allen–Cocke interval partition — the construction the
/// paper's §3 refers to ("we perform an interval decomposition of the
/// control-flow graph \[1\]"): starting from `start`, each interval grows by
/// absorbing nodes *all* of whose predecessors already lie inside it;
/// every remaining node with an already-covered predecessor heads a new
/// interval. The result partitions the nodes into maximal single-entry
/// regions in which every cycle passes through the header.
pub fn interval_partition(cfg: &Cfg) -> Vec<Interval> {
    let preds = cfg.preds();
    let mut interval_of: Vec<Option<usize>> = vec![None; cfg.len()];
    let mut intervals: Vec<Interval> = Vec::new();
    let mut header_queue: Vec<NodeId> = vec![cfg.start()];
    let mut queued = vec![false; cfg.len()];
    queued[cfg.start().index()] = true;

    while let Some(h) = header_queue.pop() {
        if interval_of[h.index()].is_some() {
            continue;
        }
        let id = intervals.len();
        let mut members = vec![h];
        interval_of[h.index()] = Some(id);
        // Grow: absorb nodes whose predecessors all lie in this interval.
        loop {
            let mut grew = false;
            for n in cfg.node_ids() {
                if interval_of[n.index()].is_some() || preds[n.index()].is_empty() {
                    continue;
                }
                let all_inside = preds[n.index()]
                    .iter()
                    .all(|&(p, _)| interval_of[p.index()] == Some(id));
                if all_inside {
                    interval_of[n.index()] = Some(id);
                    members.push(n);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        intervals.push(Interval { header: h, members });
        // New headers: uncovered nodes with a covered predecessor.
        for n in cfg.node_ids() {
            if interval_of[n.index()].is_none()
                && !queued[n.index()]
                && preds[n.index()]
                    .iter()
                    .any(|&(p, _)| interval_of[p.index()].is_some())
            {
                queued[n.index()] = true;
                header_queue.push(n);
            }
        }
    }
    intervals
}

#[cfg(test)]
mod interval_tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::stmt::{LValue, Stmt};
    use crate::var::VarTable;

    fn running_example() -> (Cfg, NodeId) {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let y = vars.scalar("y");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let s1 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(y),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let s2 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, s1);
        cfg.add_edge(s1, s2);
        cfg.add_edge(s2, br);
        cfg.add_edge(br, join);
        cfg.add_edge(br, cfg.end());
        (cfg, join)
    }

    #[test]
    fn partition_covers_every_node_exactly_once() {
        let (cfg, _) = running_example();
        let parts = interval_partition(&cfg);
        let mut seen = vec![0usize; cfg.len()];
        for p in &parts {
            for &m in &p.members {
                seen[m.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn loop_header_heads_its_interval() {
        let (cfg, join) = running_example();
        let parts = interval_partition(&cfg);
        // The loop header must be an interval header (the loop's backedge
        // prevents it from being absorbed into start's interval).
        assert!(parts.iter().any(|p| p.header == join));
        // All loop-body nodes live in the header's interval.
        let body_interval = parts.iter().find(|p| p.header == join).unwrap();
        assert_eq!(body_interval.members.len(), 4);
    }

    #[test]
    fn cycles_pass_through_interval_headers() {
        // The defining property: within an interval, every cycle contains
        // the header — check by removing the header and searching for
        // cycles among the remaining members.
        let (cfg, _) = running_example();
        for p in interval_partition(&cfg) {
            let inside: Vec<NodeId> =
                p.members.iter().copied().filter(|&m| m != p.header).collect();
            // Kahn over the subgraph induced by `inside`.
            let mut indeg: std::collections::HashMap<NodeId, usize> =
                inside.iter().map(|&n| (n, 0)).collect();
            for &n in &inside {
                for &s in cfg.succs(n) {
                    if let Some(d) = indeg.get_mut(&s) {
                        *d += 1;
                    }
                }
            }
            let mut queue: Vec<NodeId> = inside
                .iter()
                .copied()
                .filter(|n| indeg[n] == 0)
                .collect();
            let mut removed = 0;
            while let Some(n) = queue.pop() {
                removed += 1;
                for &s in cfg.succs(n) {
                    if let Some(d) = indeg.get_mut(&s) {
                        *d -= 1;
                        if *d == 0 {
                            queue.push(s);
                        }
                    }
                }
            }
            assert_eq!(removed, inside.len(), "cycle avoiding the header");
        }
    }

    #[test]
    fn straight_line_is_one_interval() {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let a = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(1),
        });
        let b = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(2),
        });
        cfg.set_entry(a);
        cfg.add_edge(a, b);
        cfg.add_edge(b, cfg.end());
        let parts = interval_partition(&cfg);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].header, cfg.start());
    }
}
