//! Graphviz DOT export of CFGs, for inspecting the figures the paper draws.

use crate::graph::{Cfg, NodeId};
use crate::stmt::Stmt;
use std::fmt::Write as _;

/// Render a CFG in DOT format. Fork out-edges are labelled `T`/`F`
/// (the paper's out-directions); the conventional `start → end` edge is
/// drawn dashed.
pub fn cfg_to_dot(cfg: &Cfg, title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{title}\" {{");
    let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
    for n in cfg.node_ids() {
        let label = format!("{}", cfg.stmt(n).display(&cfg.vars))
            .replace('\\', "\\\\")
            .replace('"', "\\\"");
        let shape = match cfg.stmt(n) {
            Stmt::Branch { .. } | Stmt::Start => ", shape=diamond",
            Stmt::Join => ", shape=ellipse",
            Stmt::LoopEntry { .. } | Stmt::LoopExit { .. } => ", shape=hexagon",
            _ => "",
        };
        let _ = writeln!(s, "  n{} [label=\"{}\"{}];", n.0, label, shape);
    }
    for (from, idx, to) in cfg.edges() {
        let mut attrs = Vec::new();
        if cfg.stmt(from).is_fork() {
            let label = match cfg.stmt(from) {
                Stmt::Case { .. } => {
                    if idx + 1 == cfg.succs(from).len() {
                        "else".to_owned()
                    } else {
                        idx.to_string()
                    }
                }
                _ => (if idx == 0 { "T" } else { "F" }).to_owned(),
            };
            attrs.push(format!("label=\"{label}\""));
        }
        if from == cfg.start() && to == cfg.end() && idx == 1 {
            attrs.push("style=dashed".to_owned());
        }
        let attr_s = if attrs.is_empty() {
            String::new()
        } else {
            format!(" [{}]", attrs.join(", "))
        };
        let _ = writeln!(s, "  n{} -> n{}{};", from.0, to.0, attr_s);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Render only the subgraph induced by `nodes` (plus edges among them).
pub fn cfg_subgraph_to_dot(cfg: &Cfg, nodes: &[NodeId], title: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{title}\" {{");
    for &n in nodes {
        let label = format!("{}", cfg.stmt(n).display(&cfg.vars)).replace('"', "\\\"");
        let _ = writeln!(s, "  n{} [label=\"{}\"];", n.0, label);
    }
    for (from, _, to) in cfg.edges() {
        if nodes.contains(&from) && nodes.contains(&to) {
            let _ = writeln!(s, "  n{} -> n{};", from.0, to.0);
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::stmt::LValue;
    use crate::var::VarTable;

    fn small() -> Cfg {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        });
        let a = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(1),
        });
        let j = cfg.add_node(Stmt::Join);
        cfg.set_entry(br);
        cfg.add_edge(br, a);
        cfg.add_edge(br, j);
        cfg.add_edge(a, j);
        cfg.add_edge(j, cfg.end());
        cfg
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let cfg = small();
        let dot = cfg_to_dot(&cfg, "test");
        for n in cfg.node_ids() {
            assert!(dot.contains(&format!("n{} [", n.0)));
        }
        assert_eq!(
            dot.matches(" -> ").count(),
            cfg.edge_count(),
            "every edge rendered exactly once"
        );
        assert!(dot.contains("style=dashed"), "conventional edge dashed");
        assert!(dot.contains("label=\"T\""));
        assert!(dot.contains("label=\"F\""));
    }

    #[test]
    fn subgraph_restricts_nodes() {
        let cfg = small();
        let br = cfg.entry();
        let nodes = vec![br, cfg.succs(br)[0]];
        let dot = cfg_subgraph_to_dot(&cfg, &nodes, "sub");
        assert!(dot.contains(&format!("n{} [", br.0)));
        assert!(!dot.contains(&format!("n{} [", cfg.end().0)));
    }
}
