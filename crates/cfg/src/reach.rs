//! Reachability and ordering utilities over CFGs.

use crate::graph::{Cfg, NodeId};

/// Topological order of the CFG's nodes when the given backedges are
/// ignored, starting from `start`. This is the visit discipline of the
/// source-vector algorithm (Fig 11): a node is visited once "all
/// predecessors (ignoring backedges) have been visited".
///
/// `backedge_indices[n]` lists the out-edge indices of `n` to ignore (as
/// produced by [`crate::intervals::LoopForest::backedge_indices`]).
///
/// # Panics
///
/// Panics if ignoring the given edges does not make the graph acyclic
/// (callers must pass the complete backedge set of a reducible CFG).
pub fn topo_order_ignoring_backedges(cfg: &Cfg, backedge_indices: &[Vec<usize>]) -> Vec<NodeId> {
    let n = cfg.len();
    let mut indeg = vec![0usize; n];
    for (a, idx, b) in cfg.edges() {
        if !backedge_indices[a.index()].contains(&idx) {
            indeg[b.index()] += 1;
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<NodeId> = vec![cfg.start()];
    assert_eq!(indeg[cfg.start().index()], 0, "start must have no forward in-edges");
    while let Some(v) = queue.pop() {
        order.push(v);
        for (i, &s) in cfg.succs(v).iter().enumerate() {
            if !backedge_indices[v.index()].contains(&i) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
    }
    assert_eq!(
        order.len(),
        n,
        "graph is not acyclic after removing the given backedges"
    );
    order
}

/// Is there a (possibly empty) path `from ⇒ to` that never visits `avoid`?
/// (`from == to` counts as reachable unless `from == avoid`.)
pub fn path_exists_avoiding(cfg: &Cfg, from: NodeId, to: NodeId, avoid: NodeId) -> bool {
    if from == avoid {
        return false;
    }
    let mut seen = vec![false; cfg.len()];
    seen[from.index()] = true;
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        for &s in cfg.succs(v) {
            if s != avoid && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::intervals::LoopForest;
    use crate::stmt::{LValue, Stmt};
    use crate::var::VarTable;

    fn looped() -> Cfg {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let s = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, s);
        cfg.add_edge(s, br);
        cfg.add_edge(br, join);
        cfg.add_edge(br, cfg.end());
        cfg
    }

    #[test]
    fn topo_order_respects_forward_edges() {
        let cfg = looped();
        let forest = LoopForest::compute(&cfg).unwrap();
        let be = forest.backedge_indices(&cfg);
        let order = topo_order_ignoring_backedges(&cfg, &be);
        assert_eq!(order.len(), cfg.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; cfg.len()];
            for (i, &n) in order.iter().enumerate() {
                p[n.index()] = i;
            }
            p
        };
        for (a, idx, b) in cfg.edges() {
            if !be[a.index()].contains(&idx) {
                assert!(
                    pos[a.index()] < pos[b.index()],
                    "forward edge {a:?}→{b:?} out of order"
                );
            }
        }
        assert_eq!(order[0], cfg.start());
    }

    #[test]
    #[should_panic(expected = "not acyclic")]
    fn topo_order_panics_without_backedges() {
        let cfg = looped();
        let be = vec![Vec::new(); cfg.len()];
        topo_order_ignoring_backedges(&cfg, &be);
    }

    #[test]
    fn path_avoiding_blocks_the_avoided_node() {
        let cfg = looped();
        let join = cfg.entry();
        let s = cfg.succs(join)[0];
        let br = cfg.succs(s)[0];
        assert!(path_exists_avoiding(&cfg, join, cfg.end(), cfg.start()));
        // Cannot reach end from join while avoiding the branch.
        assert!(!path_exists_avoiding(&cfg, join, cfg.end(), br));
        // from == to is trivially reachable unless avoided.
        assert!(path_exists_avoiding(&cfg, s, s, br));
        assert!(!path_exists_avoiding(&cfg, br, br, br));
    }
}
