//! Dominator and postdominator trees.
//!
//! The paper's switch-placement machinery (§4.1) is built on the
//! postdominator tree: "Every node has a unique immediate postdominator
//! which is its closest strict postdominator on any path to `end`. The
//! immediate postdominator relation is tree structured."
//!
//! We compute dominance with the Cooper–Harvey–Kennedy iterative algorithm
//! (near-linear in practice), running it on the reverse graph for
//! postdominators. A quadratic reference implementation is provided for
//! differential testing.

use crate::graph::{Cfg, NodeId};

/// A dominator tree over the nodes of a [`Cfg`] — either the (forward)
/// dominator tree rooted at `start`, or the postdominator tree rooted at
/// `end`.
#[derive(Clone, Debug)]
pub struct DomTree {
    root: NodeId,
    /// Immediate dominator of each node; `None` for the root (and for nodes
    /// not reachable in the traversal direction, which a valid CFG has none
    /// of).
    idom: Vec<Option<NodeId>>,
    /// Depth of each node in the tree (root = 0).
    depth: Vec<u32>,
    /// Children lists, for top-down walks.
    children: Vec<Vec<NodeId>>,
}

impl DomTree {
    /// Compute the *postdominator* tree of `cfg`, rooted at `end`.
    ///
    /// Requires every node to reach `end` (guaranteed by
    /// [`Cfg::validate`]).
    pub fn postdominators(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        // Reverse graph: preds of the reverse graph are the succs of the CFG.
        let mut succs = vec![Vec::new(); n]; // reverse-graph successors
        let mut preds = vec![Vec::new(); n]; // reverse-graph predecessors
        for (from, _, to) in cfg.edges() {
            succs[to.index()].push(from.index());
            preds[from.index()].push(to.index());
        }
        Self::compute(n, cfg.end().index(), &succs, &preds)
    }

    /// Compute the (forward) dominator tree of `cfg`, rooted at `start`.
    pub fn dominators(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (from, _, to) in cfg.edges() {
            succs[from.index()].push(to.index());
            preds[to.index()].push(from.index());
        }
        Self::compute(n, cfg.start().index(), &succs, &preds)
    }

    /// Cooper–Harvey–Kennedy on an explicit adjacency representation.
    fn compute(n: usize, root: usize, succs: &[Vec<usize>], preds: &[Vec<usize>]) -> DomTree {
        // Reverse postorder from root.
        let mut postorder = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        state[root] = 1;
        while let Some(&mut (node, ref mut i)) = stack.last_mut() {
            if *i < succs[node].len() {
                let next = succs[node][*i];
                *i += 1;
                if state[next] == 0 {
                    state[next] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[node] = 2;
                postorder.push(node);
                stack.pop();
            }
        }
        let mut po_num = vec![usize::MAX; n];
        for (i, &node) in postorder.iter().enumerate() {
            po_num[node] = i;
        }
        let rpo: Vec<usize> = postorder.iter().rev().copied().collect();

        // idoms stored as postorder numbers during iteration.
        let undef = usize::MAX;
        let mut idom = vec![undef; n];
        idom[root] = root;

        let intersect = |idom: &[usize], po_num: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while po_num[a] < po_num[b] {
                    a = idom[a];
                }
                while po_num[b] < po_num[a] {
                    b = idom[b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == root {
                    continue;
                }
                // First processed predecessor.
                let mut new_idom = undef;
                for &p in &preds[b] {
                    if po_num[p] == usize::MAX {
                        continue; // unreachable in this direction
                    }
                    if idom[p] != undef {
                        new_idom = if new_idom == undef {
                            p
                        } else {
                            intersect(&idom, &po_num, p, new_idom)
                        };
                    }
                }
                if new_idom != undef && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        let mut idom_out = vec![None; n];
        let mut children = vec![Vec::new(); n];
        for v in 0..n {
            if v != root && idom[v] != undef {
                idom_out[v] = Some(NodeId(idom[v] as u32));
                children[idom[v]].push(NodeId(v as u32));
            }
        }
        // Depths via BFS down the tree.
        let mut depth = vec![0u32; n];
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for &c in &children[v] {
                depth[c.index()] = depth[v] + 1;
                queue.push_back(c.index());
            }
        }

        DomTree {
            root: NodeId(root as u32),
            idom: idom_out,
            depth,
            children,
        }
    }

    /// The tree root (`end` for postdominators, `start` for dominators).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The immediate (post)dominator of `n`; `None` for the root.
    #[inline]
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom[n.index()]
    }

    /// Children of `n` in the tree.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.children[n.index()]
    }

    /// Depth of `n` (root = 0).
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depth[n.index()]
    }

    /// Reflexive dominance: does `a` (post)dominate `b`?
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Strict dominance: `a` (post)dominates `b` and `a != b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Nodes in a bottom-up order (every node before its idom). This is the
    /// "bottom-up walk of the postdominator tree" used to compute control
    /// dependences.
    pub fn bottom_up(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.idom.len());
        let mut stack = vec![self.root];
        // Top-down DFS collects parents before children; reverse it.
        while let Some(v) = stack.pop() {
            order.push(v);
            for &c in self.children(v) {
                stack.push(c);
            }
        }
        order.reverse();
        order
    }
}

/// Quadratic reference: the set-based iterative dominance computation, for
/// differential testing. Returns, for each node, the full set of its
/// post-dominators as a bitvector (`result[n][m] == true` iff `m`
/// postdominates `n`).
pub fn naive_postdominator_sets(cfg: &Cfg) -> Vec<Vec<bool>> {
    let n = cfg.len();
    let end = cfg.end().index();
    let mut dom: Vec<Vec<bool>> = vec![vec![true; n]; n];
    dom[end] = vec![false; n];
    dom[end][end] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for v in cfg.node_ids() {
            let vi = v.index();
            if vi == end {
                continue;
            }
            // postdom(v) = {v} ∪ ∩_{s ∈ succ(v)} postdom(s)
            let mut new = vec![!cfg.succs(v).is_empty(); n];
            for &s in cfg.succs(v) {
                for m in 0..n {
                    new[m] = new[m] && dom[s.index()][m];
                }
            }
            new[vi] = true;
            if new != dom[vi] {
                dom[vi] = new;
                changed = true;
            }
        }
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::stmt::{LValue, Stmt};
    use crate::var::VarTable;

    fn running_example() -> Cfg {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let y = vars.scalar("y");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let s1 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(y),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let s2 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, s1);
        cfg.add_edge(s1, s2);
        cfg.add_edge(s2, br);
        cfg.add_edge(br, join);
        cfg.add_edge(br, cfg.end());
        cfg
    }

    /// A diamond: start → br → (a | b) → join → end.
    fn diamond() -> (Cfg, NodeId, NodeId, NodeId, NodeId) {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::Var(x),
        });
        let a = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(1),
        });
        let b = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(2),
        });
        let join = cfg.add_node(Stmt::Join);
        cfg.set_entry(br);
        cfg.add_edge(br, a);
        cfg.add_edge(br, b);
        cfg.add_edge(a, join);
        cfg.add_edge(b, join);
        cfg.add_edge(join, cfg.end());
        (cfg, br, a, b, join)
    }

    #[test]
    fn diamond_postdominators() {
        let (cfg, br, a, b, join) = diamond();
        cfg.validate().unwrap();
        let pd = DomTree::postdominators(&cfg);
        assert_eq!(pd.root(), cfg.end());
        assert_eq!(pd.idom(br), Some(join));
        assert_eq!(pd.idom(a), Some(join));
        assert_eq!(pd.idom(b), Some(join));
        assert_eq!(pd.idom(join), Some(cfg.end()));
        assert_eq!(pd.idom(cfg.start()), Some(cfg.end()));
        assert_eq!(pd.idom(cfg.end()), None);
        assert!(pd.dominates(join, br));
        assert!(!pd.dominates(a, br));
        assert!(pd.dominates(br, br), "postdomination is reflexive");
        assert!(pd.strictly_dominates(cfg.end(), br));
        assert!(!pd.strictly_dominates(br, br));
    }

    #[test]
    fn diamond_dominators() {
        let (cfg, br, a, b, join) = diamond();
        let d = DomTree::dominators(&cfg);
        assert_eq!(d.root(), cfg.start());
        assert_eq!(d.idom(br), Some(cfg.start()));
        assert_eq!(d.idom(a), Some(br));
        assert_eq!(d.idom(b), Some(br));
        assert_eq!(d.idom(join), Some(br));
        // end's idom is start: the conventional start→end edge bypasses the
        // whole program.
        assert_eq!(d.idom(cfg.end()), Some(cfg.start()));
    }

    #[test]
    fn running_example_postdominators() {
        let cfg = running_example();
        let pd = DomTree::postdominators(&cfg);
        // Inside the loop body, each node's ipostdom is its successor; the
        // branch's ipostdom is end (the loop may repeat).
        let join = cfg.entry();
        let s1 = cfg.succs(join)[0];
        let s2 = cfg.succs(s1)[0];
        let br = cfg.succs(s2)[0];
        assert_eq!(pd.idom(join), Some(s1));
        assert_eq!(pd.idom(s1), Some(s2));
        assert_eq!(pd.idom(s2), Some(br));
        assert_eq!(pd.idom(br), Some(cfg.end()));
    }

    #[test]
    fn matches_naive_sets_on_examples() {
        for cfg in [running_example(), diamond().0] {
            let pd = DomTree::postdominators(&cfg);
            let sets = naive_postdominator_sets(&cfg);
            for a in cfg.node_ids() {
                for b in cfg.node_ids() {
                    assert_eq!(
                        pd.dominates(a, b),
                        sets[b.index()][a.index()],
                        "postdom({a:?}, {b:?}) mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn bottom_up_order_puts_children_first() {
        let cfg = running_example();
        let pd = DomTree::postdominators(&cfg);
        let order = pd.bottom_up();
        assert_eq!(order.len(), cfg.len());
        let pos = |n: NodeId| order.iter().position(|&m| m == n).unwrap();
        for n in cfg.node_ids() {
            if let Some(p) = pd.idom(n) {
                assert!(pos(n) < pos(p), "{n:?} must precede its idom {p:?}");
            }
        }
        assert_eq!(*order.last().unwrap(), cfg.end());
    }

    #[test]
    fn depths_increase_from_root() {
        let (cfg, br, a, _, join) = diamond();
        let pd = DomTree::postdominators(&cfg);
        assert_eq!(pd.depth(cfg.end()), 0);
        assert_eq!(pd.depth(join), 1);
        assert_eq!(pd.depth(a), 2);
        assert_eq!(pd.depth(br), 2);
    }
}
