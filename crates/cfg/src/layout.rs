//! Memory layouts: binding variable names to machine locations.
//!
//! The translation schemas are *binding-agnostic* — dataflow memory
//! operations name variables, and the machine resolves names to locations
//! through a [`MemLayout`]. This separation lets Schema 3 be tested against
//! every consistent concretization of an alias structure: the same dataflow
//! graph must compute the right answer whatever the actual sharing is.

use crate::var::{VarId, VarTable};

/// An assignment of memory locations to variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemLayout {
    base: Vec<u32>,
    len: Vec<u32>,
    total: u32,
}

impl MemLayout {
    /// The default layout: every variable gets its own storage.
    pub fn distinct(vars: &VarTable) -> MemLayout {
        let mut base = Vec::with_capacity(vars.len());
        let mut len = Vec::with_capacity(vars.len());
        let mut total = 0u32;
        for v in vars.ids() {
            base.push(total);
            let cells = vars.kind(v).cells();
            len.push(cells);
            total += cells;
        }
        MemLayout { base, len, total }
    }

    /// A layout realizing a concrete aliasing: variables in the same block
    /// of `binding` share storage. Blocks must contain variables of equal
    /// cell counts (a scalar cannot share storage with a 10-element array).
    /// Variables absent from every block get their own storage.
    pub fn with_binding(vars: &VarTable, binding: &[Vec<VarId>]) -> MemLayout {
        let mut base = vec![u32::MAX; vars.len()];
        let mut len = vec![0u32; vars.len()];
        let mut total = 0u32;
        for block in binding {
            assert!(!block.is_empty(), "empty binding block");
            let cells = vars.kind(block[0]).cells();
            for &v in block {
                assert_eq!(
                    vars.kind(v).cells(),
                    cells,
                    "binding block mixes variables of different sizes"
                );
                assert_eq!(base[v.index()], u32::MAX, "variable bound twice");
                base[v.index()] = total;
                len[v.index()] = cells;
            }
            total += cells;
        }
        for v in vars.ids() {
            if base[v.index()] == u32::MAX {
                base[v.index()] = total;
                let cells = vars.kind(v).cells();
                len[v.index()] = cells;
                total += cells;
            }
        }
        MemLayout { base, len, total }
    }

    /// The base location of a variable.
    #[inline]
    pub fn base(&self, v: VarId) -> u32 {
        self.base[v.index()]
    }

    /// The number of cells a variable occupies.
    #[inline]
    pub fn cells(&self, v: VarId) -> u32 {
        self.len[v.index()]
    }

    /// The location of element `idx` of variable `v`, if in bounds.
    pub fn element(&self, v: VarId, idx: i64) -> Option<u32> {
        if idx < 0 || idx as u64 >= self.len[v.index()] as u64 {
            None
        } else {
            Some(self.base[v.index()] + idx as u32)
        }
    }

    /// Total number of memory cells.
    #[inline]
    pub fn total_cells(&self) -> u32 {
        self.total
    }

    /// Do two variables overlap in this layout?
    pub fn overlaps(&self, a: VarId, b: VarId) -> bool {
        let (ab, al) = (self.base[a.index()], self.len[a.index()]);
        let (bb, bl) = (self.base[b.index()], self.len[b.index()]);
        ab < bb + bl && bb < ab + al
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (VarTable, VarId, VarId, VarId) {
        let mut t = VarTable::new();
        let x = t.scalar("x");
        let y = t.scalar("y");
        let a = t.array("a", 4);
        (t, x, y, a)
    }

    #[test]
    fn distinct_layout_is_disjoint() {
        let (t, x, y, a) = table();
        let m = MemLayout::distinct(&t);
        assert_eq!(m.total_cells(), 6);
        assert!(!m.overlaps(x, y));
        assert!(!m.overlaps(x, a));
        assert_eq!(m.cells(a), 4);
        assert_eq!(m.element(a, 0), Some(m.base(a)));
        assert_eq!(m.element(a, 3), Some(m.base(a) + 3));
        assert_eq!(m.element(a, 4), None);
        assert_eq!(m.element(a, -1), None);
        assert_eq!(m.element(x, 0), Some(m.base(x)));
    }

    #[test]
    fn binding_shares_storage() {
        let (t, x, y, a) = table();
        let m = MemLayout::with_binding(&t, &[vec![x, y]]);
        assert_eq!(m.base(x), m.base(y));
        assert!(m.overlaps(x, y));
        assert!(!m.overlaps(x, a));
        assert_eq!(m.total_cells(), 5); // shared scalar + unbound array
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn mixed_size_block_panics() {
        let (t, x, _, a) = table();
        MemLayout::with_binding(&t, &[vec![x, a]]);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_binding_panics() {
        let (t, x, y, _) = table();
        MemLayout::with_binding(&t, &[vec![x, y], vec![x]]);
    }

    #[test]
    fn binding_with_all_singletons_equals_distinct_totals() {
        let (t, x, y, a) = table();
        let m = MemLayout::with_binding(&t, &[vec![x], vec![y], vec![a]]);
        let d = MemLayout::distinct(&t);
        assert_eq!(m.total_cells(), d.total_cells());
    }
}
