//! Statements labelling CFG nodes.
//!
//! §2.1 of the paper uses three statement types — assignments, forks, and
//! labelled joins — plus the distinguished `start` and `end` nodes. §3 adds
//! the *loop entry* and *loop exit* control statements inserted by interval
//! decomposition.

use crate::expr::Expr;
use crate::intervals::LoopId;
use crate::var::{VarId, VarTable};
use std::fmt;

/// The target of an assignment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LValue {
    /// A scalar variable.
    Var(VarId),
    /// An array element `a[idx]`; the index is a pure expression.
    Index(VarId, Expr),
}

impl LValue {
    /// The variable written (for an array element, the whole array — §6.3
    /// treats an assignment to any array location as an assignment to the
    /// entire array).
    pub fn var(&self) -> VarId {
        match self {
            LValue::Var(v) | LValue::Index(v, _) => *v,
        }
    }

    /// Variables referenced in *reading* position within the l-value (the
    /// subscript expression of an array target).
    pub fn read_vars(&self) -> Vec<VarId> {
        match self {
            LValue::Var(_) => Vec::new(),
            LValue::Index(_, idx) => idx.vars(),
        }
    }
}

/// A CFG node's statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// The unique initial node. By the paper's convention `start` is a fork
    /// (it has an edge to `end`), but it computes nothing.
    Start,
    /// The unique final node.
    End,
    /// A labelled join: the only legal target of gotos; computes nothing.
    Join,
    /// An assignment `lhs := rhs`.
    Assign {
        /// Target location.
        lhs: LValue,
        /// Pure right-hand side.
        rhs: Expr,
    },
    /// A fork `if p then goto l_t else goto l_f`; out-edge 0 is the *true*
    /// direction, out-edge 1 the *false* direction.
    Branch {
        /// The predicate; nonzero means true.
        pred: Expr,
    },
    /// A multi-way fork (footnote 3's generalization): out-edge `i` is
    /// taken when the selector equals `i` for `i < k-1`; the last out-edge
    /// is the default for every other value.
    Case {
        /// The selector expression.
        selector: Expr,
    },
    /// Loop-control statement inserted at the single entry of a cyclic
    /// interval (§3). Takes the full set of circulating access tokens in and
    /// out; in the dataflow machine it manages per-iteration tag contexts.
    LoopEntry {
        /// The interval this statement controls.
        loop_id: LoopId,
    },
    /// Loop-control statement inserted on each edge exiting the cyclic part
    /// of an interval (§3).
    LoopExit {
        /// The interval this statement controls.
        loop_id: LoopId,
    },
}

impl Stmt {
    /// Variables *referenced* (read) by this statement. For an assignment
    /// this includes the right-hand side and any subscript on the left; for
    /// a fork, the predicate's variables.
    pub fn read_vars(&self) -> Vec<VarId> {
        match self {
            Stmt::Assign { lhs, rhs } => {
                let mut vs = rhs.vars();
                for v in lhs.read_vars() {
                    if !vs.contains(&v) {
                        vs.push(v);
                    }
                }
                vs
            }
            Stmt::Branch { pred } => pred.vars(),
            Stmt::Case { selector } => selector.vars(),
            _ => Vec::new(),
        }
    }

    /// The variable written by this statement, if any.
    pub fn written_var(&self) -> Option<VarId> {
        match self {
            Stmt::Assign { lhs, .. } => Some(lhs.var()),
            _ => None,
        }
    }

    /// All variables referenced in the paper's sense — read *or* written.
    /// Switch placement (Definition 3) is driven by this set.
    pub fn referenced_vars(&self) -> Vec<VarId> {
        let mut vs = self.read_vars();
        if let Some(w) = self.written_var() {
            if !vs.contains(&w) {
                vs.push(w);
            }
        }
        vs
    }

    /// True for fork nodes (including `start`, which is a fork by
    /// convention, though it carries no predicate).
    pub fn is_fork(&self) -> bool {
        matches!(self, Stmt::Branch { .. } | Stmt::Case { .. } | Stmt::Start)
    }

    /// True for the loop-control statements of §3.
    pub fn is_loop_control(&self) -> bool {
        matches!(self, Stmt::LoopEntry { .. } | Stmt::LoopExit { .. })
    }

    /// Render with variable names from `vars`.
    pub fn display<'a>(&'a self, vars: &'a VarTable) -> StmtDisplay<'a> {
        StmtDisplay { stmt: self, vars }
    }
}

/// Pretty-printer adapter tying a statement to a [`VarTable`].
pub struct StmtDisplay<'a> {
    stmt: &'a Stmt,
    vars: &'a VarTable,
}

impl fmt::Display for StmtDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stmt {
            Stmt::Start => write!(f, "start"),
            Stmt::End => write!(f, "end"),
            Stmt::Join => write!(f, "join"),
            Stmt::Assign { lhs, rhs } => {
                match lhs {
                    LValue::Var(v) => write!(f, "{}", self.vars.name(*v))?,
                    LValue::Index(v, idx) => {
                        write!(f, "{}[{}]", self.vars.name(*v), idx.display(self.vars))?
                    }
                }
                write!(f, " := {}", rhs.display(self.vars))
            }
            Stmt::Branch { pred } => write!(f, "if {} then … else …", pred.display(self.vars)),
            Stmt::Case { selector } => {
                write!(f, "case {} of …", selector.display(self.vars))
            }
            Stmt::LoopEntry { loop_id } => write!(f, "loop-entry L{}", loop_id.0),
            Stmt::LoopExit { loop_id } => write!(f, "loop-exit L{}", loop_id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn setup() -> (VarTable, VarId, VarId, VarId) {
        let mut t = VarTable::new();
        let x = t.scalar("x");
        let y = t.scalar("y");
        let a = t.array("a", 4);
        (t, x, y, a)
    }

    #[test]
    fn assign_reads_and_writes() {
        let (_, x, y, _) = setup();
        // y := x + 1
        let s = Stmt::Assign {
            lhs: LValue::Var(y),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        };
        assert_eq!(s.read_vars(), vec![x]);
        assert_eq!(s.written_var(), Some(y));
        assert_eq!(s.referenced_vars(), vec![x, y]);
    }

    #[test]
    fn self_assign_referenced_once() {
        let (_, x, _, _) = setup();
        // x := x + 1
        let s = Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        };
        assert_eq!(s.referenced_vars(), vec![x]);
    }

    #[test]
    fn array_store_reads_subscript_and_writes_array() {
        let (_, x, _, a) = setup();
        // a[x] := 1
        let s = Stmt::Assign {
            lhs: LValue::Index(a, Expr::Var(x)),
            rhs: Expr::Const(1),
        };
        assert_eq!(s.read_vars(), vec![x]);
        assert_eq!(s.written_var(), Some(a));
        let refs = s.referenced_vars();
        assert!(refs.contains(&a) && refs.contains(&x));
    }

    #[test]
    fn branch_reads_predicate() {
        let (_, x, _, _) = setup();
        let s = Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        };
        assert_eq!(s.read_vars(), vec![x]);
        assert_eq!(s.written_var(), None);
        assert!(s.is_fork());
    }

    #[test]
    fn start_is_fork_by_convention() {
        assert!(Stmt::Start.is_fork());
        assert!(!Stmt::Join.is_fork());
        assert!(Stmt::LoopEntry { loop_id: LoopId(0) }.is_loop_control());
    }

    #[test]
    fn display_assign() {
        let (t, x, y, _) = setup();
        let s = Stmt::Assign {
            lhs: LValue::Var(y),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        };
        assert_eq!(format!("{}", s.display(&t)), "y := (x + 1)");
    }
}
