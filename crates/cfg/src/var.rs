//! Program variables.
//!
//! Variables are interned into a [`VarTable`]; the rest of the system refers
//! to them by dense [`VarId`] indices, which also index access-token lines in
//! the dataflow translation.

use std::fmt;

/// A dense index identifying a program variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The index as a `usize`, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Whether a variable is a scalar or an array (§6.3 treats an assignment to
/// any array location as an assignment to the whole array, so both kinds
/// share a single access-token line).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// A single memory cell.
    Scalar,
    /// A contiguous block of `len` cells.
    Array {
        /// Number of elements.
        len: u32,
    },
}

impl VarKind {
    /// Number of memory cells occupied by a variable of this kind.
    #[inline]
    pub fn cells(self) -> u32 {
        match self {
            VarKind::Scalar => 1,
            VarKind::Array { len } => len,
        }
    }
}

#[derive(Clone, Debug)]
struct VarInfo {
    name: String,
    kind: VarKind,
}

/// Interning table mapping variable names to [`VarId`]s.
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    vars: Vec<VarInfo>,
}

impl VarTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables interned so far.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True if no variables have been interned.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Intern a scalar variable, returning its id. Re-interning an existing
    /// name returns the existing id (the kind must match).
    pub fn scalar(&mut self, name: &str) -> VarId {
        self.intern(name, VarKind::Scalar)
    }

    /// Intern an array variable of `len` elements.
    pub fn array(&mut self, name: &str, len: u32) -> VarId {
        self.intern(name, VarKind::Array { len })
    }

    /// Intern a variable with an explicit kind.
    ///
    /// # Panics
    ///
    /// Panics if the name is already interned with a different kind.
    pub fn intern(&mut self, name: &str, kind: VarKind) -> VarId {
        if let Some(id) = self.lookup(name) {
            assert_eq!(
                self.vars[id.index()].kind,
                kind,
                "variable {name:?} re-interned with a different kind"
            );
            return id;
        }
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(VarInfo {
            name: name.to_owned(),
            kind,
        });
        id
    }

    /// Find an already-interned variable by name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// The name of a variable.
    pub fn name(&self, id: VarId) -> &str {
        &self.vars[id.index()].name
    }

    /// The kind of a variable.
    pub fn kind(&self, id: VarId) -> VarKind {
        self.vars[id.index()].kind
    }

    /// Iterate over all variable ids in order.
    pub fn ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len() as u32).map(VarId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = VarTable::new();
        let x = t.scalar("x");
        let y = t.scalar("y");
        assert_ne!(x, y);
        assert_eq!(t.scalar("x"), x);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(x), "x");
        assert_eq!(t.name(y), "y");
    }

    #[test]
    fn lookup_missing_is_none() {
        let t = VarTable::new();
        assert!(t.lookup("nope").is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn array_kinds_and_cells() {
        let mut t = VarTable::new();
        let a = t.array("a", 10);
        assert_eq!(t.kind(a), VarKind::Array { len: 10 });
        assert_eq!(t.kind(a).cells(), 10);
        assert_eq!(VarKind::Scalar.cells(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn conflicting_kind_panics() {
        let mut t = VarTable::new();
        t.scalar("x");
        t.array("x", 4);
    }

    #[test]
    fn ids_iterates_in_order() {
        let mut t = VarTable::new();
        let x = t.scalar("x");
        let y = t.scalar("y");
        let got: Vec<_> = t.ids().collect();
        assert_eq!(got, vec![x, y]);
    }
}
