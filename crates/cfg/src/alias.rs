//! Alias structures and covers (§5).
//!
//! Definition 6: an *alias structure* over a set of variables `V` is a pair
//! `⟨V, ∼⟩` where `∼` is a reflexive, symmetric binary relation. Note that
//! `∼` is *not* transitive: in the paper's FORTRAN example `X ∼ Z` and
//! `Y ∼ Z` but `X ≁ Y`.
//!
//! Definition 7: a *cover* is a collection of subsets of `V` whose union is
//! `V`. Schema 3 circulates one access token per cover element; a memory
//! operation on `x` collects every token whose element intersects the alias
//! class `[x]`. The choice of cover trades parallelism against
//! synchronization.

use crate::var::{VarId, VarTable};

/// A reflexive, symmetric (not necessarily transitive) may-alias relation.
#[derive(Clone, Debug)]
pub struct AliasStructure {
    n: usize,
    /// Row-major symmetric boolean matrix; diagonal always true.
    rel: Vec<bool>,
}

impl AliasStructure {
    /// The identity alias structure (no aliasing) over `n` variables.
    pub fn identity(n: usize) -> Self {
        let mut s = AliasStructure {
            n,
            rel: vec![false; n * n],
        };
        for i in 0..n {
            s.rel[i * n + i] = true;
        }
        s
    }

    /// The identity structure sized for a variable table.
    pub fn for_table(vars: &VarTable) -> Self {
        Self::identity(vars.len())
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if there are no variables.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Declare `x ∼ y` (and symmetrically `y ∼ x`).
    pub fn relate(&mut self, x: VarId, y: VarId) {
        self.rel[x.index() * self.n + y.index()] = true;
        self.rel[y.index() * self.n + x.index()] = true;
    }

    /// Does `x ∼ y` hold?
    #[inline]
    pub fn aliased(&self, x: VarId, y: VarId) -> bool {
        self.rel[x.index() * self.n + y.index()]
    }

    /// The alias class `[x] = { y : x ∼ y }`, in id order (contains `x`).
    pub fn class(&self, x: VarId) -> Vec<VarId> {
        (0..self.n as u32)
            .map(VarId)
            .filter(|&y| self.aliased(x, y))
            .collect()
    }

    /// True if nothing is aliased to anything but itself.
    pub fn is_identity(&self) -> bool {
        for i in 0..self.n {
            for j in 0..self.n {
                if (i == j) != self.rel[i * self.n + j] {
                    return false;
                }
            }
        }
        true
    }

    /// True if `x` is aliased only to itself.
    pub fn unaliased(&self, x: VarId) -> bool {
        (0..self.n as u32)
            .map(VarId)
            .all(|y| y == x || !self.aliased(x, y))
    }

    /// Enumerate the maximal partitions of `V` into blocks that are cliques
    /// of `∼` — the *consistent bindings*: concrete assignments of names to
    /// locations in which only declared aliases may share a location.
    /// Exponential; intended for testing on small variable sets.
    pub fn consistent_bindings(&self) -> Vec<Vec<Vec<VarId>>> {
        let mut out = Vec::new();
        let mut blocks: Vec<Vec<VarId>> = Vec::new();
        self.enumerate(0, &mut blocks, &mut out);
        out
    }

    fn enumerate(
        &self,
        next: usize,
        blocks: &mut Vec<Vec<VarId>>,
        out: &mut Vec<Vec<Vec<VarId>>>,
    ) {
        if next == self.n {
            out.push(blocks.clone());
            return;
        }
        let v = VarId(next as u32);
        // Place v in any existing block it is pairwise aliased with…
        for i in 0..blocks.len() {
            if blocks[i].iter().all(|&w| self.aliased(v, w)) {
                blocks[i].push(v);
                self.enumerate(next + 1, blocks, out);
                blocks[i].pop();
            }
        }
        // …or in a fresh block.
        blocks.push(vec![v]);
        self.enumerate(next + 1, blocks, out);
        blocks.pop();
    }
}

/// Strategies for choosing a Schema 3 cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverStrategy {
    /// One element per variable: `{{x} : x ∈ V}`. Maximizes parallelism;
    /// a memory operation on `x` collects `|[x]|` tokens.
    Singletons,
    /// One element per *distinct* alias class: `{[x] : x ∈ V}`. Reduces the
    /// token count when aliasing is heavy, at the cost of serializing
    /// operations on unaliased members of a shared class.
    AliasClasses,
    /// A single element equal to `V`: one token total, minimal
    /// synchronization, no memory parallelism (Schema 1's ordering).
    SingleToken,
    /// An explicit, user-chosen cover.
    Custom(Vec<Vec<VarId>>),
}

/// A cover of an alias structure (Definition 7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cover {
    elements: Vec<Vec<VarId>>,
}

impl Cover {
    /// Build a cover with the given strategy.
    ///
    /// # Panics
    ///
    /// Panics if a custom cover's union is not `V` (it would not be a cover).
    pub fn build(strategy: &CoverStrategy, alias: &AliasStructure) -> Cover {
        let n = alias.len();
        let elements = match strategy {
            CoverStrategy::Singletons => (0..n as u32).map(|i| vec![VarId(i)]).collect(),
            CoverStrategy::AliasClasses => {
                let mut classes: Vec<Vec<VarId>> = Vec::new();
                for i in 0..n as u32 {
                    let c = alias.class(VarId(i));
                    if !classes.contains(&c) {
                        classes.push(c);
                    }
                }
                classes
            }
            CoverStrategy::SingleToken => {
                vec![(0..n as u32).map(VarId).collect()]
            }
            CoverStrategy::Custom(els) => {
                let mut covered = vec![false; n];
                for el in els {
                    for v in el {
                        covered[v.index()] = true;
                    }
                }
                assert!(
                    covered.iter().all(|&c| c),
                    "custom cover does not cover every variable"
                );
                els.clone()
            }
        };
        Cover { elements }
    }

    /// The cover elements.
    pub fn elements(&self) -> &[Vec<VarId>] {
        &self.elements
    }

    /// Number of cover elements — the number of access tokens Schema 3
    /// circulates.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the cover has no elements (only possible when `V` is empty).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The *access set* `C[x]` of a variable: the indices of cover elements
    /// that intersect the alias class `[x]`. A memory operation on `x`
    /// collects exactly these tokens (Fig 12/13).
    pub fn access_set(&self, x: VarId, alias: &AliasStructure) -> Vec<usize> {
        let class = alias.class(x);
        self.elements
            .iter()
            .enumerate()
            .filter(|(_, el)| el.iter().any(|v| class.contains(v)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total synchronization cost proxy: the sum over variables of the
    /// access-set size (tokens collected per operation on each variable).
    pub fn synchronization_cost(&self, alias: &AliasStructure) -> usize {
        (0..alias.len() as u32)
            .map(|i| self.access_set(VarId(i), alias).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's FORTRAN example: SUBROUTINE F(X, Y, Z) called as
    /// F(A, B, A) and F(C, D, D): [X]={X,Z}, [Y]={Y,Z}, [Z]={X,Y,Z}.
    fn fortran_example() -> (AliasStructure, VarId, VarId, VarId) {
        let x = VarId(0);
        let y = VarId(1);
        let z = VarId(2);
        let mut a = AliasStructure::identity(3);
        a.relate(x, z);
        a.relate(y, z);
        (a, x, y, z)
    }

    #[test]
    fn fortran_alias_classes() {
        let (a, x, y, z) = fortran_example();
        assert_eq!(a.class(x), vec![x, z]);
        assert_eq!(a.class(y), vec![y, z]);
        assert_eq!(a.class(z), vec![x, y, z]);
        assert!(a.aliased(x, z) && a.aliased(z, x));
        assert!(!a.aliased(x, y), "∼ is not transitive");
        assert!(!a.is_identity());
        assert!(!a.unaliased(x));
    }

    #[test]
    fn identity_structure() {
        let a = AliasStructure::identity(3);
        assert!(a.is_identity());
        assert!(a.unaliased(VarId(1)));
        assert_eq!(a.class(VarId(1)), vec![VarId(1)]);
    }

    #[test]
    fn singleton_cover_access_sets_match_paper() {
        // "In our example there would be three access tokens representing
        // X, Y, and Z. Memory operations on X or Y would collect two access
        // tokens … operations on Z would collect all three."
        let (a, x, y, z) = fortran_example();
        let cover = Cover::build(&CoverStrategy::Singletons, &a);
        assert_eq!(cover.len(), 3);
        assert_eq!(cover.access_set(x, &a).len(), 2);
        assert_eq!(cover.access_set(y, &a).len(), 2);
        assert_eq!(cover.access_set(z, &a).len(), 3);
    }

    #[test]
    fn single_token_cover_minimizes_synchronization() {
        let (a, x, ..) = fortran_example();
        let cover = Cover::build(&CoverStrategy::SingleToken, &a);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.access_set(x, &a), vec![0]);
        assert_eq!(cover.synchronization_cost(&a), 3); // one token per var op
    }

    #[test]
    fn alias_class_cover_dedups_classes() {
        let (a, ..) = fortran_example();
        let cover = Cover::build(&CoverStrategy::AliasClasses, &a);
        // Classes {X,Z}, {Y,Z}, {X,Y,Z} are all distinct here.
        assert_eq!(cover.len(), 3);
        // With no aliasing, class cover degenerates to singletons.
        let id = AliasStructure::identity(4);
        let c2 = Cover::build(&CoverStrategy::AliasClasses, &id);
        assert_eq!(c2.len(), 4);
        assert_eq!(c2.synchronization_cost(&id), 4);
    }

    #[test]
    fn custom_cover_validated() {
        let (a, x, y, z) = fortran_example();
        let c = Cover::build(&CoverStrategy::Custom(vec![vec![x, y], vec![z]]), &a);
        assert_eq!(c.len(), 2);
        // Access set of x: {x,y} ∩ [x]={x,z} ≠ ∅ and {z} ∩ [x] ≠ ∅ → both.
        assert_eq!(c.access_set(x, &a), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn incomplete_custom_cover_panics() {
        let (a, x, ..) = fortran_example();
        Cover::build(&CoverStrategy::Custom(vec![vec![x]]), &a);
    }

    #[test]
    fn consistent_bindings_of_fortran_example() {
        let (a, x, y, z) = fortran_example();
        let bindings = a.consistent_bindings();
        // Allowed partitions: {X}{Y}{Z}, {X,Z}{Y}, {Y,Z}{X}. Not {X,Y,Z}
        // (X≁Y) and not {X,Y}{Z}.
        assert_eq!(bindings.len(), 3);
        for b in &bindings {
            for block in b {
                for &u in block {
                    for &v in block {
                        assert!(a.aliased(u, v), "binding block must be a ∼-clique");
                    }
                }
            }
        }
        assert!(bindings.iter().any(|b| b.len() == 3));
        assert!(bindings
            .iter()
            .any(|b| b.contains(&vec![x, z]) && b.contains(&vec![y])));
        assert!(bindings
            .iter()
            .any(|b| b.contains(&vec![y, z]) && b.contains(&vec![x])));
    }

    #[test]
    fn synchronization_cost_orders_covers() {
        let (a, ..) = fortran_example();
        let singles = Cover::build(&CoverStrategy::Singletons, &a);
        let one = Cover::build(&CoverStrategy::SingleToken, &a);
        assert!(singles.synchronization_cost(&a) > one.synchronization_cost(&a));
    }
}
