//! Expressions appearing on the right-hand side of assignments and as fork
//! predicates.
//!
//! Expressions are pure: they read variables (scalars or array elements) but
//! never write memory, so an expression subgraph in the dataflow translation
//! only *loads*.

use crate::var::{VarId, VarTable};
use std::fmt;

/// Binary operators. Comparison and logical operators produce `0`/`1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero evaluates to 0 (the language is total so
    /// that random programs cannot trap).
    Div,
    /// Remainder; remainder by zero evaluates to 0.
    Rem,
    /// Equality (0/1).
    Eq,
    /// Inequality (0/1).
    Ne,
    /// Less-than (0/1).
    Lt,
    /// Less-or-equal (0/1).
    Le,
    /// Greater-than (0/1).
    Gt,
    /// Greater-or-equal (0/1).
    Ge,
    /// Logical and on 0/1 values (non-short-circuiting).
    And,
    /// Logical or on 0/1 values (non-short-circuiting).
    Or,
    /// Minimum of the two operands.
    Min,
    /// Maximum of the two operands.
    Max,
}

impl BinOp {
    /// Evaluate the operator on concrete values.
    pub fn eval(self, l: i64, r: i64) -> i64 {
        match self {
            BinOp::Add => l.wrapping_add(r),
            BinOp::Sub => l.wrapping_sub(r),
            BinOp::Mul => l.wrapping_mul(r),
            BinOp::Div => {
                if r == 0 {
                    0
                } else {
                    l.wrapping_div(r)
                }
            }
            BinOp::Rem => {
                if r == 0 {
                    0
                } else {
                    l.wrapping_rem(r)
                }
            }
            BinOp::Eq => (l == r) as i64,
            BinOp::Ne => (l != r) as i64,
            BinOp::Lt => (l < r) as i64,
            BinOp::Le => (l <= r) as i64,
            BinOp::Gt => (l > r) as i64,
            BinOp::Ge => (l >= r) as i64,
            BinOp::And => ((l != 0) && (r != 0)) as i64,
            BinOp::Or => ((l != 0) || (r != 0)) as i64,
            BinOp::Min => l.min(r),
            BinOp::Max => l.max(r),
        }
    }

    /// Source-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not on 0/1 values.
    Not,
}

impl UnOp {
    /// Evaluate the operator on a concrete value.
    pub fn eval(self, v: i64) -> i64 {
        match self {
            UnOp::Neg => v.wrapping_neg(),
            UnOp::Not => (v == 0) as i64,
        }
    }

    /// Source-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        }
    }
}

/// A pure expression tree.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum Expr {
    /// An integer literal.
    Const(i64),
    /// A scalar variable read.
    Var(VarId),
    /// An array element read `a[idx]`.
    Index(VarId, Box<Expr>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// Convenience constructor for unary nodes.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Convenience constructor for array reads.
    pub fn index(v: VarId, idx: Expr) -> Expr {
        Expr::Index(v, Box::new(idx))
    }

    /// Collect every variable referenced by the expression into `out`
    /// (deduplicated, in first-reference order).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Index(v, idx) => {
                if !out.contains(v) {
                    out.push(*v);
                }
                idx.collect_vars(out);
            }
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// The set of variables referenced, as a fresh vector.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// True if the expression references `v`.
    pub fn references(&self, v: VarId) -> bool {
        match self {
            Expr::Const(_) => false,
            Expr::Var(w) => *w == v,
            Expr::Index(w, idx) => *w == v || idx.references(v),
            Expr::Unary(_, e) => e.references(v),
            Expr::Binary(_, l, r) => l.references(v) || r.references(v),
        }
    }

    /// Number of operator nodes (unary + binary) in the tree; a proxy for
    /// expression-level parallelism available within a statement.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Index(_, idx) => idx.op_count(),
            Expr::Unary(_, e) => 1 + e.op_count(),
            Expr::Binary(_, l, r) => 1 + l.op_count() + r.op_count(),
        }
    }

    /// Render with variable names from `vars`.
    pub fn display<'a>(&'a self, vars: &'a VarTable) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, vars }
    }
}

/// Pretty-printer adapter tying an expression to a [`VarTable`].
pub struct ExprDisplay<'a> {
    expr: &'a Expr,
    vars: &'a VarTable,
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &Expr, vars: &VarTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Expr::Const(c) => write!(f, "{c}"),
                Expr::Var(v) => write!(f, "{}", vars.name(*v)),
                Expr::Index(v, idx) => {
                    write!(f, "{}[", vars.name(*v))?;
                    go(idx, vars, f)?;
                    write!(f, "]")
                }
                Expr::Unary(op, e) => {
                    write!(f, "{}(", op.symbol())?;
                    go(e, vars, f)?;
                    write!(f, ")")
                }
                Expr::Binary(op, l, r) => {
                    write!(f, "(")?;
                    go(l, vars, f)?;
                    write!(f, " {} ", op.symbol())?;
                    go(r, vars, f)?;
                    write!(f, ")")
                }
            }
        }
        go(self.expr, self.vars, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_arithmetic() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Sub.eval(2, 3), -1);
        assert_eq!(BinOp::Mul.eval(4, 3), 12);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Rem.eval(7, 2), 1);
        assert_eq!(BinOp::Min.eval(7, 2), 2);
        assert_eq!(BinOp::Max.eval(7, 2), 7);
    }

    #[test]
    fn binop_eval_division_by_zero_is_total() {
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        // i64::MIN / -1 must not overflow-panic.
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(BinOp::Rem.eval(i64::MIN, -1), 0);
    }

    #[test]
    fn binop_eval_comparisons_and_logic() {
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(BinOp::Ge.eval(1, 2), 0);
        assert_eq!(BinOp::Eq.eval(5, 5), 1);
        assert_eq!(BinOp::Ne.eval(5, 5), 0);
        assert_eq!(BinOp::And.eval(2, 0), 0);
        assert_eq!(BinOp::And.eval(2, 7), 1);
        assert_eq!(BinOp::Or.eval(0, 0), 0);
        assert_eq!(BinOp::Or.eval(0, -1), 1);
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Neg.eval(i64::MIN), i64::MIN); // wrapping
        assert_eq!(UnOp::Not.eval(0), 1);
        assert_eq!(UnOp::Not.eval(3), 0);
    }

    #[test]
    fn collect_vars_dedups_in_order() {
        let mut t = VarTable::new();
        let x = t.scalar("x");
        let y = t.scalar("y");
        // x + (y * x)
        let e = Expr::bin(
            BinOp::Add,
            Expr::Var(x),
            Expr::bin(BinOp::Mul, Expr::Var(y), Expr::Var(x)),
        );
        assert_eq!(e.vars(), vec![x, y]);
        assert!(e.references(x));
        assert!(e.references(y));
    }

    #[test]
    fn index_collects_base_and_subscript_vars() {
        let mut t = VarTable::new();
        let a = t.array("a", 8);
        let i = t.scalar("i");
        let e = Expr::index(a, Expr::Var(i));
        assert_eq!(e.vars(), vec![a, i]);
        assert!(e.references(a));
        assert!(e.references(i));
        assert_eq!(e.op_count(), 0);
    }

    #[test]
    fn op_count_counts_operators() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::un(UnOp::Neg, Expr::Const(1)),
            Expr::Const(2),
        );
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn display_round_trip_shape() {
        let mut t = VarTable::new();
        let x = t.scalar("x");
        let e = Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5));
        assert_eq!(format!("{}", e.display(&t)), "(x < 5)");
    }
}
