//! The statement-level control-flow graph of §2.1.
//!
//! Nodes carry a [`Stmt`]; edges are ordered successor lists. Fork nodes
//! have exactly two out-edges whose positions encode the *out-direction*:
//! index 0 is the `true` edge, index 1 the `false` edge. By the paper's
//! convention an edge is added from `start` to `end`, making `start` a fork.

use crate::stmt::Stmt;
use crate::var::{VarId, VarTable};
use std::fmt;

/// A dense index identifying a CFG node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The out-direction of an edge. §2.1 indexes a binary fork's out-edges
/// "by a boolean"; footnote 3 notes the development generalizes to
/// multi-way branches, so out-directions here are edge indices: `TRUE` is
/// index 0, `FALSE` index 1, and a `case` arm is its arm index. Nodes with
/// a single out-edge use [`OutDir::TRUE`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OutDir(pub u16);

impl OutDir {
    /// A binary fork's `true` direction (edge index 0).
    pub const TRUE: OutDir = OutDir(0);
    /// A binary fork's `false` direction (edge index 1).
    pub const FALSE: OutDir = OutDir(1);

    /// The successor-list index of this direction.
    #[inline]
    pub fn edge_index(self) -> usize {
        self.0 as usize
    }

    /// The direction for successor-list index `i`.
    #[inline]
    pub fn from_edge_index(i: usize) -> OutDir {
        OutDir(u16::try_from(i).expect("out-edge index fits in u16"))
    }
}

/// A reference to a CFG edge: source node plus out-edge index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EdgeRef {
    /// Source node.
    pub from: NodeId,
    /// Index into the source's successor list.
    pub index: usize,
}

#[derive(Clone, Debug)]
struct Node {
    stmt: Stmt,
    succs: Vec<NodeId>,
}

/// Errors reported by [`Cfg::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CfgError {
    /// A node is not reachable from `start`.
    Unreachable(NodeId),
    /// A node cannot reach `end` (e.g. an infinite loop); the paper requires
    /// every node to lie on a path from `start` to `end`.
    CannotReachEnd(NodeId),
    /// A fork node does not have exactly two out-edges.
    BadForkArity(NodeId),
    /// A non-fork, non-`end` node does not have exactly one out-edge.
    BadArity(NodeId),
    /// `end` has an out-edge.
    EndHasSuccessor(NodeId),
    /// A node with multiple predecessors is not a join, loop-entry, or `end`.
    UnexpectedMultiPred(NodeId),
    /// The conventional `start → end` edge is missing.
    MissingStartEndEdge,
    /// `start` has an in-edge.
    StartHasPredecessor(NodeId),
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Unreachable(n) => write!(f, "node {n:?} unreachable from start"),
            CfgError::CannotReachEnd(n) => write!(f, "node {n:?} cannot reach end"),
            CfgError::BadForkArity(n) => write!(f, "fork {n:?} must have exactly 2 out-edges"),
            CfgError::BadArity(n) => write!(f, "node {n:?} must have exactly 1 out-edge"),
            CfgError::EndHasSuccessor(n) => write!(f, "end node {n:?} has a successor"),
            CfgError::UnexpectedMultiPred(n) => {
                write!(f, "node {n:?} has multiple predecessors but is not a join")
            }
            CfgError::MissingStartEndEdge => write!(f, "conventional start→end edge missing"),
            CfgError::StartHasPredecessor(n) => write!(f, "start has predecessor {n:?}"),
        }
    }
}

impl std::error::Error for CfgError {}

/// A control-flow graph together with its variable table.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// The variables of the program.
    pub vars: VarTable,
    nodes: Vec<Node>,
    start: NodeId,
    end: NodeId,
}

impl Cfg {
    /// Create a CFG containing only `start` and `end`, connected by the
    /// conventional `start → end` edge. The caller then adds statement
    /// nodes and finally wires `start`'s *true* edge to the program entry
    /// with [`Cfg::set_entry`].
    pub fn new(vars: VarTable) -> Self {
        let start_node = Node {
            stmt: Stmt::Start,
            succs: Vec::new(),
        };
        let end_node = Node {
            stmt: Stmt::End,
            succs: Vec::new(),
        };
        let mut cfg = Cfg {
            vars,
            nodes: vec![start_node, end_node],
            start: NodeId(0),
            end: NodeId(1),
        };
        // Provisionally wire start → end twice: the true edge will be
        // redirected to the program entry by `set_entry`; the false edge is
        // the conventional start→end edge that makes start a fork.
        cfg.nodes[0].succs = vec![cfg.end, cfg.end];
        cfg
    }

    /// The unique initial node.
    #[inline]
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// The unique final node.
    #[inline]
    pub fn end(&self) -> NodeId {
        self.end
    }

    /// Number of nodes (including `start` and `end`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has only `start` and `end`.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.succs.len()).sum()
    }

    /// Add a node with no out-edges yet; returns its id.
    pub fn add_node(&mut self, stmt: Stmt) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many CFG nodes"));
        self.nodes.push(Node {
            stmt,
            succs: Vec::new(),
        });
        id
    }

    /// Append an out-edge `from → to`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.nodes[from.index()].succs.push(to);
    }

    /// Redirect the program entry: `start`'s *true* edge points at `entry`.
    pub fn set_entry(&mut self, entry: NodeId) {
        self.nodes[self.start.index()].succs[0] = entry;
    }

    /// The program entry node (`start`'s true successor).
    pub fn entry(&self) -> NodeId {
        self.nodes[self.start.index()].succs[0]
    }

    /// The statement at a node.
    #[inline]
    pub fn stmt(&self, n: NodeId) -> &Stmt {
        &self.nodes[n.index()].stmt
    }

    /// Replace the statement at a node.
    pub fn set_stmt(&mut self, n: NodeId, stmt: Stmt) {
        self.nodes[n.index()].stmt = stmt;
    }

    /// The ordered successor list of a node.
    #[inline]
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.nodes[n.index()].succs
    }

    /// The successor along a fork's out-direction.
    pub fn succ_along(&self, n: NodeId, dir: OutDir) -> NodeId {
        self.nodes[n.index()].succs[dir.edge_index()]
    }

    /// Redirect out-edge `index` of `from` to point at `new_to`, returning
    /// the old target.
    pub fn redirect_edge(&mut self, from: NodeId, index: usize, new_to: NodeId) -> NodeId {
        std::mem::replace(&mut self.nodes[from.index()].succs[index], new_to)
    }

    /// Insert `mid` on the edge `from --index--> to`, producing
    /// `from → mid → to`. `mid` must currently have no out-edges.
    pub fn split_edge(&mut self, edge: EdgeRef, mid: NodeId) {
        assert!(
            self.nodes[mid.index()].succs.is_empty(),
            "split_edge target must have no out-edges yet"
        );
        let to = self.redirect_edge(edge.from, edge.index, mid);
        self.add_edge(mid, to);
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterate over all edges as `(from, index, to)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, usize, NodeId)> + '_ {
        self.node_ids().flat_map(move |n| {
            self.succs(n)
                .iter()
                .enumerate()
                .map(move |(i, &t)| (n, i, t))
        })
    }

    /// Compute the predecessor lists of every node (as `(pred, out-index)`
    /// pairs, in edge order).
    pub fn preds(&self) -> Vec<Vec<(NodeId, usize)>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for (from, idx, to) in self.edges() {
            preds[to.index()].push((from, idx));
        }
        preds
    }

    /// Variables referenced anywhere in the program, in id order.
    pub fn referenced_vars(&self) -> Vec<VarId> {
        let mut seen = vec![false; self.vars.len()];
        for n in self.node_ids() {
            for v in self.stmt(n).referenced_vars() {
                seen[v.index()] = true;
            }
        }
        self.vars
            .ids()
            .filter(|v| seen[v.index()])
            .collect()
    }

    /// Nodes reachable from `start` along forward edges.
    pub fn reachable_from_start(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.start];
        seen[self.start.index()] = true;
        while let Some(n) = stack.pop() {
            for &s in self.succs(n) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Nodes from which `end` is reachable.
    pub fn reaches_end(&self) -> Vec<bool> {
        let preds = self.preds();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.end];
        seen[self.end.index()] = true;
        while let Some(n) = stack.pop() {
            for &(p, _) in &preds[n.index()] {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Check the structural invariants of §2.1 (plus the loop-control
    /// extension of §3). Returns all violations found.
    pub fn validate(&self) -> Result<(), Vec<CfgError>> {
        let mut errs = Vec::new();
        // start must be a fork whose false edge is the conventional edge to
        // end.
        let ss = self.succs(self.start);
        if ss.len() != 2 {
            errs.push(CfgError::BadForkArity(self.start));
        } else if ss[1] != self.end {
            errs.push(CfgError::MissingStartEndEdge);
        }
        let reach = self.reachable_from_start();
        let coreach = self.reaches_end();
        let preds = self.preds();
        for n in self.node_ids() {
            if !reach[n.index()] {
                errs.push(CfgError::Unreachable(n));
                continue;
            }
            if !coreach[n.index()] {
                errs.push(CfgError::CannotReachEnd(n));
            }
            let deg = self.succs(n).len();
            match self.stmt(n) {
                Stmt::Start => {}
                Stmt::End => {
                    if deg != 0 {
                        errs.push(CfgError::EndHasSuccessor(n));
                    }
                }
                Stmt::Branch { .. } => {
                    if deg != 2 {
                        errs.push(CfgError::BadForkArity(n));
                    }
                }
                Stmt::Case { .. } => {
                    if deg < 2 {
                        errs.push(CfgError::BadForkArity(n));
                    }
                }
                _ => {
                    if deg != 1 {
                        errs.push(CfgError::BadArity(n));
                    }
                }
            }
            if preds[n.index()].len() > 1
                && !matches!(
                    self.stmt(n),
                    Stmt::Join | Stmt::End | Stmt::LoopEntry { .. }
                )
            {
                errs.push(CfgError::UnexpectedMultiPred(n));
            }
            if n == self.start && !preds[n.index()].is_empty() {
                errs.push(CfgError::StartHasPredecessor(preds[n.index()][0].0));
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Pretty-print the whole graph (one node per line).
    pub fn pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for n in self.node_ids() {
            let succs: Vec<String> = self
                .succs(n)
                .iter()
                .map(|t| format!("{t:?}"))
                .collect();
            let _ = writeln!(
                s,
                "{:>4?}: {:<40} -> [{}]",
                n,
                format!("{}", self.stmt(n).display(&self.vars)),
                succs.join(", ")
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::stmt::LValue;

    /// Build the paper's running example (Fig 1):
    /// ```text
    /// start:
    /// l: join
    ///    y := x + 1
    ///    x := x + 1
    ///    if x < 5 then goto l else goto end
    /// end:
    /// ```
    pub(crate) fn running_example() -> Cfg {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let y = vars.scalar("y");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let s1 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(y),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let s2 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, s1);
        cfg.add_edge(s1, s2);
        cfg.add_edge(s2, br);
        cfg.add_edge(br, join); // true
        cfg.add_edge(br, cfg.end()); // false
        cfg
    }

    #[test]
    fn running_example_validates() {
        let cfg = running_example();
        cfg.validate().expect("fig 1 CFG must be valid");
        assert_eq!(cfg.len(), 6);
        // start(2) + join(1) + s1(1) + s2(1) + br(2) = 7 edges
        assert_eq!(cfg.edge_count(), 7);
    }

    #[test]
    fn start_is_fork_with_conventional_edge() {
        let cfg = running_example();
        assert!(cfg.stmt(cfg.start()).is_fork());
        assert_eq!(cfg.succ_along(cfg.start(), OutDir::FALSE), cfg.end());
        assert_ne!(cfg.entry(), cfg.end());
    }

    #[test]
    fn preds_are_consistent_with_edges() {
        let cfg = running_example();
        let preds = cfg.preds();
        // end's preds: start (conventional) and the branch.
        let end_preds: Vec<NodeId> = preds[cfg.end().index()].iter().map(|&(p, _)| p).collect();
        assert!(end_preds.contains(&cfg.start()));
        assert_eq!(end_preds.len(), 2);
        // Total pred entries equal edge count.
        let total: usize = preds.iter().map(|p| p.len()).sum();
        assert_eq!(total, cfg.edge_count());
    }

    #[test]
    fn referenced_vars_of_example() {
        let cfg = running_example();
        let vs = cfg.referenced_vars();
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn unreachable_node_detected() {
        let mut cfg = running_example();
        let orphan = cfg.add_node(Stmt::Join);
        cfg.add_edge(orphan, cfg.end());
        let errs = cfg.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, CfgError::Unreachable(n) if *n == orphan)));
    }

    #[test]
    fn infinite_loop_detected() {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let s = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(1),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, s);
        cfg.add_edge(s, join); // loop with no exit
        let errs = cfg.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CfgError::CannotReachEnd(_))));
    }

    #[test]
    fn bad_fork_arity_detected() {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::Var(x),
        });
        cfg.set_entry(br);
        cfg.add_edge(br, cfg.end()); // only one out-edge
        let errs = cfg.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, CfgError::BadForkArity(n) if *n == br)));
    }

    #[test]
    fn multi_pred_non_join_detected() {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::Var(x),
        });
        let asg = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(0),
        });
        cfg.set_entry(br);
        cfg.add_edge(br, asg);
        cfg.add_edge(br, asg); // both arms to a non-join
        cfg.add_edge(asg, cfg.end());
        let errs = cfg.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, CfgError::UnexpectedMultiPred(n) if *n == asg)));
    }

    #[test]
    fn split_edge_inserts_between() {
        let mut cfg = running_example();
        let preds = cfg.preds();
        // Split the backedge br → join.
        let join = cfg.entry();
        let &(br, idx) = preds[join.index()]
            .iter()
            .find(|&&(p, _)| p != cfg.start())
            .unwrap();
        let mid = cfg.add_node(Stmt::Join);
        cfg.split_edge(EdgeRef { from: br, index: idx }, mid);
        assert_eq!(cfg.succs(br)[idx], mid);
        assert_eq!(cfg.succs(mid), &[join]);
        cfg.validate().expect("still valid after split");
    }

    #[test]
    fn pretty_prints_every_node() {
        let cfg = running_example();
        let p = cfg.pretty();
        assert!(p.contains("y := (x + 1)"));
        assert!(p.contains("if (x < 5)"));
        assert_eq!(p.lines().count(), cfg.len());
    }
}
