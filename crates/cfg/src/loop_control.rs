//! Insertion of loop-control statements (§3).
//!
//! "Arcs leading to the header from outside the interval are changed to
//! lead to a single *loop entry* statement, which then leads to the header.
//! All arcs from within the interval back to the header are changed to lead
//! back to the loop entry node. A *loop exit* statement is placed on any
//! edge that exits the cyclic part of the interval."
//!
//! An edge that exits several nested loops at once receives a chain of
//! loop-exit statements, innermost first, so iteration tags are stripped
//! level by level in the dataflow machine.
//!
//! Irreducible graphs are handled by the paper's "code copying" remedy:
//! [`split_irreducible`] duplicates multi-entry cycle nodes until the graph
//! becomes reducible.

use crate::context::{FunctionContext, Preserved};
use crate::graph::{Cfg, EdgeRef, NodeId};
use crate::intervals::{Irreducible, LoopForest, LoopId};
use crate::stmt::Stmt;

/// What loop-control insertion learned and added, independent of which
/// CFG copy it was applied to.
#[derive(Clone, Debug)]
pub struct LoopControlMeta {
    /// The loop forest of the *original* CFG. Node ids of original nodes
    /// are unchanged by the transformation, so its bodies remain valid.
    pub forest: LoopForest,
    /// The loop-entry node inserted for each loop, indexed by [`LoopId`].
    pub entry_node: Vec<NodeId>,
    /// The loop-exit nodes inserted for each loop, indexed by [`LoopId`].
    pub exit_nodes: Vec<Vec<NodeId>>,
}

/// The result of [`insert_loop_control`]: a transformed CFG copy plus its
/// [`LoopControlMeta`]. Derefs to the meta, so `lc.forest` etc. work.
#[derive(Clone, Debug)]
pub struct LoopControlled {
    /// The transformed CFG, containing `LoopEntry`/`LoopExit` statements.
    pub cfg: Cfg,
    /// Forest and inserted-node bookkeeping.
    pub meta: LoopControlMeta,
}

impl std::ops::Deref for LoopControlled {
    type Target = LoopControlMeta;
    fn deref(&self) -> &LoopControlMeta {
        &self.meta
    }
}

/// Insert loop-entry and loop-exit statements for every cyclic interval.
///
/// Fails with [`Irreducible`] if the CFG has a multi-entry cycle; call
/// [`split_irreducible`] first in that case.
///
/// This convenience form leaves the caller's CFG untouched, so the clone
/// is inherent to its signature; the translation pipeline uses
/// [`insert_loop_control_in_place`] and pays no copy.
pub fn insert_loop_control(cfg: &Cfg) -> Result<LoopControlled, Irreducible> {
    let forest = LoopForest::compute(cfg)?;
    let mut out = cfg.clone();
    let (entry_node, exit_nodes) = insert_loop_control_body(&mut out, &forest);
    debug_assert!(out.validate().is_ok(), "loop control broke CFG invariants");
    Ok(LoopControlled { cfg: out, meta: LoopControlMeta { forest, entry_node, exit_nodes } })
}

/// [`insert_loop_control`] applied to a [`FunctionContext`]'s CFG in
/// place. Takes the loop forest from the analysis cache (a reducibility
/// check earlier in the pipeline already computed it), mutates the graph
/// under [`Preserved::VALIDITY`] — insertion keeps the CFG well-formed,
/// everything else is invalidated — and skips the revision bump entirely
/// on loop-free graphs, where it would change nothing.
pub fn insert_loop_control_in_place(
    fctx: &mut FunctionContext,
) -> Result<LoopControlMeta, Irreducible> {
    let forest: LoopForest = (*fctx.loop_forest()?).clone();
    if forest.is_empty() {
        return Ok(LoopControlMeta { forest, entry_node: Vec::new(), exit_nodes: Vec::new() });
    }
    let (entry_node, exit_nodes) =
        fctx.mutate(Preserved::VALIDITY, |cfg| insert_loop_control_body(cfg, &forest));
    debug_assert!(fctx.cfg().validate().is_ok(), "loop control broke CFG invariants");
    Ok(LoopControlMeta { forest, entry_node, exit_nodes })
}

/// The insertion itself, applied in place. `out` must be the graph the
/// forest was computed on.
fn insert_loop_control_body(out: &mut Cfg, forest: &LoopForest) -> (Vec<NodeId>, Vec<Vec<NodeId>>) {
    // Step 1: place loop-exit chains. For every edge of the *original*
    // graph (snapshotted before any splitting), collect the loops it
    // exits (from innermost to outermost) and split the edge with one
    // loop-exit node per level.
    let original_edges: Vec<(NodeId, usize, NodeId)> = out.edges().collect();
    let mut exit_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); forest.len()];
    for (from, idx, to) in original_edges {
        // Loops exited: loops containing `from` but not `to`. `forest.iter()`
        // yields innermost (smallest) loops first, which is the order the
        // exits must be chained in.
        let mut exited: Vec<LoopId> = Vec::new();
        for (lid, l) in forest.iter() {
            if l.contains(from) && !l.contains(to) {
                exited.push(lid);
            }
        }
        let mut edge = EdgeRef { from, index: idx };
        for lid in exited {
            let lx = out.add_node(Stmt::LoopExit { loop_id: lid });
            out.split_edge(edge, lx);
            exit_nodes[lid.index()].push(lx);
            // Continue splitting after the node just inserted.
            edge = EdgeRef {
                from: lx,
                index: 0,
            };
        }
    }

    // Step 2: place loop-entry nodes. All edges into each header — entry
    // edges and backedges alike — are redirected to a fresh loop-entry node
    // that leads to the header. Edges are identified by (from, index), which
    // step 1 preserved: splitting an edge re-targets (from, index) to the
    // head of the inserted chain, and the chain's last node now owns the
    // edge into the header, so we search the *current* graph for edges into
    // the header.
    let mut entry_node = Vec::with_capacity(forest.len());
    for (lid, l) in forest.iter() {
        let header = l.header;
        let le = out.add_node(Stmt::LoopEntry { loop_id: lid });
        let incoming: Vec<(NodeId, usize)> = out
            .edges()
            .filter(|&(f, _, t)| t == header && f != le)
            .map(|(f, i, _)| (f, i))
            .collect();
        for (f, i) in incoming {
            out.redirect_edge(f, i, le);
        }
        out.add_edge(le, header);
        entry_node.push(le);
    }

    (entry_node, exit_nodes)
}

/// Make an irreducible CFG reducible by node splitting ("code copying"),
/// returning an equivalent reducible CFG. Reducible inputs are returned
/// unchanged.
///
/// The algorithm is the textbook T1/T2 one: collapse the graph to its
/// *limit graph* (T1 drops self-loops, T2 merges every region with a
/// single predecessor region into that predecessor). If the limit graph is
/// not a single node, the CFG is irreducible; the smallest multi-entry
/// limit region lying on a limit-graph cycle is then duplicated — one copy
/// of its entire member set per extra predecessor region — which makes
/// each copy single-predecessor and guarantees the next collapse round
/// shrinks the limit graph. Code growth can be super-linear on adversarial
/// graphs; a hard cap guards against blow-up.
pub fn split_irreducible(cfg: &Cfg) -> Result<Cfg, Irreducible> {
    let mut g = cfg.clone();
    let cap = (64 * cfg.len()).max(4096);
    loop {
        let witnesses = match LoopForest::compute(&g) {
            Ok(_) => return Ok(g),
            Err(e) => e.witnesses,
        };
        if g.len() > cap {
            return Err(Irreducible { witnesses });
        }

        // T1/T2 collapse: region_of[n] = representative region index.
        let n = g.len();
        let mut region_of: Vec<usize> = (0..n).collect();
        loop {
            // Distinct predecessor regions per region (ignoring
            // intra-region edges = T1).
            let mut pred_regions: Vec<Vec<usize>> = vec![Vec::new(); n];
            for (u, _, v) in g.edges() {
                let (ru, rv) = (region_of[u.index()], region_of[v.index()]);
                if ru != rv && !pred_regions[rv].contains(&ru) {
                    pred_regions[rv].push(ru);
                }
            }
            // T2: merge a single-pred region into its predecessor.
            let mut merged = false;
            for (r, preds_of_r) in pred_regions.iter().enumerate() {
                if region_of.iter().all(|&x| x != r) {
                    continue; // dead region id
                }
                if preds_of_r.len() == 1 {
                    let p = preds_of_r[0];
                    for x in region_of.iter_mut() {
                        if *x == r {
                            *x = p;
                        }
                    }
                    merged = true;
                }
            }
            if !merged {
                break;
            }
        }

        // Limit-graph adjacency and cycle membership.
        let region_ids: Vec<usize> = {
            let mut v: Vec<usize> = region_of.clone();
            v.sort_unstable();
            v.dedup();
            v
        };
        if region_ids.len() <= 1 {
            // Fully collapsed yet LoopForest said irreducible: cannot
            // happen, but fail safely rather than loop.
            return Err(Irreducible { witnesses });
        }
        let mut limit_succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut limit_preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, _, v) in g.edges() {
            let (ru, rv) = (region_of[u.index()], region_of[v.index()]);
            if ru != rv {
                if !limit_succs[ru].contains(&rv) {
                    limit_succs[ru].push(rv);
                }
                if !limit_preds[rv].contains(&ru) {
                    limit_preds[rv].push(ru);
                }
            }
        }
        let on_cycle = limit_cycle_members(&region_ids, &limit_succs, &limit_preds);

        // Pick the smallest splittable region: ≥2 pred regions, on a limit
        // cycle.
        let members = |r: usize| -> Vec<NodeId> {
            g.node_ids()
                .filter(|m| region_of[m.index()] == r)
                .collect()
        };
        let pick = region_ids
            .iter()
            .copied()
            .filter(|&r| limit_preds[r].len() >= 2 && on_cycle.contains(&r))
            .min_by_key(|&r| (members(r).len(), r));
        let Some(target) = pick else {
            return Err(Irreducible { witnesses });
        };

        // Duplicate the region per extra predecessor region.
        let body = members(target);
        let pred_rs = limit_preds[target].clone();
        for &p in &pred_rs[1..] {
            let mut copy_map: std::collections::HashMap<NodeId, NodeId> =
                std::collections::HashMap::new();
            for &m in &body {
                copy_map.insert(m, g.add_node(g.stmt(m).clone()));
            }
            for &m in &body {
                let succs: Vec<NodeId> = g.succs(m).to_vec();
                let c = copy_map[&m];
                for s in succs {
                    g.add_edge(c, *copy_map.get(&s).unwrap_or(&s));
                }
            }
            // Edges from region p into the target enter the copy instead.
            let redirects: Vec<(NodeId, usize, NodeId)> = g
                .edges()
                .filter(|&(u, _, v)| {
                    region_of.get(u.index()).copied() == Some(p)
                        && copy_map.contains_key(&v)
                })
                .collect();
            for (u, i, v) in redirects {
                g.redirect_edge(u, i, copy_map[&v]);
            }
        }
    }
}

/// Region ids lying on a cycle of the limit graph (two-sided Kahn
/// pruning).
fn limit_cycle_members(
    region_ids: &[usize],
    succs: &[Vec<usize>],
    preds: &[Vec<usize>],
) -> Vec<usize> {
    let mut alive: std::collections::HashSet<usize> = region_ids.iter().copied().collect();
    loop {
        let removable: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|&r| {
                preds[r].iter().all(|p| !alive.contains(p))
                    || succs[r].iter().all(|s| !alive.contains(s))
            })
            .collect();
        if removable.is_empty() {
            break;
        }
        for r in removable {
            alive.remove(&r);
        }
    }
    alive.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::stmt::LValue;
    use crate::var::VarTable;

    fn running_example() -> (Cfg, NodeId, NodeId) {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let y = vars.scalar("y");
        let mut cfg = Cfg::new(vars);
        let join = cfg.add_node(Stmt::Join);
        let s1 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(y),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let s2 = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::bin(BinOp::Add, Expr::Var(x), Expr::Const(1)),
        });
        let br = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(5)),
        });
        cfg.set_entry(join);
        cfg.add_edge(join, s1);
        cfg.add_edge(s1, s2);
        cfg.add_edge(s2, br);
        cfg.add_edge(br, join);
        cfg.add_edge(br, cfg.end());
        (cfg, join, br)
    }

    #[test]
    fn running_example_gets_entry_and_exit() {
        let (cfg, join, br) = running_example();
        let lc = insert_loop_control(&cfg).unwrap();
        lc.cfg.validate().unwrap();
        assert_eq!(lc.entry_node.len(), 1);
        let le = lc.entry_node[0];
        assert!(matches!(lc.cfg.stmt(le), Stmt::LoopEntry { .. }));
        // start's entry edge and the backedge both lead to the loop entry.
        assert_eq!(lc.cfg.entry(), le);
        assert_eq!(lc.cfg.succs(le), &[join]);
        assert_eq!(lc.cfg.succs(br)[0], le, "backedge redirected to loop entry");
        // The exit edge got a loop-exit node.
        assert_eq!(lc.exit_nodes[0].len(), 1);
        let lx = lc.exit_nodes[0][0];
        assert_eq!(lc.cfg.succs(br)[1], lx);
        assert_eq!(lc.cfg.succs(lx), &[cfg.end()]);
    }

    #[test]
    fn loop_free_graph_unchanged_in_size() {
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let s = cfg.add_node(Stmt::Assign {
            lhs: LValue::Var(x),
            rhs: Expr::Const(1),
        });
        cfg.set_entry(s);
        cfg.add_edge(s, cfg.end());
        let lc = insert_loop_control(&cfg).unwrap();
        assert_eq!(lc.cfg.len(), cfg.len());
        assert!(lc.entry_node.is_empty());
    }

    #[test]
    fn multi_level_exit_gets_chained_exits() {
        // Inner loop with an edge that leaves both loops at once.
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let jo = cfg.add_node(Stmt::Join); // outer header
        let ji = cfg.add_node(Stmt::Join); // inner header
        let bi = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(3)),
        });
        let bo = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Lt, Expr::Var(x), Expr::Const(9)),
        });
        let bx = cfg.add_node(Stmt::Branch {
            pred: Expr::bin(BinOp::Eq, Expr::Var(x), Expr::Const(7)),
        });
        cfg.set_entry(jo);
        cfg.add_edge(jo, ji);
        cfg.add_edge(ji, bx);
        cfg.add_edge(bx, cfg.end()); // leaves BOTH loops at once
        cfg.add_edge(bx, bi);
        cfg.add_edge(bi, ji); // inner backedge
        cfg.add_edge(bi, bo);
        cfg.add_edge(bo, jo); // outer backedge
        cfg.add_edge(bo, cfg.end()); // leaves outer loop
        cfg.validate().unwrap();

        let lc = insert_loop_control(&cfg).unwrap();
        lc.cfg.validate().unwrap();
        assert_eq!(lc.entry_node.len(), 2);
        // Edge bx → end must now pass through two loop exits, inner first.
        let mut n = lc.cfg.succs(bx)[0];
        let Stmt::LoopExit { loop_id: first } = *lc.cfg.stmt(n) else {
            panic!("expected inner loop exit on bx's true edge");
        };
        n = lc.cfg.succs(n)[0];
        let Stmt::LoopExit { loop_id: second } = *lc.cfg.stmt(n) else {
            panic!("expected outer loop exit next");
        };
        assert_eq!(lc.cfg.succs(n), &[cfg.end()]);
        // Inner loops sort first in the forest, so the inner id < outer id.
        let inner_depth = lc.forest.info(first).depth;
        let outer_depth = lc.forest.info(second).depth;
        assert!(inner_depth > outer_depth, "inner exit must come first");
    }

    #[test]
    fn nested_loops_each_get_entries() {
        let (cfg, ..) = running_example();
        let lc = insert_loop_control(&cfg).unwrap();
        // Re-running loop analysis on the transformed graph: the (single)
        // loop's cycle now passes through the loop-entry node.
        let forest2 = LoopForest::compute(&lc.cfg).unwrap();
        assert_eq!(forest2.len(), 1);
        let (_, l2) = forest2.iter().next().unwrap();
        assert!(l2.contains(lc.entry_node[0]));
    }

    #[test]
    fn split_irreducible_makes_reducible() {
        // The two-entry cycle from the intervals tests.
        let mut vars = VarTable::new();
        let x = vars.scalar("x");
        let mut cfg = Cfg::new(vars);
        let br = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        let j1 = cfg.add_node(Stmt::Join);
        let j2 = cfg.add_node(Stmt::Join);
        let br2 = cfg.add_node(Stmt::Branch { pred: Expr::Var(x) });
        cfg.set_entry(br);
        cfg.add_edge(br, j1);
        cfg.add_edge(br, j2);
        cfg.add_edge(j1, j2);
        cfg.add_edge(j2, br2);
        cfg.add_edge(br2, j1);
        cfg.add_edge(br2, cfg.end());
        cfg.validate().unwrap();
        assert!(LoopForest::compute(&cfg).is_err());

        let split = split_irreducible(&cfg).unwrap();
        split.validate().unwrap();
        assert!(LoopForest::compute(&split).is_ok());
        assert!(split.len() > cfg.len(), "splitting must copy nodes");
        // And loop control now applies cleanly.
        insert_loop_control(&split).unwrap();
    }

    #[test]
    fn split_reducible_is_identity() {
        let (cfg, ..) = running_example();
        let split = split_irreducible(&cfg).unwrap();
        assert_eq!(split.len(), cfg.len());
    }
}
